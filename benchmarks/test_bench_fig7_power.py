"""Figure 7: average power consumption per app state over WiFi and LTE."""

import pytest

from repro.energy.states import PAPER_FIGURE7_MW, AppState
from repro.experiments import fig7_power


def test_bench_fig7(benchmark, figure_sink):
    result = benchmark.pedantic(
        fig7_power.run, kwargs={"duration_s": 20.0}, rounds=1, iterations=1
    )
    figure_sink("fig7_power", result.render())

    # Every bar within 12% of the paper's figure.
    for state, (wifi, lte) in result.measured.items():
        paper_wifi, paper_lte = PAPER_FIGURE7_MW[state]
        assert wifi == pytest.approx(paper_wifi, rel=0.12), state
        assert lte == pytest.approx(paper_lte, rel=0.12), state

    # The headline: turning the chat on raises power dramatically —
    # to nearly broadcasting levels.
    assert result.chat_overhead_mw(0) > 1000
    chat = result.measured[AppState.VIDEO_HLS_CHAT_ON]
    broadcast = result.measured[AppState.BROADCAST]
    assert chat[0] > 0.9 * broadcast[0]
