"""Section 5's in-text findings: t-tests, protocol boundary, chat
traffic, codec census."""

from repro.experiments import sec5_protocol, sec5_ttests, sec51_chat, sec52_codecs


def test_bench_sec5_ttests(benchmark, workbench, figure_sink):
    result = benchmark.pedantic(
        sec5_ttests.run, args=(workbench,), rounds=1, iterations=1
    )
    figure_sink("sec5_ttests", result.render())
    # "Only the frame rate differs statistically significantly."
    assert result.significant_metrics() == ["avg_fps"]


def test_bench_sec5_protocol(benchmark, workbench, figure_sink):
    result = benchmark.pedantic(
        sec5_protocol.run, args=(workbench,), rounds=1, iterations=1
    )
    figure_sink("sec5_protocol", result.render())
    # The HLS boundary sits somewhere around 100 viewers.
    assert 40 < result.boundary_estimate < 250
    # 87 ingest servers, on several continents, none in Africa.
    assert result.rtmp_server_count == 87
    assert len(set(result.rtmp_regions)) >= 5
    # Two HLS edges; the Finland viewer hits the European one.
    assert result.hls_edge_count == 2
    assert result.hls_edge_for_viewer == "fastly-eu"


def test_bench_sec51_chat(benchmark, figure_sink):
    result = benchmark.pedantic(sec51_chat.run, rounds=1, iterations=1)
    figure_sink("sec51_chat", result.render())
    # ~500 kbps -> several Mbps when the chat pane is on.
    assert 250e3 < result.chat_off_bps < 900e3
    assert result.chat_on_bps > 2.0e6
    assert result.amplification > 3.0
    # Uncached avatars are re-downloaded; caching mitigates.
    assert result.duplicate_downloads > 10
    assert result.chat_on_cached_bps < 0.5 * result.chat_on_bps


def test_bench_sec52_codecs(benchmark, figure_sink):
    result = benchmark.pedantic(
        sec52_codecs.run, kwargs={"n_streams": 150, "duration_s": 60.0},
        rounds=1, iterations=1,
    )
    figure_sink("sec52_codecs", result.render())
    # Most streams use the repeated IBP scheme; about a fifth I+P only;
    # I-only is rare.
    assert result.gop_shares["IBP"] > 0.6
    assert 0.10 < result.gop_shares["IP"] < 0.30
    assert result.gop_shares.get("I", 0.0) < 0.05
    # A new I frame roughly every 36 frames.
    assert 30 < result.mean_i_period < 42
    # Segment durations range 3-6 s with the mode near 3.6 s.
    assert all(2.5 <= d <= 6.5 for d in result.segment_durations)
    assert result.segment_mode_share() > 0.25
    # Audio at the two nominal VBR operating points.
    assert set(round(r) for r in result.audio_rates) == {32_000, 64_000}
