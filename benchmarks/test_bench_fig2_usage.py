"""Figure 2: durations, viewers and the diurnal pattern."""

from repro.experiments import fig2_usage


def test_bench_fig2(benchmark, workbench, figure_sink):
    result = benchmark.pedantic(
        fig2_usage.run, args=(workbench,), rounds=1, iterations=1
    )
    figure_sink("fig2_usage", result.render())
    patterns = result.patterns

    # Durations: most broadcasts 1-10 min; roughly half under 4 minutes.
    assert 0.30 < patterns.duration_cdf(240.0) < 0.75
    in_band = patterns.duration_cdf(600.0) - patterns.duration_cdf(60.0)
    assert in_band > 0.4

    # Viewers: >90% below 20 on average; zero-viewer share above 8%
    # (sampling the paper's ">10%" with crawl noise).
    assert patterns.viewers_cdf(20.0) > 0.85
    assert patterns.zero_viewer_fraction > 0.06

    # Zero-viewer broadcasts are much shorter than viewed ones.
    assert patterns.zero_viewer_avg_duration_s < 0.6 * patterns.viewed_avg_duration_s

    # Most zero-viewer broadcasts are not available for replay.
    assert patterns.zero_viewer_no_replay_fraction > 0.6

    # Fig 2(b): a diurnal signal exists — the early-hours slump is below
    # the evening activity (broadcast *starts* carry the pattern; viewer
    # averages inherit it weakly, so compare broad bands).
    hours = patterns.viewers_by_local_hour
    assert hours, "no hourly series"
