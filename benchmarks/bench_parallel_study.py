"""Wall-clock benchmark: serial vs process-parallel study batches.

Runs the same seeded bandwidth sweep at several worker counts, checks
the datasets are bit-identical to the serial baseline (the guarantee
the parallel path advertises), and writes the measured times to
``benchmarks/BENCH_parallel_study.json``.

Numbers are only meaningful relative to the recorded ``cpu_count``: on
a single-core container every worker count serializes onto one core,
so the parallel runs measure pure dispatch overhead, not speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_study.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import resource
import time

from repro.core.config import StudyConfig
from repro.core.study import AutomatedViewingStudy

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_parallel_study.json"


def run_sweep(seed, per_limit, limits, workers, exact=False):
    """One full seeded sweep at a fixed worker count; returns (dataset, s).

    ``exact=True`` forces the exact per-packet network path; the default
    uses the segment-granularity fast path (:mod:`repro.netsim.fastpath`).
    """
    study = AutomatedViewingStudy(
        StudyConfig(seed=seed, workers=workers, exact_network=exact)
    )
    started = time.perf_counter()
    sweep = {
        limit: study.run_batch(per_limit, bandwidth_limit_mbps=limit)
        for limit in limits
    }
    elapsed = time.perf_counter() - started
    return sweep, elapsed


def datasets_identical(a, b):
    return all(
        a[limit].sessions == b[limit].sessions
        and a[limit].avatar_bytes == b[limit].avatar_bytes
        and a[limit].down_bytes == b[limit].down_bytes
        for limit in a
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny workload for CI smoke (2 sessions/limit, "
                             "workers 1 and 2)")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args()

    if args.quick:
        per_limit, limits, worker_counts = 2, (2.0, 100.0), (1, 2)
    else:
        per_limit, limits, worker_counts = 6, (0.5, 2.0, 100.0), (1, 2, 4, 8)

    config = {
        "seed": args.seed,
        "sessions_per_limit": per_limit,
        "limits_mbps": list(limits),
        "quick": args.quick,
    }
    existing = None
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            existing = None

    baseline_sweep = None
    baseline_seconds = None
    runs = []
    for workers in worker_counts:
        sweep, elapsed = run_sweep(args.seed, per_limit, limits, workers)
        if baseline_sweep is None:
            baseline_sweep, baseline_seconds = sweep, elapsed
        identical = datasets_identical(baseline_sweep, sweep)
        runs.append({
            "workers": workers,
            "seconds": round(elapsed, 3),
            "speedup_vs_serial": round(baseline_seconds / elapsed, 3),
            "identical_to_serial": identical,
        })
        print(f"workers={workers}: {elapsed:.2f}s "
              f"(x{baseline_seconds / elapsed:.2f} vs serial, "
              f"identical={identical})")
        if not identical:
            raise SystemExit(
                f"parallel dataset at workers={workers} diverged from serial"
            )

    # ---- exact-path cross-check: the fast path's one guarantee ---------
    exact_sweep, exact_seconds = run_sweep(
        args.seed, per_limit, limits, workers=1, exact=True
    )
    exact_identical = datasets_identical(baseline_sweep, exact_sweep)
    print(f"exact path (serial): {exact_seconds:.2f}s "
          f"(fast path x{exact_seconds / baseline_seconds:.2f} faster, "
          f"identical={exact_identical})")
    if not exact_identical:
        raise SystemExit("fast-path dataset diverged from the exact path")

    # ---- speed trajectory: sessions/sec over the repo's history --------
    n_sessions = per_limit * len(limits)
    trajectory = []
    if existing is not None:
        trajectory = list(existing.get("trajectory", []))
        if not trajectory and existing.get("runs"):
            # First run against a pre-trajectory file: anchor the
            # before/after pair by recording the stored serial run.
            prior = existing["runs"][0]
            prior_sessions = (existing["config"]["sessions_per_limit"]
                             * len(existing["config"]["limits_mbps"]))
            trajectory.append({
                "label": "pre-fastpath",
                "config": existing["config"],
                "serial_seconds": prior["seconds"],
                "sessions": prior_sessions,
                "sessions_per_sec_serial": round(
                    prior_sessions / prior["seconds"], 3),
                "cpu_count": existing.get("cpu_count"),
            })
    # ru_maxrss is KB on Linux; the whole-process high-water mark, so it
    # covers every run above, not any single one.
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    entry = {
        "label": "current",
        "config": config,
        "serial_seconds": round(baseline_seconds, 3),
        "sessions": n_sessions,
        "sessions_per_sec_serial": round(n_sessions / baseline_seconds, 3),
        "exact_serial_seconds": round(exact_seconds, 3),
        "fast_exact_identical": exact_identical,
        "cpu_count": os.cpu_count(),
        "peak_rss_kb": peak_rss_kb,
    }
    comparable = [
        prior for prior in trajectory
        if prior.get("config") == config and prior is not entry
    ]
    if comparable:
        before = comparable[0]["sessions_per_sec_serial"]
        entry["speedup_vs_baseline"] = round(
            entry["sessions_per_sec_serial"] / before, 3)
        print(f"sessions/sec serial: {before} -> "
              f"{entry['sessions_per_sec_serial']} "
              f"(x{entry['speedup_vs_baseline']})")
    trajectory.append(entry)

    report = {
        "benchmark": "parallel_study",
        "config": config,
        "cpu_count": os.cpu_count(),
        "peak_rss_kb": peak_rss_kb,
        "runs": runs,
        "exact": {
            "seconds": round(exact_seconds, 3),
            "identical_to_fast": exact_identical,
        },
        "trajectory": trajectory,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
