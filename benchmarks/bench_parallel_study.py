"""Wall-clock benchmark: serial vs process-parallel study batches.

Runs the same seeded bandwidth sweep at several worker counts, checks
the datasets are bit-identical to the serial baseline (the guarantee
the parallel path advertises), and writes the measured times to
``benchmarks/BENCH_parallel_study.json``.

Numbers are only meaningful relative to the recorded ``cpu_count``: on
a single-core container every worker count serializes onto one core,
so the parallel runs measure pure dispatch overhead, not speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_parallel_study.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import time

from repro.core.config import StudyConfig
from repro.core.study import AutomatedViewingStudy

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_parallel_study.json"


def run_sweep(seed, per_limit, limits, workers):
    """One full seeded sweep at a fixed worker count; returns (dataset, s)."""
    study = AutomatedViewingStudy(StudyConfig(seed=seed, workers=workers))
    started = time.perf_counter()
    sweep = {
        limit: study.run_batch(per_limit, bandwidth_limit_mbps=limit)
        for limit in limits
    }
    elapsed = time.perf_counter() - started
    return sweep, elapsed


def datasets_identical(a, b):
    return all(
        a[limit].sessions == b[limit].sessions
        and a[limit].avatar_bytes == b[limit].avatar_bytes
        and a[limit].down_bytes == b[limit].down_bytes
        for limit in a
    )


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="tiny workload for CI smoke (2 sessions/limit, "
                             "workers 1 and 2)")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args()

    if args.quick:
        per_limit, limits, worker_counts = 2, (2.0, 100.0), (1, 2)
    else:
        per_limit, limits, worker_counts = 6, (0.5, 2.0, 100.0), (1, 2, 4, 8)

    baseline_sweep = None
    baseline_seconds = None
    runs = []
    for workers in worker_counts:
        sweep, elapsed = run_sweep(args.seed, per_limit, limits, workers)
        if baseline_sweep is None:
            baseline_sweep, baseline_seconds = sweep, elapsed
        identical = datasets_identical(baseline_sweep, sweep)
        runs.append({
            "workers": workers,
            "seconds": round(elapsed, 3),
            "speedup_vs_serial": round(baseline_seconds / elapsed, 3),
            "identical_to_serial": identical,
        })
        print(f"workers={workers}: {elapsed:.2f}s "
              f"(x{baseline_seconds / elapsed:.2f} vs serial, "
              f"identical={identical})")
        if not identical:
            raise SystemExit(
                f"parallel dataset at workers={workers} diverged from serial"
            )

    report = {
        "benchmark": "parallel_study",
        "config": {
            "seed": args.seed,
            "sessions_per_limit": per_limit,
            "limits_mbps": list(limits),
            "quick": args.quick,
        },
        "cpu_count": os.cpu_count(),
        "runs": runs,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
