"""Figure 3: stall ratios with and without bandwidth limiting."""

from repro.experiments import fig3_stalls


def test_bench_fig3(benchmark, workbench, figure_sink):
    result = benchmark.pedantic(
        fig3_stalls.run, args=(workbench,), rounds=1, iterations=1
    )
    figure_sink("fig3_stalls", result.render())

    # Fig 3(a): most unlimited streams do not stall...
    assert result.clean_share() > 0.55
    # ...but a notable cluster sits in the single-stall band.
    assert result.single_stall_cluster_share() > 0.05
    # Stall ratios are by definition in [0, 1].
    assert all(0.0 <= r <= 1.0 for r in result.unlimited_ratios)

    # Fig 3(b): heavy stalling at 0.5 Mbps, essentially none above 2.
    assert result.median_ratio(0.5) > 0.15
    for limit in (3.0, 4.0, 6.0, 8.0, 10.0):
        assert result.median_ratio(limit) < 0.05
    # Monotone trend across the boundary.
    assert result.median_ratio(0.5) > result.median_ratio(2.0)
