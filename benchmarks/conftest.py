"""Shared fixtures for the figure-regeneration benchmarks.

One session-scoped :class:`~repro.experiments.common.Workbench` feeds
every figure bench, so the expensive dataset generations run once.
Rendered figures are written to ``benchmarks/output/`` and printed.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.common import Workbench

OUTPUT_DIR = pathlib.Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def workbench() -> Workbench:
    return Workbench(
        seed=2016,
        unlimited_sessions=90,
        sweep_sessions_per_limit=6,
        sweep_limits_mbps=(0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 100.0),
        crawl_world_concurrent=900,
        deep_crawls=4,
        targeted_duration_s=2400.0,
    )


@pytest.fixture(scope="session")
def figure_sink():
    """Persist each regenerated figure under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def write(name: str, rendered: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(rendered + "\n", encoding="utf-8")
        print(f"\n--- {name} ---\n{rendered}\n")

    return write
