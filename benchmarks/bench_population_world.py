"""Wall-clock benchmark: population-scale worlds vs per-session studies.

Advances a full mesoscale world (:mod:`repro.world` via
:class:`~repro.core.popstudy.PopulationStudy`) at the requested viewer
count, verifies the shard/worker invariance the layer advertises on a
small world, and writes throughput plus peak RSS to
``benchmarks/BENCH_population_world.json``.

The headline number is **viewers per second**: cohort dynamics advance
every viewer in closed form, so the rate should sit orders of magnitude
above ``sessions_per_sec_serial`` in ``BENCH_parallel_study.json`` (the
full-fidelity per-session rate).  The report records that ratio as
``viewers_per_session_rate`` — the bar in ROADMAP.md is >= 100x.

Numbers are only meaningful relative to the recorded ``cpu_count``: on a
single-core container extra workers measure dispatch overhead, not
speedup.

Usage::

    PYTHONPATH=src python benchmarks/bench_population_world.py \\
        [--viewers 1000000] [--workers 1] [--quick]
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import pickle
import resource
import time

from repro.core.config import StudyConfig
from repro.core.popstudy import PopulationStudy
from repro.world.popularity import PopulationParameters

DEFAULT_OUT = pathlib.Path(__file__).parent / "BENCH_population_world.json"
PARALLEL_BENCH = pathlib.Path(__file__).parent / "BENCH_parallel_study.json"


def run_world(seed, viewers, workers, sample_budget, shards=None):
    """One full population study; returns (result, seconds)."""
    study = PopulationStudy(
        StudyConfig(seed=seed, workers=workers),
        PopulationParameters(viewers=viewers, sample_budget=sample_budget),
    )
    started = time.perf_counter()
    result = study.run(shards=shards)
    elapsed = time.perf_counter() - started
    return result, elapsed


def results_identical(a, b):
    """Bit-identity across shard/worker counts.

    Sessions compare pickled one by one: whole-list pickles differ by
    memoized shared references between in-process and cross-process
    results even when every value is equal.
    """
    return (
        len(a.sampled.sessions) == len(b.sampled.sessions)
        and all(
            pickle.dumps(sa) == pickle.dumps(sb)
            for sa, sb in zip(a.sampled.sessions, b.sampled.sessions)
        )
        and a.sampled.avatar_bytes == b.sampled.avatar_bytes
        and a.sampled.down_bytes == b.sampled.down_bytes
        and pickle.dumps(a.world.totals) == pickle.dumps(b.world.totals)
    )


def session_rate_baseline():
    """Full-fidelity sessions/sec from the parallel-study benchmark."""
    if not PARALLEL_BENCH.exists():
        return None
    try:
        report = json.loads(PARALLEL_BENCH.read_text(encoding="utf-8"))
    except (ValueError, OSError):
        return None
    trajectory = report.get("trajectory") or []
    for entry in reversed(trajectory):
        rate = entry.get("sessions_per_sec_serial")
        if rate:
            return float(rate)
    return None


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--viewers", type=int, default=1_000_000,
                        help="concurrent viewers in the benchmark world")
    parser.add_argument("--workers", type=int, default=1,
                        help="worker processes for the sharded world")
    parser.add_argument("--sample-budget", type=int, default=48,
                        help="expected full-fidelity sessions to promote")
    parser.add_argument("--quick", action="store_true",
                        help="tiny workload for CI smoke (50k viewers)")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--out", type=pathlib.Path, default=DEFAULT_OUT)
    args = parser.parse_args()

    viewers = 50_000 if args.quick else args.viewers
    config = {
        "seed": args.seed,
        "viewers": viewers,
        "workers": args.workers,
        "sample_budget": args.sample_budget,
        "quick": args.quick,
    }
    existing = None
    if args.out.exists():
        try:
            existing = json.loads(args.out.read_text(encoding="utf-8"))
        except (ValueError, OSError):
            existing = None

    # ---- invariance cross-check on a small world -----------------------
    # Shard count and worker count must both be invisible in the output;
    # checked here (cheaply) on every benchmark run so a regression can
    # never publish a throughput number for a broken world.
    check_a, _ = run_world(args.seed, 4_000, workers=1,
                           sample_budget=8, shards=1)
    check_b, _ = run_world(args.seed, 4_000, workers=1,
                           sample_budget=8, shards=7)
    check_c, _ = run_world(args.seed, 4_000, workers=2,
                           sample_budget=8, shards=5)
    invariant = (results_identical(check_a, check_b)
                 and results_identical(check_a, check_c))
    print(f"shard/worker invariance (4k viewers): {invariant}")
    if not invariant:
        raise SystemExit("sharded world diverged across shard/worker counts")

    # ---- the measured world --------------------------------------------
    result, elapsed = run_world(args.seed, viewers, args.workers,
                                args.sample_budget)
    realized = result.population.total_viewers
    sampled = len(result.sampled.sessions)
    viewers_per_sec = realized / elapsed
    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    print(f"{realized} viewers / {result.population.n_broadcasters} "
          f"broadcasters / {result.world.cohorts} cohorts in {elapsed:.2f}s "
          f"({viewers_per_sec:.0f} viewers/s, {sampled} sampled sessions, "
          f"peak RSS {peak_rss_kb} kB)")

    session_rate = session_rate_baseline()
    rate_ratio = None
    if session_rate:
        rate_ratio = viewers_per_sec / session_rate
        print(f"vs full-fidelity {session_rate} sessions/s: "
              f"x{rate_ratio:.0f} more viewers/s")

    entry = {
        "label": "current",
        "config": config,
        "seconds": round(elapsed, 3),
        "viewers": realized,
        "broadcasters": result.population.n_broadcasters,
        "cohorts": result.world.cohorts,
        "viewers_per_sec": round(viewers_per_sec, 1),
        "sampled_sessions": sampled,
        "sampled_sessions_per_sec": round(sampled / elapsed, 3),
        "cpu_count": os.cpu_count(),
        "peak_rss_kb": peak_rss_kb,
    }
    if rate_ratio is not None:
        entry["session_rate_baseline"] = session_rate
        entry["viewers_per_session_rate"] = round(rate_ratio, 1)

    trajectory = list(existing.get("trajectory", [])) if existing else []
    comparable = [prior for prior in trajectory
                  if prior.get("config") == config]
    if comparable:
        before = comparable[-1]["viewers_per_sec"]
        entry["speedup_vs_baseline"] = round(
            entry["viewers_per_sec"] / before, 3)
        print(f"viewers/sec: {before} -> {entry['viewers_per_sec']} "
              f"(x{entry['speedup_vs_baseline']})")
    trajectory.append(entry)

    report = {
        "benchmark": "population_world",
        "config": config,
        "cpu_count": os.cpu_count(),
        "peak_rss_kb": peak_rss_kb,
        "invariance_checked": invariant,
        "run": entry,
        "trajectory": trajectory,
    }
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {args.out}")


if __name__ == "__main__":
    main()
