"""Figure 4: join time and playback latency vs bandwidth limit."""

from repro.experiments import fig4_latency


def test_bench_fig4(benchmark, workbench, figure_sink):
    result = benchmark.pedantic(
        fig4_latency.run, args=(workbench,), rounds=1, iterations=1
    )
    figure_sink("fig4_latency", result.render())

    # Join time grows dramatically when bandwidth drops to 2 Mbps and
    # below (paper's phrasing) — compare 0.5 against the unlimited case.
    assert result.median_join(0.5) > 2.5 * result.median_join(100.0)
    assert result.median_join(100.0) < 4.0

    # Playback latency: roughly a few seconds when unlimited.
    assert 1.0 < result.median_latency(100.0) < 6.0
    # And inflated under the tightest limit.
    assert result.median_latency(0.5) > 2 * result.median_latency(100.0)

    # Both sweeps cover every limit.
    assert set(result.join_by_limit) == set(result.latency_by_limit)
