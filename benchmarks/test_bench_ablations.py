"""Ablations of the design choices DESIGN.md calls out.

* RTMP buffer sizing — the latency/stall trade-off behind the paper's
  "buffer sizing strategy may cause the stall difference" hypothesis;
* the HLS viewer threshold — delivery latency vs stall rate across the
  protocol-selection boundary;
* avatar caching — the paper's proposed chat-energy mitigation;
* crawl zoom depth — discovery completeness vs crawl duration.
"""

import random

import pytest

from repro.analysis.charts import render_table
from repro.core.config import StudyConfig
from repro.core.study import AutomatedViewingStudy
from repro.crawler.client import CrawlHarness
from repro.crawler.deep import DeepCrawler
from repro.experiments import sec51_chat
from repro.media.frames import EncodedFrame
from repro.netsim.connection import Connection
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.player.rtmp_player import RtmpPlayer
from repro.protocols.rtmp import RtmpPushSession
from repro.service.broadcast import sample_broadcast
from repro.service.delivery import LiveSourceDriver, RtmpDelivery, UplinkModel
from repro.service.geo import POPULATION_CENTERS, GeoPoint
from repro.util.units import MBPS


def _rtmp_run(start_threshold, rebuffer_threshold, seed):
    """One 60s RTMP reception with a parametrized buffer; returns
    (stall_count, mean playback latency)."""
    loop = EventLoop()
    net = Network(loop)
    server, phone = net.host("ingest"), net.host("phone")
    net.duplex(server, phone, rate_bps=50 * MBPS, delay_s=0.03)
    fwd, rev = net.duplex_paths("ingest", "phone")
    player = RtmpPlayer(
        loop, broadcast_start=-300.0,
        start_threshold_s=start_threshold,
        rebuffer_threshold_s=rebuffer_threshold,
    )
    conn = Connection(loop, fwd, rev, on_message=player.on_message)
    broadcast = sample_broadcast(random.Random(seed), 0.0, GeoPoint(40, -74),
                                 POPULATION_CENTERS[0])
    broadcast.duration_s = 3600.0
    broadcast.mean_viewers = 10.0
    driver = LiveSourceDriver(
        loop, broadcast, age_at_join=300.0, horizon_s=65.0,
        generate_from=297.0,
        uplink=UplinkModel(outage_rate_per_s=0.02),  # glitchy uplink
    )
    delivery = RtmpDelivery(RtmpPushSession(conn), driver)
    driver.start()
    delivery.start()
    loop.run_until(60.0)
    report = player.finalize(60.0)
    return report.stall_count, report.mean_playback_latency_s or 0.0


def test_bench_ablation_buffer(benchmark, figure_sink):
    """Bigger buffers: fewer stalls, more latency."""

    def run():
        rows = []
        for start, rebuffer in ((0.8, 0.5), (1.8, 1.0), (4.5, 3.0), (9.0, 6.0)):
            stalls, latencies = [], []
            for seed in range(12):
                s, l = _rtmp_run(start, rebuffer, seed)
                stalls.append(s)
                latencies.append(l)
            rows.append((start, rebuffer,
                         sum(stalls) / len(stalls),
                         sum(latencies) / len(latencies)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = render_table(
        ["start buffer (s)", "rebuffer (s)", "mean stalls", "mean latency (s)"],
        [[f"{a:g}", f"{b:g}", f"{c:.2f}", f"{d:.2f}"] for a, b, c, d in rows],
    )
    figure_sink("ablation_buffer", rendered)
    # Monotone trade-off: the largest buffer stalls least but is slowest.
    assert rows[-1][2] <= rows[0][2]
    assert rows[-1][3] > rows[0][3]
    assert rows[0][2] > 0  # the glitchy uplink does cause stalls


def test_bench_ablation_hls_threshold(benchmark, figure_sink):
    """Lowering the HLS boundary trades delivery latency for stability."""

    def run():
        rows = []
        for threshold in (5.0, 100.0, 100000.0):
            config = StudyConfig(seed=31, hls_viewer_threshold=threshold)
            study = AutomatedViewingStudy(config)
            ds = study.run_batch(16)
            hls_share = len(ds.by_protocol("hls")) / len(ds.sessions)
            lat = [s.delivery_latency_s for s in ds.sessions
                   if s.delivery_latency_s is not None]
            stallers = sum(1 for s in ds.sessions if s.stall_count > 0)
            rows.append((threshold, hls_share,
                         sum(lat) / len(lat), stallers / len(ds.sessions)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = render_table(
        ["HLS threshold (viewers)", "HLS share", "mean delivery lat (s)",
         "stalling sessions"],
        [[f"{t:g}", f"{s:.2f}", f"{l:.2f}", f"{x:.2f}"] for t, s, l, x in rows],
    )
    figure_sink("ablation_hls_threshold", rendered)
    # threshold 5 -> mostly HLS (only near-empty broadcasts stay RTMP);
    # huge threshold -> all RTMP.
    assert rows[0][1] > 0.6
    assert rows[2][1] == 0.0
    # Delivery latency rises as HLS share rises.
    assert rows[0][2] > rows[2][2]


def test_bench_ablation_avatar_cache(benchmark, figure_sink):
    result = benchmark.pedantic(sec51_chat.run, kwargs={"seed": 77},
                                rounds=1, iterations=1)
    figure_sink("ablation_avatar_cache", result.render())
    # The paper's proposed mitigation works: caching removes most of the
    # chat-on traffic overhead.
    overhead_uncached = result.chat_on_bps - result.chat_off_bps
    overhead_cached = result.chat_on_cached_bps - result.chat_off_bps
    assert overhead_cached < 0.45 * overhead_uncached


def test_bench_ablation_crawl_depth(benchmark, figure_sink):
    """Deeper zoom finds more broadcasts but takes longer."""

    def run():
        rows = []
        for depth in (1, 3, 5):
            harness = CrawlHarness(seed=55, mean_concurrent=900)
            crawler = DeepCrawler(harness.clients[0], max_depth=depth)
            crawler.start()
            harness.run_until(3600.0)
            rows.append((depth, len(crawler.result.discovered),
                         crawler.result.duration_s))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    rendered = render_table(
        ["max zoom depth", "broadcasts found", "crawl duration (s)"],
        [[d, n, f"{t:.0f}"] for d, n, t in rows],
    )
    figure_sink("ablation_crawl_depth", rendered)
    assert rows[2][1] > rows[0][1]          # deeper finds more
    assert rows[2][2] > rows[0][2]          # and takes longer
