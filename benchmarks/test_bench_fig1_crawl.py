"""Figure 1: cumulative broadcasts discovered vs. areas queried."""

from repro.experiments import fig1_crawl


def test_bench_fig1(benchmark, workbench, figure_sink):
    result = benchmark.pedantic(
        fig1_crawl.run, args=(workbench,), rounds=1, iterations=1
    )
    figure_sink("fig1_crawl", result.render())

    assert len(result.curves_absolute) == 4
    for index, total in enumerate(result.totals):
        # Each deep crawl finds a substantial population (the paper's
        # crawls find 1K-4K at full service scale).
        assert total > 200
        # Discovery curves are monotone and end at the total.
        counts = [c for _, c in result.curves_absolute[index]]
        assert counts == sorted(counts)
        assert counts[-1] == total
        # Fig 1(b): half of the areas hold >= ~80% of the broadcasts.
        assert result.share_at_half_areas(index) >= 75.0
        # Pacing keeps a crawl in the minutes range.
        assert result.durations_s[index] > 60.0
