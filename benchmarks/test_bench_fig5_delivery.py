"""Figure 5: video delivery latency, HLS vs RTMP (NTP-timestamp method)."""

from repro.experiments import fig5_delivery


def test_bench_fig5(benchmark, workbench, figure_sink):
    result = benchmark.pedantic(
        fig5_delivery.run, args=(workbench,), rounds=1, iterations=1
    )
    figure_sink("fig5_delivery", result.render())

    # RTMP delivery happens in less than 300 ms for ~75% of broadcasts.
    assert result.rtmp_p75() < 0.45
    # HLS delivery latency is over 5 s on average (vs RTMP's sub-second).
    assert result.hls_mean() > 4.0
    assert result.hls_mean() > 10 * result.rtmp_p75()
    # The two CDFs separate completely in the 1 s region.
    assert result.rtmp_cdf()(1.0) > 0.9
    assert result.hls_cdf()(1.0) < 0.1
