"""Figure 6: bitrate CDFs per protocol and the QP-vs-bitrate scatter."""

from repro.experiments import fig6_quality


def test_bench_fig6(benchmark, workbench, figure_sink):
    result = benchmark.pedantic(
        fig6_quality.run, args=(workbench,), rounds=1, iterations=1
    )
    figure_sink("fig6_quality", result.render())

    # The bulk of the bitrates sit in the paper's 200-400 kbps band.
    assert result.typical_band_share() > 0.6

    # The protocols' distributions are very similar in the bulk...
    rtmp_median = result.rtmp_cdf().quantile(0.5)
    hls_median = result.hls_cdf().quantile(0.5)
    assert abs(rtmp_median - hls_median) < 100e3

    # Fig 6(b): at a fixed QP the bitrate spans a wide range (content
    # variability), here at least ~2x.
    assert result.qp_spread_at_fixed_quality() > 1.8

    # All QP values are valid H.264 QPs.
    assert all(10 <= q <= 51 for _, q in result.qp_points)
