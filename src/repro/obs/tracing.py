"""Sim-time tracing spans.

A span names an interval of **simulated** time (``sim_start`` →
``sim_end``) and also carries the wall-clock cost of computing it.  Spans
nest: :meth:`Tracer.begin`/:meth:`Span.end` maintain an explicit stack,
and :meth:`Tracer.record` appends an already-bounded child span (how the
session driver reconstructs join → playback → stalls → teardown from a
playback report after the fact).

The trace serialises to JSONL, one span per line, in completion order.
Wall-clock readings never feed back into the simulation — they are
recorded, not consulted — so tracing cannot perturb event ordering.
"""

from __future__ import annotations

import itertools
import json
import time
from typing import Any, Dict, IO, List, Optional


class Span:
    """One named interval of simulated time."""

    __slots__ = ("name", "span_id", "parent_id", "sim_start", "sim_end",
                 "wall_start", "wall_end", "attrs")

    def __init__(
        self,
        name: str,
        span_id: int,
        parent_id: Optional[int],
        sim_start: float,
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.span_id = span_id
        self.parent_id = parent_id
        self.sim_start = sim_start
        self.sim_end: Optional[float] = None
        self.wall_start = time.perf_counter()
        self.wall_end: Optional[float] = None
        self.attrs = attrs

    @property
    def sim_duration(self) -> Optional[float]:
        if self.sim_end is None:
            return None
        return self.sim_end - self.sim_start

    @property
    def wall_duration(self) -> Optional[float]:
        if self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "sim_start": self.sim_start,
            "sim_end": self.sim_end,
            "sim_duration": self.sim_duration,
            "wall_duration": self.wall_duration,
            "attrs": self.attrs,
        }


class Tracer:
    """Collects spans; open spans form a stack for parent attribution."""

    def __init__(self, max_spans: int = 1_000_000) -> None:
        self.spans: List[Span] = []  # completed, in completion order
        self.dropped = 0
        self._max_spans = max_spans
        self._stack: List[Span] = []
        self._ids = itertools.count(1)

    # ------------------------------------------------------------- live spans

    def begin(self, name: str, sim_time: float, **attrs: Any) -> Span:
        """Open a span at simulated time ``sim_time``; it becomes the
        parent of spans begun or recorded before its :meth:`end`."""
        parent = self._stack[-1].span_id if self._stack else None
        span = Span(name, next(self._ids), parent, sim_time, attrs)
        self._stack.append(span)
        return span

    def end(self, span: Span, sim_time: float) -> Span:
        """Close ``span`` at simulated time ``sim_time``."""
        span.sim_end = sim_time
        span.wall_end = time.perf_counter()
        if span in self._stack:
            self._stack.remove(span)
        self._finish(span)
        return span

    # ------------------------------------------------------ retroactive spans

    def record(
        self,
        name: str,
        sim_start: float,
        sim_end: float,
        parent: Optional[Span] = None,
        **attrs: Any,
    ) -> Span:
        """Append an already-bounded span (e.g. reconstructed from a
        report).  Parent defaults to the innermost open span."""
        parent_id = (parent.span_id if parent is not None
                     else (self._stack[-1].span_id if self._stack else None))
        span = Span(name, next(self._ids), parent_id, sim_start, attrs)
        span.sim_end = sim_end
        span.wall_end = span.wall_start
        self._finish(span)
        return span

    def _finish(self, span: Span) -> None:
        if len(self.spans) >= self._max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    # --------------------------------------------------------------- export

    def to_jsonl(self) -> str:
        """The whole trace as JSON Lines (one span per line)."""
        return "\n".join(
            json.dumps(span.to_dict(), separators=(",", ":"))
            for span in self.spans
        )

    def write_jsonl(self, sink: IO[str]) -> int:
        """Write the trace to an open text file; returns spans written."""
        for span in self.spans:
            sink.write(json.dumps(span.to_dict(), separators=(",", ":")))
            sink.write("\n")
        return len(self.spans)

    def find(self, name: str) -> List[Span]:
        """All completed spans with the given name (test helper)."""
        return [span for span in self.spans if span.name == name]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.span_id]
