"""``repro.obs`` — simulation-wide telemetry.

One :class:`Telemetry` object bundles the instruments:

* :class:`~repro.obs.metrics.MetricsRegistry` — labeled counters,
  gauges, and streaming histograms;
* :class:`~repro.obs.tracing.Tracer` — nested sim-time spans with
  wall-clock cost, exported as JSONL;
* :class:`~repro.obs.profiler.EventLoopProfiler` — per-callback-site
  event counts and wall-time attribution across every event loop;
* :class:`~repro.obs.causes.CauseCollector` — causal attribution of
  QoE-affecting delay (stall forensics);
* :class:`~repro.obs.health.HealthMonitor` — online invariant checks
  counted into ``health_violations_total``.

Instrumented code asks for the *active* telemetry and bails out on one
attribute check when it is disabled::

    from repro import obs
    telemetry = obs.active()
    if telemetry.enabled:
        telemetry.metrics.counter("player_stalls_total").inc()

Telemetry is **off by default**: :func:`active` returns a permanently
disabled singleton until :func:`activate` (or the :func:`session`
context manager, or a :class:`~repro.core.config.StudyConfig` with its
telemetry flags set) installs a live one.  None of the instruments
consume RNG or schedule events, so enabling them cannot change
simulation results — the determinism regression test holds the repo to
that.
"""

from __future__ import annotations

import contextlib
from typing import Iterator, Optional

from repro.obs.causes import AttributionRecord, CAUSES, CauseCollector
from repro.obs.health import HealthMonitor
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.profiler import EventLoopProfiler, callback_site
from repro.obs.tracing import Span, Tracer

__all__ = [
    "Counter", "Gauge", "Histogram", "MetricsRegistry", "DEFAULT_BUCKETS",
    "EventLoopProfiler", "callback_site", "Span", "Tracer",
    "AttributionRecord", "CAUSES", "CauseCollector", "HealthMonitor",
    "Telemetry", "active", "activate", "deactivate", "ensure_active",
    "session",
]


class Telemetry:
    """A live telemetry bundle.  ``enabled`` gates every instrument."""

    def __init__(
        self,
        metrics: bool = True,
        tracing: bool = True,
        profiling: bool = True,
        causes: bool = False,
        health: bool = False,
    ) -> None:
        self.enabled = True
        self.metrics_on = metrics
        self.tracing_on = tracing
        self.profiling_on = profiling
        self.causes_on = causes
        self.health_on = health
        self.metrics = MetricsRegistry()
        self.tracer = Tracer()
        self.profiler = EventLoopProfiler()
        self.causes = CauseCollector()
        self.health = HealthMonitor()
        if metrics:
            self._declare_core_series()

    def _declare_core_series(self) -> None:
        """Pre-register the headline series so every Prometheus dump
        names them (HELP/TYPE) even when a run never throttles, stalls,
        or crawls — absence of events should read as zero, not as a
        missing metric."""
        declare = self.metrics.declare
        declare("http_429_total", "counter", "Rate-limited responses")
        declare("api_throttled_total", "counter",
                "apiRequest commands answered 429")
        declare("netsim_link_queue_delay_seconds", "histogram",
                "Time spent queued behind earlier transmissions")
        declare("netsim_link_throttle_seconds_total", "counter",
                "Token-bucket shaping delay")
        declare("player_stalls_total", "counter",
                "Playback underruns (stall begins)")
        declare("player_stall_seconds", "histogram",
                "Stall durations")
        declare("crawl_areas_queried_total", "counter",
                "Map areas queried by crawlers")
        declare("crawl_broadcasts_discovered_total", "counter",
                "Distinct broadcasts discovered by crawlers")

    def loop_profiler(self) -> Optional[EventLoopProfiler]:
        """The shared profiler for a newly built event loop (or None)."""
        if self.enabled and self.profiling_on:
            return self.profiler
        return None


class _DisabledTelemetry(Telemetry):
    """The default: every gate closed, instruments inert placeholders."""

    def __init__(self) -> None:
        super().__init__(metrics=False, tracing=False, profiling=False)
        self.enabled = False


_DISABLED = _DisabledTelemetry()
_active: Telemetry = _DISABLED


def active() -> Telemetry:
    """The currently active telemetry (a disabled singleton by default)."""
    return _active


def activate(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Install ``telemetry`` (or a fresh fully-enabled one) as active."""
    global _active
    _active = telemetry if telemetry is not None else Telemetry()
    return _active


def deactivate() -> None:
    """Restore the disabled default."""
    global _active
    _active = _DISABLED


def ensure_active(
    metrics: bool = False,
    tracing: bool = False,
    profiling: Optional[bool] = None,
    causes: bool = False,
    health: bool = False,
) -> Telemetry:
    """Activate telemetry if any flag asks for it and none is active yet.

    This is how :class:`~repro.core.config.StudyConfig` opt-in flags take
    effect without every constructor threading a telemetry handle.
    """
    if not (metrics or tracing or causes or health):
        return _active
    if not _active.enabled:
        activate(Telemetry(
            metrics=metrics,
            tracing=tracing,
            profiling=metrics if profiling is None else profiling,
            causes=causes,
            health=health,
        ))
    return _active


@contextlib.contextmanager
def session(
    metrics: bool = True,
    tracing: bool = True,
    profiling: bool = True,
    causes: bool = False,
    health: bool = False,
) -> Iterator[Telemetry]:
    """Scoped activation: install a fresh telemetry, restore on exit."""
    previous = _active
    telemetry = Telemetry(metrics=metrics, tracing=tracing,
                          profiling=profiling, causes=causes, health=health)
    activate(telemetry)
    try:
        yield telemetry
    finally:
        activate(previous) if previous.enabled else deactivate()
