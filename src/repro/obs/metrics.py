"""The metrics registry: counters, gauges, and streaming histograms.

Prometheus-shaped but zero-dependency: a registry holds metric
*families* (one per name), each family holds one child per label set.
Labels are plain keyword arguments at the call site::

    registry.counter("http_responses_total", status="429").inc()
    registry.histogram("session_join_seconds", protocol="rtmp").observe(2.4)

Histograms keep fixed cumulative buckets (for the Prometheus dump) plus
the raw values up to a cap, so quantiles are **exact** on small inputs
and bucket-interpolated beyond the cap.  Nothing here consumes RNG or
touches the event loop — instrumentation cannot perturb a simulation.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

#: Default histogram bucket upper bounds (seconds-flavoured, exponential).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0, 30.0, 60.0, 120.0, 300.0,
)

#: Raw values kept per histogram child before falling back to buckets.
DEFAULT_VALUE_CAP = 10_000

LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class Counter:
    """Monotonically increasing value."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        self.value += amount


class Gauge:
    """A value that can move both ways, with a high-water mark."""

    __slots__ = ("value", "high_water")

    def __init__(self) -> None:
        self.value = 0.0
        self.high_water = 0.0

    def set(self, value: float) -> None:
        self.value = value
        if value > self.high_water:
            self.high_water = value

    def inc(self, amount: float = 1.0) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class Histogram:
    """Streaming histogram: cumulative fixed buckets + bounded raw values.

    Quantiles are nearest-rank exact while fewer than ``value_cap``
    observations have been made (the determinism tests rely on this);
    afterwards they fall back to linear interpolation inside the fixed
    buckets.
    """

    __slots__ = ("buckets", "bucket_counts", "count", "sum", "min", "max",
                 "_values", "_value_cap")

    def __init__(
        self,
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        value_cap: int = DEFAULT_VALUE_CAP,
    ) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(buckets))
        if not self.buckets:
            raise ValueError("histogram needs at least one bucket bound")
        self.bucket_counts: List[int] = [0] * (len(self.buckets) + 1)  # +inf
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf
        self._values: Optional[List[float]] = []
        self._value_cap = value_cap

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.bucket_counts[bisect.bisect_left(self.buckets, value)] += 1
        if self._values is not None:
            if len(self._values) < self._value_cap:
                bisect.insort(self._values, value)
            else:
                self._values = None  # too big: buckets only from here on

    @property
    def exact(self) -> bool:
        """True while quantiles are computed from the raw values."""
        return self._values is not None

    @property
    def values_dropped(self) -> int:
        """Raw samples unavailable for exact quantiles.

        Zero while under the value cap; once the cap is exceeded the
        retained samples are discarded and every observation is
        bucket-only, so the full count reads as dropped — exporters
        surface this so truncated telemetry is never mistaken for
        complete telemetry.
        """
        return 0 if self._values is not None else self.count

    def quantile(self, q: float) -> Optional[float]:
        """Nearest-rank quantile (exact) or bucket-interpolated estimate."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        if self.count == 0:
            return None
        if self._values is not None:
            rank = max(1, math.ceil(q * len(self._values)))
            return self._values[rank - 1]
        target = q * self.count
        cumulative = 0
        lower = self.min
        for index, bucket_count in enumerate(self.bucket_counts):
            upper = (self.buckets[index] if index < len(self.buckets)
                     else self.max)
            if bucket_count:
                cumulative += bucket_count
                if cumulative >= target:
                    within = 1.0 - (cumulative - target) / bucket_count
                    return lower + (upper - lower) * within
                lower = upper
        return self.max

    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children (label sets) of one metric name."""

    def __init__(self, name: str, kind: str, help: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS) -> None:
        self.name = name
        self.kind = kind
        self.help = help
        self.buckets = tuple(buckets)
        self.children: Dict[LabelKey, object] = {}

    def child(self, labels: Dict[str, object]) -> object:
        key = _label_key(labels)
        existing = self.children.get(key)
        if existing is None:
            if self.kind == "histogram":
                existing = Histogram(buckets=self.buckets)
            else:
                existing = _KINDS[self.kind]()
            self.children[key] = existing
        return existing


class MetricsRegistry:
    """Names and hands out metric families; the exporters walk it."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}

    def _family(self, name: str, kind: str, help: str,
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        family = self._families.get(name)
        if family is None:
            family = MetricFamily(name, kind, help, buckets)
            self._families[name] = family
        elif family.kind != kind:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind}, not {kind}"
            )
        if help and not family.help:
            family.help = help
        return family

    # --------------------------------------------------------------- factories

    def counter(self, name: str, help: str = "", **labels: object) -> Counter:
        return self._family(name, "counter", help).child(labels)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", **labels: object) -> Gauge:
        return self._family(name, "gauge", help).child(labels)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Sequence[float] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        return self._family(name, "histogram", help, buckets).child(labels)  # type: ignore[return-value]

    def declare(self, name: str, kind: str, help: str = "",
                buckets: Sequence[float] = DEFAULT_BUCKETS) -> MetricFamily:
        """Register a family without creating a child, so the series
        shows up in exports (HELP/TYPE at least) even before — or
        without — its first event."""
        if kind not in _KINDS:
            raise ValueError(f"unknown metric kind {kind!r}")
        return self._family(name, kind, help, buckets)

    # ------------------------------------------------------------ snapshots

    def snapshot(self) -> dict:
        """A plain-data, picklable dump of every family and child.

        The payload crosses process boundaries (parallel study workers
        ship their registries back to the parent), so it contains only
        builtins: lists, dicts, strings, numbers.
        """
        families = []
        for family in self.families():
            children = []
            for key in sorted(family.children):
                child = family.children[key]
                entry: Dict[str, object] = {"labels": [list(pair) for pair in key]}
                if family.kind == "counter":
                    entry["value"] = child.value
                elif family.kind == "gauge":
                    entry["value"] = child.value
                    entry["high_water"] = child.high_water
                else:
                    entry["count"] = child.count
                    entry["sum"] = child.sum
                    entry["min"] = child.min
                    entry["max"] = child.max
                    entry["bucket_counts"] = list(child.bucket_counts)
                    entry["values"] = (
                        None if child._values is None else list(child._values)
                    )
                children.append(entry)
            families.append({
                "name": family.name,
                "kind": family.kind,
                "help": family.help,
                "buckets": list(family.buckets),
                "children": children,
            })
        return {"families": families}

    def merge_from(self, snapshot: dict) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        Merge semantics are associative and commutative, so per-worker
        snapshots can be folded in any grouping and produce the same
        registry: counters and histograms add, gauges keep the maximum
        of ``value`` and ``high_water`` (workers report progress
        concurrently, so "furthest along" is the only order-free
        reading).  A family already registered under a different kind
        or with different histogram buckets raises :class:`ValueError`.
        """
        for family_data in snapshot.get("families", []):
            family = self._family(
                family_data["name"], family_data["kind"],
                family_data.get("help", ""),
                tuple(family_data.get("buckets", DEFAULT_BUCKETS)),
            )
            if (family.kind == "histogram"
                    and tuple(sorted(family_data["buckets"])) != family.buckets):
                raise ValueError(
                    f"histogram {family.name!r}: snapshot bucket layout "
                    f"does not match the registered family"
                )
            for entry in family_data["children"]:
                labels = {k: v for k, v in entry["labels"]}
                child = family.child(labels)
                if family.kind == "counter":
                    child.inc(entry["value"])
                elif family.kind == "gauge":
                    if entry["value"] > child.value:
                        child.value = entry["value"]
                    if entry["high_water"] > child.high_water:
                        child.high_water = entry["high_water"]
                else:
                    self._merge_histogram(family, child, entry)

    @staticmethod
    def _merge_histogram(family: MetricFamily, child: Histogram, entry: dict) -> None:
        incoming_counts = entry["bucket_counts"]
        if len(incoming_counts) != len(child.bucket_counts):
            raise ValueError(
                f"histogram {family.name!r}: snapshot bucket layout does "
                f"not match the registered family"
            )
        child.count += entry["count"]
        child.sum += entry["sum"]
        child.min = min(child.min, entry["min"])
        child.max = max(child.max, entry["max"])
        for index, bucket_count in enumerate(incoming_counts):
            child.bucket_counts[index] += bucket_count
        incoming_values = entry["values"]
        if child._values is None or incoming_values is None:
            child._values = None
        elif len(child._values) + len(incoming_values) > child._value_cap:
            child._values = None  # past the cap: buckets only, like observe()
        else:
            merged = child._values + list(incoming_values)
            merged.sort()
            child._values = merged

    # ------------------------------------------------------------------- walk

    def families(self) -> List[MetricFamily]:
        return [self._families[name] for name in sorted(self._families)]

    def collect(self) -> Iterator[Tuple[MetricFamily, LabelKey, object]]:
        """Yield (family, label_key, child) over every child, sorted."""
        for family in self.families():
            for key in sorted(family.children):
                yield family, key, family.children[key]

    def get(self, name: str, **labels: object) -> Optional[object]:
        """Look up an existing child without creating it."""
        family = self._families.get(name)
        if family is None:
            return None
        return family.children.get(_label_key(labels))
