"""Online invariant monitors (``repro.obs.health``).

The property suite (``tests/test_properties.py``) proves invariants on
ten seeds; production-scale runs sweep thousands.  ``HealthMonitor``
promotes the cheap invariants to runtime checks evaluated inside the
simulation — buffer level never negative, stall time bounded by the
watch duration, link utilization at most 1.0, retry counts bounded by
their governing policy, QoE accounting consistent — and counts
violations per invariant instead of failing silently.

Checks run only behind the ``telemetry.enabled and telemetry.health_on``
guard, never consume RNG, and never schedule events, so enabling the
monitor cannot change simulation results.  Counts are integers, which
makes worker-snapshot merging exact for any chunking.
"""

from __future__ import annotations

from typing import Dict, List

__all__ = ["HealthMonitor"]


class HealthMonitor:
    """Counts invariant checks and violations; keeps a few samples."""

    #: At most this many violation details are retained as samples.
    MAX_SAMPLES = 25

    def __init__(self) -> None:
        self.checks_total = 0
        self.violations: Dict[str, int] = {}
        self.samples: List[str] = []

    def check(self, invariant: str, ok: bool, detail: str = "") -> bool:
        """Record one evaluation of ``invariant``; returns ``ok``."""
        self.checks_total += 1
        if not ok:
            self.violations[invariant] = self.violations.get(invariant, 0) + 1
            if len(self.samples) < self.MAX_SAMPLES:
                self.samples.append(
                    f"{invariant}: {detail}" if detail else invariant
                )
        return ok

    @property
    def violation_count(self) -> int:
        total = 0
        for invariant in sorted(self.violations):
            total += self.violations[invariant]
        return total

    def ok(self) -> bool:
        return not self.violations

    # ----------------------------------------------------------- snapshot

    def snapshot(self) -> dict:
        return {
            "checks_total": self.checks_total,
            "violations": dict(self.violations),
            "samples": list(self.samples),
        }

    def merge_from(self, snapshot: dict) -> None:
        self.checks_total += snapshot.get("checks_total", 0)
        for invariant, count in snapshot.get("violations", {}).items():
            self.violations[invariant] = (
                self.violations.get(invariant, 0) + count
            )
        for sample in snapshot.get("samples", []):
            if len(self.samples) < self.MAX_SAMPLES:
                self.samples.append(sample)
