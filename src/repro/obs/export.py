"""Telemetry exporters: Prometheus text dump, JSONL trace, ASCII summary.

The Prometheus dump follows the text exposition format (``# HELP`` /
``# TYPE`` headers, ``_bucket{le=...}`` / ``_sum`` / ``_count`` series
for histograms) so the output can be diffed, grepped, or actually
scraped.  The end-of-run summary reuses the repo's own
:func:`repro.util.tables.render_table` so telemetry renders like every
other figure (``obs`` may import only ``util``, so the renderer lives
there and :mod:`repro.analysis.charts` re-exports it).
"""

from __future__ import annotations

import math
from typing import IO, List, Sequence

from repro.util.tables import render_table
from repro.obs import Telemetry
from repro.obs.metrics import Counter, Gauge, Histogram, LabelKey


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_str(key: LabelKey, extra: Sequence[str] = ()) -> str:
    parts = [f'{name}="{value}"' for name, value in key]
    parts.extend(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def render_prometheus(telemetry: Telemetry) -> str:
    """The whole registry (plus the event-loop profile) as Prometheus
    text exposition format."""
    lines: List[str] = []
    for family in telemetry.metrics.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key in sorted(family.children):
            child = family.children[key]
            if isinstance(child, (Counter, Gauge)):
                lines.append(
                    f"{family.name}{_label_str(key)} {_format_value(child.value)}"
                )
            elif isinstance(child, Histogram):
                cumulative = 0
                for bound, count in zip(
                    list(child.buckets) + [math.inf], child.bucket_counts
                ):
                    cumulative += count
                    le = _label_str(key, (f'le="{_format_value(bound)}"',))
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                lines.append(
                    f"{family.name}_sum{_label_str(key)} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{_label_str(key)} {child.count}")
    # Event-loop profile as synthesized series.
    profiler = telemetry.profiler
    if profiler.sites:
        lines.append("# HELP eventloop_callbacks_total Fired callbacks per site")
        lines.append("# TYPE eventloop_callbacks_total counter")
        for site, count, _ in profiler.table():
            lines.append(f'eventloop_callbacks_total{{site="{site}"}} {count}')
        lines.append("# HELP eventloop_callback_wall_seconds_total Wall time per site")
        lines.append("# TYPE eventloop_callback_wall_seconds_total counter")
        for site, _, wall_s in profiler.table():
            lines.append(
                f'eventloop_callback_wall_seconds_total{{site="{site}"}} {wall_s:.6f}'
            )
        lines.append("# TYPE eventloop_queue_depth_high_water gauge")
        lines.append(
            f"eventloop_queue_depth_high_water {profiler.queue_depth_high_water}"
        )
    return "\n".join(lines) + ("\n" if lines else "")


def render_summary(telemetry: Telemetry) -> str:
    """End-of-run ASCII summary: metrics, quantiles, and the profile."""
    parts: List[str] = []

    scalar_rows = []
    histogram_rows = []
    for family, key, child in telemetry.metrics.collect():
        labels = ",".join(f"{k}={v}" for k, v in key) or "-"
        if isinstance(child, (Counter, Gauge)):
            scalar_rows.append(
                [family.name, family.kind, labels, f"{child.value:g}"]
            )
        elif isinstance(child, Histogram) and child.count:
            histogram_rows.append([
                family.name, labels, child.count,
                f"{child.mean():.4g}",
                f"{child.quantile(0.5):.4g}",
                f"{child.quantile(0.95):.4g}",
                f"{child.quantile(0.99):.4g}",
                f"{child.max:.4g}",
            ])
    if scalar_rows:
        parts.append("== metrics: counters & gauges ==")
        parts.append(render_table(["metric", "kind", "labels", "value"], scalar_rows))
    if histogram_rows:
        parts.append("")
        parts.append("== metrics: histograms ==")
        parts.append(render_table(
            ["metric", "labels", "n", "mean", "p50", "p95", "p99", "max"],
            histogram_rows,
        ))

    profiler = telemetry.profiler
    if profiler.sites:
        parts.append("")
        parts.append("== event-loop profile ==")
        total_wall = sum(wall for _, _, wall in profiler.table()) or 1.0
        profile_rows = [
            [site, count, f"{wall * 1e3:.2f}", f"{100.0 * wall / total_wall:.1f}%"]
            for site, count, wall in profiler.table()
        ]
        parts.append(render_table(
            ["callback site", "events", "wall ms", "share"], profile_rows
        ))
        parts.append(
            f"events profiled: {profiler.events_profiled}; "
            f"queue-depth high water: {profiler.queue_depth_high_water}"
        )

    tracer = telemetry.tracer
    if tracer.spans:
        parts.append("")
        parts.append("== trace ==")
        by_name: dict = {}
        for span in tracer.spans:
            agg = by_name.setdefault(span.name, [0, 0.0, 0.0])
            agg[0] += 1
            agg[1] += span.sim_duration or 0.0
            agg[2] += span.wall_duration or 0.0
        trace_rows = [
            [name, n, f"{sim_s:.3f}", f"{wall_s * 1e3:.2f}"]
            for name, (n, sim_s, wall_s) in sorted(by_name.items())
        ]
        parts.append(render_table(
            ["span", "n", "sim s (total)", "wall ms (total)"], trace_rows
        ))

    return "\n".join(parts) if parts else "(no telemetry recorded)"


def write_trace_jsonl(telemetry: Telemetry, sink: IO[str]) -> int:
    """Write the trace to an open text stream; returns spans written."""
    return telemetry.tracer.write_jsonl(sink)
