"""Telemetry exporters: Prometheus text dump, JSONL trace, ASCII summary.

The Prometheus dump follows the text exposition format (``# HELP`` /
``# TYPE`` headers, ``_bucket{le=...}`` / ``_sum`` / ``_count`` series
for histograms) so the output can be diffed, grepped, or actually
scraped.  The end-of-run summary reuses the repo's own
:func:`repro.util.tables.render_table` so telemetry renders like every
other figure (``obs`` may import only ``util``, so the renderer lives
there and :mod:`repro.analysis.charts` re-exports it).
"""

from __future__ import annotations

import json
import math
from typing import IO, Dict, List, Sequence

from repro.util.tables import render_table
from repro.obs import Telemetry
from repro.obs.causes import KIND_JOIN, KIND_STALL
from repro.obs.metrics import Counter, Gauge, Histogram, LabelKey


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus text exposition format
    (backslash, double quote, and line feed must be escaped)."""
    return (value.replace("\\", "\\\\")
                 .replace('"', '\\"')
                 .replace("\n", "\\n"))


def _label_str(key: LabelKey, extra: Sequence[str] = ()) -> str:
    parts = [f'{name}="{_escape_label_value(value)}"' for name, value in key]
    parts.extend(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _registry_lines(registry) -> List[str]:
    """One :class:`~repro.obs.metrics.MetricsRegistry` as Prometheus
    text-exposition lines (families plus the dropped-samples series)."""
    lines: List[str] = []
    for family in registry.families():
        if family.help:
            lines.append(f"# HELP {family.name} {family.help}")
        lines.append(f"# TYPE {family.name} {family.kind}")
        for key in sorted(family.children):
            child = family.children[key]
            if isinstance(child, (Counter, Gauge)):
                lines.append(
                    f"{family.name}{_label_str(key)} {_format_value(child.value)}"
                )
            elif isinstance(child, Histogram):
                cumulative = 0
                for bound, count in zip(
                    list(child.buckets) + [math.inf], child.bucket_counts
                ):
                    cumulative += count
                    le = _label_str(key, (f'le="{_format_value(bound)}"',))
                    lines.append(f"{family.name}_bucket{le} {cumulative}")
                lines.append(
                    f"{family.name}_sum{_label_str(key)} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{_label_str(key)} {child.count}")
    # Telemetry self-reporting: truncated data must be visible.
    dropped_rows = [
        ((("metric", family.name),) + key, child.values_dropped)
        for family, key, child in registry.collect()
        if isinstance(child, Histogram) and child.values_dropped
    ]
    if dropped_rows:
        lines.append(
            "# HELP telemetry_histogram_values_dropped_total Raw samples "
            "past the histogram value cap (quantiles approximate)"
        )
        lines.append("# TYPE telemetry_histogram_values_dropped_total counter")
        for key, dropped in dropped_rows:
            lines.append(
                f"telemetry_histogram_values_dropped_total"
                f"{_label_str(key)} {dropped}"
            )
    return lines


def render_metrics(registry) -> str:
    """A bare metrics registry as Prometheus text exposition format.

    The registry-level core of :func:`render_prometheus`, exported for
    callers that hold a registry without a live telemetry context — the
    campaign runner renders its merged per-cell registries and its
    ``progress.prom`` dump through this, so campaign metric files diff
    cleanly against ``--metrics`` output.
    """
    lines = _registry_lines(registry)
    return "\n".join(lines) + ("\n" if lines else "")


def render_prometheus(telemetry: Telemetry) -> str:
    """The whole registry (plus the event-loop profile) as Prometheus
    text exposition format."""
    lines: List[str] = list(_registry_lines(telemetry.metrics))
    if telemetry.tracer.spans or telemetry.tracer.dropped:
        lines.append(
            "# HELP tracer_dropped_spans_total Spans discarded past max_spans"
        )
        lines.append("# TYPE tracer_dropped_spans_total counter")
        lines.append(f"tracer_dropped_spans_total {telemetry.tracer.dropped}")
    # Event-loop profile as synthesized series.
    profiler = telemetry.profiler
    if profiler.sites:
        lines.append("# HELP eventloop_callbacks_total Fired callbacks per site")
        lines.append("# TYPE eventloop_callbacks_total counter")
        for site, count, _ in profiler.table():
            labels = _label_str((("site", site),))
            lines.append(f"eventloop_callbacks_total{labels} {count}")
        lines.append("# HELP eventloop_callback_wall_seconds_total Wall time per site")
        lines.append("# TYPE eventloop_callback_wall_seconds_total counter")
        for site, _, wall_s in profiler.table():
            labels = _label_str((("site", site),))
            lines.append(
                f"eventloop_callback_wall_seconds_total{labels} {wall_s:.6f}"
            )
        lines.append(
            "# HELP eventloop_queue_depth_high_water Deepest pending-event "
            "queue observed across loops"
        )
        lines.append("# TYPE eventloop_queue_depth_high_water gauge")
        lines.append(
            f"eventloop_queue_depth_high_water {profiler.queue_depth_high_water}"
        )
    lines.extend(_cause_series(telemetry))
    lines.extend(_health_series(telemetry))
    return "\n".join(lines) + ("\n" if lines else "")


def _cause_series(telemetry: Telemetry) -> List[str]:
    """Attribution families for the Prometheus dump."""
    collector = telemetry.causes
    if not collector.has_data:
        return []
    lines: List[str] = []

    def family(name: str, help: str, totals: Dict[str, float]) -> None:
        lines.append(f"# HELP {name} {help}")
        lines.append(f"# TYPE {name} counter")
        for cause in sorted(totals):
            labels = _label_str((("cause", cause),))
            lines.append(f"{name}{labels} {_format_value(totals[cause])}")

    family("stall_seconds_by_cause_total",
           "Stall seconds attributed per cause",
           collector.totals_by_cause(KIND_STALL))
    family("join_seconds_by_cause_total",
           "Join-delay seconds attributed per cause",
           collector.totals_by_cause(KIND_JOIN))
    family("delay_seconds_by_cause_total",
           "Raw delay seconds accrued per cause (all sessions, unclamped)",
           collector.ledger_totals())
    lines.append("# HELP attribution_windows_total Attributed windows by kind")
    lines.append("# TYPE attribution_windows_total counter")
    for kind in (KIND_JOIN, KIND_STALL):
        count = sum(1 for record in collector.records if record.kind == kind)
        labels = _label_str((("kind", kind),))
        lines.append(f"attribution_windows_total{labels} {count}")
    if collector.dropped_records:
        lines.append(
            "# HELP attribution_dropped_records_total Windows discarded "
            "past the record cap"
        )
        lines.append("# TYPE attribution_dropped_records_total counter")
        lines.append(
            f"attribution_dropped_records_total {collector.dropped_records}"
        )
    return lines


def _health_series(telemetry: Telemetry) -> List[str]:
    """Invariant-monitor families for the Prometheus dump."""
    health = telemetry.health
    if not health.checks_total and not health.violations:
        return []
    lines = [
        "# HELP health_checks_total Runtime invariant checks evaluated",
        "# TYPE health_checks_total counter",
        f"health_checks_total {health.checks_total}",
        "# HELP health_violations_total Runtime invariant violations",
        "# TYPE health_violations_total counter",
    ]
    for invariant in sorted(health.violations):
        labels = _label_str((("invariant", invariant),))
        lines.append(
            f"health_violations_total{labels} {health.violations[invariant]}"
        )
    return lines


def render_summary(telemetry: Telemetry) -> str:
    """End-of-run ASCII summary: metrics, quantiles, and the profile."""
    parts: List[str] = []

    scalar_rows = []
    histogram_rows = []
    for family, key, child in telemetry.metrics.collect():
        labels = ",".join(f"{k}={v}" for k, v in key) or "-"
        if isinstance(child, (Counter, Gauge)):
            scalar_rows.append(
                [family.name, family.kind, labels, f"{child.value:g}"]
            )
        elif isinstance(child, Histogram) and child.count:
            histogram_rows.append([
                family.name, labels, child.count,
                f"{child.mean():.4g}",
                f"{child.quantile(0.5):.4g}",
                f"{child.quantile(0.95):.4g}",
                f"{child.quantile(0.99):.4g}",
                f"{child.max:.4g}",
            ])
    overflowed = [
        f"{family.name}{_label_str(key)} ({child.values_dropped} dropped)"
        for family, key, child in telemetry.metrics.collect()
        if isinstance(child, Histogram) and child.values_dropped
    ]
    if scalar_rows:
        parts.append("== metrics: counters & gauges ==")
        parts.append(render_table(["metric", "kind", "labels", "value"], scalar_rows))
    if histogram_rows:
        parts.append("")
        parts.append("== metrics: histograms ==")
        parts.append(render_table(
            ["metric", "labels", "n", "mean", "p50", "p95", "p99", "max"],
            histogram_rows,
        ))
        if overflowed:
            parts.append(
                "raw-value cap exceeded (quantiles approximate): "
                + ", ".join(overflowed)
            )

    profiler = telemetry.profiler
    if profiler.sites:
        parts.append("")
        parts.append("== event-loop profile ==")
        total_wall = sum(wall for _, _, wall in profiler.table()) or 1.0
        profile_rows = [
            [site, count, f"{wall * 1e3:.2f}", f"{100.0 * wall / total_wall:.1f}%"]
            for site, count, wall in profiler.table()
        ]
        parts.append(render_table(
            ["callback site", "events", "wall ms", "share"], profile_rows
        ))
        parts.append(
            f"events profiled: {profiler.events_profiled}; "
            f"queue-depth high water: {profiler.queue_depth_high_water}"
        )

    tracer = telemetry.tracer
    if tracer.spans:
        parts.append("")
        parts.append("== trace ==")
        by_name: dict = {}
        for span in tracer.spans:
            agg = by_name.setdefault(span.name, [0, 0.0, 0.0])
            agg[0] += 1
            agg[1] += span.sim_duration or 0.0
            agg[2] += span.wall_duration or 0.0
        trace_rows = [
            [name, n, f"{sim_s:.3f}", f"{wall_s * 1e3:.2f}"]
            for name, (n, sim_s, wall_s) in sorted(by_name.items())
        ]
        parts.append(render_table(
            ["span", "n", "sim s (total)", "wall ms (total)"], trace_rows
        ))
    if tracer.dropped:
        parts.append(
            f"spans dropped past max_spans: {tracer.dropped} "
            f"(trace is truncated)"
        )

    if telemetry.causes.has_data:
        parts.append("")
        parts.append(render_attribution(telemetry))
    if telemetry.health.checks_total or telemetry.health.violations:
        parts.append("")
        parts.append(render_health(telemetry))

    return "\n".join(parts) if parts else "(no telemetry recorded)"


def write_trace_jsonl(telemetry: Telemetry, sink: IO[str]) -> int:
    """Write the trace to an open text stream; returns spans written."""
    return telemetry.tracer.write_jsonl(sink)


# --------------------------------------------------------- stall forensics

#: Per-window rows shown in the ASCII report before deferring to JSONL.
MAX_WINDOW_ROWS = 40


def _share(amount: float, total: float) -> str:
    return f"{100.0 * amount / total:.1f}%" if total > 0.0 else "-"


def render_attribution(telemetry: Telemetry) -> str:
    """The study-level cause-attribution report (ASCII).

    Byte-identical across repeats and worker counts for the same seeded
    study: the collector's records arrive in serial session order and
    every sum here iterates a deterministic order.
    """
    collector = telemetry.causes
    if not collector.has_data:
        return "(no attribution recorded — enable causes/--explain)"
    parts: List[str] = ["== stall forensics: cause attribution =="]

    stall_records = [r for r in collector.records if r.kind == KIND_STALL]
    join_records = [r for r in collector.records if r.kind == KIND_JOIN]
    stall_totals = collector.totals_by_cause(KIND_STALL)
    join_totals = collector.totals_by_cause(KIND_JOIN)
    ledger = collector.ledger_totals()

    total_stall_s = 0.0
    for record in stall_records:
        total_stall_s += record.duration
    total_join_s = 0.0
    for record in join_records:
        total_join_s += record.duration

    causes = sorted(
        set(stall_totals) | set(join_totals) | set(ledger),
        key=lambda c: (-stall_totals.get(c, 0.0), -join_totals.get(c, 0.0), c),
    )
    cause_rows = []
    for cause in causes:
        stall_s = stall_totals.get(cause, 0.0)
        join_s = join_totals.get(cause, 0.0)
        cause_rows.append([
            cause,
            f"{stall_s:.3f}", _share(stall_s, total_stall_s),
            f"{join_s:.3f}", _share(join_s, total_join_s),
            f"{ledger.get(cause, 0.0):.3f}",
        ])
    parts.append(render_table(
        ["cause", "stall s", "stall %", "join s", "join %", "raw delay s"],
        cause_rows,
    ))

    attributed_stall_s = 0.0
    for cause in sorted(stall_totals):
        attributed_stall_s += stall_totals[cause]
    attributed_join_s = 0.0
    for cause in sorted(join_totals):
        attributed_join_s += join_totals[cause]
    parts.append("")
    parts.append(
        f"stall windows: {len(stall_records)}; "
        f"stall time {total_stall_s:.3f} s; "
        f"attributed {attributed_stall_s:.3f} s "
        f"({_share(attributed_stall_s, total_stall_s)})"
    )
    parts.append(
        f"join windows: {len(join_records)}; "
        f"join time {total_join_s:.3f} s; "
        f"attributed {attributed_join_s:.3f} s "
        f"({_share(attributed_join_s, total_join_s)})"
    )
    if stall_totals:
        dominant = max(sorted(stall_totals),
                       key=lambda c: (stall_totals[c], c))
        parts.append(
            f"dominant stall cause: {dominant} "
            f"({_share(stall_totals[dominant], total_stall_s)} of stall time)"
        )
    if collector.dropped_records:
        parts.append(
            f"windows dropped past the record cap: {collector.dropped_records}"
        )

    if collector.records:
        shown = collector.records[:MAX_WINDOW_ROWS]
        parts.append("")
        parts.append("== attributed windows (session order) ==")
        window_rows = []
        for record in shown:
            top = record.dominant()
            window_rows.append([
                record.context, record.kind,
                f"{record.start:.3f}", f"{record.duration:.3f}",
                top or "-",
                f"{record.causes[top]:.3f}" if top else "-",
                _share(record.attributed_s, record.duration),
            ])
        parts.append(render_table(
            ["session", "kind", "start s", "dur s",
             "top cause", "top s", "attributed"],
            window_rows,
        ))
        if len(collector.records) > len(shown):
            parts.append(
                f"(+{len(collector.records) - len(shown)} more windows — "
                f"full list in the JSONL export)"
            )
    return "\n".join(parts)


def render_health(telemetry: Telemetry) -> str:
    """The invariant-monitor report (ASCII)."""
    health = telemetry.health
    parts = ["== study health: invariant monitors =="]
    parts.append(
        f"checks evaluated: {health.checks_total}; "
        f"violations: {health.violation_count}"
    )
    if health.violations:
        rows = [[invariant, health.violations[invariant]]
                for invariant in sorted(health.violations)]
        parts.append(render_table(["invariant", "violations"], rows))
        if health.samples:
            parts.append("first violation samples:")
            for sample in health.samples:
                parts.append(f"  - {sample}")
    else:
        parts.append("all invariants held.")
    return "\n".join(parts)


def attribution_jsonl(telemetry: Telemetry) -> str:
    """Every attributed window as JSON Lines (one record per line)."""
    return "\n".join(
        json.dumps(record.to_dict(), separators=(",", ":"), sort_keys=True)
        for record in telemetry.causes.records
    )


def write_attribution_jsonl(telemetry: Telemetry, sink: IO[str]) -> int:
    """Write the attribution records to an open text stream."""
    for record in telemetry.causes.records:
        sink.write(json.dumps(record.to_dict(), separators=(",", ":"),
                              sort_keys=True))
        sink.write("\n")
    return len(telemetry.causes.records)
