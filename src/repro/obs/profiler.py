"""Event-loop profiling: per-callback-site event counts and wall time.

Every event loop created while telemetry is active shares one
:class:`EventLoopProfiler` (a Workbench run spawns thousands of
per-session loops; the interesting view is the aggregate).  The profiler
attributes each fired callback to a *site* — a stable name derived from
the callback object itself (``Class.method`` for bound methods,
``module:qualname`` otherwise), so closures scheduled from
``ViewingSession.run`` show up as ``session:ViewingSession.run.<locals>.
<lambda>`` rather than disappearing into an anonymous bucket.

Wall time is measured around the callback invocation only; nothing is
fed back into the loop, so profiling cannot change event ordering.
"""

from __future__ import annotations

import functools
import time
from typing import Callable, Dict, List, Optional, Tuple

OnEventTap = Callable[[float, str], None]


def callback_site(callback: Callable[..., object]) -> str:
    """A stable, human-readable name for a scheduled callback."""
    while isinstance(callback, functools.partial):
        callback = callback.func
    bound_self = getattr(callback, "__self__", None)
    if bound_self is not None:
        return f"{type(bound_self).__name__}.{callback.__name__}"
    qualname = getattr(callback, "__qualname__", None)
    if qualname:
        module = getattr(callback, "__module__", "") or ""
        short = module.rsplit(".", 1)[-1]
        return f"{short}:{qualname}" if short else qualname
    return type(callback).__name__


class SiteStats:
    """Accumulated cost of one callback site."""

    __slots__ = ("count", "wall_s")

    def __init__(self) -> None:
        self.count = 0
        self.wall_s = 0.0


class EventLoopProfiler:
    """Aggregates fired-event attribution across event loops."""

    def __init__(self, on_event: Optional[OnEventTap] = None) -> None:
        self.sites: Dict[str, SiteStats] = {}
        self.events_profiled = 0
        self.queue_depth_high_water = 0
        #: Optional tap called as ``on_event(sim_time, site)`` after each
        #: fired callback — a debugging hook, not a control surface.
        self.on_event = on_event

    # ------------------------------------------------------------ loop hooks

    def run_callback(self, now: float, callback: Callable[[], None]) -> None:
        """Invoke ``callback``, attributing its wall time to its site."""
        site = callback_site(callback)
        started = time.perf_counter()
        try:
            callback()
        finally:
            elapsed = time.perf_counter() - started
            stats = self.sites.get(site)
            if stats is None:
                stats = self.sites[site] = SiteStats()
            stats.count += 1
            stats.wall_s += elapsed
            self.events_profiled += 1
            if self.on_event is not None:
                self.on_event(now, site)

    def note_queue_depth(self, depth: int) -> None:
        if depth > self.queue_depth_high_water:
            self.queue_depth_high_water = depth

    # --------------------------------------------------------------- results

    def table(self) -> List[Tuple[str, int, float]]:
        """(site, count, wall seconds) rows, costliest first."""
        rows = [
            (site, stats.count, stats.wall_s)
            for site, stats in self.sites.items()
        ]
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows

    def attributed_fraction(self, total_events: int) -> float:
        """Share of ``total_events`` this profiler saw and named.

        With no events fired and none profiled the attribution is
        vacuously complete; profiled events against an empty
        denominator are unattributable, not fully attributed.
        """
        if total_events <= 0:
            return 0.0 if self.events_profiled > 0 else 1.0
        return self.events_profiled / total_events
