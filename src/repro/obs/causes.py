"""Causal attribution of QoE-affecting delay (``repro.obs.causes``).

Every subsystem that can delay media on its way to the viewer tags the
delay at the point where it happens — a packet waiting behind earlier
transmissions, a token-bucket shaping pause, loss-recovery
retransmissions, an ingest outage, HLS packaging latency, a 429
backoff — by calling :meth:`CauseCollector.add` with a taxonomy tag and
the seconds of delay introduced.  The player's playout buffer closes the
loop: it snapshots the running per-session ledger when a stall (or the
join wait) begins and attributes the *delta* accrued over the window to
that stall, scaled so the per-cause seconds never sum past the window's
duration.

Like every ``repro.obs`` instrument the collector is passive: it never
consumes RNG, never schedules events, and is only written to behind the
``telemetry.enabled and telemetry.causes_on`` guard, so enabling
attribution cannot change simulation results.

Determinism across ``--workers N``: the ledger is keyed by a
per-session context string derived from the session setup, so merging
worker snapshots is a dict union per context — float additions happen
in the same per-session order as a serial run, and reports render
byte-identically for any worker count.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = [
    "CAUSE_HELP",
    "CAUSES",
    "AttributionRecord",
    "CauseCollector",
    "clamp_attribution",
]


# The closed cause taxonomy.  Lint rule O204 holds emission sites to
# these literal tags; add the tag here before emitting it anywhere.
CAUSE_HELP: Dict[str, str] = {
    "link.queue": "Packet waited behind earlier transmissions on a link",
    "link.throttle": "Token-bucket bandwidth shaping delayed a packet",
    "link.loss_recovery":
        "Retransmissions after injected loss (including HOL blocking "
        "behind the recovery backlog)",
    "link.flap": "Link-flap downtime deferred a transmission",
    "link.jitter": "Injected latency jitter stretched a transmission",
    "uplink.outage": "Broadcaster uplink outage deferred frame arrival",
    "service.packaging": "HLS segmenter packaging/publish latency",
    "service.outage": "Ingest outage interrupted delivery until restore",
    "hls.playlist_wait": "Player idled until the next playlist re-poll",
    "api.retry_backoff": "API call retried after an injected failure",
    "transport.retry_backoff": "Transport reconnect/retry backoff wait",
    "http.rate_limit": "Request burned a round trip on a 429 response",
    "media.rate_starvation":
        "Encoder rate control pinned at QP max (target bitrate unmet)",
}

CAUSES: Tuple[str, ...] = tuple(sorted(CAUSE_HELP))

# Window kinds a record can attribute.
KIND_STALL = "stall"
KIND_JOIN = "join"


def clamp_attribution(
    raw: Dict[str, float], duration: float
) -> Dict[str, float]:
    """Scale raw per-cause seconds so they sum to at most ``duration``.

    Raw window deltas can legitimately exceed the window length (several
    causes act concurrently: a packet can queue *and* ride out a flap),
    so attribution normalizes proportionally.  The clamp is exact — any
    float dust left after scaling is shaved off the largest term — so
    ``sum(result.values()) <= duration`` holds strictly.
    """
    positive = {cause: s for cause, s in raw.items() if s > 0.0}
    if not positive or duration <= 0.0:
        return {}
    ordered = sorted(positive)
    total = 0.0
    for cause in ordered:
        total += positive[cause]
    if total <= duration:
        return {cause: positive[cause] for cause in ordered}
    scale = duration / total
    scaled = {cause: positive[cause] * scale for cause in ordered}
    # Shave float dust off the largest term until the sorted-order sum
    # actually lands at or under the duration.  One pass is not always
    # enough: the subtraction itself rounds, so re-summing can still
    # exceed the budget by an ulp — iterate (with a nextafter nudge when
    # the excess is below the largest term's ulp) until it holds.
    while True:
        # Sum from zero in sorted-key order — exactly how every consumer
        # (records, reports, tests) totals the dict — so "<= duration"
        # here means "<= duration" everywhere.
        total = 0.0
        for cause in ordered:
            total += scaled[cause]
        if total <= duration:
            break
        largest = max(ordered, key=lambda cause: (scaled[cause], cause))
        reduced = scaled[largest] - (total - duration)
        if reduced >= scaled[largest]:
            reduced = math.nextafter(scaled[largest], 0.0)
        scaled[largest] = max(0.0, reduced)
    return scaled


@dataclass
class AttributionRecord:
    """One attributed window: a stall or a join wait.

    ``causes`` holds the clamped seconds per cause (summing to at most
    ``duration``); ``raw`` keeps the unscaled ledger deltas for
    forensics.
    """

    kind: str
    context: str
    start: float
    duration: float
    causes: Dict[str, float] = field(default_factory=dict)
    raw: Dict[str, float] = field(default_factory=dict)

    @property
    def attributed_s(self) -> float:
        total = 0.0
        for cause in sorted(self.causes):
            total += self.causes[cause]
        return total

    @property
    def unattributed_s(self) -> float:
        return max(0.0, self.duration - self.attributed_s)

    def dominant(self) -> Optional[str]:
        """The cause with the most attributed seconds (ties break on
        the lexically greater tag, deterministically)."""
        if not self.causes:
            return None
        return max(sorted(self.causes), key=lambda c: (self.causes[c], c))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "context": self.context,
            "start": self.start,
            "duration": self.duration,
            "causes": dict(self.causes),
            "raw": dict(self.raw),
        }


class CauseCollector:
    """The per-run attribution ledger plus its attributed windows.

    ``add`` accumulates seconds per (context, cause); sources call it as
    delays happen.  Consumers snapshot :meth:`totals` at a window's
    start and call :meth:`record_window` at its end to turn the delta
    into an :class:`AttributionRecord`.
    """

    #: Safety valve mirroring the tracer's span cap: past this many
    #: records new windows are counted in ``dropped_records`` instead.
    MAX_RECORDS = 1_000_000

    def __init__(self) -> None:
        self._context = ""
        # context -> cause -> cumulative seconds
        self._ledger: Dict[str, Dict[str, float]] = {}
        self.records: List[AttributionRecord] = []
        self.dropped_records = 0

    # ------------------------------------------------------------ emission

    @property
    def has_data(self) -> bool:
        return bool(self.records) or bool(self._ledger)

    def set_context(self, context: str) -> None:
        """Scope subsequent :meth:`add` calls to one session's bucket."""
        self._context = context

    @property
    def context(self) -> str:
        return self._context

    def add(self, cause: str, seconds: float) -> None:
        """Accrue ``seconds`` of delay against ``cause`` in the current
        context.  Non-positive amounts are ignored."""
        if seconds <= 0.0:
            return
        bucket = self._ledger.setdefault(self._context, {})
        bucket[cause] = bucket.get(cause, 0.0) + seconds

    def totals(self) -> Dict[str, float]:
        """A copy of the current context's cumulative per-cause seconds
        (the window-start snapshot consumers diff against later)."""
        return dict(self._ledger.get(self._context, {}))

    # ---------------------------------------------------------- windowing

    def record_window(
        self,
        kind: str,
        start: float,
        duration: float,
        base: Dict[str, float],
    ) -> AttributionRecord:
        """Close an attribution window: diff the current context totals
        against the ``base`` snapshot, clamp, and keep the record."""
        now_totals = self._ledger.get(self._context, {})
        raw: Dict[str, float] = {}
        for cause in sorted(now_totals):
            delta = now_totals[cause] - base.get(cause, 0.0)
            if delta > 0.0:
                raw[cause] = delta
        record = AttributionRecord(
            kind=kind,
            context=self._context,
            start=start,
            duration=duration,
            causes=clamp_attribution(raw, duration),
            raw=raw,
        )
        if len(self.records) < self.MAX_RECORDS:
            self.records.append(record)
        else:
            self.dropped_records += 1
        return record

    # -------------------------------------------------------- aggregation

    def ledger_totals(self) -> Dict[str, float]:
        """All-context raw delay seconds per cause (summed over contexts
        in sorted order for run-to-run stability)."""
        combined: Dict[str, float] = {}
        for context in sorted(self._ledger):
            bucket = self._ledger[context]
            for cause in sorted(bucket):
                combined[cause] = combined.get(cause, 0.0) + bucket[cause]
        return combined

    def totals_by_cause(self, kind: str) -> Dict[str, float]:
        """Clamped attributed seconds per cause over records of ``kind``
        (summed in record order, which is the serial session order)."""
        combined: Dict[str, float] = {}
        for record in self.records:
            if record.kind != kind:
                continue
            for cause in sorted(record.causes):
                combined[cause] = (
                    combined.get(cause, 0.0) + record.causes[cause]
                )
        return combined

    # ----------------------------------------------------------- snapshot

    def snapshot(self) -> dict:
        """Plain-data form for cross-process transport."""
        return {
            "ledger": {
                context: dict(bucket)
                for context, bucket in self._ledger.items()
            },
            "records": [record.to_dict() for record in self.records],
            "dropped_records": self.dropped_records,
        }

    def merge_from(self, snapshot: dict) -> None:
        """Fold a worker snapshot in.  Contexts are per-session, so a
        context normally appears in exactly one snapshot and the union
        reproduces the serial ledger bit-for-bit; records concatenate in
        chunk order, which `run_sessions` keeps equal to serial order."""
        for context, bucket in snapshot.get("ledger", {}).items():
            mine = self._ledger.setdefault(context, {})
            for cause, seconds in bucket.items():
                mine[cause] = mine.get(cause, 0.0) + seconds
        for data in snapshot.get("records", []):
            if len(self.records) < self.MAX_RECORDS:
                self.records.append(AttributionRecord(
                    kind=data["kind"],
                    context=data["context"],
                    start=data["start"],
                    duration=data["duration"],
                    causes=dict(data["causes"]),
                    raw=dict(data["raw"]),
                ))
            else:
                self.dropped_records += 1
        self.dropped_records += snapshot.get("dropped_records", 0)
