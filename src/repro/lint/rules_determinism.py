"""D-rules: determinism hazards.

The reproduction's claim rests on bit-identical seeded runs (DESIGN.md),
so anything that injects wall-clock values, hidden RNG state, hash-order
iteration, or host environment into a simulation path is a bug even when
the code "works".  These rules make those hazards mechanical:

* **D101** — wall-clock reads (``time.time``/``perf_counter``/
  ``datetime.now``/...) outside ``repro.obs`` and ``repro.automation``.
* **D102** — module-level ``random.*`` calls (the hidden global RNG).
* **D103** — ``random.Random`` constructed outside ``repro.util.rng``
  (unseeded: everywhere; seeded: in ``src/repro`` — route through
  ``make_rng``/``child_rng`` so streams stay independent).
* **D104** — iterating a ``set``/``frozenset`` (hash order) where order
  can leak into results; wrap in ``sorted(...)``.
* **D105** — ``os.environ``/``os.getenv``/``open`` inside the hermetic
  simulation packages (netsim/service/player/media).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.layers import HERMETIC_PACKAGES, WALL_CLOCK_PACKAGES
from repro.lint.modinfo import ModuleInfo
from repro.lint.registry import FileRule, register

_TIME_FUNCS = frozenset({
    "time", "time_ns", "monotonic", "monotonic_ns",
    "perf_counter", "perf_counter_ns", "process_time", "process_time_ns",
})
_DATETIME_METHODS = frozenset({"now", "utcnow", "today"})
_RANDOM_MODULE_FUNCS = frozenset({
    "random", "randint", "randrange", "getrandbits", "uniform", "triangular",
    "choice", "choices", "sample", "shuffle", "seed", "betavariate",
    "expovariate", "gammavariate", "gauss", "lognormvariate", "normalvariate",
    "paretovariate", "vonmisesvariate", "weibullvariate",
})
#: Order-insensitive consumers: passing a set here is fine.
_ORDER_SAFE_CALLS = frozenset({
    "sorted", "len", "sum", "min", "max", "any", "all", "set", "frozenset",
})


def _import_tables(tree: ast.Module) -> Tuple[Dict[str, str], Dict[str, Tuple[str, str]]]:
    """(alias -> module) for ``import m [as a]``, and
    (name -> (module, original)) for ``from m import x [as a]``."""
    module_aliases: Dict[str, str] = {}
    from_imports: Dict[str, Tuple[str, str]] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                module_aliases[alias.asname or alias.name.split(".")[0]] = alias.name
        elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
            for alias in node.names:
                from_imports[alias.asname or alias.name] = (node.module, alias.name)
    return module_aliases, from_imports


@register
class WallClockRule(FileRule):
    id = "D101"
    name = "wall-clock-read"
    description = (
        "time.time/monotonic/perf_counter/datetime.now read outside "
        "repro.obs and repro.automation; use the simulation clock "
        "(EventLoop.now) instead"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.in_repro and module.package in WALL_CLOCK_PACKAGES:
            return
        module_aliases, from_imports = _import_tables(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            called: Optional[str] = None
            if isinstance(func, ast.Name):
                origin = from_imports.get(func.id)
                if origin and origin[0] == "time" and origin[1] in _TIME_FUNCS:
                    called = f"time.{origin[1]}"
            elif isinstance(func, ast.Attribute):
                value = func.value
                if isinstance(value, ast.Name):
                    target_module = module_aliases.get(value.id)
                    if target_module == "time" and func.attr in _TIME_FUNCS:
                        called = f"time.{func.attr}"
                    else:
                        origin = from_imports.get(value.id)
                        if (origin and origin[0] == "datetime"
                                and origin[1] in ("datetime", "date")
                                and func.attr in _DATETIME_METHODS):
                            called = f"datetime.{origin[1]}.{func.attr}"
                elif (isinstance(value, ast.Attribute)
                      and isinstance(value.value, ast.Name)
                      and module_aliases.get(value.value.id) == "datetime"
                      and value.attr in ("datetime", "date")
                      and func.attr in _DATETIME_METHODS):
                    called = f"datetime.{value.attr}.{func.attr}"
            if called is not None:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"wall-clock read {called}() in a simulation path; "
                    f"sim code must take time from EventLoop.now",
                )


@register
class GlobalRandomRule(FileRule):
    id = "D102"
    name = "global-random-call"
    description = (
        "call into the random module's hidden global RNG "
        "(random.random(), random.choice(), ...); draw from an injected "
        "random.Random built by repro.util.rng instead"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.module == "repro.util.rng":
            return
        module_aliases, from_imports = _import_tables(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            called: Optional[str] = None
            if (isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and module_aliases.get(func.value.id) == "random"
                    and func.attr in _RANDOM_MODULE_FUNCS):
                called = f"random.{func.attr}"
            elif isinstance(func, ast.Name):
                origin = from_imports.get(func.id)
                if origin and origin[0] == "random" and origin[1] in _RANDOM_MODULE_FUNCS:
                    called = f"random.{origin[1]}"
            if called is not None:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"{called}() uses the hidden module-global RNG; pass a "
                    f"random.Random from repro.util.rng.make_rng/child_rng",
                )


@register
class StrayRandomInstanceRule(FileRule):
    id = "D103"
    name = "stray-random-instance"
    description = (
        "random.Random constructed outside repro.util.rng: unseeded "
        "instances are nondeterministic anywhere; seeded ones in "
        "src/repro bypass the seed-hygiene hash (make_rng/child_rng)"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if module.module == "repro.util.rng":
            return
        module_aliases, from_imports = _import_tables(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            is_random_class = (
                isinstance(func, ast.Attribute)
                and func.attr in ("Random", "SystemRandom")
                and isinstance(func.value, ast.Name)
                and module_aliases.get(func.value.id) == "random"
            ) or (
                isinstance(func, ast.Name)
                and from_imports.get(func.id, ("", ""))[0] == "random"
                and from_imports.get(func.id, ("", ""))[1] in ("Random", "SystemRandom")
            )
            if not is_random_class:
                continue
            unseeded = not node.args and not node.keywords
            if unseeded:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    "unseeded random.Random() is seeded from the OS; every "
                    "stream must derive from the experiment seed "
                    "(repro.util.rng.make_rng/child_rng)",
                )
            elif module.in_repro:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    "random.Random(seed) bypasses the seed-hygiene hash; "
                    "use repro.util.rng.make_rng(seed) or child_rng so "
                    "subsystem streams stay independent",
                )


class _SetIterationVisitor(ast.NodeVisitor):
    """Finds iteration contexts whose iterable is a set expression."""

    def __init__(self) -> None:
        self.hits: List[Tuple[int, int, str]] = []
        #: Plain names / attribute leaves annotated as sets in this module.
        self.set_names: Set[str] = set()

    # -- annotation collection ------------------------------------------------

    def _annotation_is_set(self, annotation: Optional[ast.expr]) -> bool:
        if annotation is None:
            return False
        node = annotation
        if isinstance(node, ast.Subscript):
            node = node.value
        if isinstance(node, ast.Attribute):
            return node.attr in ("Set", "FrozenSet", "MutableSet", "AbstractSet")
        if isinstance(node, ast.Name):
            return node.id in (
                "set", "frozenset", "Set", "FrozenSet", "MutableSet", "AbstractSet"
            )
        return False

    def collect_annotations(self, tree: ast.Module) -> None:
        for node in ast.walk(tree):
            if isinstance(node, ast.AnnAssign) and self._annotation_is_set(node.annotation):
                target = node.target
                if isinstance(target, ast.Name):
                    self.set_names.add(target.id)
                elif isinstance(target, ast.Attribute):
                    self.set_names.add(target.attr)
            elif isinstance(node, ast.arg) and self._annotation_is_set(node.annotation):
                self.set_names.add(node.arg)

    # -- set-expression classification ---------------------------------------

    def _is_set_expr(self, node: ast.expr) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return True
        if isinstance(node, ast.Name):
            return node.id in self.set_names
        if isinstance(node, ast.Attribute):
            return node.attr in self.set_names
        if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)):
            return self._is_set_expr(node.left) or self._is_set_expr(node.right)
        return False

    def _flag(self, node: ast.expr, context: str) -> None:
        self.hits.append((node.lineno, node.col_offset, context))

    # -- iteration contexts ---------------------------------------------------

    def visit_For(self, node: ast.For) -> None:
        if self._is_set_expr(node.iter):
            self._flag(node.iter, "for-loop")
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for generator in getattr(node, "generators", []):
            if self._is_set_expr(generator.iter):
                self._flag(generator.iter, "comprehension")
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension

    def visit_SetComp(self, node: ast.SetComp) -> None:
        # Building a set from a set keeps it order-free; don't flag.
        self.generic_visit(node)

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        order_sensitive: Optional[str] = None
        if isinstance(func, ast.Name) and func.id in ("list", "tuple", "enumerate", "iter"):
            order_sensitive = func.id
        elif isinstance(func, ast.Attribute) and func.attr == "join":
            order_sensitive = "str.join"
        if order_sensitive is not None:
            for arg in node.args[:1]:
                if self._is_set_expr(arg):
                    self._flag(arg, f"{order_sensitive}()")
        self.generic_visit(node)


@register
class SetIterationRule(FileRule):
    id = "D104"
    name = "set-iteration-order"
    description = (
        "iteration over a set/frozenset exposes hash order to downstream "
        "logic; iterate sorted(the_set) so order is deterministic"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        visitor = _SetIterationVisitor()
        visitor.collect_annotations(module.tree)
        visitor.visit(module.tree)
        for line, col, context in visitor.hits:
            yield self.finding(
                module, line, col,
                f"set iterated in a {context}; hash order can differ across "
                f"runs and interpreters — iterate sorted(...) instead",
            )


@register
class HermeticPathRule(FileRule):
    id = "D105"
    name = "hermetic-sim-path"
    description = (
        "os.environ / os.getenv / open() inside the hermetic simulation "
        "packages (netsim, service, player, media); inputs must arrive "
        "via configuration objects"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.package not in HERMETIC_PACKAGES:
            return
        module_aliases, from_imports = _import_tables(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr == "environ":
                if (isinstance(node.value, ast.Name)
                        and module_aliases.get(node.value.id) == "os"):
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "os.environ read in a hermetic simulation package; "
                        "pass configuration explicitly",
                    )
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name):
                    origin = from_imports.get(func.id)
                    if func.id == "open" and func.id not in from_imports:
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            "open() in a hermetic simulation package; do file "
                            "I/O in experiments/analysis and pass data in",
                        )
                    elif origin == ("os", "getenv"):
                        yield self.finding(
                            module, node.lineno, node.col_offset,
                            "os.getenv in a hermetic simulation package; "
                            "pass configuration explicitly",
                        )
                elif (isinstance(func, ast.Attribute) and func.attr == "getenv"
                      and isinstance(func.value, ast.Name)
                      and module_aliases.get(func.value.id) == "os"):
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "os.getenv in a hermetic simulation package; pass "
                        "configuration explicitly",
                    )
