"""L-rules: architecture layering over the extracted import graph.

The manifest in :mod:`repro.lint.layers` declares the package DAG; these
rules extract the *actual* top-level import graph from the AST and diff
the two:

* **L301** — upward import: a module top-level imports a package of
  equal or higher rank.  (``if TYPE_CHECKING:`` imports and imports
  inside function bodies are exempt — they cannot create import-time
  cycles and are the sanctioned escape hatch.)
* **L302** — an import cycle among ``repro`` modules (strongly
  connected component of the top-level import graph).
* **L303** — a package absent from the layers manifest: new packages
  must be placed in the DAG in the same PR that adds them.
* **L304** — ``multiprocessing``/``concurrent.futures`` imported outside
  the declared process-pool modules (``layers.PROCESS_POOL_MODULES``);
  worker fan-out lives behind ``repro.core.parallel`` only, where serial
  sampling, seeded worker bootstrap, and index-ordered merges keep
  parallel runs bit-identical to serial ones.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.layers import PROCESS_POOL_MODULES, RANKS, edge_allowed, rank_of
from repro.lint.modinfo import ModuleInfo
from repro.lint.registry import FileRule, ProjectRule, register


def _package_of(module_name: str) -> str:
    parts = module_name.split(".")
    return parts[1] if len(parts) > 1 else ""


def build_import_graph(modules: List[ModuleInfo]) -> Dict[str, Dict[str, int]]:
    """Top-level import edges between *known* repro modules.

    Returns ``{module: {imported_module: first_line}}``.  Edge targets
    that do not correspond to a linted module (attribute imports, e.g.
    ``from repro.core.qoe import stall_ratio`` emitting the candidate
    ``repro.core.qoe.stall_ratio``) are dropped.
    """
    known = {m.module for m in modules if m.in_repro}
    graph: Dict[str, Dict[str, int]] = {}
    for module in modules:
        if not module.in_repro:
            continue
        edges = graph.setdefault(module.module, {})
        for edge in module.imports:
            if edge.kind != "toplevel":
                continue
            if edge.target in known and edge.target != module.module:
                edges.setdefault(edge.target, edge.line)
    return graph


def _strongly_connected(graph: Dict[str, Dict[str, int]]) -> List[List[str]]:
    """Tarjan's SCC; returns components with more than one member."""
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    counter = [0]
    components: List[List[str]] = []

    def strongconnect(node: str) -> None:
        # Iterative Tarjan: (node, edge iterator) frames.
        work = [(node, iter(sorted(graph.get(node, {}))))]
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        while work:
            current, edges = work[-1]
            advanced = False
            for successor in edges:
                if successor not in graph:
                    continue
                if successor not in index:
                    index[successor] = lowlink[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph.get(successor, {})))))
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[current] = min(lowlink[current], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[current])
            if lowlink[current] == index[current]:
                component: List[str] = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == current:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return components


@register
class UpwardImportRule(ProjectRule):
    id = "L301"
    name = "upward-import"
    description = (
        "top-level import against the declared layer DAG (see "
        "repro/lint/layers.py); higher layers may import lower ones, "
        "never the reverse"
    )

    def check_project(self, modules: List[ModuleInfo]) -> Iterator[Finding]:
        for module in modules:
            if not module.in_repro:
                continue
            importer = module.package
            seen: Set[Tuple[int, str]] = set()
            for edge in module.imports:
                if edge.kind != "toplevel":
                    continue
                target = _package_of(edge.target)
                if edge_allowed(importer, target):
                    continue
                key = (edge.line, target)
                if key in seen:
                    continue
                seen.add(key)
                importer_rank = rank_of(importer)
                target_rank = rank_of(target)
                yield self.finding(
                    module, edge.line, 0,
                    f"upward import: {module.module} (layer '{importer}', "
                    f"rank {importer_rank}) imports repro.{target} (rank "
                    f"{target_rank}); invert the dependency, move the "
                    f"shared type down, or defer the import into the "
                    f"function that needs it",
                )


@register
class ImportCycleRule(ProjectRule):
    id = "L302"
    name = "import-cycle"
    description = (
        "strongly connected component in the top-level import graph; "
        "cycles make import order load-bearing and break layering"
    )

    def check_project(self, modules: List[ModuleInfo]) -> Iterator[Finding]:
        by_name = {m.module: m for m in modules if m.in_repro}
        graph = build_import_graph(modules)
        for component in _strongly_connected(graph):
            members = set(component)
            cycle = " -> ".join(component + [component[0]])
            for name in component:
                module = by_name[name]
                line = min(
                    (graph[name][target] for target in graph[name] if target in members),
                    default=1,
                )
                yield self.finding(
                    module, line, 0,
                    f"import cycle: {cycle}; break it with a deferred "
                    f"(function-scope) import or by moving shared types down",
                )


@register
class UndeclaredPackageRule(ProjectRule):
    id = "L303"
    name = "undeclared-package"
    description = (
        "package missing from the layers manifest "
        "(repro/lint/layers.py RANKS); every package must have a "
        "declared rank in the architecture DAG"
    )

    def check_project(self, modules: List[ModuleInfo]) -> Iterator[Finding]:
        reported: Set[str] = set()
        for module in sorted(modules, key=lambda m: m.path):
            if not module.in_repro:
                continue
            package = module.package
            if package == "" or package in RANKS or package in reported:
                continue
            reported.add(package)
            yield self.finding(
                module, 1, 0,
                f"package repro.{package} has no rank in "
                f"repro/lint/layers.py; declare where it sits in the "
                f"layer DAG",
            )


_POOL_MODULES = ("multiprocessing", "concurrent")


@register
class ProcessPoolConfinementRule(FileRule):
    id = "L304"
    name = "process-pool-confinement"
    description = (
        "multiprocessing / concurrent.futures imported outside the "
        "declared process-pool modules (repro/lint/layers.py "
        "PROCESS_POOL_MODULES); route worker fan-out through "
        "repro.core.parallel so parallel runs stay bit-identical"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.module in PROCESS_POOL_MODULES:
            return
        for node in ast.walk(module.tree):
            imported: List[Tuple[int, str]] = []
            if isinstance(node, ast.Import):
                imported = [
                    (node.lineno, alias.name)
                    for alias in node.names
                    if alias.name.split(".")[0] in _POOL_MODULES
                ]
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                if node.module.split(".")[0] in _POOL_MODULES:
                    imported = [(node.lineno, node.module)]
            for line, name in imported:
                yield self.finding(
                    module, line, 0,
                    f"import of {name!r} outside the declared process-pool "
                    f"modules; spawn workers via repro.core.parallel, which "
                    f"preserves determinism (serial sampling, seeded "
                    f"bootstrap, ordered merge)",
                )
