"""The checked-in findings baseline.

Pre-existing findings live in ``lint-baseline.json`` at the repo root:
they don't fail CI, but *new* findings do.  Matching is by fingerprint
(rule + path + source text + occurrence), so baselined findings survive
unrelated edits while any change to the offending line re-surfaces it.

Baseline entries that no longer match anything are **stale**; they are
reported so the file can be refreshed (``--write-baseline`` drops
them), keeping the baseline a shrinking debt list rather than a
landfill.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.lint.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "lint-baseline.json"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    message: str = ""

    def to_json(self) -> Dict[str, str]:
        return {
            "rule": self.rule,
            "path": self.path,
            "fingerprint": self.fingerprint,
            "message": self.message,
        }


class BaselineError(ValueError):
    """Raised when the baseline file is malformed."""


def load_baseline(path: str) -> List[BaselineEntry]:
    """Entries from ``path``; a missing file is an empty baseline."""
    if not os.path.exists(path):
        return []
    with open(path, "r", encoding="utf-8") as handle:
        try:
            payload = json.load(handle)
        except json.JSONDecodeError as error:
            raise BaselineError(f"{path}: not valid JSON ({error})") from error
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise BaselineError(
            f"{path}: expected a baseline object with version {BASELINE_VERSION}"
        )
    entries: List[BaselineEntry] = []
    for raw in payload.get("findings", []):
        try:
            entries.append(BaselineEntry(
                rule=raw["rule"],
                path=raw["path"],
                fingerprint=raw["fingerprint"],
                message=raw.get("message", ""),
            ))
        except (TypeError, KeyError) as error:
            raise BaselineError(f"{path}: malformed entry {raw!r}") from error
    return entries


def apply_baseline(
    findings: Sequence[Finding], entries: Sequence[BaselineEntry]
) -> Tuple[List[Finding], List[Finding], List[BaselineEntry]]:
    """Split findings into (new, baselined) and return stale entries.

    A baseline entry absorbs at most one finding (fingerprints are
    already occurrence-disambiguated, so this is exact, not first-win).
    """
    by_fingerprint = {entry.fingerprint: entry for entry in entries}
    new: List[Finding] = []
    baselined: List[Finding] = []
    matched = set()
    for finding in findings:
        entry = by_fingerprint.get(finding.fingerprint)
        if entry is not None and entry.rule == finding.rule:
            finding.baselined = True
            baselined.append(finding)
            matched.add(entry.fingerprint)
        else:
            new.append(finding)
    stale = [entry for entry in entries if entry.fingerprint not in matched]
    return new, baselined, stale


def write_baseline(path: str, findings: Sequence[Finding]) -> int:
    """Write a fresh baseline covering ``findings``; returns the count."""
    entries = sorted(
        (
            BaselineEntry(
                rule=finding.rule,
                path=finding.path,
                fingerprint=finding.fingerprint,
                message=finding.message,
            )
            for finding in findings
        ),
        key=lambda entry: (entry.path, entry.rule, entry.fingerprint),
    )
    payload = {
        "version": BASELINE_VERSION,
        "note": (
            "Pre-existing repro.lint findings tolerated by CI. "
            "Refresh with: python -m repro.lint --write-baseline. "
            "New findings must be fixed, not added here."
        ),
        "findings": [entry.to_json() for entry in entries],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return len(entries)
