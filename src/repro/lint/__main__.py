"""``python -m repro.lint`` — the determinism & architecture gate.

Usage::

    python -m repro.lint                       # lint src/repro + tests
    python -m repro.lint src/repro/netsim      # a subtree
    python -m repro.lint --format json         # machine output for CI
    python -m repro.lint --format sarif --output lint.sarif
                                               # GitHub code scanning
    python -m repro.lint --list-rules          # rule catalogue
    python -m repro.lint --write-baseline      # accept current findings

Exit codes: 0 — clean (only baselined/suppressed findings);
1 — at least one new finding; 2 — usage or internal error.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineError,
    write_baseline,
)
from repro.lint.discovery import find_repo_root
from repro.lint.registry import iter_rule_metadata
from repro.lint.report import format_json, format_text
from repro.lint.sarif import format_sarif
from repro.lint.runner import run_lint


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "Determinism & architecture static analysis for the "
            "Periscope-QoE reproduction."
        ),
    )
    parser.add_argument(
        "paths", nargs="*",
        help="files or directories to lint (default: src/repro and tests)",
    )
    parser.add_argument(
        "--root", default=None,
        help="repo root (default: auto-detected from pyproject.toml)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "sarif"), default="text",
        dest="output_format", help="output format (default: text)",
    )
    parser.add_argument(
        "--output", default=None, metavar="PATH",
        help="write the report to PATH instead of stdout",
    )
    parser.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="baseline file (default: <root>/lint-baseline.json)",
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="report every finding, ignoring the baseline",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="rewrite the baseline to cover all current findings "
             "(drops stale entries) and exit 0",
    )
    parser.add_argument(
        "--show-baselined", action="store_true",
        help="also print findings covered by the baseline (text format)",
    )
    parser.add_argument(
        "--rules", default=None, metavar="IDS",
        help="comma-separated rule ids to run (default: all)",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for meta in iter_rule_metadata():
            print(f"{meta['id']}  {meta['name']}  [{meta['severity']}]")
            print(f"      {meta['description']}")
        return 0

    root = os.path.abspath(args.root) if args.root else find_repo_root(os.getcwd())
    only_rules = (
        [rule_id.strip() for rule_id in args.rules.split(",") if rule_id.strip()]
        if args.rules else None
    )
    baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE_NAME)

    try:
        result = run_lint(
            root=root,
            paths=args.paths or None,
            baseline_path=baseline_path,
            use_baseline=not args.no_baseline and not args.write_baseline,
            only_rules=only_rules,
        )
    except BaselineError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2

    if args.write_baseline:
        count = write_baseline(baseline_path, result.findings)
        print(f"baseline: {count} finding(s) -> {baseline_path}")
        return 0

    if args.output_format == "json":
        rendered = format_json(result)
    elif args.output_format == "sarif":
        rendered = format_sarif(result)
    else:
        rendered = format_text(result, show_baselined=args.show_baselined) + "\n"

    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
    else:
        sys.stdout.write(rendered)
    return 0 if result.ok else 1


if __name__ == "__main__":  # pragma: no cover - exercised via CLI tests
    sys.exit(main())
