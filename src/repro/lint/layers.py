"""The declared architecture: which package may import which.

This is the repo's layering manifest — the single place where the
dependency DAG is written down.  The L-rules enforce it mechanically:
a module may only (top-level) import packages of strictly lower rank,
so every allowed edge points downward and the package graph is a DAG by
construction.

Bands, bottom to top (refining DESIGN.md's
``util -> media/protocols -> netsim -> service -> player ->
crawler/core -> experiments/analysis``)::

    util                  pure helpers: units, rng, sampling, tables
    obs                   (special, see below)
    faults                fault plans, impairments, retry policies
    media, energy         codec/content/power models, no I/O
    netsim                event loop, links, topology (pure infrastructure)
    protocols             wire formats; read media frame types and run
                          over netsim streams
    automation, capture   testbed scripting / traffic reconstruction
    service               the simulated Periscope backend
    player                client-side playback
    world                 mesoscale viewer cohorts over the service
    crawler, core         crawls and study orchestration
    campaign              crash-safe memoized sweeps over core studies
    analysis              stats + terminal figures
    experiments, lint     entry points and tooling

``obs`` is the one deliberate exception: it must be importable from
*anywhere* (so any layer can emit telemetry) and may itself import only
``util`` — and not ``util.rng`` even then, so telemetry can never touch
the experiment seed tree.  The O-rules pin that down.

Process-level parallelism is likewise pinned down:
``repro.core.parallel`` (session fan-out) and ``repro.world.shards``
(population-shard fan-out) are the only modules that may import
``multiprocessing``/``concurrent.futures``
(:data:`PROCESS_POOL_MODULES`, rule L304).

A package missing from :data:`RANKS` fails the lint run (L303): adding
a package means deciding where it sits, in this file, in the same PR.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Package -> rank.  An import edge A -> B is legal iff
#: ``RANKS[A] > RANKS[B]`` (or A == B).  Equal ranks may not import each
#: other: packages that must talk get distinct ranks.
RANKS: Dict[str, int] = {
    "util": 0,
    "obs": 5,
    "faults": 8,
    "media": 10,
    "energy": 10,
    "netsim": 12,
    "protocols": 15,
    "automation": 25,
    "capture": 30,
    "service": 40,
    "player": 50,
    "world": 55,
    "crawler": 60,
    "core": 60,
    "campaign": 62,
    "analysis": 65,
    "experiments": 70,
    "lint": 70,
}

#: Importable from every layer (telemetry must reach the lowest ones).
UNIVERSAL_TARGETS = frozenset({"obs"})

#: What ``obs`` itself may import.
OBS_ALLOWED_TARGETS = frozenset({"obs", "util"})

#: Modules ``obs`` may never import, even though their package would be
#: allowed: telemetry must not be able to consume experiment RNG or
#: reorder simulation events.
OBS_FORBIDDEN_MODULES = frozenset({"repro.util.rng", "repro.netsim.events"})

#: Packages whose hot paths must stay hermetic: no environment reads,
#: no filesystem access (D105).  ``campaign`` is deliberately absent:
#: its content-addressed store *is* the sanctioned filesystem surface —
#: checkpoints, journals, and blobs live there so the hermetic layers
#: never have to touch disk themselves.
HERMETIC_PACKAGES = frozenset(
    {"netsim", "service", "player", "media", "faults", "world"}
)

#: Packages allowed to read the wall clock (D101): telemetry measures
#: real elapsed time, and automation models real testbed clocks.
WALL_CLOCK_PACKAGES = frozenset({"obs", "automation"})

#: Simulation packages where float time-comparison discipline (F-rules)
#: applies.
SIM_PACKAGES = frozenset(
    {"netsim", "service", "player", "media", "protocols", "core", "crawler",
     "faults", "world"}
)

#: The only modules allowed to import ``multiprocessing`` /
#: ``concurrent.futures`` (L304).  Process fan-out must stay behind
#: :mod:`repro.core.parallel` and the world-shard driver
#: :mod:`repro.world.shards`, which guarantee serial sampling, seeded
#: worker bootstrap, and index-ordered merges — ad-hoc pools elsewhere
#: would have none of those and silently break bit-identical replays.
PROCESS_POOL_MODULES = frozenset({"repro.core.parallel", "repro.world.shards"})


def rank_of(package: str) -> Optional[int]:
    """Rank for a package name, or None when undeclared.

    ``""`` (the ``repro`` root package itself) is the public facade and
    may re-export from anywhere, like ``experiments``.
    """
    if package == "":
        return max(RANKS.values()) + 1
    return RANKS.get(package)


def edge_allowed(importer: str, target: str) -> bool:
    """Is a top-level import from package ``importer`` to ``target`` legal?

    Both arguments are package names (first component under ``repro``).
    Unknown packages are *not* decided here — L303 reports them.
    """
    if importer == target:
        return True
    if target in UNIVERSAL_TARGETS:
        return True
    if importer == "obs":
        return target in OBS_ALLOWED_TARGETS
    importer_rank = rank_of(importer)
    target_rank = rank_of(target)
    if importer_rank is None or target_rank is None:
        return True  # undeclared package: L303's problem, not L301's
    return importer_rank > target_rank
