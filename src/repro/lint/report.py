"""Rendering lint results as text (humans) or JSON (CI)."""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.runner import LintResult


def format_text(result: LintResult, show_baselined: bool = False) -> str:
    lines: List[str] = []
    for finding in result.findings:
        lines.append(
            f"{finding.location()}: {finding.rule} [{finding.severity}] "
            f"{finding.message}"
        )
    if show_baselined:
        for finding in result.baselined:
            lines.append(
                f"{finding.location()}: {finding.rule} [baselined] "
                f"{finding.message}"
            )
    for entry in result.stale_baseline:
        lines.append(
            f"note: stale baseline entry {entry.rule} @ {entry.path} "
            f"({entry.fingerprint}) no longer matches; refresh with "
            f"--write-baseline"
        )
    for path, pragma in result.stale_pragmas:
        lines.append(
            f"note: stale pragma disable-file={pragma.rule} @ "
            f"{path}:{pragma.line} suppressed nothing; remove it"
        )
    summary = (
        f"{len(result.files)} files checked: "
        f"{len(result.findings)} finding(s), "
        f"{len(result.baselined)} baselined, "
        f"{result.suppressed_count} suppressed by pragma, "
        f"{len(result.stale_baseline)} stale baseline entr"
        f"{'y' if len(result.stale_baseline) == 1 else 'ies'}, "
        f"{len(result.stale_pragmas)} stale pragma(s)"
    )
    lines.append(summary)
    return "\n".join(lines)


def format_json(result: LintResult) -> str:
    payload: Dict[str, object] = {
        "version": 1,
        "files_checked": len(result.files),
        "findings": [finding.to_json() for finding in result.findings],
        "baselined": [finding.to_json() for finding in result.baselined],
        "stale_baseline": [entry.to_json() for entry in result.stale_baseline],
        "stale_pragmas": [
            {"path": path, **pragma.to_json()}
            for path, pragma in result.stale_pragmas
        ],
        "counts": {
            "new": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.suppressed_count,
            "stale_baseline": len(result.stale_baseline),
            "stale_pragmas": len(result.stale_pragmas),
        },
        "ok": result.ok,
    }
    return json.dumps(payload, indent=2) + "\n"
