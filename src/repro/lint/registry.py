"""The rule plugin registry.

Rules come in two shapes:

* :class:`FileRule` — sees one :class:`~repro.lint.modinfo.ModuleInfo`
  at a time (most AST checks).
* :class:`ProjectRule` — sees every module at once (import graph,
  cycles, layering).

A rule registers itself with :func:`register`; the runner instantiates
each registered class once per invocation.  Rule ids are ``<family
letter><3 digits>`` — D determinism, O observability purity,
L layering, F float discipline, U units/dimensions, R RNG taint,
P process-pool safety — and must be unique.
"""

from __future__ import annotations

import re
from typing import Dict, Iterable, Iterator, List, Type

from repro.lint.findings import Finding
from repro.lint.modinfo import ModuleInfo

_ID_RE = re.compile(r"^[A-Z][0-9]{3}$")


class Rule:
    """Common base: identity and metadata."""

    id: str = ""
    name: str = ""
    description: str = ""
    severity: str = "error"

    def finding(self, module: ModuleInfo, line: int, col: int, message: str) -> Finding:
        return Finding(
            rule=self.id,
            path=module.path,
            line=line,
            col=col,
            message=message,
            severity=self.severity,
            line_text=module.line_text(line),
        )


class FileRule(Rule):
    """A rule evaluated independently per file."""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        raise NotImplementedError


class ProjectRule(Rule):
    """A rule evaluated over the whole module set."""

    def check_project(self, modules: List[ModuleInfo]) -> Iterator[Finding]:
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    rule_id = rule_class.id
    if not _ID_RE.match(rule_id):
        raise ValueError(f"bad rule id {rule_id!r} on {rule_class.__name__}")
    existing = _REGISTRY.get(rule_id)
    if existing is not None and existing is not rule_class:
        raise ValueError(f"duplicate rule id {rule_id}: "
                         f"{existing.__name__} and {rule_class.__name__}")
    _REGISTRY[rule_id] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, sorted by id."""
    _load_builtin_rules()
    return [_REGISTRY[rule_id]() for rule_id in sorted(_REGISTRY)]


def rule_ids() -> List[str]:
    _load_builtin_rules()
    return sorted(_REGISTRY)


def iter_rule_metadata() -> Iterable[Dict[str, str]]:
    """Id/name/description/severity for ``--list-rules`` and the docs."""
    for rule in all_rules():
        yield {
            "id": rule.id,
            "name": rule.name,
            "description": rule.description,
            "severity": rule.severity,
        }


def _load_builtin_rules() -> None:
    """Import the rule modules so their ``@register`` decorators run."""
    from repro.lint import (  # noqa: F401  (imported for side effect)
        rules_determinism,
        rules_float,
        rules_layering,
        rules_obs,
        rules_pool,
        rules_rng,
        rules_units,
    )
