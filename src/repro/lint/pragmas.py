"""Suppression pragmas: per-line and per-file.

A finding is suppressed when the flagged physical line carries::

    something()  # lint: disable=D102
    other()      # lint: disable=D102,L301
    anything()   # lint: disable=all

or when the file carries a file-level pragma: an unindented comment
line (column 0, conventionally right after the module docstring) of
the form ``# lint: disable-file=U504`` or
``# lint: disable-file=R601,R603``.

The per-line form applies to that line only, which keeps every
suppression visible next to the code it excuses.  The file-level form
exists for files that are *about* the hazard a rule polices (fixtures,
torture tests) where a pragma per line would drown the code.  Each
``disable-file`` rule id is tracked like a baseline entry: if it
suppresses nothing, the run reports the pragma as **stale** so dead
suppressions can't accumulate silently.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Tuple

_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*disable=(?P<rules>all|[A-Z][0-9]{3}(?:\s*,\s*[A-Z][0-9]{3})*)"
)

#: Anchored at column 0: a file-wide suppression must be a standalone
#: top-level comment, which also keeps indented doc examples inert.
_FILE_PRAGMA_RE = re.compile(
    r"^#\s*lint:\s*disable-file="
    r"(?P<rules>all|[A-Z][0-9]{3}(?:\s*,\s*[A-Z][0-9]{3})*)"
)

#: Sentinel meaning "every rule" on the pragma line.
ALL = frozenset(("all",))


@dataclass(frozen=True)
class FilePragma:
    """One rule id disabled file-wide by a ``disable-file`` pragma."""

    line: int      # 1-based line carrying the pragma
    rule: str      # a rule id, or "all"

    def to_json(self) -> Dict[str, object]:
        return {"line": self.line, "rule": self.rule}


def parse_pragmas(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number -> set of disabled rule ids (or :data:`ALL`)."""
    pragmas: Dict[int, FrozenSet[str]] = {}
    for number, line in enumerate(lines, start=1):
        if "lint:" not in line:
            continue
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        spec = match.group("rules")
        if spec == "all":
            pragmas[number] = ALL
        else:
            pragmas[number] = frozenset(
                part.strip() for part in spec.split(",") if part.strip()
            )
    return pragmas


def parse_file_pragmas(lines: Sequence[str]) -> List[FilePragma]:
    """Every ``# lint: disable-file=`` entry in the file, one per rule id
    (so staleness is tracked per id, not per pragma line)."""
    entries: List[FilePragma] = []
    for number, line in enumerate(lines, start=1):
        if "lint:" not in line:
            continue
        match = _FILE_PRAGMA_RE.match(line)
        if match is None:
            continue
        spec = match.group("rules")
        if spec == "all":
            entries.append(FilePragma(line=number, rule="all"))
        else:
            for part in spec.split(","):
                part = part.strip()
                if part:
                    entries.append(FilePragma(line=number, rule=part))
    return entries


def suppressed(pragmas: Dict[int, FrozenSet[str]], line: int, rule: str) -> bool:
    """True when ``rule`` is disabled on ``line``."""
    disabled = pragmas.get(line)
    if disabled is None:
        return False
    return disabled is ALL or "all" in disabled or rule in disabled


def file_suppressed(
    file_pragmas: Sequence[FilePragma], rule: str
) -> Tuple[bool, Tuple[FilePragma, ...]]:
    """Whether ``rule`` is disabled file-wide, plus the matching entries
    (all of them — duplicates must each count as used, not go stale)."""
    matches = tuple(
        entry for entry in file_pragmas
        if entry.rule == "all" or entry.rule == rule
    )
    return bool(matches), matches
