"""Per-line suppression pragmas.

A finding is suppressed when the flagged physical line carries::

    something()  # lint: disable=D102
    other()      # lint: disable=D102,L301
    anything()   # lint: disable=all

The pragma applies to that line only — there is no block or file scope,
which keeps every suppression visible next to the code it excuses.
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Sequence

_PRAGMA_RE = re.compile(
    r"#\s*lint:\s*disable=(?P<rules>all|[A-Z][0-9]{3}(?:\s*,\s*[A-Z][0-9]{3})*)"
)

#: Sentinel meaning "every rule" on the pragma line.
ALL = frozenset(("all",))


def parse_pragmas(lines: Sequence[str]) -> Dict[int, FrozenSet[str]]:
    """Map 1-based line number -> set of disabled rule ids (or :data:`ALL`)."""
    pragmas: Dict[int, FrozenSet[str]] = {}
    for number, line in enumerate(lines, start=1):
        if "lint:" not in line:
            continue
        match = _PRAGMA_RE.search(line)
        if match is None:
            continue
        spec = match.group("rules")
        if spec == "all":
            pragmas[number] = ALL
        else:
            pragmas[number] = frozenset(
                part.strip() for part in spec.split(",") if part.strip()
            )
    return pragmas


def suppressed(pragmas: Dict[int, FrozenSet[str]], line: int, rule: str) -> bool:
    """True when ``rule`` is disabled on ``line``."""
    disabled = pragmas.get(line)
    if disabled is None:
        return False
    return disabled is ALL or "all" in disabled or rule in disabled
