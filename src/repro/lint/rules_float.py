"""F-rules: float discipline on simulated time.

Simulated time is a float in seconds (netsim.events).  Exact equality
on derived times and accumulated float counters used as event times are
the two classic ways reproductions drift across platforms:

* **F401** — ``==``/``!=`` between sim-time expressions (or a sim-time
  expression and a fractional float literal).  Compare with a tolerance
  (``abs(a - b) < eps``) or restructure so the comparison is exact by
  construction (comparisons against integer literals/``0.0`` sentinels
  are exempt).
* **F402** — a float counter accumulated with ``+=`` inside a loop and
  passed to ``schedule_at`` as an absolute event time; accumulated
  rounding error skews every later event.  Compute
  ``start + i * step`` instead.
* **F403** — ``==``/``!=`` on bandwidth-limit attributes
  (``*_mbps`` / ``bandwidth_limit*``).  Sweep points are routinely
  computed (``0.1 * 5`` is not ``0.5``), so exact equality silently
  drops sessions from a limit bucket; match with ``math.isclose``.
  Comparisons against integer literals and ``0.0`` sentinels are
  exempt, mirroring F401.

All rules apply only to the simulation packages (layers.SIM_PACKAGES).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.layers import SIM_PACKAGES
from repro.lint.modinfo import ModuleInfo
from repro.lint.registry import FileRule, register

#: Identifier components that mark a name as "a simulated time".
_TIME_TOKENS = frozenset({
    "now", "pts", "deadline", "until", "at", "timestamp", "clock",
    "time", "seconds", "expiry", "arrival",
})


def _name_is_timelike(identifier: str) -> bool:
    if identifier.endswith("_s"):
        return True
    parts = identifier.lower().strip("_").split("_")
    return any(part in _TIME_TOKENS for part in parts)


def _expr_is_timelike(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return _name_is_timelike(node.id)
    if isinstance(node, ast.Attribute):
        return _name_is_timelike(node.attr)
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.Add, ast.Sub, ast.Mult, ast.Div)
    ):
        return _expr_is_timelike(node.left) or _expr_is_timelike(node.right)
    if isinstance(node, ast.UnaryOp):
        return _expr_is_timelike(node.operand)
    return False


def _is_exempt_literal(node: ast.expr) -> bool:
    """Integer literals and 0.0 are sentinel comparisons, not drift."""
    if isinstance(node, ast.Constant):
        if isinstance(node.value, bool):
            return True
        if isinstance(node.value, int):
            return True
        if isinstance(node.value, float):
            return node.value == 0.0
        return node.value is None
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return _is_exempt_literal(node.operand)
    return False


def _is_fractional_float(node: ast.expr) -> bool:
    return (
        isinstance(node, ast.Constant)
        and isinstance(node.value, float)
        and node.value != 0.0
    )


@register
class TimeEqualityRule(FileRule):
    id = "F401"
    name = "sim-time-equality"
    description = (
        "exact ==/!= on simulated-time expressions; accumulated float "
        "error makes exact equality platform-dependent — use a "
        "tolerance or compare exact-by-construction values"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.package not in SIM_PACKAGES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_exempt_literal(left) or _is_exempt_literal(right):
                    continue
                flagged = (
                    (_expr_is_timelike(left) and _expr_is_timelike(right))
                    or (_expr_is_timelike(left) and _is_fractional_float(right))
                    or (_is_fractional_float(left) and _expr_is_timelike(right))
                )
                if flagged:
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "exact equality on sim-time floats; use "
                        "abs(a - b) < eps or make the values exact by "
                        "construction",
                    )


def _name_is_bandwidth_limit(identifier: str) -> bool:
    lowered = identifier.lower()
    return lowered.endswith("_mbps") or lowered.startswith("bandwidth_limit")


def _expr_is_bandwidth_limit(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return _name_is_bandwidth_limit(node.id)
    if isinstance(node, ast.Attribute):
        return _name_is_bandwidth_limit(node.attr)
    return False


@register
class BandwidthLimitEqualityRule(FileRule):
    id = "F403"
    name = "bandwidth-limit-equality"
    description = (
        "exact ==/!= on a bandwidth-limit attribute (*_mbps, "
        "bandwidth_limit*); sweep points are computed floats — match "
        "with math.isclose"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.package not in SIM_PACKAGES:
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left] + list(node.comparators)
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_exempt_literal(left) or _is_exempt_literal(right):
                    continue
                if _expr_is_bandwidth_limit(left) or _expr_is_bandwidth_limit(right):
                    yield self.finding(
                        module, node.lineno, node.col_offset,
                        "exact equality on a bandwidth-limit float; sweep "
                        "points are computed (0.1 * 5 != 0.5) — use "
                        "math.isclose(a, b)",
                    )


class _AccumulatedTimeVisitor(ast.NodeVisitor):
    """Loops where a ``+=``-accumulated float is scheduled absolutely."""

    def __init__(self) -> None:
        self.hits: List[Tuple[int, int, str]] = []

    def _check_loop(self, loop: ast.AST) -> None:
        accumulated: dict = {}
        for node in ast.walk(loop):
            if (isinstance(node, ast.AugAssign)
                    and isinstance(node.op, ast.Add)
                    and isinstance(node.target, ast.Name)):
                value = node.value
                int_step = isinstance(value, ast.Constant) and isinstance(value.value, int)
                if not int_step:
                    accumulated.setdefault(node.target.id, (node.lineno, node.col_offset))
        if not accumulated:
            return
        scheduled: Set[str] = set()
        for node in ast.walk(loop):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "schedule_at"
                    and node.args):
                continue
            for name_node in ast.walk(node.args[0]):
                if isinstance(name_node, ast.Name) and name_node.id in accumulated:
                    scheduled.add(name_node.id)
        for name in sorted(scheduled):
            line, col = accumulated[name]
            self.hits.append((line, col, name))

    def visit_For(self, node: ast.For) -> None:
        self._check_loop(node)
        self.generic_visit(node)

    def visit_While(self, node: ast.While) -> None:
        self._check_loop(node)
        self.generic_visit(node)


@register
class AccumulatedEventTimeRule(FileRule):
    id = "F402"
    name = "accumulated-event-time"
    description = (
        "float accumulated with += in a loop and used as an absolute "
        "schedule_at time; rounding error compounds — derive each time "
        "as start + i * step"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.package not in SIM_PACKAGES:
            return
        visitor = _AccumulatedTimeVisitor()
        visitor.visit(module.tree)
        for line, col, name in visitor.hits:
            yield self.finding(
                module, line, col,
                f"'{name}' accumulates float error in this loop and is "
                f"passed to schedule_at; compute it as start + i * step",
            )
