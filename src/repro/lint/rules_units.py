"""U-rules: flow-sensitive unit/dimension checking.

Built on :mod:`repro.lint.cfg` + :mod:`repro.lint.dataflow` with the
dimension algebra from :mod:`repro.lint.dimensions`.  Dimensions enter
through the repo's suffix conventions (``_s``, ``_bytes``, ``_bps``,
``delay_*``, ...) and the explicit overrides table, then flow through
assignments — so ``d = t1 - t0; total = d + wire_bytes`` is caught even
though no single line mixes suffixes.

* **U501** — arithmetic or comparison mixing incompatible dimensions
  (seconds + bytes, ``delay_s < n_bytes``, mbps + bps).
* **U502** — adding or multiplying two absolute sim-timestamps;
  subtracting them (a duration) is the only meaningful combination.
* **U503** — a function whose name declares a dimension (``*_s``,
  ``*_bps``, ``*_bytes``, ``*_ratio``) returns a value of a
  conflicting inferred dimension.
* **U504** — missing ``* 8.0`` byte->bit conversion: dividing bytes by
  a bps rate, or storing a bytes-per-second value in a ``*_bps`` name.
* **U505** — assigning (or passing as a keyword argument) a value whose
  inferred dimension conflicts with the dimension the target name
  declares.

All reports require both sides to have *known* dimensions; anything the
algebra does not model evaluates to unknown and stays silent, keeping
the rules conservative.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator, List, Optional, Tuple

from repro.lint import dimensions as dims
from repro.lint.cfg import FunctionCFG
from repro.lint.dataflow import (
    Env,
    ForwardAnalysis,
    iter_shallow_exprs,
    transfer_assignments,
)
from repro.lint.findings import Finding
from repro.lint.modinfo import ModuleInfo
from repro.lint.registry import FileRule, register

#: (rule_id, line, col, message) tuples produced by one module analysis.
RawFinding = Tuple[str, int, int, str]

Report = Optional[Callable[[ast.AST, str, str], None]]

_OP_NAMES = {
    ast.Add: "add", ast.Sub: "sub", ast.Mult: "mult",
    ast.Div: "div", ast.FloorDiv: "div", ast.Mod: "mod",
}

#: Calls whose result keeps the dimension of their first argument.
_PASSTHROUGH_CALLS = frozenset({
    "abs", "float", "round", "int", "ceil", "floor", "fabs", "copysign",
})

_ERROR_RULES = {"mix": "U501", "timestamp": "U502", "bytes_per_bps": "U504"}

_ERROR_MESSAGES = {
    "mix": "arithmetic mixes incompatible dimensions ({left} and {right})",
    "timestamp": (
        "{op} two absolute sim-timestamps is meaningless; only their "
        "difference (a duration in seconds) is"
    ),
    "bytes_per_bps": (
        "bytes divided by a bps rate: missing the * 8.0 byte->bit "
        "conversion (write wire_bytes * 8.0 / rate_bps)"
    ),
}


def _literal_value(node: ast.expr) -> object:
    if isinstance(node, ast.Constant) and isinstance(node.value, (int, float)) \
            and not isinstance(node.value, bool):
        return node.value
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _literal_value(node.operand)
        if isinstance(inner, (int, float)):
            return -inner
    return None


class DimensionAnalysis(ForwardAnalysis):
    """Forward dimension propagation over one function CFG."""

    def __init__(self) -> None:
        self.raw: List[RawFinding] = []

    # -- lattice --------------------------------------------------------------

    def join_values(self, a, b):
        return dims.join(a, b)

    # -- expression evaluation ------------------------------------------------

    def evaluate(self, node: ast.expr, env: Env, report: Report = None) -> Optional[str]:
        if isinstance(node, ast.Constant):
            if isinstance(node.value, (int, float)) and not isinstance(node.value, bool):
                return dims.SCALAR
            return None
        if isinstance(node, ast.Name):
            flow = env.get(node.id)
            if flow is not None:
                return flow
            return dims.dimension_of_name(node.id)
        if isinstance(node, ast.Attribute):
            self.evaluate(node.value, env, report)
            return dims.dimension_of_name(node.attr)
        if isinstance(node, ast.BinOp):
            return self._eval_binop(node, env, report)
        if isinstance(node, ast.UnaryOp):
            operand = self.evaluate(node.operand, env, report)
            if isinstance(node.op, (ast.USub, ast.UAdd)):
                return operand
            return None
        if isinstance(node, ast.Compare):
            self._eval_compare(node, env, report)
            return None
        if isinstance(node, ast.BoolOp):
            values = [self.evaluate(operand, env, report) for operand in node.values]
            value = values[0]
            for other in values[1:]:
                value = dims.join(value, other)
            return value
        if isinstance(node, ast.IfExp):
            self.evaluate(node.test, env, report)
            body = self.evaluate(node.body, env, report)
            orelse = self.evaluate(node.orelse, env, report)
            return dims.join(body, orelse)
        if isinstance(node, ast.NamedExpr):
            value = self.evaluate(node.value, env, report)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, report)
        if isinstance(node, (ast.List, ast.Tuple, ast.Set)):
            for element in node.elts:
                self.evaluate(element, env, report)
            return None
        if isinstance(node, ast.Dict):
            for key in node.keys:
                if key is not None:
                    self.evaluate(key, env, report)
            for value in node.values:
                self.evaluate(value, env, report)
            return None
        if isinstance(node, ast.Subscript):
            self.evaluate(node.value, env, report)
            return None
        if isinstance(node, (ast.Starred, ast.Await)):
            return self.evaluate(node.value, env, report)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            inner = dict(env)
            for generator in node.generators:
                self.evaluate(generator.iter, inner, report)
                for name in _comp_names(generator.target):
                    inner[name] = None
                for condition in generator.ifs:
                    self.evaluate(condition, inner, report)
            if isinstance(node, ast.DictComp):
                self.evaluate(node.key, inner, report)
                self.evaluate(node.value, inner, report)
            else:
                self.evaluate(node.elt, inner, report)
            return None
        if isinstance(node, ast.JoinedStr):
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    self.evaluate(value.value, env, report)
            return None
        # Lambdas (separate scope), yields, slices, ... : unknown.
        return None

    def _eval_binop(self, node: ast.BinOp, env: Env, report: Report) -> Optional[str]:
        left = self.evaluate(node.left, env, report)
        right = self.evaluate(node.right, env, report)
        op = _OP_NAMES.get(type(node.op))
        if op is None:
            return None
        result, error = dims.combine(
            op, left, right,
            right_literal=_literal_value(node.right),
            left_literal=_literal_value(node.left),
        )
        if error is not None and report is not None:
            message = _ERROR_MESSAGES[error].format(
                left=left, right=right,
                op="adding" if op == "add" else "multiplying",
            )
            report(node, _ERROR_RULES[error], message)
        return result

    def _eval_compare(self, node: ast.Compare, env: Env, report: Report) -> None:
        operands = [node.left] + list(node.comparators)
        values = [self.evaluate(operand, env, report) for operand in operands]
        for op, left, right in zip(node.ops, values, values[1:]):
            if not isinstance(op, (ast.Lt, ast.LtE, ast.Gt, ast.GtE, ast.Eq, ast.NotEq)):
                continue
            if left is None or right is None:
                continue
            if dims.compatible(left, right) or dims.compatible(right, left):
                continue
            if report is not None:
                report(
                    node, "U501",
                    f"comparison mixes incompatible dimensions "
                    f"({left} and {right})",
                )

    def _eval_call(self, node: ast.Call, env: Env, report: Report) -> Optional[str]:
        arg_values = [self.evaluate(arg, env, report) for arg in node.args]
        for keyword in node.keywords:
            value = self.evaluate(keyword.value, env, report)
            if keyword.arg is None or value is None:
                continue
            declared = dims.dimension_of_name(keyword.arg)
            if declared is None:
                continue
            if not dims.compatible(declared, value):
                if report is not None:
                    rule, message = _mismatch(keyword.arg, declared, value)
                    report(keyword.value, rule, message)

        func = node.func
        name = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            self.evaluate(func.value, env, report)
            name = func.attr
        if name == "bytes_to_bits":
            return dims.BITS
        if name == "bits_to_bytes":
            return dims.BYTES
        if name in _PASSTHROUGH_CALLS and arg_values:
            return arg_values[0]
        if name in ("min", "max") and arg_values:
            known = {v for v in arg_values if v not in (None, dims.SCALAR)}
            if len(known) == 1:
                return known.pop()
            return None
        return None

    # -- transfer -------------------------------------------------------------

    def transfer(self, stmt: ast.stmt, env: Env, report: Report = None) -> None:
        if isinstance(stmt, ast.AugAssign):
            self._transfer_augassign(stmt, env, report)
            return
        if isinstance(stmt, ast.Assign):
            value = self.evaluate(stmt.value, env, report)
            for target in stmt.targets:
                self._check_target(target, value, env, report)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                value = self.evaluate(stmt.value, env, report)
                self._check_target(stmt.target, value, env, report)
            return
        for expression in iter_shallow_exprs(stmt):
            self.evaluate(expression, env, report)
        transfer_assignments(stmt, env, lambda e, v: None)

    def _transfer_augassign(self, stmt: ast.AugAssign, env: Env, report: Report) -> None:
        target = stmt.target
        if isinstance(target, ast.Name):
            left = env.get(target.id) or dims.dimension_of_name(target.id)
        elif isinstance(target, ast.Attribute):
            left = dims.dimension_of_name(target.attr)
        else:
            left = None
        right = self.evaluate(stmt.value, env, report)
        op = _OP_NAMES.get(type(stmt.op))
        result: Optional[str] = None
        if op is not None:
            result, error = dims.combine(
                op, left, right, right_literal=_literal_value(stmt.value),
            )
            if error is not None and report is not None:
                message = _ERROR_MESSAGES[error].format(
                    left=left, right=right,
                    op="adding" if op == "add" else "multiplying",
                )
                report(stmt, _ERROR_RULES[error], message)
        if isinstance(target, ast.Name):
            env[target.id] = result

    def _check_target(
        self, target: ast.expr, value: Optional[str], env: Env, report: Report,
    ) -> None:
        """Bind + dimension-check one assignment target."""
        if isinstance(target, ast.Name):
            declared = dims.dimension_of_name(target.id)
            if (declared is not None and value is not None
                    and not dims.compatible(declared, value)
                    and report is not None):
                rule, message = _mismatch(target.id, declared, value)
                report(target, rule, message)
            env[target.id] = value
        elif isinstance(target, ast.Attribute):
            declared = dims.dimension_of_name(target.attr)
            if (declared is not None and value is not None
                    and not dims.compatible(declared, value)
                    and report is not None):
                rule, message = _mismatch(target.attr, declared, value)
                report(target, rule, message)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                if isinstance(element, ast.Starred):
                    element = element.value
                self._check_target(element, None, env, report)


def _mismatch(name: str, declared: str, actual: str) -> Tuple[str, str]:
    """Rule id + message for a declared-vs-inferred dimension conflict."""
    if actual == dims.BYTES_PER_S and declared in (dims.BPS, dims.SCALED_RATE):
        return "U504", (
            f"'{name}' declares {declared} but receives bytes/second; "
            f"missing the * 8.0 byte->bit conversion"
        )
    return "U505", (
        f"'{name}' declares dimension {declared} but receives a value "
        f"inferred as {actual}"
    )


def _comp_names(target: ast.expr) -> List[str]:
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            names.extend(_comp_names(element))
        return names
    return []


def _analyse_module(module: ModuleInfo) -> List[RawFinding]:
    """Run the dimension analysis once per module (memoized on the
    ModuleInfo, so the five U-rules share a single fixpoint)."""
    cached = module.analysis_cache.get("units")
    if cached is not None:
        return cached
    raw: List[RawFinding] = []
    seen = set()

    def report(node: ast.AST, rule: str, message: str) -> None:
        key = (rule, getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
        if key in seen:
            return
        seen.add(key)
        raw.append((rule, key[1], key[2], message))

    for cfg in module.function_cfgs():
        analysis = DimensionAnalysis()
        declared_return = dims.dimension_of_name(cfg.name) \
            if cfg.name != "<module>" else None

        def check_stmt(stmt: ast.stmt, env: Env,
                       declared_return=declared_return, cfg=cfg,
                       analysis=analysis) -> None:
            if isinstance(stmt, ast.Return) and stmt.value is not None \
                    and declared_return is not None:
                value = analysis.evaluate(stmt.value, dict(env), report)
                if value is not None and not dims.compatible(declared_return, value):
                    rule, message = _mismatch(cfg.name, declared_return, value)
                    # U504 (missing conversion) stays U504; every other
                    # declared-vs-inferred conflict on a return is U503.
                    if rule == "U505":
                        rule = "U503"
                    report(stmt, rule,
                           message.replace("declares dimension",
                                           "declares return dimension"))
                return
            analysis.transfer(stmt, dict(env), report)

        entry_envs = analysis.solve(cfg)
        for block in cfg.blocks:
            env = dict(entry_envs.get(block.bid, {}))
            for stmt in block.stmts:
                check_stmt(stmt, env)
                analysis.transfer(stmt, env)
    module.analysis_cache["units"] = raw
    return raw


class _UnitRule(FileRule):
    """Base for the five U-rules: filter the shared analysis by id."""

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.package == "lint":
            return
        for rule_id, line, col, message in _analyse_module(module):
            if rule_id == self.id:
                yield self.finding(module, line, col, message)


@register
class IncompatibleDimensionsRule(_UnitRule):
    id = "U501"
    name = "incompatible-dimensions"
    description = (
        "arithmetic or comparison mixing incompatible physical "
        "dimensions (seconds + bytes, delay_s < n_bytes, mbps + bps), "
        "propagated flow-sensitively through assignments"
    )


@register
class TimestampArithmeticRule(_UnitRule):
    id = "U502"
    name = "timestamp-arithmetic"
    description = (
        "adding or multiplying two absolute sim-timestamps; only their "
        "difference (a duration) is dimensionally meaningful"
    )


@register
class ReturnDimensionRule(_UnitRule):
    id = "U503"
    name = "declared-return-dimension"
    description = (
        "function name declares a dimension (*_s, *_bps, *_bytes, "
        "*_ratio) but a return statement yields a conflicting inferred "
        "dimension"
    )


@register
class ByteBitConversionRule(_UnitRule):
    id = "U504"
    name = "missing-byte-bit-conversion"
    description = (
        "bytes divided by a bps rate, or a bytes-per-second value "
        "stored in a *_bps name: the * 8.0 byte->bit conversion is "
        "missing"
    )


@register
class DeclaredDimensionAssignRule(_UnitRule):
    id = "U505"
    name = "declared-dimension-assignment"
    description = (
        "assignment or keyword argument whose value's inferred "
        "dimension conflicts with the dimension the target name "
        "declares by suffix convention"
    )
