"""R-rules: RNG-taint analysis.

The bit-identity guarantee (telemetry on/off, workers 1/2/4, replayed
traces) holds because every random stream derives from the experiment
seed through ``repro.util.rng`` and because *no* RNG draw depends on
telemetry state.  These rules are the static counterpart of the
bit-identity tests: the dataflow engine taints values originating at
RNG sources (``make_rng``/``child_rng``/``SeedSequence.rng``/
``random.Random``/``rng``-named parameters) and checks how tainted
values are consumed.

* **R601** — ``.seed(...)`` / ``.setstate(...)`` called on an
  RNG-tainted value outside ``repro.util.rng``: re-seeding a derived
  stream collapses the independence ``child_rng`` guarantees.
* **R602** — an RNG draw control-dependent on telemetry enable state
  (``metrics_enabled``, ``causes_enabled``, ``tracing_on``,
  ``telemetry.enabled``, ...): the draw (or its absence) shifts every
  later consumer of the stream, so results with telemetry on would
  diverge from results with it off.  Both branches of such an ``if``
  are control-dependent and both are checked.
* **R603** — an RNG-tainted value escaping to a module global (a
  module-level RNG singleton, or ``global x; x = rng``) outside
  ``repro.util.rng``: hidden shared streams make draw order
  load-bearing across call sites.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.cfg import FUNCTION_NODES
from repro.lint.dataflow import (
    Env,
    ForwardAnalysis,
    iter_shallow_exprs,
    transfer_assignments,
)
from repro.lint.findings import Finding
from repro.lint.modinfo import ModuleInfo
from repro.lint.registry import FileRule, register
from repro.lint.rules_determinism import _RANDOM_MODULE_FUNCS

RawFinding = Tuple[str, int, int, str]

#: The abstract "this value is (derived from) a random.Random" tag.
RNG = "rng"

#: Functions/methods that *produce* an RNG.
_RNG_FACTORY_NAMES = frozenset({"make_rng", "child_rng"})
_RNG_CLASS_NAMES = frozenset({"Random", "SystemRandom"})

#: Methods that consume stream state (a draw).
DRAW_METHODS = frozenset(_RANDOM_MODULE_FUNCS - {"seed"})

#: Methods that rewrite stream state wholesale.
RESEED_METHODS = frozenset({"seed", "setstate"})

#: Telemetry enable flags an RNG draw may never be gated on.  These are
#: the O203 guard flags plus the StudyConfig spellings.
TELEMETRY_GUARD_NAMES = frozenset({
    "metrics_enabled", "causes_enabled", "health_enabled",
    "tracing_enabled", "profiling_enabled",
    "metrics_on", "tracing_on", "causes_on", "health_on", "profiling_on",
})

#: Receivers whose bare ``.enabled`` attribute counts as telemetry state.
_TELEMETRY_RECEIVERS = frozenset({"telemetry", "obs", "tele"})


def _name_is_rng(name: str) -> bool:
    return name == "rng" or name.endswith("_rng")


class RngTaintAnalysis(ForwardAnalysis):
    """May-taint: a variable maps to :data:`RNG` when any path binds it
    to an RNG-derived value."""

    def join_values(self, a, b):
        return RNG if RNG in (a, b) else None

    def evaluate(self, node: ast.expr, env: Env) -> Optional[str]:
        if isinstance(node, ast.Name):
            if env.get(node.id) == RNG:
                return RNG
            return RNG if _name_is_rng(node.id) else None
        if isinstance(node, ast.Attribute):
            return RNG if _name_is_rng(node.attr) else None
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Name):
                if func.id in _RNG_FACTORY_NAMES or func.id in _RNG_CLASS_NAMES:
                    return RNG
            elif isinstance(func, ast.Attribute):
                if func.attr in _RNG_FACTORY_NAMES or func.attr in _RNG_CLASS_NAMES:
                    return RNG
                if func.attr == "rng":
                    return RNG  # SeedSequence.rng(...)
            return None
        if isinstance(node, ast.NamedExpr):
            value = self.evaluate(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        if isinstance(node, ast.IfExp):
            body = self.evaluate(node.body, env)
            orelse = self.evaluate(node.orelse, env)
            return self.join_values(body, orelse)
        return None

    def transfer(self, stmt: ast.stmt, env: Env) -> None:
        for expression in iter_shallow_exprs(stmt):
            for walrus in ast.walk(expression):
                if isinstance(walrus, ast.NamedExpr):
                    self.evaluate(walrus, env)
        transfer_assignments(stmt, env, self.evaluate)


def _guarded_regions(func: ast.AST) -> Dict[int, str]:
    """Map node id -> guard flag for every node inside a branch whose
    condition references telemetry enable state."""
    guarded: Dict[int, str] = {}
    for node in ast.walk(func):
        test: Optional[ast.expr] = None
        branches: List[ast.AST] = []
        if isinstance(node, (ast.If, ast.While)):
            test = node.test
            branches = list(node.body) + list(node.orelse)
        elif isinstance(node, ast.IfExp):
            test = node.test
            branches = [node.body, node.orelse]
        if test is None:
            continue
        flag = _telemetry_flag_in(test)
        if flag is None:
            continue
        for branch in branches:
            for inner in ast.walk(branch):
                guarded.setdefault(id(inner), flag)
    return guarded


def _telemetry_flag_in(test: ast.expr) -> Optional[str]:
    for node in ast.walk(test):
        if isinstance(node, ast.Name) and node.id in TELEMETRY_GUARD_NAMES:
            return node.id
        if isinstance(node, ast.Attribute):
            if node.attr in TELEMETRY_GUARD_NAMES:
                return node.attr
            if node.attr == "enabled" and isinstance(node.value, ast.Name) \
                    and (node.value.id in _TELEMETRY_RECEIVERS
                         or node.value.id.startswith("tele")):
                return f"{node.value.id}.enabled"
    return None


def _global_names(func: ast.AST) -> Set[str]:
    names: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            names.update(node.names)
    return names


def _analyse_module(module: ModuleInfo) -> List[RawFinding]:
    cached = module.analysis_cache.get("rng")
    if cached is not None:
        return cached
    raw: List[RawFinding] = []
    seen = set()

    def report(node: ast.AST, rule: str, message: str) -> None:
        key = (rule, getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
        if key not in seen:
            seen.add(key)
            raw.append((rule, key[1], key[2], message))

    in_rng_module = module.module == "repro.util.rng"
    for cfg in module.function_cfgs():
        analysis = RngTaintAnalysis()
        is_module_body = cfg.name == "<module>"
        guarded = {} if is_module_body else _guarded_regions(cfg.node)
        globals_here = set() if is_module_body else _global_names(cfg.node)

        def check_stmt(stmt: ast.stmt, env: Env, analysis=analysis,
                       guarded=guarded, globals_here=globals_here,
                       is_module_body=is_module_body) -> None:
            # R603: RNG escaping to module scope.
            if isinstance(stmt, ast.Assign) and not in_rng_module:
                if analysis.evaluate(stmt.value, dict(env)) == RNG:
                    for target in stmt.targets:
                        if not isinstance(target, ast.Name):
                            continue
                        if is_module_body or target.id in globals_here:
                            report(
                                stmt, "R603",
                                f"RNG-derived value stored in module global "
                                f"'{target.id}'; hidden shared streams make "
                                f"draw order load-bearing — derive streams "
                                f"locally via repro.util.rng.child_rng",
                            )
            # R601 / R602: method calls on tainted receivers.
            for expression in iter_shallow_exprs(stmt):
                for node in ast.walk(expression):
                    if not (isinstance(node, ast.Call)
                            and isinstance(node.func, ast.Attribute)):
                        continue
                    method = node.func.attr
                    if method not in DRAW_METHODS and method not in RESEED_METHODS:
                        continue
                    if analysis.evaluate(node.func.value, dict(env)) != RNG:
                        continue
                    if method in RESEED_METHODS and not in_rng_module:
                        report(
                            node, "R601",
                            f".{method}() on a derived RNG stream collapses "
                            f"the independence child_rng guarantees; create "
                            f"a fresh child stream instead",
                        )
                    elif method in DRAW_METHODS and id(node) in guarded:
                        report(
                            node, "R602",
                            f"RNG draw .{method}() is control-dependent on "
                            f"telemetry state ({guarded[id(node)]}); the "
                            f"draw must happen unconditionally or results "
                            f"diverge when telemetry toggles",
                        )

        entry_envs = analysis.solve(cfg)
        for block in cfg.blocks:
            env = dict(entry_envs.get(block.bid, {}))
            for stmt in block.stmts:
                check_stmt(stmt, env)
                analysis.transfer(stmt, env)
    module.analysis_cache["rng"] = raw
    return raw


class _RngRule(FileRule):
    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.package == "lint":
            return
        for rule_id, line, col, message in _analyse_module(module):
            if rule_id == self.id:
                yield self.finding(module, line, col, message)


@register
class RngReseedRule(_RngRule):
    id = "R601"
    name = "rng-reseed"
    description = (
        ".seed()/.setstate() on an RNG stream derived from the "
        "experiment seed tree; re-seeding collapses stream independence "
        "— derive a fresh child via repro.util.rng.child_rng instead"
    )


@register
class TelemetryGatedDrawRule(_RngRule):
    id = "R602"
    name = "telemetry-gated-rng-draw"
    description = (
        "RNG draw control-dependent on a telemetry enable flag "
        "(metrics_enabled, causes_on, telemetry.enabled, ...); draws "
        "must not depend on observability state or bit-identity with "
        "telemetry off breaks"
    )


@register
class RngGlobalEscapeRule(_RngRule):
    id = "R603"
    name = "rng-module-global"
    description = (
        "RNG-derived value stored in a module-level global outside "
        "repro.util.rng; hidden module streams recreate the global-RNG "
        "hazard D102/D103 exist to prevent"
    )
