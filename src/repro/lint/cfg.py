"""Per-function control-flow graphs built from the AST.

The flow-sensitive rule families (U units, R RNG-taint, P pool safety)
need to reason about *which values reach which uses*, not just which
syntax appears — ``d = t1 - t0; total = d + wire_bytes`` is a unit bug
even though no single line mixes suffixes.  This module turns every
function body into a small CFG of basic blocks that the worklist solver
in :mod:`repro.lint.dataflow` iterates to a fixpoint.

Design constraints, in order:

1. **Never crash.**  The linter runs over every file in the repo (and
   arbitrary fixtures); an AST construct the builder does not model
   falls back to "straight-line statement", never an exception.  The
   crash-safety meta-test drives the builder over the whole tree and a
   torture fixture of exotic constructs.
2. **Over-approximate.**  Extra CFG edges only lose precision (joins
   widen to unknown); missing edges could let a rule claim a path that
   does not exist.  ``try`` bodies therefore edge to their handlers
   from the block *entering* the try as well as from the body's end.
3. **Stay tiny.**  Blocks are plain statement lists; expressions are
   not decomposed — the per-family transfer functions evaluate
   expressions directly.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import List, Optional

#: ``ast.Match`` exists only on Python >= 3.10; resolve it lazily so the
#: builder (and its tests) run unchanged on 3.9.
_MATCH = getattr(ast, "Match", None)

FUNCTION_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


@dataclass
class Block:
    """A straight-line run of statements with outgoing edges."""

    bid: int
    stmts: List[ast.stmt] = field(default_factory=list)
    succs: List["Block"] = field(default_factory=list)

    def add_succ(self, other: "Block") -> None:
        if other is not None and other not in self.succs:
            self.succs.append(other)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Block({self.bid}, stmts={len(self.stmts)}, "
                f"succs={[b.bid for b in self.succs]})")


@dataclass
class FunctionCFG:
    """The CFG of one function (or one module body)."""

    name: str
    node: ast.AST                 # FunctionDef / AsyncFunctionDef / Module
    blocks: List[Block] = field(default_factory=list)
    entry: Optional[Block] = None
    exit: Optional[Block] = None

    def reachable_blocks(self) -> List[Block]:
        """Blocks reachable from entry, in a deterministic order."""
        seen = []
        seen_ids = set()
        stack = [self.entry] if self.entry is not None else []
        while stack:
            block = stack.pop()
            if block.bid in seen_ids:
                continue
            seen_ids.add(block.bid)
            seen.append(block)
            stack.extend(reversed(block.succs))
        return sorted(seen, key=lambda b: b.bid)


class _Builder:
    """One-shot CFG builder; :func:`build_cfg` is the public face."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        #: (break_target, continue_target) stack for enclosing loops.
        self.loops: List[tuple] = []
        self.exit_block: Optional[Block] = None

    def new_block(self) -> Block:
        block = Block(bid=len(self.blocks))
        self.blocks.append(block)
        return block

    def build(self, name: str, node: ast.AST, body: List[ast.stmt]) -> FunctionCFG:
        entry = self.new_block()
        self.exit_block = self.new_block()
        tail = self._build_body(body, entry)
        if tail is not None:
            tail.add_succ(self.exit_block)
        return FunctionCFG(
            name=name, node=node, blocks=self.blocks,
            entry=entry, exit=self.exit_block,
        )

    # -- statement dispatch ---------------------------------------------------

    def _build_body(self, stmts: List[ast.stmt], current: Optional[Block]) -> Optional[Block]:
        """Thread ``stmts`` starting at ``current``; return the block where
        control continues afterwards (None when all paths left)."""
        for stmt in stmts:
            if current is None:
                # Unreachable code after return/break/...; keep building
                # so the rules still see the statements, in a fresh
                # disconnected block.
                current = self.new_block()
            current = self._build_stmt(stmt, current)
        return current

    def _build_stmt(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, current)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._build_loop(stmt, current)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, current)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            current.stmts.append(stmt)
            return self._build_body(stmt.body, current)
        if _MATCH is not None and isinstance(stmt, _MATCH):
            return self._build_match(stmt, current)
        if isinstance(stmt, (ast.Return, ast.Raise)):
            current.stmts.append(stmt)
            if self.exit_block is not None:
                current.add_succ(self.exit_block)
            return None
        if isinstance(stmt, ast.Break):
            current.stmts.append(stmt)
            if self.loops:
                current.add_succ(self.loops[-1][0])
            return None
        if isinstance(stmt, ast.Continue):
            current.stmts.append(stmt)
            if self.loops:
                current.add_succ(self.loops[-1][1])
            return None
        # Plain statement (assignments, expressions, nested function and
        # class definitions, imports, global/nonlocal, assert, ...).
        current.stmts.append(stmt)
        return current

    # -- compound statements --------------------------------------------------

    def _build_if(self, stmt: ast.If, current: Block) -> Optional[Block]:
        # The test expression is evaluated in the current block.
        current.stmts.append(_TestExpr(stmt.test))
        then_entry = self.new_block()
        current.add_succ(then_entry)
        then_tail = self._build_body(stmt.body, then_entry)
        if stmt.orelse:
            else_entry = self.new_block()
            current.add_succ(else_entry)
            else_tail = self._build_body(stmt.orelse, else_entry)
        else:
            else_tail = current
        if then_tail is None and else_tail is None:
            return None
        after = self.new_block()
        if then_tail is not None:
            then_tail.add_succ(after)
        if else_tail is not None:
            else_tail.add_succ(after)
        return after

    def _build_loop(self, stmt: ast.stmt, current: Block) -> Optional[Block]:
        head = self.new_block()
        current.add_succ(head)
        if isinstance(stmt, ast.While):
            head.stmts.append(_TestExpr(stmt.test))
        else:
            head.stmts.append(stmt)  # the for-target binding happens here
        after = self.new_block()
        body_entry = self.new_block()
        head.add_succ(body_entry)
        head.add_succ(after)  # loop may not run / condition turns false
        self.loops.append((after, head))
        body_tail = self._build_body(stmt.body, body_entry)
        self.loops.pop()
        if body_tail is not None:
            body_tail.add_succ(head)
        if getattr(stmt, "orelse", None):
            else_tail = self._build_body(stmt.orelse, after)
            return else_tail
        return after

    def _build_try(self, stmt: ast.Try, current: Block) -> Optional[Block]:
        after = self.new_block()
        body_entry = self.new_block()
        current.add_succ(body_entry)
        body_tail = self._build_body(stmt.body, body_entry)

        handler_tails: List[Optional[Block]] = []
        for handler in stmt.handlers:
            handler_entry = self.new_block()
            # Conservative: an exception may fire before any body
            # statement ran, or after all of them.
            current.add_succ(handler_entry)
            if body_tail is not None:
                body_tail.add_succ(handler_entry)
            handler_tails.append(self._build_body(handler.body, handler_entry))

        else_tail = body_tail
        if stmt.orelse and body_tail is not None:
            else_entry = self.new_block()
            body_tail.add_succ(else_entry)
            else_tail = self._build_body(stmt.orelse, else_entry)

        tails = [t for t in handler_tails + [else_tail] if t is not None]
        if stmt.finalbody:
            final_entry = self.new_block()
            for tail in tails:
                tail.add_succ(final_entry)
            if not tails:
                current.add_succ(final_entry)
            final_tail = self._build_body(stmt.finalbody, final_entry)
            if final_tail is None:
                return None
            final_tail.add_succ(after)
            return after
        if not tails:
            return None
        for tail in tails:
            tail.add_succ(after)
        return after

    def _build_match(self, stmt: ast.AST, current: Block) -> Optional[Block]:
        current.stmts.append(_TestExpr(stmt.subject))
        after = self.new_block()
        current.add_succ(after)  # no case may match
        any_tail = False
        for case in stmt.cases:
            case_entry = self.new_block()
            current.add_succ(case_entry)
            tail = self._build_body(case.body, case_entry)
            if tail is not None:
                tail.add_succ(after)
                any_tail = True
        if not any_tail and not stmt.cases:
            any_tail = True
        return after


class _TestExpr(ast.stmt):
    """Wrapper marking a condition expression threaded into a block.

    Branch conditions (``if``/``while`` tests, ``match`` subjects) are
    evaluated before the branch, so they belong in the preceding block;
    wrapping keeps ``Block.stmts`` homogeneous for the transfer loop.
    """

    _fields = ("value",)

    def __init__(self, value: ast.expr) -> None:
        super().__init__()
        self.value = value
        self.lineno = getattr(value, "lineno", 1)
        self.col_offset = getattr(value, "col_offset", 0)


def is_test_expr(stmt: ast.stmt) -> bool:
    return isinstance(stmt, _TestExpr)


def build_cfg(name: str, node: ast.AST, body: List[ast.stmt]) -> FunctionCFG:
    """CFG for one body; never raises on well-formed ASTs."""
    return _Builder().build(name, node, body)


def build_module_cfgs(tree: ast.Module) -> List[FunctionCFG]:
    """One CFG per function/method in ``tree`` (nested ones included),
    plus one for the module body itself (named ``"<module>"``).

    The module-body CFG lets rules see module-level assignments (e.g. a
    module-global RNG) with the same machinery as function bodies.
    """
    cfgs: List[FunctionCFG] = [build_cfg("<module>", tree, tree.body)]
    for node in ast.walk(tree):
        if isinstance(node, FUNCTION_NODES):
            cfgs.append(build_cfg(node.name, node, node.body))
    return cfgs
