"""O-rules: observability purity.

Telemetry (``repro.obs``) is the one subsystem importable from every
layer, which is only safe while it stays inert: it may not reach back
into the simulation, and call sites must be guarded so that *disabled*
telemetry costs no RNG draws, no event-loop activity, and no allocated
metric families.

* **O201** — a ``repro.obs`` module imports anything outside
  ``repro.util``/``repro.obs``.
* **O202** — ``repro.obs`` imports ``repro.util.rng`` or
  ``repro.netsim.events`` specifically (even lazily): telemetry must
  never consume experiment RNG or schedule simulation events.
* **O203** — an instrumentation call site in a simulation package uses
  ``obs.active().metrics``/``tracer``/``profiler``/``causes``/``health``
  without the guard pattern (bind the telemetry handle, test
  ``.enabled`` / ``.metrics_on`` / ``.tracing_on`` before touching
  registries).
* **O204** — a cause-emission site (``<telemetry>.causes.add(...)``) in
  a simulation package passes a first argument that is not a string
  literal from the :data:`repro.obs.causes.CAUSE_HELP` taxonomy.
  Dynamic or off-taxonomy tags would fracture attribution reports and
  dashboards into unmergeable series.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.lint.findings import Finding
from repro.lint.layers import OBS_ALLOWED_TARGETS, OBS_FORBIDDEN_MODULES, SIM_PACKAGES
from repro.lint.modinfo import ModuleInfo
from repro.lint.registry import FileRule, register
from repro.obs.causes import CAUSE_HELP

_TELEMETRY_SURFACES = ("metrics", "tracer", "profiler", "causes", "health")
_GUARD_FLAGS = ("enabled", "metrics_on", "tracing_on", "profiling_on",
                "causes_on", "health_on")


@register
class ObsImportRule(FileRule):
    id = "O201"
    name = "obs-import-purity"
    description = (
        "repro.obs may import only repro.util and repro.obs, so telemetry "
        "stays importable from every layer without dragging the "
        "simulation in"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.package != "obs":
            return
        seen: Set[Tuple[int, str]] = set()
        for edge in module.imports:
            if edge.kind == "typing":
                continue
            target_package = edge.target.split(".")[1] if "." in edge.target else ""
            if target_package in OBS_ALLOWED_TARGETS:
                continue
            key = (edge.line, target_package)
            if key in seen:
                continue
            seen.add(key)
            yield self.finding(
                module, edge.line, 0,
                f"repro.obs imports repro.{target_package}; obs may only "
                f"import repro.util (telemetry must stay leaf-importable)",
            )


@register
class ObsForbiddenModuleRule(FileRule):
    id = "O202"
    name = "obs-rng-events-ban"
    description = (
        "repro.obs must never import repro.util.rng or "
        "repro.netsim.events — telemetry that touches the seed tree or "
        "the event loop can silently change experiment results"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.package != "obs":
            return
        seen: Set[Tuple[int, str]] = set()
        for edge in module.imports:
            if edge.kind == "typing":
                continue
            for forbidden in OBS_FORBIDDEN_MODULES:
                if edge.target == forbidden or edge.target.startswith(forbidden + "."):
                    key = (edge.line, forbidden)
                    if key in seen:
                        continue
                    seen.add(key)
                    yield self.finding(
                        module, edge.line, 0,
                        f"repro.obs imports {forbidden}; telemetry may not "
                        f"consume experiment RNG or schedule events",
                    )


def _is_obs_active_call(node: ast.expr) -> bool:
    """Match ``obs.active()`` / ``active()`` (from-imported) calls."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute) and func.attr == "active":
        return isinstance(func.value, ast.Name) and func.value.id == "obs"
    return isinstance(func, ast.Name) and func.id == "active"


def _walk_own_scope(func: ast.AST):
    """Walk a function body without descending into nested functions, so
    each scope is analysed exactly once."""
    stack = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            stack.extend(ast.iter_child_nodes(node))


class _GuardVisitor(ast.NodeVisitor):
    """Chained-access scan (whole module) + per-scope guard-pattern scan."""

    def __init__(self) -> None:
        self.findings: List[Tuple[int, int, str]] = []

    def scan(self, tree: ast.Module) -> None:
        # Chained obs.active().metrics — never acceptable, anywhere.
        for node in ast.walk(tree):
            if (isinstance(node, ast.Attribute)
                    and node.attr in _TELEMETRY_SURFACES
                    and _is_obs_active_call(node.value)):
                self.findings.append((
                    node.lineno, node.col_offset,
                    f"chained obs.active().{node.attr} allocates telemetry "
                    f"state even when disabled; bind the handle and guard "
                    f"on .enabled first",
                ))
        self.visit(tree)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_function(node)
        self.generic_visit(node)

    def _check_function(self, func: ast.AST) -> None:
        handles: Set[str] = set()
        guarded: Set[str] = set()
        uses: List[Tuple[str, int, int]] = []

        for node in _walk_own_scope(func):
            if isinstance(node, ast.Assign) and _is_obs_active_call(node.value):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        handles.add(target.id)
            elif isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
                if node.attr in _GUARD_FLAGS:
                    guarded.add(node.value.id)
                elif node.attr in _TELEMETRY_SURFACES:
                    uses.append((node.value.id, node.lineno, node.col_offset))

        for name, line, col in uses:
            if name in handles and name not in guarded:
                self.findings.append((
                    line, col,
                    f"telemetry handle '{name}' used without an enabled-guard "
                    f"in this function; test {name}.enabled (and the "
                    f"surface's _on flag) so disabled telemetry is free",
                ))


@register
class UnguardedInstrumentationRule(FileRule):
    id = "O203"
    name = "unguarded-instrumentation"
    description = (
        "instrumentation in simulation packages must bind "
        "telemetry = obs.active() and test .enabled/.metrics_on before "
        "touching .metrics/.tracer/.profiler"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.package not in SIM_PACKAGES:
            return
        visitor = _GuardVisitor()
        visitor.scan(module.tree)
        for line, col, message in visitor.findings:
            yield self.finding(module, line, col, message)


def _is_causes_attribute(node: ast.expr, aliases: Set[str]) -> bool:
    """Match ``<expr>.causes`` or a name previously bound to one."""
    if isinstance(node, ast.Attribute) and node.attr == "causes":
        return True
    return isinstance(node, ast.Name) and node.id in aliases


@register
class CauseTaxonomyRule(FileRule):
    id = "O204"
    name = "cause-emission-taxonomy"
    description = (
        "cause-emission sites in simulation packages must tag delay with "
        "a string literal from the repro.obs.causes.CAUSE_HELP taxonomy "
        "so attribution reports stay mergeable across runs and layers"
    )

    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.package not in SIM_PACKAGES:
            return
        # Names bound to a cause collector (``causes = telemetry.causes``)
        # anywhere in the module; collector handles are short-lived
        # locals, so a module-wide alias set stays precise enough.
        aliases: Set[str] = set()
        for node in ast.walk(module.tree):
            if (isinstance(node, ast.Assign)
                    and isinstance(node.value, ast.Attribute)
                    and node.value.attr == "causes"):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        aliases.add(target.id)
        for node in ast.walk(module.tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "add"
                    and _is_causes_attribute(node.func.value, aliases)):
                continue
            if not node.args:
                continue
            tag = node.args[0]
            if not (isinstance(tag, ast.Constant) and isinstance(tag.value, str)):
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    "cause tag must be a string literal (dynamic tags "
                    "fracture the attribution taxonomy)",
                )
            elif tag.value not in CAUSE_HELP:
                yield self.finding(
                    module, node.lineno, node.col_offset,
                    f"cause tag {tag.value!r} is not in the "
                    f"repro.obs.causes.CAUSE_HELP taxonomy; add it there "
                    f"(with help text) or use an existing tag",
                )
