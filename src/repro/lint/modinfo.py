"""Parsed per-module facts shared by every rule.

One :class:`ModuleInfo` per linted file: the AST, the raw source lines,
the pragma table, and the module's *internal* imports classified by how
they execute:

* ``toplevel`` — runs at import time (module body, class bodies, and
  module-level ``if``/``try`` blocks).  These are the edges the
  layering rules reason about.
* ``typing`` — inside ``if TYPE_CHECKING:``; never executes, so it can
  never create a runtime cycle and is exempt from layering.
* ``deferred`` — inside a function body; the sanctioned escape hatch
  for breaking an import cycle, executed lazily.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterator, List, Optional, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.lint.cfg import FunctionCFG

ROOT_PACKAGE = "repro"


@dataclass(frozen=True)
class ImportEdge:
    """One ``import``/``from ... import`` of a ``repro.*`` module."""

    target: str        # fully qualified module, e.g. "repro.netsim.link"
    line: int
    kind: str          # "toplevel" | "typing" | "deferred"


@dataclass
class ModuleInfo:
    """Everything the rules need to know about one source file."""

    path: str                      # repo-relative, forward slashes
    module: str                    # dotted name, e.g. "repro.netsim.link"
    source: str
    tree: ast.Module
    lines: List[str] = field(default_factory=list)
    imports: List[ImportEdge] = field(default_factory=list)
    #: Memoized per-family analysis results (units/rng/pool), so each
    #: family runs its dataflow fixpoint once per file per lint run.
    analysis_cache: Dict[str, object] = field(default_factory=dict)
    _cfgs: Optional[list] = field(default=None, repr=False)

    @property
    def package(self) -> str:
        """First component under ``repro`` ("" for repro/__init__ itself),
        or the first dotted component for non-repro modules ("tests")."""
        parts = self.module.split(".")
        if parts[0] == ROOT_PACKAGE:
            return parts[1] if len(parts) > 1 else ""
        return parts[0]

    @property
    def in_repro(self) -> bool:
        return self.module.split(".")[0] == ROOT_PACKAGE

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def function_cfgs(self) -> List["FunctionCFG"]:
        """CFGs for every function plus the module body, built lazily and
        cached — all flow-sensitive rule families share one build, just
        as all families share the one :func:`ast.parse`."""
        if self._cfgs is None:
            # Deferred: modinfo is the bottom of the lint package and
            # must not import siblings at module scope.
            from repro.lint.cfg import build_module_cfgs
            self._cfgs = build_module_cfgs(self.tree)
        return self._cfgs


def module_name_for(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/netsim/link.py`` -> ``repro.netsim.link``;
    ``tests/test_foo.py`` -> ``tests.test_foo``.
    """
    parts = rel_path.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][: -len(".py")]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts)


def _is_type_checking_test(test: ast.expr) -> bool:
    """Match ``TYPE_CHECKING`` / ``typing.TYPE_CHECKING`` conditions."""
    if isinstance(test, ast.Name):
        return test.id == "TYPE_CHECKING"
    if isinstance(test, ast.Attribute):
        return test.attr == "TYPE_CHECKING"
    return False


def _resolve_from(node: ast.ImportFrom, current_module: str) -> Optional[str]:
    """Absolute dotted module a ``from ... import`` statement targets."""
    if node.level == 0:
        return node.module
    # Relative import: anchor on the importing module's package.
    base = current_module.split(".")
    # level=1 means "current package": drop the module leaf, then one
    # extra component per additional level.
    drop = 1 + (node.level - 1)
    if drop >= len(base):
        return node.module
    anchor = base[: len(base) - drop]
    if node.module:
        anchor = anchor + node.module.split(".")
    return ".".join(anchor)


def _iter_imports(
    tree: ast.Module, current_module: str
) -> Iterator[Tuple[str, int, str, ast.AST]]:
    """Yield (target, line, kind, node) for every repro-internal import."""

    def walk(nodes: List[ast.stmt], kind: str) -> Iterator[Tuple[str, int, str, ast.AST]]:
        for node in nodes:
            if isinstance(node, ast.Import):
                for alias in node.names:
                    yield alias.name, node.lineno, kind, node
            elif isinstance(node, ast.ImportFrom):
                target = _resolve_from(node, current_module)
                if target is None:
                    continue
                # ``from repro.pkg import name`` may name either an
                # attribute or a submodule — emit both candidates and let
                # graph consumers filter against the known module set.
                # ``from repro import obs`` must not emit a bare root
                # edge (the root facade re-exports from everywhere).
                if target != ROOT_PACKAGE:
                    yield target, node.lineno, kind, node
                for alias in node.names:
                    if alias.name != "*":
                        yield f"{target}.{alias.name}", node.lineno, kind, node
            elif isinstance(node, ast.If):
                branch_kind = (
                    "typing"
                    if kind == "toplevel" and _is_type_checking_test(node.test)
                    else kind
                )
                yield from walk(node.body, branch_kind)
                yield from walk(node.orelse, kind)
            elif isinstance(node, ast.Try):
                yield from walk(node.body, kind)
                for handler in node.handlers:
                    yield from walk(handler.body, kind)
                yield from walk(node.orelse, kind)
                yield from walk(node.finalbody, kind)
            elif isinstance(node, ast.ClassDef):
                # Class bodies execute at import time.
                yield from walk(node.body, kind)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from walk(node.body, "deferred")
            elif isinstance(node, (ast.With, ast.For, ast.While)):
                yield from walk(node.body, kind)
                if hasattr(node, "orelse"):
                    yield from walk(node.orelse, kind)

    yield from walk(tree.body, "toplevel")


def parse_module(rel_path: str, source: str) -> ModuleInfo:
    """Parse one file into a :class:`ModuleInfo` (raises ``SyntaxError``)."""
    module = module_name_for(rel_path)
    tree = ast.parse(source, filename=rel_path)
    info = ModuleInfo(
        path=rel_path.replace("\\", "/"),
        module=module,
        source=source,
        tree=tree,
        lines=source.splitlines(),
    )
    for target, line, kind, _node in _iter_imports(tree, module):
        if target.split(".")[0] == ROOT_PACKAGE:
            info.imports.append(ImportEdge(target=target, line=line, kind=kind))
    return info
