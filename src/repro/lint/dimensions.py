"""The dimension lattice behind the U-rules.

The paper's headline numbers are all unit arithmetic — join delay in
seconds, stall durations, ``wire_bytes * 8.0 / rate_bps`` — and the
repo's bug history (TARGETDURATION rounding, the >1.0 utilization
integral) shows this is where defects live.  This module gives the
dataflow engine a small abstract domain of physical dimensions plus the
algebra that propagates them through arithmetic.

**Dimensions** (flat lattice: any two distinct dimensions join to
``None`` = unknown/top):

* ``seconds`` — durations (``_s``, ``_seconds``, ``delay_*``, ...);
* ``timestamp`` — absolute sim-time points (``now``, ``*_at``,
  ``deadline``).  Timestamps are seconds-valued, so assigning one to a
  ``_s`` name is fine; *adding or multiplying two of them* is not;
* ``bytes`` / ``bits`` — payload sizes (``_bytes``/``nbytes``, ``_bits``);
* ``bps`` — rates in bits per second (``_bps``, ``rate_bps``);
* ``scaled_rate`` — rates in scaled units (``_mbps``/``_kbps``); a
  *count of megabits*, so it multiplies like a scalar but may not be
  added to plain ``bps``;
* ``bytes_per_second`` — the tell-tale of a missing ``* 8.0``: dividing
  bytes by seconds is only ever an intermediate, and storing it in a
  ``_bps`` name is rule U504;
* ``ratio`` — dimensionless fractions (``_ratio``, ``utilization``);
* ``scalar`` — numeric literals and counts; compatible with anything
  (a bare ``3.0`` added to ``timeout_s`` is presumed to be seconds).

Inference is by naming convention first (the repo's suffix discipline,
encoded in :func:`dimension_of_name`) with an explicit overrides table
(:data:`NAME_OVERRIDES`) for names whose convention lies — the
``repro.util.units`` constants most prominently: ``MBPS`` *is a value
in bps*, which is exactly what makes ``limit_mbps * MBPS`` work out.

The algebra is deliberately conservative: an operation is an error only
when **both** operands have known, provably incompatible dimensions;
everything unmodeled evaluates to unknown and stays silent.
"""

from __future__ import annotations

from typing import Optional, Tuple

SECONDS = "seconds"
TIMESTAMP = "timestamp"
BYTES = "bytes"
BITS = "bits"
BPS = "bps"
SCALED_RATE = "scaled_rate"
BYTES_PER_S = "bytes_per_second"
RATIO = "ratio"
SCALAR = "scalar"

#: All modelled dimensions (for docs and tests).
ALL_DIMENSIONS = (
    SECONDS, TIMESTAMP, BYTES, BITS, BPS, SCALED_RATE, BYTES_PER_S,
    RATIO, SCALAR,
)

#: Explicit name -> dimension overrides, consulted before the suffix
#: rules.  Keyed on the bare identifier (the leaf for attributes), so
#: ``units.MBPS`` and a from-imported ``MBPS`` resolve identically.
NAME_OVERRIDES = {
    # repro.util.units constants: each *is a value* in the base unit.
    "BPS": BPS, "KBPS": BPS, "MBPS": BPS, "GBPS": BPS,
    "BYTE": BYTES, "KB": BYTES, "MB": BYTES,
    "MS": SECONDS, "US": SECONDS, "MINUTE": SECONDS, "HOUR": SECONDS,
    "DAY": SECONDS,
    # Ubiquitous sim-time identifiers without a suffix.
    "now": TIMESTAMP,
    "deadline": TIMESTAMP,
    # Common duration words used without a suffix.
    "duration": SECONDS,
    "elapsed": SECONDS,
    "timeout": SECONDS,
    "delay": SECONDS,
    # Byte counts with conventional short names.
    "nbytes": BYTES,
    # Dimensionless by convention.
    "utilization": RATIO,
    "fraction": RATIO,
    "ratio": RATIO,
}

#: (suffix, dimension), most specific first — ``_mbps`` must win over
#: ``_bps``, and both over the bare ``_s`` rule.
_SUFFIXES = (
    ("_mbps", SCALED_RATE),
    ("_kbps", SCALED_RATE),
    ("_bps", BPS),
    ("_bytes", BYTES),
    ("_bits", BITS),
    ("_seconds", SECONDS),
    ("_secs", SECONDS),
    ("_sec", SECONDS),
    ("_ratio", RATIO),
    ("_duration", SECONDS),
    ("_delay", SECONDS),
    ("_at", TIMESTAMP),
    ("_deadline", TIMESTAMP),
    ("_until", TIMESTAMP),
    ("_s", SECONDS),
)

_PREFIXES = (
    ("delay_", SECONDS),
)


def dimension_of_name(name: str) -> Optional[str]:
    """Dimension a bare identifier declares, or None."""
    override = NAME_OVERRIDES.get(name)
    if override is not None:
        return override
    lowered = name.lower()
    for suffix, dimension in _SUFFIXES:
        if lowered.endswith(suffix):
            return dimension
    for prefix, dimension in _PREFIXES:
        if lowered.startswith(prefix):
            return dimension
    return None


def join(a: Optional[str], b: Optional[str]) -> Optional[str]:
    """Flat-lattice join: equal stays, different widens to unknown.

    ``timestamp`` and ``seconds`` join to ``seconds`` (a timestamp is a
    seconds-valued float; only *point* semantics are lost)."""
    if a == b:
        return a
    if {a, b} == {TIMESTAMP, SECONDS}:
        return SECONDS
    if a == SCALAR:
        return b
    if b == SCALAR:
        return a
    return None


def compatible(declared: str, actual: str) -> bool:
    """May a value of dimension ``actual`` live in a name declaring
    ``declared``?  (Used by the assignment/return checks U503/U505.)"""
    if declared == actual:
        return True
    if actual == SCALAR:
        return True  # bare literals carry the declared unit
    # Absolute times are seconds-valued: start_s = loop.now is idiomatic.
    if {declared, actual} == {TIMESTAMP, SECONDS}:
        return True
    return False


def _is_eight(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool) \
        and float(value) == 8.0


def combine(
    op: str, left: Optional[str], right: Optional[str],
    right_literal: object = None, left_literal: object = None,
) -> Tuple[Optional[str], Optional[str]]:
    """Result dimension of ``left <op> right`` plus an error code.

    ``op`` is one of ``"add" | "sub" | "mult" | "div" | "mod"``.
    ``*_literal`` carry the Python value when an operand is a numeric
    constant — needed for the ``* 8`` / ``/ 8`` byte<->bit idiom.
    Returns ``(dimension_or_None, error_or_None)`` with errors drawn
    from ``{"mix", "timestamp", "bytes_per_bps"}``.
    """
    if op == "add":
        if left == TIMESTAMP and right == TIMESTAMP:
            return None, "timestamp"
        if left is None or right is None:
            return None, None
        if left == SCALAR:
            return right, None
        if right == SCALAR:
            return left, None
        if left == right:
            return left, None
        if {left, right} == {TIMESTAMP, SECONDS}:
            return TIMESTAMP, None
        return None, "mix"

    if op == "sub":
        if left is None or right is None:
            return None, None
        if left == SCALAR:
            return right, None
        if right == SCALAR:
            return left, None
        if left == TIMESTAMP and right == TIMESTAMP:
            return SECONDS, None
        if left == TIMESTAMP and right == SECONDS:
            return TIMESTAMP, None
        if left == right:
            return left, None
        return None, "mix"

    if op == "mult":
        if left == TIMESTAMP and right == TIMESTAMP:
            return None, "timestamp"
        if left is None or right is None:
            return None, None
        # bytes * 8 -> bits (the conversion idiom).
        if left == BYTES and _is_eight(right_literal):
            return BITS, None
        if right == BYTES and _is_eight(left_literal):
            return BITS, None
        if left == SCALAR:
            return right if right != SCALAR else SCALAR, None
        if right == SCALAR:
            return left, None
        if RATIO in (left, right):
            return right if left == RATIO else left, None
        if SCALED_RATE in (left, right):
            # A count of megabits/s times a bps-valued constant is bps;
            # against anything else it behaves like a scalar count.
            return right if left == SCALED_RATE else left, None
        if {left, right} == {SECONDS, BPS} or {left, right} == {TIMESTAMP, BPS}:
            return BITS, None
        if {left, right} == {SECONDS, BYTES_PER_S}:
            return BYTES, None
        return None, None

    if op in ("div", "mod"):
        if left is None or right is None:
            return None, None
        if op == "mod":
            if right == SCALAR or left == right:
                return left, None
            return None, None
        # bits / 8 -> bytes (the reverse conversion idiom).
        if left == BITS and _is_eight(right_literal):
            return BYTES, None
        if right == SCALAR:
            return left, None
        if left == right:
            return RATIO, None
        if left == BITS and right == BPS:
            return SECONDS, None
        if left == BITS and right == SECONDS:
            return BPS, None
        if left == BYTES and right == SECONDS:
            return BYTES_PER_S, None
        if left == BYTES and right == BPS:
            # The classic missing "* 8.0": report, then assume the
            # author *meant* seconds so downstream checks still work.
            return SECONDS, "bytes_per_bps"
        if left == TIMESTAMP and right == SECONDS:
            return None, None
        if left == RATIO:
            return None, None
        if right == RATIO:
            return left, None
        return None, None

    return None, None
