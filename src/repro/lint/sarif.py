"""SARIF 2.1.0 output for the lint gate.

SARIF (Static Analysis Results Interchange Format) is the schema GitHub
code scanning ingests: emitting it lets CI annotate PR diffs with U/R/P
findings instead of burying them in a job log.  The document built here
is deliberately minimal-but-valid: one ``run``, the rule catalogue under
``tool.driver.rules`` (only rules that actually fired, so the file stays
small), and one ``result`` per finding carrying the same stable
fingerprint the baseline uses under ``partialFingerprints``.

Baselined findings are exported with ``"suppressions"`` so code scanning
shows them as dismissed rather than re-opening them on every push.
"""

from __future__ import annotations

import json
from typing import Dict, List

from repro.lint.findings import Finding
from repro.lint.registry import iter_rule_metadata
from repro.lint.runner import LintResult

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)

#: Key under ``partialFingerprints`` carrying the baseline fingerprint.
FINGERPRINT_KEY = "reproLint/v1"

_LEVELS = {"error": "error", "warning": "warning"}


def _rule_object(meta: Dict[str, str]) -> Dict[str, object]:
    return {
        "id": meta["id"],
        "name": meta["name"],
        "shortDescription": {"text": meta["name"].replace("-", " ")},
        "fullDescription": {"text": meta["description"]},
        "defaultConfiguration": {
            "level": _LEVELS.get(meta["severity"], "error"),
        },
    }


def _result_object(
    finding: Finding, rule_index: Dict[str, int]
) -> Dict[str, object]:
    result: Dict[str, object] = {
        "ruleId": finding.rule,
        "ruleIndex": rule_index[finding.rule],
        "level": _LEVELS.get(finding.severity, "error"),
        "message": {"text": finding.message},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": finding.line,
                        "startColumn": finding.col + 1,
                    },
                },
            }
        ],
        "partialFingerprints": {FINGERPRINT_KEY: finding.fingerprint},
    }
    if finding.baselined:
        result["suppressions"] = [
            {"kind": "external", "justification": "covered by lint-baseline.json"}
        ]
    return result


def build_sarif(result: LintResult) -> Dict[str, object]:
    """The SARIF 2.1.0 document for one lint run, as a plain dict."""
    exported = list(result.findings) + list(result.baselined)
    fired = {finding.rule for finding in exported}
    rules = [
        _rule_object(meta)
        for meta in iter_rule_metadata()
        if meta["id"] in fired
    ]
    rule_index = {rule["id"]: index for index, rule in enumerate(rules)}
    results: List[Dict[str, object]] = [
        _result_object(finding, rule_index) for finding in exported
    ]
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "repro-lint",
                        "version": "2.0.0",
                        "rules": rules,
                    },
                },
                "originalUriBaseIds": {
                    "SRCROOT": {"uri": "file:///", "description": {
                        "text": "repository root"}},
                },
                "columnKind": "utf16CodeUnits",
                "results": results,
            }
        ],
    }


def format_sarif(result: LintResult) -> str:
    return json.dumps(build_sarif(result), indent=2, sort_keys=False) + "\n"
