"""Orchestration: discovery -> parse -> rules -> pragmas -> baseline.

:func:`run_lint` is the single entry point used by the CLI, the CI
gate, and the pytest meta-test; :func:`lint_sources` lints in-memory
sources and powers the rule fixture tests.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from repro.lint.baseline import (
    DEFAULT_BASELINE_NAME,
    BaselineEntry,
    apply_baseline,
    load_baseline,
)
from repro.lint.discovery import discover_files, find_repo_root
from repro.lint.findings import Finding, assign_occurrences
from repro.lint.modinfo import ModuleInfo, parse_module
from repro.lint.pragmas import (
    file_suppressed,
    parse_file_pragmas,
    parse_pragmas,
    suppressed,
)
from repro.lint.registry import FileRule, ProjectRule, all_rules


@dataclass
class LintResult:
    """Everything one lint run produced."""

    root: str
    files: List[str] = field(default_factory=list)
    #: Findings not covered by the baseline — these gate CI.
    findings: List[Finding] = field(default_factory=list)
    #: Findings matched by a baseline entry.
    baselined: List[Finding] = field(default_factory=list)
    #: Baseline entries that matched nothing (candidates for removal).
    stale_baseline: List[BaselineEntry] = field(default_factory=list)
    #: Findings silenced by a ``# lint: disable=`` pragma (line or file).
    suppressed_count: int = 0
    #: ``disable-file`` entries that suppressed nothing: (path, pragma).
    stale_pragmas: List[tuple] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


def _check_modules(
    modules: List[ModuleInfo], only_rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    wanted = set(only_rules) if only_rules is not None else None
    raw: List[Finding] = []
    for rule in all_rules():
        if wanted is not None and rule.id not in wanted:
            continue
        if isinstance(rule, FileRule):
            for module in modules:
                raw.extend(rule.check(module))
        elif isinstance(rule, ProjectRule):
            raw.extend(rule.check_project(modules))
    return raw


def _drop_suppressed(
    raw: Sequence[Finding], modules: Sequence[ModuleInfo]
) -> tuple:
    """(kept findings, suppressed count, stale ``disable-file`` pragmas).

    File-level pragmas mirror baseline staleness: every ``disable-file``
    rule id that suppressed zero findings comes back as stale so the
    report can flag it for removal.
    """
    pragma_tables = {
        module.path: parse_pragmas(module.lines) for module in modules
    }
    file_tables = {
        module.path: parse_file_pragmas(module.lines) for module in modules
    }
    used: set = set()
    kept: List[Finding] = []
    dropped = 0
    for finding in raw:
        pragmas = pragma_tables.get(finding.path, {})
        if suppressed(pragmas, finding.line, finding.rule):
            dropped += 1
            continue
        hit, matches = file_suppressed(
            file_tables.get(finding.path, ()), finding.rule
        )
        if hit:
            dropped += 1
            used.update((finding.path, entry) for entry in matches)
            continue
        kept.append(finding)
    stale: List[tuple] = []
    for path in sorted(file_tables):
        for entry in file_tables[path]:
            if (path, entry) not in used:
                stale.append((path, entry))
    return kept, dropped, stale


def parse_files(root: str, rel_paths: Sequence[str]) -> tuple:
    """Parse files into ModuleInfos; unparsable files become E001 findings."""
    modules: List[ModuleInfo] = []
    errors: List[Finding] = []
    for rel_path in rel_paths:
        full = os.path.join(root, rel_path)
        try:
            with open(full, "r", encoding="utf-8") as handle:
                source = handle.read()
            modules.append(parse_module(rel_path, source))
        except SyntaxError as error:
            errors.append(Finding(
                rule="E001",
                path=rel_path,
                line=error.lineno or 1,
                col=(error.offset or 1) - 1,
                message=f"file does not parse: {error.msg}",
                line_text=(error.text or "").strip(),
            ))
        except (OSError, UnicodeDecodeError) as error:
            errors.append(Finding(
                rule="E002", path=rel_path, line=1, col=0,
                message=f"file unreadable: {error}",
            ))
    return modules, errors


def lint_modules(
    modules: List[ModuleInfo], only_rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Rules + pragmas + occurrence numbering over parsed modules."""
    raw = _check_modules(modules, only_rules)
    kept, _, _ = _drop_suppressed(raw, modules)
    return assign_occurrences(kept)


def lint_sources(
    sources: Dict[str, str], only_rules: Optional[Iterable[str]] = None
) -> List[Finding]:
    """Lint in-memory ``{repo_relative_path: source}`` (for tests)."""
    modules = [parse_module(path, text) for path, text in sources.items()]
    return lint_modules(modules, only_rules)


def run_lint(
    root: Optional[str] = None,
    paths: Optional[Sequence[str]] = None,
    baseline_path: Optional[str] = None,
    use_baseline: bool = True,
    only_rules: Optional[Iterable[str]] = None,
) -> LintResult:
    """Full pipeline over a checkout.

    ``paths`` defaults to the shared discovery roots; ``baseline_path``
    defaults to ``<root>/lint-baseline.json``.  Pass
    ``use_baseline=False`` to see the unfiltered findings.
    """
    root = root or find_repo_root()
    files = discover_files(root, paths)
    modules, errors = parse_files(root, files)
    raw = _check_modules(modules, only_rules) + errors
    kept, dropped, stale_pragmas = _drop_suppressed(raw, modules)
    findings = assign_occurrences(kept)

    result = LintResult(
        root=root, files=files, suppressed_count=dropped,
        stale_pragmas=stale_pragmas,
    )
    if use_baseline:
        if baseline_path is None:
            baseline_path = os.path.join(root, DEFAULT_BASELINE_NAME)
        entries = load_baseline(baseline_path)
        new, matched, stale = apply_baseline(findings, entries)
        result.findings = new
        result.baselined = matched
        result.stale_baseline = stale
    else:
        result.findings = findings
    return result
