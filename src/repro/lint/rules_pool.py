"""P-rules: process-pool safety.

``repro.core.parallel`` promises bit-identical parallel runs, and the
ROADMAP's sharded-worlds push will lean on it much harder.  That
promise survives only while dispatched work is (a) picklable, (b) free
of parent-visible side effects, and (c) merged in deterministic order.
The dataflow engine tracks which local names hold unpicklable values
(lambdas, nested functions, ``EventLoop``/``Link`` instances, open file
handles) so the checks see through an intermediate assignment.

* **P701** — the callable or an argument handed to ``.submit(...)`` /
  ``.map(...)`` / ``ProcessPoolExecutor(initializer=...)`` is
  unpicklable: a lambda, a function defined inside another function
  (its closure cannot cross the process boundary), a live
  ``EventLoop``/``Link``, or an ``open(...)`` handle.
* **P702** — a dispatched *task* function assigns module globals
  (``global x; x = ...``): the mutation happens in the worker, is
  invisible to the parent, and silently diverges under the
  ``fork``/``spawn`` start methods.  Worker state must ship back
  through return values.  (``initializer=`` functions are the
  sanctioned per-worker bootstrap and are exempt.)
* **P703** — completion-order iteration: ``as_completed(...)`` /
  ``.imap_unordered(...)`` merge results in whatever order workers
  finish, which is nondeterministic; iterate futures in submission
  order (``repro.core.parallel`` keeps an index-ordered list).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.cfg import FUNCTION_NODES
from repro.lint.dataflow import (
    Env,
    ForwardAnalysis,
    iter_shallow_exprs,
    transfer_assignments,
)
from repro.lint.findings import Finding
from repro.lint.modinfo import ModuleInfo
from repro.lint.registry import FileRule, register

RawFinding = Tuple[str, int, int, str]

#: Abstract tags for values that must never cross a process boundary.
LAMBDA = "lambda"
NESTED_FUNCTION = "nested function"
EVENT_LOOP = "EventLoop instance"
LINK = "Link instance"
OPEN_HANDLE = "open file handle"

UNPICKLABLE = frozenset({LAMBDA, NESTED_FUNCTION, EVENT_LOOP, LINK, OPEN_HANDLE})

#: Constructor names for live simulation objects that hold schedulers /
#: callbacks and therefore never pickle.
_UNPICKLABLE_CONSTRUCTORS = {
    "EventLoop": EVENT_LOOP,
    "Link": LINK,
}

_DISPATCH_METHODS = frozenset({"submit", "map"})


class PicklabilityAnalysis(ForwardAnalysis):
    """Tracks names bound to known-unpicklable values inside a scope.

    ``in_function`` distinguishes nested ``def`` (unpicklable closure)
    from a module-level ``def`` (picklable by reference).
    """

    def __init__(self, in_function: bool) -> None:
        self.in_function = in_function

    def join_values(self, a, b):
        return a if a == b else (a or b)

    def evaluate(self, node: ast.expr, env: Env) -> Optional[str]:
        if isinstance(node, ast.Lambda):
            return LAMBDA
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Call):
            func = node.func
            name = None
            if isinstance(func, ast.Name):
                name = func.id
            elif isinstance(func, ast.Attribute):
                name = func.attr
            if name in _UNPICKLABLE_CONSTRUCTORS:
                return _UNPICKLABLE_CONSTRUCTORS[name]
            if name == "open":
                return OPEN_HANDLE
            if name == "partial" and node.args:
                return self.evaluate(node.args[0], env)
            return None
        if isinstance(node, ast.NamedExpr):
            value = self.evaluate(node.value, env)
            if isinstance(node.target, ast.Name):
                env[node.target.id] = value
            return value
        return None

    def transfer(self, stmt: ast.stmt, env: Env) -> None:
        if isinstance(stmt, FUNCTION_NODES):
            env[stmt.name] = NESTED_FUNCTION if self.in_function else None
            return
        transfer_assignments(stmt, env, self.evaluate)


def _dispatched_task_names(tree: ast.Module) -> Dict[str, int]:
    """Names passed as the callable to ``.submit``/``.map`` anywhere in
    the module, mapped to the first dispatch line (for the P702 scan).
    ``initializer=`` callables are deliberately not included."""
    dispatched: Dict[str, int] = {}
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        if isinstance(node.func, ast.Attribute) \
                and node.func.attr in _DISPATCH_METHODS and node.args:
            target = node.args[0]
            if isinstance(target, ast.Name):
                dispatched.setdefault(target.id, node.lineno)
    return dispatched


def _analyse_module(module: ModuleInfo) -> List[RawFinding]:
    cached = module.analysis_cache.get("pool")
    if cached is not None:
        return cached
    raw: List[RawFinding] = []
    seen = set()

    def report(node: ast.AST, rule: str, message: str) -> None:
        key = (rule, getattr(node, "lineno", 1), getattr(node, "col_offset", 0))
        if key not in seen:
            seen.add(key)
            raw.append((rule, key[1], key[2], message))

    # -- P702: dispatched task functions mutating module globals -------------
    dispatched = _dispatched_task_names(module.tree)
    if dispatched:
        for node in module.tree.body:
            if not isinstance(node, FUNCTION_NODES) or node.name not in dispatched:
                continue
            mutated = _global_assignments(node)
            for name, line, col in mutated:
                report(
                    _at(line, col), "P702",
                    f"dispatched task function '{node.name}' assigns module "
                    f"global '{name}'; worker-side mutations never reach the "
                    f"parent — return the state instead (per-worker bootstrap "
                    f"belongs in the pool initializer)",
                )

    # -- P701 / P703: per-scope dataflow over call sites ----------------------
    for cfg in module.function_cfgs():
        analysis = PicklabilityAnalysis(in_function=cfg.name != "<module>")

        def check_stmt(stmt: ast.stmt, env: Env, analysis=analysis) -> None:
            for expression in iter_shallow_exprs(stmt):
                for node in ast.walk(expression):
                    if not isinstance(node, ast.Call):
                        continue
                    self_check_env = dict(env)
                    _check_call(node, self_check_env, analysis, report)

        entry_envs = analysis.solve(cfg)
        for block in cfg.blocks:
            env = dict(entry_envs.get(block.bid, {}))
            for stmt in block.stmts:
                check_stmt(stmt, env)
                analysis.transfer(stmt, env)

    module.analysis_cache["pool"] = raw
    return raw


def _check_call(
    node: ast.Call, env: Env,
    analysis: PicklabilityAnalysis,
    report,
) -> None:
    func = node.func
    func_name = None
    if isinstance(func, ast.Name):
        func_name = func.id
    elif isinstance(func, ast.Attribute):
        func_name = func.attr

    # P703: completion-order merges.
    if func_name in ("as_completed", "imap_unordered"):
        report(
            node, "P703",
            f"{func_name}() yields results in completion order, which is "
            f"nondeterministic across runs; iterate futures in submission "
            f"order (index-ordered merge, as repro.core.parallel does)",
        )
        return

    # P701 over executor dispatch sites.
    if isinstance(func, ast.Attribute) and func.attr in _DISPATCH_METHODS \
            and node.args:
        for position, arg in enumerate(node.args):
            kind = analysis.evaluate(arg, env)
            if kind in UNPICKLABLE:
                what = "callable" if position == 0 else f"argument {position}"
                report(
                    arg, "P701",
                    f"unpicklable {what} ({kind}) dispatched through "
                    f".{func.attr}(); workers receive arguments by pickle — "
                    f"pass a module-level function and plain data",
                )
    # P701 over pool construction (initializer / initargs).
    if (func_name is not None and "Executor" in func_name) or func_name == "Pool":
        for keyword in node.keywords:
            if keyword.arg == "initializer":
                kind = analysis.evaluate(keyword.value, env)
                if kind in UNPICKLABLE:
                    report(
                        keyword.value, "P701",
                        f"unpicklable initializer ({kind}); the pool "
                        f"initializer must be a module-level function",
                    )
            elif keyword.arg == "initargs" \
                    and isinstance(keyword.value, (ast.Tuple, ast.List)):
                for element in keyword.value.elts:
                    kind = analysis.evaluate(element, env)
                    if kind in UNPICKLABLE:
                        report(
                            element, "P701",
                            f"unpicklable initializer argument ({kind}); "
                            f"initargs cross the process boundary by pickle",
                        )


def _global_assignments(func: ast.AST) -> List[Tuple[str, int, int]]:
    declared: Set[str] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.Global):
            declared.update(node.names)
    if not declared:
        return []
    mutated: List[Tuple[str, int, int]] = []
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            if isinstance(target, ast.Name) and target.id in declared:
                mutated.append((target.id, node.lineno, node.col_offset))
    return mutated


class _At:
    """Minimal location carrier for findings not tied to one AST node."""

    def __init__(self, lineno: int, col_offset: int) -> None:
        self.lineno = lineno
        self.col_offset = col_offset


def _at(line: int, col: int) -> _At:
    return _At(line, col)


class _PoolRule(FileRule):
    def check(self, module: ModuleInfo) -> Iterator[Finding]:
        if not module.in_repro or module.package == "lint":
            return
        for rule_id, line, col, message in _analyse_module(module):
            if rule_id == self.id:
                yield self.finding(module, line, col, message)


@register
class UnpicklableDispatchRule(_PoolRule):
    id = "P701"
    name = "unpicklable-dispatch"
    description = (
        "lambda / nested function / EventLoop / Link / open handle "
        "passed through ProcessPoolExecutor submit/map/initializer; "
        "such values cannot cross the process boundary by pickle"
    )


@register
class DispatchedGlobalMutationRule(_PoolRule):
    id = "P702"
    name = "dispatched-global-mutation"
    description = (
        "a function dispatched to worker processes assigns module "
        "globals; worker-side mutation never reaches the parent — "
        "return state, or use the sanctioned pool initializer"
    )


@register
class UnorderedMergeRule(_PoolRule):
    id = "P703"
    name = "completion-order-merge"
    description = (
        "as_completed()/imap_unordered() iterate results in "
        "nondeterministic completion order; merge worker results in "
        "submission (index) order instead"
    )
