"""Determinism & architecture static analysis (``python -m repro.lint``).

Zero-dependency AST lint pass encoding the repo's scientific-hygiene
invariants as mechanical rules:

* **D-rules** — determinism hazards: wall-clock reads, the hidden
  global RNG, hash-ordered set iteration, environment/filesystem access
  in hermetic simulation paths (:mod:`repro.lint.rules_determinism`).
* **O-rules** — observability purity: ``repro.obs`` stays
  leaf-importable and instrumentation sites stay guarded
  (:mod:`repro.lint.rules_obs`).
* **L-rules** — the layer DAG declared in :mod:`repro.lint.layers`,
  enforced over the extracted import graph
  (:mod:`repro.lint.rules_layering`).
* **F-rules** — float discipline on simulated time
  (:mod:`repro.lint.rules_float`).

The flow-sensitive families run on a per-function CFG
(:mod:`repro.lint.cfg`) with a forward abstract interpreter
(:mod:`repro.lint.dataflow`):

* **U-rules** — unit/dimension checking over the suffix conventions
  (``_s``/``_bytes``/``_bps``/...) and the
  :mod:`repro.lint.dimensions` algebra
  (:mod:`repro.lint.rules_units`).
* **R-rules** — RNG-taint: streams derive from
  ``repro.util.rng.child_rng`` and draws never depend on telemetry
  state (:mod:`repro.lint.rules_rng`).
* **P-rules** — process-pool safety for work dispatched through
  ``repro.core.parallel`` (:mod:`repro.lint.rules_pool`).

Suppress a finding in place with ``# lint: disable=D102`` on the
flagged line, or file-wide with ``# lint: disable-file=U504`` (stale
file pragmas are reported like stale baseline entries); tolerate
pre-existing debt in ``lint-baseline.json`` (refresh via ``python -m
repro.lint --write-baseline``).  ``--format sarif`` emits SARIF 2.1.0
for GitHub code scanning (:mod:`repro.lint.sarif`).
"""

from repro.lint.baseline import (
    BaselineEntry,
    BaselineError,
    apply_baseline,
    load_baseline,
    write_baseline,
)
from repro.lint.discovery import discover_files, find_repo_root
from repro.lint.findings import Finding
from repro.lint.registry import (
    FileRule,
    ProjectRule,
    Rule,
    all_rules,
    iter_rule_metadata,
    register,
    rule_ids,
)
from repro.lint.runner import LintResult, lint_sources, run_lint
from repro.lint.sarif import build_sarif, format_sarif

__all__ = [
    "build_sarif",
    "format_sarif",
    "BaselineEntry",
    "BaselineError",
    "FileRule",
    "Finding",
    "LintResult",
    "ProjectRule",
    "Rule",
    "all_rules",
    "apply_baseline",
    "discover_files",
    "find_repo_root",
    "iter_rule_metadata",
    "lint_sources",
    "load_baseline",
    "register",
    "rule_ids",
    "run_lint",
    "write_baseline",
]
