"""The unit of linter output: one :class:`Finding` per rule violation.

Findings carry a *fingerprint* — a stable identity computed from the
rule, the file, and the offending source text (not the line number) — so
baselined findings keep matching while unrelated edits move code around.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Sequence

#: Severities, in increasing order of concern.  The CI gate fails on any
#: non-baselined finding regardless of severity; the level only affects
#: how the finding is presented.
SEVERITIES = ("warning", "error")


@dataclass
class Finding:
    """One rule violation at one source location."""

    rule: str          # e.g. "D101"
    path: str          # repo-relative, forward slashes
    line: int          # 1-based
    col: int           # 0-based (ast convention)
    message: str
    severity: str = "error"
    #: Source text of the flagged line, stripped; input to the fingerprint.
    line_text: str = ""
    #: Disambiguates identical (rule, path, line_text) triples.
    occurrence: int = 0
    baselined: bool = field(default=False, compare=False)

    @property
    def normalized_text(self) -> str:
        """Flagged line with runs of whitespace collapsed — fingerprint
        material, so re-indenting or re-spacing a line (not just moving
        it) leaves baseline entries matching."""
        return " ".join(self.line_text.split())

    @property
    def fingerprint(self) -> str:
        material = "\x1f".join(
            (self.rule, self.path, self.normalized_text, str(self.occurrence))
        )
        return hashlib.sha256(material.encode("utf-8")).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"

    def to_json(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "fingerprint": self.fingerprint,
            "baselined": self.baselined,
        }


def assign_occurrences(findings: Sequence[Finding]) -> List[Finding]:
    """Number findings that share (rule, path, line_text) by line order.

    Fingerprints must stay stable when unrelated lines are added above a
    finding, yet two identical violations in one file must not collide —
    the occurrence index (0, 1, ...) provides exactly that.
    """
    ordered = sorted(findings, key=lambda f: (f.path, f.line, f.col, f.rule))
    counters: Dict[tuple, int] = {}
    for finding in ordered:
        key = (finding.rule, finding.path, finding.normalized_text)
        finding.occurrence = counters.get(key, 0)
        counters[key] = finding.occurrence + 1
    return ordered
