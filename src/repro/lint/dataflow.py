"""Forward abstract interpretation over the per-function CFGs.

One generic worklist solver serves all three flow-sensitive rule
families; a family subclasses :class:`ForwardAnalysis` and provides

* ``join_values(a, b)`` — the value lattice's join (both args non-None);
* ``transfer(stmt, env)`` — mutate ``env`` for one statement;
* optionally ``initial_env(cfg)`` — parameter seeding.

Environments are plain ``{variable_name: abstract_value}`` dicts.  A
variable absent from the env is *unbound/unknown*; joining a bound
value with unbound keeps the value (may-analysis), which is the right
polarity for every current client: "this var may hold seconds", "this
var may be RNG-derived", "this var may be a lambda".

Statements are evaluated **shallowly**: compound statements appear in
blocks only as their header (a ``for`` contributes its target binding,
a ``with`` its item bindings, a nested ``def`` binds a function value)
— their bodies live in other blocks, threaded by :mod:`repro.lint.cfg`.

Termination: value lattices are tiny (a handful of constants) and
joins only move up, so the fixpoint is reached in a few passes; a hard
visit cap backstops any future non-monotone transfer bug — the solver
then returns the partial result rather than hanging a lint run.
"""

from __future__ import annotations

import ast
from typing import Any, Callable, Dict, List, Optional

from repro.lint.cfg import FUNCTION_NODES, FunctionCFG, is_test_expr

Env = Dict[str, Any]

#: Hard backstop on block visits per CFG (see module docstring).
MAX_BLOCK_VISITS = 4000


class ForwardAnalysis:
    """Generic forward dataflow over one :class:`FunctionCFG`."""

    def join_values(self, a: Any, b: Any) -> Any:
        raise NotImplementedError

    def transfer(self, stmt: ast.stmt, env: Env) -> None:
        raise NotImplementedError

    def initial_env(self, cfg: FunctionCFG) -> Env:
        return {}

    # -- solver ---------------------------------------------------------------

    def join_envs(self, into: Env, other: Env) -> bool:
        """Join ``other`` into ``into``; True when ``into`` changed."""
        changed = False
        for name, value in other.items():
            if name not in into:
                into[name] = value
                changed = True
            else:
                joined = self.join_values(into[name], value)
                if joined != into[name]:
                    into[name] = joined
                    changed = True
        return changed

    def solve(self, cfg: FunctionCFG) -> Dict[int, Env]:
        """Fixpoint block-entry environments, keyed by block id."""
        entry_envs: Dict[int, Env] = {}
        if cfg.entry is None:
            return entry_envs
        entry_envs[cfg.entry.bid] = self.initial_env(cfg)
        worklist: List[int] = [cfg.entry.bid]
        by_id = {block.bid: block for block in cfg.blocks}
        visits = 0
        while worklist and visits < MAX_BLOCK_VISITS:
            bid = worklist.pop(0)
            visits += 1
            block = by_id[bid]
            env = dict(entry_envs.get(bid, {}))
            for stmt in block.stmts:
                self.transfer(stmt, env)
            for succ in block.succs:
                if succ.bid not in entry_envs:
                    entry_envs[succ.bid] = dict(env)
                    worklist.append(succ.bid)
                elif self.join_envs(entry_envs[succ.bid], env):
                    if succ.bid not in worklist:
                        worklist.append(succ.bid)
        return entry_envs

    def report_pass(
        self, cfg: FunctionCFG,
        check: Callable[[ast.stmt, Env], None],
    ) -> None:
        """Run ``check`` once per statement with its flow-in environment.

        Visits every block (reachable or not) exactly once, threading the
        fixpoint env through the block's statements via ``transfer`` so
        ``check`` sees the same state the solver computed.
        """
        entry_envs = self.solve(cfg)
        for block in cfg.blocks:
            env = dict(entry_envs.get(block.bid, {}))
            for stmt in block.stmts:
                check(stmt, env)
                self.transfer(stmt, env)


# -- shared transfer helpers ---------------------------------------------------


def bound_names(target: ast.expr) -> List[str]:
    """Plain names bound by an assignment target (tuples flattened;
    attribute/subscript targets bind no local name)."""
    if isinstance(target, ast.Name):
        return [target.id]
    if isinstance(target, (ast.Tuple, ast.List)):
        names: List[str] = []
        for element in target.elts:
            if isinstance(element, ast.Starred):
                element = element.value
            names.extend(bound_names(element))
        return names
    return []


def iter_shallow_exprs(stmt: ast.stmt):
    """Expressions a statement evaluates *itself* (compound bodies are
    threaded into other blocks by the CFG builder and must be skipped)."""
    if is_test_expr(stmt):
        yield stmt.value
        return
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield stmt.iter
        return
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            yield item.context_expr
        return
    if isinstance(stmt, FUNCTION_NODES):
        for default in stmt.args.defaults + stmt.args.kw_defaults:
            if default is not None:
                yield default
        for decorator in stmt.decorator_list:
            yield decorator
        return
    if isinstance(stmt, ast.ClassDef):
        for base in stmt.bases:
            yield base
        for decorator in stmt.decorator_list:
            yield decorator
        return
    for child in ast.iter_child_nodes(stmt):
        if isinstance(child, ast.expr):
            yield child


class EnvEvaluator:
    """Shared shape for expression evaluators used by transfer functions.

    Subclasses implement :meth:`evaluate`; this base handles the one
    evaluation side effect every family needs: a walrus (``x := v``)
    binds ``x`` in the env to the evaluated value of ``v``.
    """

    def evaluate(self, node: ast.expr, env: Env) -> Any:
        raise NotImplementedError

    def eval_walrus(self, node: ast.NamedExpr, env: Env) -> Any:
        value = self.evaluate(node.value, env)
        if isinstance(node.target, ast.Name):
            env[node.target.id] = value
        return value


def transfer_assignments(
    stmt: ast.stmt, env: Env,
    evaluate: Callable[[ast.expr, Env], Any],
) -> None:
    """Generic binding transfer used by every family.

    Handles Assign / AnnAssign / AugAssign / for-targets / with-targets
    and nested ``def`` name bindings; leaves family-specific semantics
    (what the *value* abstracts to) to ``evaluate``.
    """
    if isinstance(stmt, ast.Assign):
        value = evaluate(stmt.value, env)
        for target in stmt.targets:
            for name in bound_names(target):
                if isinstance(target, ast.Name):
                    env[name] = value
                else:
                    env[name] = None  # tuple-unpacked: unknown
    elif isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None and isinstance(stmt.target, ast.Name):
            env[stmt.target.id] = evaluate(stmt.value, env)
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            # Family evaluators see the synthetic BinOp when they care;
            # default: the target becomes unknown.
            env[stmt.target.id] = None
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for name in bound_names(stmt.target):
            env[name] = None
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            value = evaluate(item.context_expr, env)
            if item.optional_vars is not None:
                for name in bound_names(item.optional_vars):
                    if isinstance(item.optional_vars, ast.Name):
                        env[name] = value
                    else:
                        env[name] = None
    elif isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            for name in bound_names(target):
                env.pop(name, None)
