"""AAC-like audio encoder model.

Section 5.2: audio is AAC, 44,100 Hz, 16-bit, VBR at about either 32 or
64 kbps.  An AAC frame covers 1024 samples, so frames arrive every
1024/44100 ≈ 23.2 ms; VBR makes individual frame sizes fluctuate around
the nominal rate.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from repro.media.frames import AudioFrame

SAMPLE_RATE_HZ = 44_100
SAMPLES_PER_FRAME = 1024
#: Seconds of audio per AAC frame.
FRAME_DURATION_S = SAMPLES_PER_FRAME / SAMPLE_RATE_HZ

#: The two nominal VBR operating points observed in the captures.
NOMINAL_BITRATES_BPS = (32_000.0, 64_000.0)


class AacEncoderModel:
    """Generate VBR audio frames at one of the two nominal bitrates."""

    def __init__(
        self,
        rng: random.Random,
        nominal_bps: float = 0.0,
        vbr_spread: float = 0.18,
    ) -> None:
        if nominal_bps == 0.0:
            nominal_bps = rng.choice(NOMINAL_BITRATES_BPS)
        if nominal_bps not in NOMINAL_BITRATES_BPS:
            raise ValueError(
                f"nominal bitrate must be one of {NOMINAL_BITRATES_BPS}, got {nominal_bps}"
            )
        if not 0 <= vbr_spread < 1:
            raise ValueError("vbr_spread must be in [0, 1)")
        self.nominal_bps = nominal_bps
        self.vbr_spread = vbr_spread
        self._rng = rng
        self._index = 0

    def generate(self, duration_s: float) -> Iterator[AudioFrame]:
        """Yield the audio frames covering ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        mean_bytes = self.nominal_bps * FRAME_DURATION_S / 8.0
        pts = 0.0
        while pts < duration_s:
            size = self._rng.gauss(mean_bytes, mean_bytes * self.vbr_spread)
            nbytes = max(8, int(round(size)))
            yield AudioFrame(index=self._index, pts=pts, nbytes=nbytes)
            self._index += 1
            pts += FRAME_DURATION_S

    def encode_all(self, duration_s: float) -> List[AudioFrame]:
        """Materialize :meth:`generate` into a list."""
        return list(self.generate(duration_s))
