"""Frame records produced by the encoder models."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Periscope always streams 320x568 (or transposed), Section 5.2.
VIDEO_RESOLUTION: Tuple[int, int] = (320, 568)


@dataclass(frozen=True)
class EncodedFrame:
    """One encoded video frame.

    ``pts`` is presentation time, ``dts`` decode/transmission time — they
    differ when B frames reorder (a B frame is transmitted after the
    following reference frame it depends on).  Both are media-time seconds
    since stream start.
    """

    index: int
    pts: float
    dts: float
    frame_type: str  # "I", "P" or "B"
    nbytes: int
    qp: float
    complexity: float
    #: Wall-clock capture time the broadcaster embeds into the video data
    #: roughly once per second (the paper's delivery-latency hook).  None
    #: on frames without an embedded timestamp.
    ntp_timestamp: Optional[float] = None

    def __post_init__(self) -> None:
        if self.frame_type not in ("I", "P", "B"):
            raise ValueError(f"unknown frame type {self.frame_type!r}")
        if self.nbytes <= 0:
            raise ValueError("frames must have positive size")


@dataclass(frozen=True)
class AudioFrame:
    """One encoded AAC-like audio frame (1024 samples at 44.1 kHz)."""

    index: int
    pts: float
    nbytes: int

    def __post_init__(self) -> None:
        if self.nbytes <= 0:
            raise ValueError("audio frames must have positive size")
