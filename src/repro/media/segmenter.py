"""HLS segmenter: pack frames into closed, I-frame-aligned segments.

Section 5.2: "The most common segment duration with HLS is 3.6 s (60% of
the cases), and it ranges between 3 and 6 s."  A segment must start at an
I frame (so a client can join at any segment boundary), which is why the
achievable durations quantize to whole GOPs: at ~30 fps with a 36-frame
GOP, three GOPs ≈ 3.6 s — the observed mode.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence

from repro.media.frames import AudioFrame, EncodedFrame


@dataclass
class HlsSegment:
    """One media segment: an I-frame-aligned run of video frames plus the
    audio frames covering the same interval."""

    sequence: int
    start_pts: float
    video_frames: List[EncodedFrame] = field(default_factory=list)
    audio_frames: List[AudioFrame] = field(default_factory=list)

    @property
    def end_pts(self) -> float:
        if not self.video_frames:
            return self.start_pts
        return max(f.pts for f in self.video_frames)

    @property
    def duration_s(self) -> float:
        """Nominal duration: from first to last frame plus one frame gap.

        Uses the median inter-frame interval so a trailing dropped frame
        doesn't shorten the reported duration.
        """
        frames = sorted(f.pts for f in self.video_frames)
        if len(frames) < 2:
            return 0.0
        gaps = sorted(b - a for a, b in zip(frames, frames[1:]))
        median_gap = gaps[len(gaps) // 2]
        return frames[-1] - frames[0] + median_gap

    @property
    def nbytes(self) -> int:
        return sum(f.nbytes for f in self.video_frames) + sum(
            f.nbytes for f in self.audio_frames
        )

    @property
    def frame_count(self) -> int:
        return len(self.video_frames)

    def bitrate_bps(self) -> float:
        """Average media bitrate of the segment."""
        duration = self.duration_s
        if duration <= 0:
            return 0.0
        return self.nbytes * 8.0 / duration

    def average_qp(self) -> float:
        if not self.video_frames:
            raise ValueError("empty segment has no QP")
        return sum(f.qp for f in self.video_frames) / len(self.video_frames)


class HlsSegmenter:
    """Group a frame stream into segments of ~``target_duration_s``.

    A segment closes at the first I frame after the target duration has
    elapsed, so actual durations are quantized to GOP lengths — between 3
    and 6 seconds for the parameters seen in the wild.
    """

    def __init__(self, target_duration_s: float = 3.6) -> None:
        if target_duration_s <= 0:
            raise ValueError("target duration must be positive")
        self.target_duration_s = target_duration_s

    def segment(
        self,
        video_frames: Iterable[EncodedFrame],
        audio_frames: Sequence[AudioFrame] = (),
    ) -> Iterator[HlsSegment]:
        """Yield closed segments; a final partial segment is yielded too
        (a live stream ends mid-segment when the broadcast stops)."""
        audio = sorted(audio_frames, key=lambda f: f.pts)
        audio_pos = 0
        current: Optional[HlsSegment] = None
        sequence = 0

        def close(segment: HlsSegment, upto_pts: float) -> HlsSegment:
            nonlocal audio_pos
            while audio_pos < len(audio) and audio[audio_pos].pts < upto_pts:
                segment.audio_frames.append(audio[audio_pos])
                audio_pos += 1
            return segment

        for frame in sorted(video_frames, key=lambda f: f.pts):
            if current is None:
                current = HlsSegment(sequence=sequence, start_pts=frame.pts)
            elif (
                frame.frame_type == "I"
                and frame.pts - current.start_pts >= self.target_duration_s
            ):
                yield close(current, frame.pts)
                sequence += 1
                current = HlsSegment(sequence=sequence, start_pts=frame.pts)
            current.video_frames.append(frame)
        if current is not None and current.video_frames:
            yield close(current, float("inf"))
