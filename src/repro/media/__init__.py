"""Media substrate: content model, AVC-like encoder, AAC-like audio.

The paper's Section 5.2 analyses the captured bitstreams: bitrate
(200-400 kbps typical), average QP vs. bitrate, frame-type patterns
(repeated IBP; some I+P-only; rare I-only), HLS segment durations
(3-6 s, mode 3.6 s) and AAC audio at ~32/64 kbps VBR.  This package
implements the *producing* side of those observations: a stochastic
content-complexity process drives a rate-controlled encoder model whose
output frames carry type, size, QP and timestamps — and can be serialized
to a parseable bitstream for the capture/reconstruction pipeline.
"""

from repro.media.content import ContentProfile, ContentProcess, CONTENT_PROFILES
from repro.media.rate_control import RateController, bits_for_frame
from repro.media.frames import AudioFrame, EncodedFrame, VIDEO_RESOLUTION
from repro.media.encoder import EncoderSettings, VideoEncoder, GopPattern
from repro.media.audio import AacEncoderModel
from repro.media.segmenter import HlsSegment, HlsSegmenter
from repro.media.bitstream import (
    FrameStreamParser,
    encode_audio_frame,
    encode_video_frame,
    parse_stream,
)

__all__ = [
    "FrameStreamParser",
    "encode_audio_frame",
    "encode_video_frame",
    "parse_stream",
    "ContentProfile",
    "ContentProcess",
    "CONTENT_PROFILES",
    "RateController",
    "bits_for_frame",
    "AudioFrame",
    "EncodedFrame",
    "VIDEO_RESOLUTION",
    "EncoderSettings",
    "VideoEncoder",
    "GopPattern",
    "AacEncoderModel",
    "HlsSegment",
    "HlsSegmenter",
]
