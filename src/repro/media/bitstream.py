"""Elementary-stream serialization of encoded frames.

For the byte-fidelity experiments, frames are serialized into a compact
tagged format that plays the role of the AVC/AAC elementary streams: the
FLV muxer (RTMP path) and the MPEG-TS muxer (HLS path) carry these bytes,
the capture pipeline reassembles them from packets, and the inspector in
:mod:`repro.capture.inspector` parses them back — recovering exactly the
per-frame facts (type, size, QP, timestamps) that the paper extracted
with libav.

Video record layout (big-endian)::

    0xF1 | type(1: I/P/B) | qp(f32) | pts(f64) | dts(f64) |
    ntp_flag(1) | ntp(f64 if flag) | payload_len(u32) | payload bytes

Audio record layout::

    0xF2 | pts(f64) | payload_len(u32) | payload bytes
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple, Union

from repro.media.frames import AudioFrame, EncodedFrame

VIDEO_MAGIC = 0xF1
AUDIO_MAGIC = 0xF2

_TYPE_TO_CODE = {"I": 0, "P": 1, "B": 2}
_CODE_TO_TYPE = {v: k for k, v in _TYPE_TO_CODE.items()}

_VIDEO_HEAD = struct.Struct(">BBfddB")
_NTP = struct.Struct(">d")
_LEN = struct.Struct(">I")
_AUDIO_HEAD = struct.Struct(">Bd")


def encode_video_frame(frame: EncodedFrame, fill: int = 0) -> bytes:
    """Serialize one video frame; the payload is ``frame.nbytes`` filler
    bytes (content entropy is irrelevant to every measurement here)."""
    head = _VIDEO_HEAD.pack(
        VIDEO_MAGIC,
        _TYPE_TO_CODE[frame.frame_type],
        float(frame.qp),
        float(frame.pts),
        float(frame.dts),
        1 if frame.ntp_timestamp is not None else 0,
    )
    parts = [head]
    if frame.ntp_timestamp is not None:
        parts.append(_NTP.pack(frame.ntp_timestamp))
    parts.append(_LEN.pack(frame.nbytes))
    parts.append(bytes([fill]) * frame.nbytes)
    return b"".join(parts)


def encode_audio_frame(frame: AudioFrame, fill: int = 0) -> bytes:
    """Serialize one audio frame."""
    return (
        _AUDIO_HEAD.pack(AUDIO_MAGIC, float(frame.pts))
        + _LEN.pack(frame.nbytes)
        + bytes([fill]) * frame.nbytes
    )


def encoded_video_size(frame: EncodedFrame) -> int:
    """``len(encode_video_frame(frame))`` without building the bytes.

    Lets size-fidelity senders (the common case) skip materializing the
    filler payload entirely."""
    size = _VIDEO_HEAD.size + _LEN.size + frame.nbytes
    if frame.ntp_timestamp is not None:
        size += _NTP.size
    return size


def encoded_audio_size(frame: AudioFrame) -> int:
    """``len(encode_audio_frame(frame))`` without building the bytes."""
    return _AUDIO_HEAD.size + _LEN.size + frame.nbytes


ParsedFrame = Union[EncodedFrame, AudioFrame]


class FrameStreamParser:
    """Incremental parser for concatenated frame records.

    Feed arbitrary byte chunks; complete frames pop out.  Partial records
    are buffered, so the parser works directly on reassembled TCP payload
    slices.
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._video_index = 0
        self._audio_index = 0

    def feed(self, data: bytes) -> List[ParsedFrame]:
        """Consume ``data``; return frames completed by it."""
        self._buffer.extend(data)
        frames: List[ParsedFrame] = []
        while True:
            frame = self._try_parse_one()
            if frame is None:
                return frames
            frames.append(frame)

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered but not yet parseable into a whole record."""
        return len(self._buffer)

    def _try_parse_one(self) -> Optional[ParsedFrame]:
        if not self._buffer:
            return None
        magic = self._buffer[0]
        if magic == VIDEO_MAGIC:
            return self._try_parse_video()
        if magic == AUDIO_MAGIC:
            return self._try_parse_audio()
        raise ValueError(f"corrupt stream: unexpected magic byte {magic:#x}")

    def _try_parse_video(self) -> Optional[EncodedFrame]:
        head_size = _VIDEO_HEAD.size
        if len(self._buffer) < head_size:
            return None
        magic, type_code, qp, pts, dts, ntp_flag = _VIDEO_HEAD.unpack(
            bytes(self._buffer[:head_size])
        )
        offset = head_size
        ntp: Optional[float] = None
        if ntp_flag:
            if len(self._buffer) < offset + _NTP.size:
                return None
            (ntp,) = _NTP.unpack(bytes(self._buffer[offset : offset + _NTP.size]))
            offset += _NTP.size
        if len(self._buffer) < offset + _LEN.size:
            return None
        (payload_len,) = _LEN.unpack(bytes(self._buffer[offset : offset + _LEN.size]))
        offset += _LEN.size
        if len(self._buffer) < offset + payload_len:
            return None
        del self._buffer[: offset + payload_len]
        frame = EncodedFrame(
            index=self._video_index,
            pts=pts,
            dts=dts,
            frame_type=_CODE_TO_TYPE[type_code],
            nbytes=payload_len,
            qp=qp,
            complexity=0.0,  # not carried in the bitstream, as in real AVC
            ntp_timestamp=ntp,
        )
        self._video_index += 1
        return frame

    def _try_parse_audio(self) -> Optional[AudioFrame]:
        head_size = _AUDIO_HEAD.size
        if len(self._buffer) < head_size + _LEN.size:
            return None
        magic, pts = _AUDIO_HEAD.unpack(bytes(self._buffer[:head_size]))
        (payload_len,) = _LEN.unpack(
            bytes(self._buffer[head_size : head_size + _LEN.size])
        )
        total = head_size + _LEN.size + payload_len
        if len(self._buffer) < total:
            return None
        del self._buffer[:total]
        frame = AudioFrame(index=self._audio_index, pts=pts, nbytes=payload_len)
        self._audio_index += 1
        return frame


def parse_stream(data: bytes) -> List[ParsedFrame]:
    """One-shot parse of a complete elementary stream."""
    parser = FrameStreamParser()
    frames = parser.feed(data)
    if parser.pending_bytes:
        raise ValueError(f"{parser.pending_bytes} trailing bytes not parseable")
    return frames
