"""AVC-like video encoder model.

Produces :class:`~repro.media.frames.EncodedFrame` records in decode
(transmission) order, driven by a content-complexity process and the
rate controller.  The model reproduces the Section 5.2 census:

* GOP patterns — most streams use a repeated IBP scheme (display order
  ``I B P B P …``); roughly a fifth use only I and P frames; I-only
  streams are rare and wildly inefficient (their bitrate explains the
  higher RTMP maximum in Fig. 6(a));
* a new I frame roughly every 36 frames;
* variable frame rate up to 30 fps with occasional missing frames
  (uploader glitches) that the viewer must conceal;
* an NTP wall-clock timestamp embedded into the video data about once a
  second (the paper's delivery-latency measurement hook).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Tuple

from repro.media.content import ContentProcess
from repro.media.frames import EncodedFrame
from repro.media.rate_control import RateController


@dataclass(frozen=True)
class GopPattern:
    """Group-of-pictures structure.

    ``kind`` is one of ``"IBP"`` (B frames between references), ``"IP"``
    (no B frames) or ``"I"`` (intra only).  ``i_period`` is the distance
    in frames between consecutive I frames.
    """

    kind: str
    i_period: int = 36

    def __post_init__(self) -> None:
        if self.kind not in ("IBP", "IP", "I"):
            raise ValueError(f"unknown GOP kind {self.kind!r}")
        if self.i_period < 1:
            raise ValueError("i_period must be >= 1")

    @property
    def uses_b_frames(self) -> bool:
        return self.kind == "IBP"

    def display_types(self) -> List[str]:
        """Frame types of one GOP in display order."""
        if self.kind == "I":
            return ["I"] * self.i_period
        if self.kind == "IP":
            return ["I"] + ["P"] * (self.i_period - 1)
        types = ["I"]
        for position in range(1, self.i_period):
            types.append("B" if position % 2 == 1 else "P")
        # A closed GOP must not end on a B frame (it would need the next
        # GOP's I frame as its forward reference).
        if types[-1] == "B":
            types[-1] = "P"
        return types

    #: Population frequencies from the paper: ~80% IBP, ~19-20% I+P only,
    #: I-only observed in 2 streams out of the whole capture set.
    SAMPLE_WEIGHTS = (("IBP", 0.795), ("IP", 0.195), ("I", 0.01))

    @classmethod
    def sample(cls, rng: random.Random) -> "GopPattern":
        """Draw a pattern with the observed population frequencies; the I
        period jitters around 36 frames."""
        pick = rng.random()
        acc = 0.0
        kind = cls.SAMPLE_WEIGHTS[-1][0]
        for name, weight in cls.SAMPLE_WEIGHTS:
            acc += weight
            if pick < acc:
                kind = name
                break
        i_period = max(12, int(round(rng.gauss(36, 3))))
        return cls(kind=kind, i_period=i_period)


@dataclass
class EncoderSettings:
    """Static encoder configuration for one broadcast."""

    target_bps: float
    #: Nominal capture frame rate (frames/s); the effective rate is lower
    #: because of jitter and drops.
    nominal_fps: float = 30.0
    #: Mean fraction of frames the capture pipeline drops (device load,
    #: camera glitches).  Galaxy S3 drops noticeably more than S4.
    drop_rate: float = 0.02
    #: Std-dev of the per-frame interval, as a fraction of the interval.
    interval_jitter: float = 0.10
    gop: GopPattern = field(default_factory=lambda: GopPattern("IBP"))
    #: Media-time seconds between embedded NTP timestamps.
    ntp_interval: float = 1.0

    def __post_init__(self) -> None:
        if self.target_bps <= 0:
            raise ValueError("target bitrate must be positive")
        if not 0 <= self.drop_rate < 1:
            raise ValueError("drop rate must be in [0, 1)")
        if self.nominal_fps <= 0:
            raise ValueError("nominal fps must be positive")


class VideoEncoder:
    """Encode a broadcast: content process -> rate-controlled frames.

    Frames are yielded in **decode order** (the order they are pushed to
    the network); each frame carries both ``dts`` and ``pts``.  With the
    IBP pattern a B frame is transmitted after the P frame that follows it
    in display order — the one-frame latency penalty the paper notes.
    """

    def __init__(
        self,
        settings: EncoderSettings,
        content: ContentProcess,
        rng: random.Random,
        wallclock_start: float = 0.0,
    ) -> None:
        self.settings = settings
        self.content = content
        self._rng = rng
        self.wallclock_start = wallclock_start
        self.rate_control = RateController(
            target_bps=settings.target_bps, fps=settings.nominal_fps
        )
        self._frame_index = 0
        self._bits_total = 0.0
        self._qp_sum = 0.0
        self._frames_encoded = 0

    # ------------------------------------------------------------ statistics

    @property
    def frames_encoded(self) -> int:
        return self._frames_encoded

    def average_bitrate_bps(self, duration_s: float) -> float:
        """Mean output bitrate over an encoded duration."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        return self._bits_total / duration_s

    @property
    def average_qp(self) -> float:
        if self._frames_encoded == 0:
            raise ValueError("no frames encoded yet")
        return self._qp_sum / self._frames_encoded

    # -------------------------------------------------------------- encoding

    def _display_schedule(self, duration_s: float) -> List[Tuple[float, str]]:
        """(pts, type) pairs in display order, with jitter and drops."""
        interval = 1.0 / self.settings.nominal_fps
        schedule: List[Tuple[float, str]] = []
        gop_types = self.settings.gop.display_types()
        pts = 0.0
        position = 0
        while pts < duration_s:
            frame_type = gop_types[position % len(gop_types)]
            position += 1
            step = max(
                interval * 0.5,
                self._rng.gauss(interval, interval * self.settings.interval_jitter),
            )
            dropped = self._rng.random() < self.settings.drop_rate
            # I frames are never dropped (the encoder restarts the GOP on
            # them); dropping one would stall the whole GOP.
            if dropped and frame_type != "I":
                pts += step
                continue
            schedule.append((pts, frame_type))
            pts += step
        return schedule

    @staticmethod
    def _decode_order(display: List[Tuple[float, str]]) -> List[Tuple[float, str]]:
        """Reorder display-order frames into decode order: each B frame is
        moved after the next reference frame."""
        decode: List[Tuple[float, str]] = []
        pending_b: List[Tuple[float, str]] = []
        for pts, frame_type in display:
            if frame_type == "B":
                pending_b.append((pts, frame_type))
            else:
                decode.append((pts, frame_type))
                decode.extend(pending_b)
                pending_b.clear()
        # A truncated stream can end on display-order B frames that never
        # get a forward reference; a real encoder emits them as P instead.
        decode.extend((pts, "P") for pts, _ in pending_b)
        return decode

    def generate(self, duration_s: float) -> Iterator[EncodedFrame]:
        """Yield the frames of ``duration_s`` seconds of broadcast, in
        decode order."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        display = self._display_schedule(duration_s)
        decode = self._decode_order(display)
        next_ntp_at = 0.0
        send_clock = 0.0
        for order, (pts, frame_type) in enumerate(decode):
            complexity = self.content.step()
            qp = self.rate_control.qp
            bits = self.rate_control.encode_frame(frame_type, complexity)
            nbytes = max(64, int(round(bits / 8.0)))
            ntp: Optional[float] = None
            if pts >= next_ntp_at and frame_type != "B":
                ntp = self.wallclock_start + pts
                next_ntp_at = pts + self.settings.ntp_interval
            # A frame leaves the encoder once captured; B-frame reordering
            # means a B departs after the (later-captured) reference it
            # needs, so the send clock is the running max of capture times.
            send_clock = max(send_clock, pts)
            frame = EncodedFrame(
                index=self._frame_index,
                pts=pts,
                dts=send_clock,
                frame_type=frame_type,
                nbytes=nbytes,
                qp=qp,
                complexity=complexity,
                ntp_timestamp=ntp,
            )
            self._frame_index += 1
            self._frames_encoded += 1
            self._bits_total += nbytes * 8
            self._qp_sum += qp
            yield frame

    def encode_all(self, duration_s: float) -> List[EncodedFrame]:
        """Materialize :meth:`generate` into a list."""
        return list(self.generate(duration_s))
