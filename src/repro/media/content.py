"""Stochastic content-complexity model.

The paper attributes the wide bitrate range observed at equal QP to
"extreme time variability of the captured content": some broadcasts are a
static talking head, others are soccer matches filmed off a TV screen.
We model per-frame *complexity* as a mean-reverting AR(1) process around
a per-genre mean, with occasional scene-change jumps.  Complexity is a
dimensionless multiplier on the bits needed at a given QP (1.0 = an
average scene).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Optional


@dataclass(frozen=True)
class ContentProfile:
    """Statistical fingerprint of a broadcast genre."""

    name: str
    #: Long-run mean complexity (bits multiplier at fixed QP).
    mean_complexity: float
    #: AR(1) innovation scale — how jittery the content is frame to frame.
    volatility: float
    #: Probability per frame of a scene change (complexity jump).
    scene_change_rate: float
    #: Relative popularity of this genre among broadcasts.
    weight: float


#: Genres the paper's text mentions or implies, with relative prevalence.
CONTENT_PROFILES: Dict[str, ContentProfile] = {
    profile.name: profile
    for profile in (
        ContentProfile("static_talker", mean_complexity=0.45, volatility=0.02,
                       scene_change_rate=0.0005, weight=0.40),
        ContentProfile("indoor_event", mean_complexity=0.80, volatility=0.05,
                       scene_change_rate=0.002, weight=0.20),
        ContentProfile("outdoor_walk", mean_complexity=1.10, volatility=0.08,
                       scene_change_rate=0.004, weight=0.20),
        ContentProfile("sports_tv", mean_complexity=1.60, volatility=0.15,
                       scene_change_rate=0.008, weight=0.12),
        ContentProfile("concert", mean_complexity=1.35, volatility=0.12,
                       scene_change_rate=0.006, weight=0.08),
    )
}


def pick_profile(rng: random.Random) -> ContentProfile:
    """Draw a genre according to its prevalence weight."""
    profiles = list(CONTENT_PROFILES.values())
    weights = [p.weight for p in profiles]
    total = sum(weights)
    pick = rng.random() * total
    acc = 0.0
    for profile, weight in zip(profiles, weights):
        acc += weight
        if pick < acc:
            return profile
    return profiles[-1]


class ContentProcess:
    """Per-frame complexity samples for one broadcast.

    AR(1) around the genre mean with multiplicative scene-change jumps:

    ``c[t+1] = c[t] + phi * (mean - c[t]) + N(0, volatility)``, and with
    probability ``scene_change_rate`` the state jumps to a fresh draw
    around the mean.  Values are clipped to a sane positive range.
    """

    #: Mean-reversion strength per frame.
    PHI = 0.05
    MIN_COMPLEXITY = 0.05
    MAX_COMPLEXITY = 4.0

    def __init__(self, profile: ContentProfile, rng: random.Random) -> None:
        self.profile = profile
        self._rng = rng
        self._state = self._fresh_scene()

    def _fresh_scene(self) -> float:
        draw = self._rng.gauss(self.profile.mean_complexity,
                               self.profile.mean_complexity * 0.3)
        return min(max(draw, self.MIN_COMPLEXITY), self.MAX_COMPLEXITY)

    @property
    def current(self) -> float:
        return self._state

    def step(self) -> float:
        """Advance one frame and return the new complexity."""
        if self._rng.random() < self.profile.scene_change_rate:
            self._state = self._fresh_scene()
            return self._state
        mean = self.profile.mean_complexity
        innovation = self._rng.gauss(0.0, self.profile.volatility)
        state = self._state + self.PHI * (mean - self._state) + innovation
        self._state = min(max(state, self.MIN_COMPLEXITY), self.MAX_COMPLEXITY)
        return self._state
