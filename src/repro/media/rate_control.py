"""Rate control: the QP <-> bits relationship and the ABR control loop.

We use the standard exponential R-QP model from the rate-control
literature (Chen & Ngan 2007, the paper's reference [2]): halving the
quantization step — i.e. lowering QP by 6 — roughly doubles the bitrate,

    ``bits(frame) = base_bits * complexity * type_factor * 2^((QP_REF - qp)/6)``

and an ABR-style controller that nudges QP to keep a leaky-bucket
estimate of the output rate near the target.  This produces exactly the
Figure 6(b) phenomenology: for a fixed target bitrate, harder content is
encoded at higher QP (worse quality), and at a fixed QP the bitrate
spreads over a wide range with content complexity.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import obs

#: Reference QP at which an average-complexity frame costs ``base_bits``.
QP_REF = 30.0
#: H.264 QP range.
QP_MIN, QP_MAX = 10.0, 51.0

#: Relative size of frame types for equal QP/content.  I frames are intra
#: coded (large); B frames exploit bidirectional prediction (small).
TYPE_FACTOR = {"I": 4.5, "P": 1.0, "B": 0.55}

#: Bits an average-complexity P frame costs at QP_REF for the fixed
#: 320x568 resolution.  Chosen so that a 30 fps IBP stream at QP~30 and
#: complexity 1.0 lands near the paper's typical 300 kbps.
BASE_P_FRAME_BITS = 7200.0


def bits_for_frame(frame_type: str, qp: float, complexity: float) -> float:
    """Size in bits of one frame under the R-QP model."""
    if frame_type not in TYPE_FACTOR:
        raise ValueError(f"unknown frame type {frame_type!r}")
    if not QP_MIN <= qp <= QP_MAX:
        raise ValueError(f"QP {qp} outside [{QP_MIN}, {QP_MAX}]")
    if complexity <= 0:
        raise ValueError("complexity must be positive")
    scale = 2.0 ** ((QP_REF - qp) / 6.0)
    return BASE_P_FRAME_BITS * TYPE_FACTOR[frame_type] * complexity * scale


def qp_for_bits(frame_type: str, target_bits: float, complexity: float) -> float:
    """Invert the R-QP model: QP that hits ``target_bits``, clamped."""
    import math

    if target_bits <= 0:
        raise ValueError("target bits must be positive")
    base = BASE_P_FRAME_BITS * TYPE_FACTOR[frame_type] * complexity
    qp = QP_REF - 6.0 * math.log2(target_bits / base)
    return min(max(qp, QP_MIN), QP_MAX)


@dataclass
class RateControllerState:
    """Observable internals, exported for tests and ablations."""

    qp: float
    buffer_bits: float
    frames_encoded: int


class RateController:
    """ABR-style single-pass rate control.

    A virtual buffer drains at the target bitrate and fills with actual
    frame bits; QP follows the buffer error with a proportional step,
    bounded to ±`max_qp_step` per frame so quality doesn't flicker — the
    same compromise real encoders make, and the reason short-term bitrate
    overshoots on scene changes (visible as Fig. 6(a) spread).
    """

    def __init__(
        self,
        target_bps: float,
        fps: float,
        initial_qp: float = QP_REF,
        reaction: float = 0.5,
        max_qp_step: float = 2.0,
    ) -> None:
        if target_bps <= 0 or fps <= 0:
            raise ValueError("target bitrate and fps must be positive")
        self.target_bps = target_bps
        self.fps = fps
        self.reaction = reaction
        self.max_qp_step = max_qp_step
        self._qp = min(max(initial_qp, QP_MIN), QP_MAX)
        self._buffer_bits = 0.0
        self._frames = 0

    @property
    def state(self) -> RateControllerState:
        return RateControllerState(self._qp, self._buffer_bits, self._frames)

    @property
    def qp(self) -> float:
        return self._qp

    def encode_frame(self, frame_type: str, complexity: float) -> float:
        """Encode one frame at the current QP; returns its size in bits and
        updates the control state."""
        bits = bits_for_frame(frame_type, self._qp, complexity)
        per_frame_budget = self.target_bps / self.fps
        self._buffer_bits += bits - per_frame_budget
        self._frames += 1
        # Proportional controller on buffer error, in QP units: one second
        # of excess buffered bits maps to `reaction` QP steps of 6/ln(2)...
        # kept simple and bounded.
        error_seconds = self._buffer_bits / self.target_bps
        step = self.reaction * error_seconds * 6.0
        step = min(max(step, -self.max_qp_step), self.max_qp_step)
        self._qp = min(max(self._qp + step, QP_MIN), QP_MAX)
        if self._qp >= QP_MAX:
            # The controller is pinned at its quality floor: this frame's
            # worth of time is starved by an unreachable target bitrate.
            telemetry = obs.active()
            if telemetry.enabled and telemetry.causes_on:
                telemetry.causes.add("media.rate_starvation", 1.0 / self.fps)
        return bits
