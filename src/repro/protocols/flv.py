"""FLV tag muxing/demuxing — the container format RTMP carries.

Implements the FLV file/stream structure from the Adobe spec at the
fidelity the study needs: a 9-byte header, then tags of

    TagType(1) DataSize(3) Timestamp(3+1) StreamID(3) Data PrevTagSize(4)

with AVC video data (frame-type/codec-id byte) and AAC audio data (sound
format byte) wrapping our elementary-stream records.  The wireshark RTMP
dissector step of the paper corresponds to :func:`demux` here.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, List, Tuple, Union

from repro.media.bitstream import (
    FrameStreamParser,
    encode_audio_frame,
    encode_video_frame,
)
from repro.media.frames import AudioFrame, EncodedFrame

FLV_SIGNATURE = b"FLV"
FLV_VERSION = 1
#: Header flags: audio present | video present.
FLV_FLAGS_AV = 0x05
FLV_HEADER_SIZE = 9

TAG_AUDIO = 8
TAG_VIDEO = 9

#: Video tag first byte: frame type (1 = key, 2 = inter) << 4 | codec (7 = AVC).
_VIDEO_KEY = (1 << 4) | 7
_VIDEO_INTER = (2 << 4) | 7
#: Audio tag first byte: AAC (10) << 4 | 44 kHz (3) << 2 | 16-bit (1) << 1 | stereo.
_AUDIO_AAC_44K = (10 << 4) | (3 << 2) | (1 << 1) | 1


def file_header() -> bytes:
    """The FLV stream header plus the zero PreviousTagSize0 field."""
    header = FLV_SIGNATURE + bytes([FLV_VERSION, FLV_FLAGS_AV]) + struct.pack(
        ">I", FLV_HEADER_SIZE
    )
    return header + struct.pack(">I", 0)


def _tag(tag_type: int, timestamp_ms: int, data: bytes) -> bytes:
    """Serialize one FLV tag with its trailing PreviousTagSize."""
    if timestamp_ms < 0:
        raise ValueError("FLV timestamps must be non-negative")
    size = len(data)
    if size >= 1 << 24:
        raise ValueError("FLV tag data too large")
    ts_low = timestamp_ms & 0xFFFFFF
    ts_ext = (timestamp_ms >> 24) & 0xFF
    header = struct.pack(
        ">B3s3sB3s",
        tag_type,
        size.to_bytes(3, "big"),
        ts_low.to_bytes(3, "big"),
        ts_ext,
        b"\x00\x00\x00",
    )
    body = header + data
    return body + struct.pack(">I", len(body))


def video_tag(frame: EncodedFrame) -> bytes:
    """One FLV video tag wrapping the frame's elementary-stream record."""
    marker = _VIDEO_KEY if frame.frame_type == "I" else _VIDEO_INTER
    data = bytes([marker]) + encode_video_frame(frame)
    return _tag(TAG_VIDEO, int(round(frame.dts * 1000)), data)


def audio_tag(frame: AudioFrame) -> bytes:
    """One FLV audio tag wrapping the frame's elementary-stream record."""
    data = bytes([_AUDIO_AAC_44K]) + encode_audio_frame(frame)
    return _tag(TAG_AUDIO, int(round(frame.pts * 1000)), data)


def mux(
    video_frames: Iterable[EncodedFrame],
    audio_frames: Iterable[AudioFrame] = (),
    include_header: bool = True,
) -> bytes:
    """Serialize frames into an FLV byte stream, interleaved by time."""
    tagged: List[Tuple[float, bytes]] = []
    for frame in video_frames:
        tagged.append((frame.dts, video_tag(frame)))
    for frame in audio_frames:
        tagged.append((frame.pts, audio_tag(frame)))
    tagged.sort(key=lambda item: item[0])
    parts = [file_header()] if include_header else []
    parts.extend(data for _, data in tagged)
    return b"".join(parts)


@dataclass(frozen=True)
class FlvTag:
    """One parsed FLV tag."""

    tag_type: int
    timestamp_ms: int
    frame: Union[EncodedFrame, AudioFrame]


def demux(data: bytes, has_header: bool = True) -> List[FlvTag]:
    """Parse an FLV stream back into tags with their media frames."""
    offset = 0
    if has_header:
        if data[:3] != FLV_SIGNATURE:
            raise ValueError("not an FLV stream (bad signature)")
        header_size = struct.unpack(">I", data[5:9])[0]
        offset = header_size + 4  # skip PreviousTagSize0
    tags: List[FlvTag] = []
    while offset < len(data):
        if offset + 11 > len(data):
            raise ValueError("truncated FLV tag header")
        tag_type = data[offset]
        size = int.from_bytes(data[offset + 1 : offset + 4], "big")
        ts_low = int.from_bytes(data[offset + 4 : offset + 7], "big")
        ts_ext = data[offset + 7]
        timestamp_ms = (ts_ext << 24) | ts_low
        body_start = offset + 11
        body_end = body_start + size
        if body_end + 4 > len(data):
            raise ValueError("truncated FLV tag body")
        body = data[body_start:body_end]
        if tag_type not in (TAG_AUDIO, TAG_VIDEO):
            raise ValueError(f"unsupported FLV tag type {tag_type}")
        parser = FrameStreamParser()
        frames = parser.feed(body[1:])  # strip the codec marker byte
        if len(frames) != 1 or parser.pending_bytes:
            raise ValueError("FLV tag does not contain exactly one frame record")
        (prev_size,) = struct.unpack(">I", data[body_end : body_end + 4])
        if prev_size != 11 + size:
            raise ValueError("FLV PreviousTagSize mismatch")
        tags.append(FlvTag(tag_type=tag_type, timestamp_ms=timestamp_ms, frame=frames[0]))
        offset = body_end + 4
    return tags
