"""HTTP request/response over the simulated network.

Models what the study observes on the wire: POST requests with JSON
bodies to the Periscope API, GETs for HLS playlists/segments and chat
avatar images, and the HTTP 429 ("Too many requests") answers that force
the crawler to pace itself.

Headers are not serialized byte-for-byte; a request/response carries a
realistic header byte count plus a structured body, which is what the
capture pipeline and the traffic accounting need.
"""

from __future__ import annotations

import enum
import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from repro import obs
from repro.netsim.connection import Message
from repro.netsim.duplex import DuplexStream
from repro.netsim.events import EventLoop

#: Typical compact HTTP/1.1 header block sizes on the wire.
REQUEST_HEADER_BYTES = 420
RESPONSE_HEADER_BYTES = 310

_request_ids = itertools.count(1)


def request_kind(path: str) -> str:
    """Coarse request class used as a telemetry label (keeps label
    cardinality bounded: broadcast ids and usernames never label)."""
    if path.startswith("/api/"):
        return "api"
    if path.endswith(".m3u8"):
        return "playlist"
    if path.endswith(".ts"):
        return "segment"
    if path.startswith("/avatars/") or "profile-images" in path:
        return "avatar"
    return "other"


class HttpStatus(enum.IntEnum):
    """The status codes this study encounters."""

    OK = 200
    NOT_FOUND = 404
    TOO_MANY_REQUESTS = 429
    SERVICE_UNAVAILABLE = 503


@dataclass
class HttpRequest:
    """One HTTP request (method, path, JSON or opaque body)."""

    method: str
    path: str
    json_body: Optional[Dict[str, Any]] = None
    body_bytes: int = 0
    headers: Dict[str, str] = field(default_factory=dict)
    request_id: int = field(default_factory=lambda: next(_request_ids))

    def __post_init__(self) -> None:
        if self.method not in ("GET", "POST", "HEAD"):
            raise ValueError(f"unsupported method {self.method!r}")
        if self.json_body is not None and self.body_bytes == 0:
            self.body_bytes = len(json.dumps(self.json_body, separators=(",", ":")))

    @property
    def nbytes(self) -> int:
        return REQUEST_HEADER_BYTES + self.body_bytes


@dataclass
class HttpResponse:
    """One HTTP response: status, JSON or opaque payload."""

    status: HttpStatus
    json_body: Optional[Dict[str, Any]] = None
    body_bytes: int = 0
    #: Opaque payload object (e.g. a TS segment) delivered to the client.
    payload: Any = None
    #: Real payload bytes for byte-fidelity runs.
    data: Optional[bytes] = None
    request_id: int = -1
    headers: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.json_body is not None and self.body_bytes == 0:
            self.body_bytes = len(json.dumps(self.json_body, separators=(",", ":")))
        if self.data is not None:
            self.body_bytes = len(self.data)

    @property
    def nbytes(self) -> int:
        return RESPONSE_HEADER_BYTES + self.body_bytes


#: Server-side hook: (request, client_label) -> response.
RequestHandler = Callable[[HttpRequest, str], HttpResponse]
#: Client-side hook invoked with the response and its arrival time.
ResponseCallback = Callable[[HttpResponse, float], None]


class HttpServer:
    """Serves one handler over one duplex stream (endpoint "b").

    The Periscope backends are modelled as one logical server per role
    (API frontend, CDN edge, avatar store); per-connection state is a
    :class:`HttpServer` attached to the stream of each client.
    """

    def __init__(
        self,
        loop: EventLoop,
        stream: DuplexStream,
        handler: RequestHandler,
        client_label: str = "",
        processing_delay_s: float = 0.004,
    ) -> None:
        self.loop = loop
        self.stream = stream
        self.handler = handler
        self.client_label = client_label
        self.processing_delay_s = processing_delay_s
        self.requests_served = 0
        stream.on_at_b = self._on_request

    def _on_request(self, message: Message, now: float) -> None:
        request = message.payload
        if not isinstance(request, HttpRequest):
            raise TypeError(f"HTTP server got non-request payload {request!r}")

        def respond() -> None:
            response = self.handler(request, self.client_label)
            response.request_id = request.request_id
            self.requests_served += 1
            if self.stream.closed:
                return
            # Byte-fidelity payloads ride as header-prefixed raw bytes so a
            # packet capture can reassemble the exact segment contents.
            wire_data = None
            if response.data is not None:
                wire_data = bytes(RESPONSE_HEADER_BYTES) + response.data
            self.stream.send_from_b(
                Message(
                    payload=response,
                    nbytes=response.nbytes,
                    data=wire_data,
                    annotations={
                        "protocol": "http",
                        "kind": "response",
                        "status": int(response.status),
                        "path": request.path,
                    },
                )
            )

        self.loop.schedule(self.processing_delay_s, respond)


class HttpClient:
    """Issues requests over one duplex stream (endpoint "a") and matches
    responses to per-request callbacks."""

    def __init__(self, loop: EventLoop, stream: DuplexStream) -> None:
        self.loop = loop
        self.stream = stream
        self._pending: Dict[int, ResponseCallback] = {}
        #: request_id -> (sent sim-time, request kind); only populated
        #: while telemetry is active.
        self._inflight_meta: Dict[int, tuple] = {}
        self.responses_received = 0
        stream.on_at_a = self._on_response

    def request(self, request: HttpRequest, callback: ResponseCallback) -> HttpRequest:
        """Send ``request``; ``callback`` fires when the response lands."""
        self._pending[request.request_id] = callback
        telemetry = obs.active()
        if telemetry.enabled and (telemetry.metrics_on or telemetry.causes_on):
            kind = request_kind(request.path)
            self._inflight_meta[request.request_id] = (self.loop.now, kind)
            if telemetry.metrics_on:
                telemetry.metrics.counter(
                    "http_requests_total", "HTTP requests sent", kind=kind,
                ).inc()
        self.stream.send_from_a(
            Message(
                payload=request,
                nbytes=request.nbytes,
                annotations={
                    "protocol": "http",
                    "kind": "request",
                    "method": request.method,
                    "path": request.path,
                },
            )
        )
        return request

    def _on_response(self, message: Message, now: float) -> None:
        response = message.payload
        if not isinstance(response, HttpResponse):
            raise TypeError(f"HTTP client got non-response payload {response!r}")
        callback = self._pending.pop(response.request_id, None)
        self.responses_received += 1
        telemetry = obs.active()
        if telemetry.enabled and (telemetry.metrics_on or telemetry.causes_on):
            meta = self._inflight_meta.pop(response.request_id, None)
            kind = meta[1] if meta else "other"
            if telemetry.metrics_on:
                metrics = telemetry.metrics
                metrics.counter(
                    "http_responses_total", "HTTP responses by status",
                    status=int(response.status), kind=kind,
                ).inc()
                if response.status == HttpStatus.TOO_MANY_REQUESTS:
                    metrics.counter(
                        "http_429_total", "Rate-limited responses", kind=kind,
                    ).inc()
                if meta is not None:
                    metrics.histogram(
                        "http_request_latency_seconds",
                        "Request send to response arrival (simulated)",
                        kind=kind,
                    ).observe(now - meta[0])
            if (telemetry.causes_on and meta is not None
                    and response.status == HttpStatus.TOO_MANY_REQUESTS):
                # A 429 burns a full round trip before any retry logic
                # even starts; attribute that latency to rate limiting.
                telemetry.causes.add("http.rate_limit", now - meta[0])
        if callback is not None:
            callback(response, now)

    @property
    def outstanding(self) -> int:
        """Requests awaiting a response."""
        return len(self._pending)
