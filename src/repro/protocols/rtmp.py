"""RTMP-like chunked push streaming.

Periscope delivers unpopular broadcasts over RTMP on port 80 straight
from Amazon EC2 ingest servers; its defining property for QoE is that the
server **pushes each frame the moment it exists** — no segmentation, no
client polling — which is why the paper measures sub-300 ms delivery
latency for 75% of RTMP broadcasts.

Two layers live here:

* a byte-level implementation of the RTMP **chunk stream** (format-0
  headers with the 11-byte message header, format-3 continuation chunks,
  configurable chunk size) carrying FLV-tagged media — enough for the
  capture pipeline to dissect streams the way wireshark's RTMP dissector
  does; and
* :class:`RtmpPushSession` / :class:`RtmpReceiver`, the transport glue
  that runs the protocol over a simulated connection.
"""

from __future__ import annotations

import enum
import struct
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.media.bitstream import (
    FrameStreamParser,
    encoded_audio_size,
    encoded_video_size,
)
from repro.media.frames import AudioFrame, EncodedFrame
from repro.netsim.connection import Connection, Message
from repro.protocols import flv

#: Default maximum chunk payload negotiated via Set Chunk Size (modern
#: servers immediately raise it from the spec default of 128).
DEFAULT_CHUNK_SIZE = 4096

#: RTMP handshake sizes: C0/S0 are 1 byte, C1/S1/C2/S2 are 1536 bytes.
HANDSHAKE_C0 = 1
HANDSHAKE_C1 = 1536
HANDSHAKE_S0S1S2 = 1 + 1536 + 1536
HANDSHAKE_C2 = 1536

#: TCP port Periscope serves plaintext RTMP on (80, to dodge firewalls).
RTMP_PORT = 80


class RtmpMessageType(enum.IntEnum):
    """Message type ids from the RTMP spec (subset the study needs)."""

    SET_CHUNK_SIZE = 1
    USER_CONTROL = 4
    AUDIO = 8
    VIDEO = 9
    DATA_AMF0 = 18
    COMMAND_AMF0 = 20


@dataclass(frozen=True)
class RtmpMessage:
    """One RTMP message prior to chunking."""

    msg_type: RtmpMessageType
    timestamp_ms: int
    payload: bytes
    stream_id: int = 1
    chunk_stream_id: int = 4

    def __post_init__(self) -> None:
        if self.timestamp_ms < 0:
            raise ValueError("timestamp must be non-negative")
        if not 2 <= self.chunk_stream_id <= 63:
            raise ValueError("only single-byte chunk stream ids are supported")


# --------------------------------------------------------------------- chunking


def chunk_message(message: RtmpMessage, chunk_size: int = DEFAULT_CHUNK_SIZE) -> bytes:
    """Serialize one message as a format-0 chunk plus format-3 continuations."""
    if chunk_size <= 0:
        raise ValueError("chunk size must be positive")
    payload = message.payload
    ts = min(message.timestamp_ms, 0xFFFFFF)  # extended timestamps unsupported
    basic0 = bytes([(0 << 6) | message.chunk_stream_id])
    header0 = (
        ts.to_bytes(3, "big")
        + len(payload).to_bytes(3, "big")
        + bytes([int(message.msg_type)])
        + struct.pack("<I", message.stream_id)  # little-endian per spec quirk
    )
    basic3 = bytes([(3 << 6) | message.chunk_stream_id])
    parts = [basic0, header0, payload[:chunk_size]]
    offset = chunk_size
    while offset < len(payload):
        parts.append(basic3)
        parts.append(payload[offset : offset + chunk_size])
        offset += chunk_size
    return b"".join(parts)


class ChunkParser:
    """Incremental RTMP chunk-stream parser.

    Reassembles messages from a byte stream, honouring Set Chunk Size
    control messages inline (type 1), exactly like a dissector must.
    """

    def __init__(self, chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        self.chunk_size = chunk_size
        self._buffer = bytearray()
        #: chunk_stream_id -> (expected message, received payload so far)
        self._partial: Dict[int, Tuple[RtmpMessageType, int, int, int, bytearray]] = {}
        self.messages: List[RtmpMessage] = []

    def feed(self, data: bytes) -> List[RtmpMessage]:
        """Consume bytes; return messages completed by them."""
        self._buffer.extend(data)
        done: List[RtmpMessage] = []
        while True:
            message = self._try_parse()
            if message is None:
                break
            if message.msg_type == RtmpMessageType.SET_CHUNK_SIZE:
                self.chunk_size = struct.unpack(">I", message.payload)[0]
            done.append(message)
        self.messages.extend(done)
        return done

    def _try_parse(self) -> Optional[RtmpMessage]:
        if not self._buffer:
            return None
        fmt = self._buffer[0] >> 6
        csid = self._buffer[0] & 0x3F
        if fmt == 0:
            if len(self._buffer) < 12:
                return None
            ts = int.from_bytes(self._buffer[1:4], "big")
            length = int.from_bytes(self._buffer[4:7], "big")
            msg_type = RtmpMessageType(self._buffer[7])
            stream_id = struct.unpack("<I", bytes(self._buffer[8:12]))[0]
            take = min(self.chunk_size, length)
            if len(self._buffer) < 12 + take:
                return None
            payload = bytearray(self._buffer[12 : 12 + take])
            del self._buffer[: 12 + take]
            if len(payload) == length:
                return RtmpMessage(msg_type, ts, bytes(payload), stream_id, csid)
            self._partial[csid] = (msg_type, ts, stream_id, length, payload)
            return self._try_parse()
        if fmt == 3:
            state = self._partial.get(csid)
            if state is None:
                raise ValueError(f"format-3 chunk for unknown stream {csid}")
            msg_type, ts, stream_id, length, payload = state
            take = min(self.chunk_size, length - len(payload))
            if len(self._buffer) < 1 + take:
                return None
            payload.extend(self._buffer[1 : 1 + take])
            del self._buffer[: 1 + take]
            if len(payload) == length:
                del self._partial[csid]
                return RtmpMessage(msg_type, ts, bytes(payload), stream_id, csid)
            return self._try_parse()
        raise ValueError(f"chunk format {fmt} not supported (only 0 and 3)")

    @property
    def pending_bytes(self) -> int:
        return len(self._buffer)


# ----------------------------------------------------------------- media glue


def video_message(frame: EncodedFrame) -> RtmpMessage:
    """Wrap an encoded video frame as an RTMP video message (FLV body)."""
    marker = flv._VIDEO_KEY if frame.frame_type == "I" else flv._VIDEO_INTER
    from repro.media.bitstream import encode_video_frame

    return RtmpMessage(
        msg_type=RtmpMessageType.VIDEO,
        timestamp_ms=int(round(frame.dts * 1000)),
        payload=bytes([marker]) + encode_video_frame(frame),
    )


def audio_message(frame: AudioFrame) -> RtmpMessage:
    """Wrap an audio frame as an RTMP audio message (FLV body)."""
    from repro.media.bitstream import encode_audio_frame

    return RtmpMessage(
        msg_type=RtmpMessageType.AUDIO,
        timestamp_ms=int(round(frame.pts * 1000)),
        payload=bytes([flv._AUDIO_AAC_44K]) + encode_audio_frame(frame),
        chunk_stream_id=5,
    )


def media_frame_of(message: RtmpMessage) -> Union[EncodedFrame, AudioFrame]:
    """Recover the media frame from an AUDIO/VIDEO message payload."""
    if message.msg_type not in (RtmpMessageType.AUDIO, RtmpMessageType.VIDEO):
        raise ValueError(f"not a media message: {message.msg_type}")
    parser = FrameStreamParser()
    frames = parser.feed(message.payload[1:])  # strip the FLV marker byte
    if len(frames) != 1 or parser.pending_bytes:
        raise ValueError("media message does not hold exactly one frame record")
    return frames[0]


# ----------------------------------------------------------- simulated session


FrameCallback = Callable[[Union[EncodedFrame, AudioFrame], float], None]


class RtmpPushSession:
    """Server side: push media frames over a simulated connection.

    After :meth:`handshake` completes (one message each way modelling
    C0C1/S0S1S2/C2 plus connect/play commands), every call to
    :meth:`push_frame` immediately transmits the frame — the defining
    latency behaviour of the RTMP path.
    """

    def __init__(self, connection: Connection, byte_fidelity: bool = False) -> None:
        self.connection = connection
        self.byte_fidelity = byte_fidelity
        self.frames_pushed = 0
        self.bytes_pushed = 0

    def handshake_response_bytes(self) -> int:
        """Wire bytes of S0+S1+S2 plus the command responses."""
        return HANDSHAKE_S0S1S2 + 300  # _result(connect) + onStatus(play)

    def push_frame(self, frame: Union[EncodedFrame, AudioFrame]) -> Message:
        """Chunk and transmit one media frame right now."""
        if isinstance(frame, EncodedFrame):
            kind = "video"
            if self.byte_fidelity:
                data = chunk_message(video_message(frame))
                nbytes = len(data)
            else:
                # Size-only fast path: the chunked wire size is a pure
                # function of the payload length (1 FLV marker byte plus
                # the elementary-stream record), so skip serializing.
                data = None
                nbytes = _chunked_payload_size(1 + encoded_video_size(frame))
        else:
            kind = "audio"
            if self.byte_fidelity:
                data = chunk_message(audio_message(frame))
                nbytes = len(data)
            else:
                data = None
                nbytes = _chunked_payload_size(1 + encoded_audio_size(frame))
        message = Message(
            payload=frame,
            nbytes=nbytes,
            data=data,
            annotations={
                "protocol": "rtmp",
                "kind": kind,
                "pts": frame.pts,
                "ntp": getattr(frame, "ntp_timestamp", None),
            },
        )
        self.frames_pushed += 1
        self.bytes_pushed += nbytes
        return self.connection.send(message)


def _chunked_payload_size(payload_len: int, chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
    """Wire size of a ``payload_len``-byte message after chunking."""
    n_continuations = (payload_len - 1) // chunk_size
    if n_continuations < 0:
        n_continuations = 0
    return 12 + payload_len + n_continuations


def _chunked_size(message: RtmpMessage, chunk_size: int = DEFAULT_CHUNK_SIZE) -> int:
    """Wire size of a message after chunking, without serializing it."""
    return _chunked_payload_size(len(message.payload), chunk_size)


class RtmpReceiver:
    """Client side: hand arriving media frames to the player."""

    def __init__(self, on_frame: FrameCallback) -> None:
        self.on_frame = on_frame
        self.frames_received = 0

    def on_message(self, message: Message, now: float) -> None:
        """Connection callback: unwrap the frame and forward it."""
        if message.annotations.get("protocol") != "rtmp":
            return
        frame = message.payload
        self.frames_received += 1
        self.on_frame(frame, now)
