"""MPEG-TS (ISO/IEC 13818-1) packetization for HLS segments.

Implements the real transport-stream structure: 188-byte packets with
sync byte 0x47, PAT/PMT signalling tables with MPEG CRC32, PES packets
with 33-bit 90 kHz PTS/DTS, adaptation-field stuffing, and per-PID
continuity counters.  Each HLS segment the CDN serves is a genuine TS
byte string produced by :func:`mux_segment`; the inspector's
:func:`demux_segment` recovers the elementary frames exactly the way the
paper's wireshark + libav pipeline did.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.media.bitstream import (
    FrameStreamParser,
    encode_audio_frame,
    encode_video_frame,
)
from repro.media.frames import AudioFrame, EncodedFrame

TS_PACKET_SIZE = 188
SYNC_BYTE = 0x47

PID_PAT = 0x0000
PID_PMT = 0x1000
PID_VIDEO = 0x0100
PID_AUDIO = 0x0101

STREAM_TYPE_AVC = 0x1B
STREAM_TYPE_AAC = 0x0F

STREAM_ID_VIDEO = 0xE0
STREAM_ID_AUDIO = 0xC0

#: 90 kHz clock used by MPEG PTS/DTS fields.
PES_CLOCK_HZ = 90_000


def crc32_mpeg(data: bytes) -> int:
    """CRC-32/MPEG-2 (poly 0x04C11DB7, init 0xFFFFFFFF, no reflection)."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte << 24
        for _ in range(8):
            if crc & 0x80000000:
                crc = ((crc << 1) ^ 0x04C11DB7) & 0xFFFFFFFF
            else:
                crc = (crc << 1) & 0xFFFFFFFF
    return crc


def _ts_header(pid: int, pusi: bool, continuity: int, adaptation: bool, payload: bool) -> bytes:
    """The 4-byte transport packet header."""
    if not 0 <= pid <= 0x1FFF:
        raise ValueError(f"PID {pid:#x} out of range")
    afc = (0b10 if adaptation else 0) | (0b01 if payload else 0)
    if afc == 0:
        raise ValueError("a TS packet needs adaptation field and/or payload")
    byte1 = (0x40 if pusi else 0x00) | ((pid >> 8) & 0x1F)
    byte2 = pid & 0xFF
    byte3 = (afc << 4) | (continuity & 0x0F)
    return bytes([SYNC_BYTE, byte1, byte2, byte3])


def _packetize(pid: int, payload: bytes, continuity_start: int) -> Tuple[List[bytes], int]:
    """Split one PES/PSI payload into TS packets with stuffing.

    Returns the packets and the next continuity-counter value.
    """
    packets: List[bytes] = []
    continuity = continuity_start
    offset = 0
    first = True
    body_capacity = TS_PACKET_SIZE - 4
    while offset < len(payload):
        remaining = len(payload) - offset
        if remaining >= body_capacity:
            header = _ts_header(pid, first, continuity, adaptation=False, payload=True)
            packets.append(header + payload[offset : offset + body_capacity])
            offset += body_capacity
        else:
            # Stuff with an adaptation field so the packet is exactly 188 B.
            stuffing_needed = body_capacity - remaining - 1  # 1 B AF length
            af_length = stuffing_needed
            header = _ts_header(pid, first, continuity, adaptation=True, payload=True)
            if af_length == 0:
                adaptation_field = bytes([0])
            else:
                # AF: length byte, flags byte (0), then 0xFF stuffing.
                adaptation_field = bytes([af_length, 0]) + b"\xff" * (af_length - 1)
            packets.append(header + adaptation_field + payload[offset:])
            offset = len(payload)
        first = False
        continuity = (continuity + 1) & 0x0F
    return packets, continuity


def _encode_pts(marker: int, value_90khz: int) -> bytes:
    """The 5-byte PTS/DTS encoding with marker bits."""
    v = value_90khz & 0x1FFFFFFFF  # 33 bits
    b0 = (marker << 4) | (((v >> 30) & 0x7) << 1) | 1
    b12 = (((v >> 15) & 0x7FFF) << 1) | 1
    b34 = ((v & 0x7FFF) << 1) | 1
    return bytes([b0]) + struct.pack(">H", b12) + struct.pack(">H", b34)


def _decode_pts(data: bytes) -> int:
    """Invert :func:`_encode_pts` (marker bits ignored)."""
    v = ((data[0] >> 1) & 0x7) << 30
    v |= (struct.unpack(">H", data[1:3])[0] >> 1) << 15
    v |= struct.unpack(">H", data[3:5])[0] >> 1
    return v


def pes_packet(stream_id: int, es_payload: bytes, pts_s: float, dts_s: Optional[float] = None) -> bytes:
    """Build one PES packet carrying ``es_payload`` with PTS (and DTS)."""
    if pts_s < 0:
        raise ValueError("PTS must be non-negative")
    pts = int(round(pts_s * PES_CLOCK_HZ))
    with_dts = dts_s is not None and abs(dts_s - pts_s) > 1.0 / PES_CLOCK_HZ
    if with_dts:
        assert dts_s is not None
        dts = int(round(dts_s * PES_CLOCK_HZ))
        flags2 = 0xC0  # PTS + DTS
        header_data = _encode_pts(0b0011, pts) + _encode_pts(0b0001, dts)
    else:
        flags2 = 0x80  # PTS only
        header_data = _encode_pts(0b0010, pts)
    packet_body = (
        bytes([0x80, flags2, len(header_data)]) + header_data + es_payload
    )
    length = len(packet_body)
    if length > 0xFFFF:
        length = 0  # unbounded PES, allowed for video streams
    return b"\x00\x00\x01" + bytes([stream_id]) + struct.pack(">H", length) + packet_body


def _psi_section(table_id: int, table_body: bytes, id_field: int) -> bytes:
    """Wrap a PSI table body into a section with CRC32, plus pointer byte."""
    # section: table_id, section_syntax(1)+0+reserved(2)+length(12),
    #          id, reserved+version+current_next, section_number x2, body, crc
    length = 5 + len(table_body) + 4
    section = (
        bytes([table_id])
        + struct.pack(">H", 0xB000 | (length & 0x0FFF))
        + struct.pack(">H", id_field)
        + bytes([0xC1, 0x00, 0x00])
        + table_body
    )
    crc = crc32_mpeg(section)
    return bytes([0x00]) + section + struct.pack(">I", crc)  # pointer_field first


def pat_section() -> bytes:
    """Program Association Table: one program (1) at the PMT PID."""
    body = struct.pack(">HH", 1, 0xE000 | PID_PMT)
    return _psi_section(0x00, body, id_field=1)  # transport_stream_id = 1


def pmt_section() -> bytes:
    """Program Map Table: AVC video and AAC audio elementary streams."""
    body = struct.pack(">HH", 0xE000 | PID_VIDEO, 0xF000)  # PCR PID, program_info_len
    for stream_type, pid in ((STREAM_TYPE_AVC, PID_VIDEO), (STREAM_TYPE_AAC, PID_AUDIO)):
        body += bytes([stream_type]) + struct.pack(">HH", 0xE000 | pid, 0xF000)
    return _psi_section(0x02, body, id_field=1)  # program_number = 1


def mux_segment(
    video_frames: Sequence[EncodedFrame],
    audio_frames: Sequence[AudioFrame] = (),
) -> bytes:
    """Serialize one HLS segment as a real MPEG-TS byte string."""
    packets: List[bytes] = []
    continuity: Dict[int, int] = {PID_PAT: 0, PID_PMT: 0, PID_VIDEO: 0, PID_AUDIO: 0}

    pat_packets, continuity[PID_PAT] = _packetize(PID_PAT, pat_section(), continuity[PID_PAT])
    pmt_packets, continuity[PID_PMT] = _packetize(PID_PMT, pmt_section(), continuity[PID_PMT])
    packets.extend(pat_packets)
    packets.extend(pmt_packets)

    # Interleave by decode/transmission time, as a real muxer does.
    units: List[Tuple[float, int, bytes]] = []
    for frame in video_frames:
        pes = pes_packet(
            STREAM_ID_VIDEO, encode_video_frame(frame), pts_s=frame.pts, dts_s=frame.dts
        )
        units.append((frame.dts, PID_VIDEO, pes))
    for frame in audio_frames:
        pes = pes_packet(STREAM_ID_AUDIO, encode_audio_frame(frame), pts_s=frame.pts)
        units.append((frame.pts, PID_AUDIO, pes))
    units.sort(key=lambda u: u[0])

    for _, pid, pes in units:
        pes_packets, continuity[pid] = _packetize(pid, pes, continuity[pid])
        packets.extend(pes_packets)
    return b"".join(packets)


@dataclass
class DemuxResult:
    """Everything recovered from one TS segment."""

    video_frames: List[EncodedFrame]
    audio_frames: List[AudioFrame]
    pmt_streams: Dict[int, int]  # PID -> stream_type
    packet_count: int
    continuity_errors: int


def demux_segment(data: bytes) -> DemuxResult:
    """Parse a TS segment back into elementary frames.

    Validates sync bytes, walks PAT -> PMT to find the elementary PIDs,
    reassembles PES payloads per PID and parses the frame records.
    """
    if len(data) % TS_PACKET_SIZE != 0:
        raise ValueError(
            f"TS segment length {len(data)} is not a multiple of {TS_PACKET_SIZE}"
        )
    pes_buffers: Dict[int, bytearray] = {}
    psi_payloads: Dict[int, bytes] = {}
    pmt_streams: Dict[int, int] = {}
    pmt_pid: Optional[int] = None
    last_continuity: Dict[int, int] = {}
    continuity_errors = 0
    completed_pes: List[Tuple[int, bytes]] = []

    def flush_pes(pid: int) -> None:
        buffer = pes_buffers.pop(pid, None)
        if buffer:
            completed_pes.append((pid, bytes(buffer)))

    packet_count = 0
    for offset in range(0, len(data), TS_PACKET_SIZE):
        packet = data[offset : offset + TS_PACKET_SIZE]
        packet_count += 1
        if packet[0] != SYNC_BYTE:
            raise ValueError(f"lost sync at packet {packet_count}")
        pusi = bool(packet[1] & 0x40)
        pid = ((packet[1] & 0x1F) << 8) | packet[2]
        afc = (packet[3] >> 4) & 0x3
        continuity = packet[3] & 0x0F
        if pid in last_continuity and afc & 0b01:
            expected = (last_continuity[pid] + 1) & 0x0F
            if continuity != expected:
                continuity_errors += 1
        last_continuity[pid] = continuity

        body = packet[4:]
        if afc & 0b10:  # adaptation field present
            af_length = body[0]
            body = body[1 + af_length :]
        if not afc & 0b01:
            continue  # no payload

        if pid == PID_PAT or (pmt_pid is not None and pid == pmt_pid):
            if pusi:
                pointer = body[0]
                psi_payloads[pid] = bytes(body[1 + pointer :])
            else:
                psi_payloads[pid] = psi_payloads.get(pid, b"") + bytes(body)
            if pid == PID_PAT and pmt_pid is None:
                pmt_pid = _parse_pat(psi_payloads[pid])
            elif pid == pmt_pid and not pmt_streams:
                pmt_streams.update(_parse_pmt(psi_payloads[pid]))
            continue

        if pmt_streams and pid not in pmt_streams:
            continue  # unknown PID, skip (a real demuxer ignores them)
        if pusi:
            flush_pes(pid)
            pes_buffers[pid] = bytearray()
        pes_buffers.setdefault(pid, bytearray()).extend(body)

    for pid in list(pes_buffers):
        flush_pes(pid)

    video: List[EncodedFrame] = []
    audio: List[AudioFrame] = []
    for pid, pes in completed_pes:
        es = _strip_pes_header(pes)
        parser = FrameStreamParser()
        for frame in parser.feed(es):
            if isinstance(frame, EncodedFrame):
                video.append(frame)
            else:
                audio.append(frame)
        if parser.pending_bytes:
            raise ValueError(f"PES on PID {pid:#x} holds a truncated frame record")
    return DemuxResult(
        video_frames=video,
        audio_frames=audio,
        pmt_streams=pmt_streams,
        packet_count=packet_count,
        continuity_errors=continuity_errors,
    )


def _parse_pat(section: bytes) -> int:
    """Extract the PMT PID from a PAT section."""
    if section[0] != 0x00:
        raise ValueError("PAT has wrong table id")
    length = struct.unpack(">H", section[1:3])[0] & 0x0FFF
    body = section[8 : 3 + length - 4]
    for entry_offset in range(0, len(body), 4):
        program, pid_word = struct.unpack(">HH", body[entry_offset : entry_offset + 4])
        if program != 0:
            return pid_word & 0x1FFF
    raise ValueError("PAT lists no program")


def _parse_pmt(section: bytes) -> Dict[int, int]:
    """Extract PID -> stream_type from a PMT section."""
    if section[0] != 0x02:
        raise ValueError("PMT has wrong table id")
    length = struct.unpack(">H", section[1:3])[0] & 0x0FFF
    program_info_len = struct.unpack(">H", section[10:12])[0] & 0x0FFF
    body = section[12 + program_info_len : 3 + length - 4]
    streams: Dict[int, int] = {}
    offset = 0
    while offset + 5 <= len(body):
        stream_type = body[offset]
        pid = struct.unpack(">H", body[offset + 1 : offset + 3])[0] & 0x1FFF
        es_info_len = struct.unpack(">H", body[offset + 3 : offset + 5])[0] & 0x0FFF
        streams[pid] = stream_type
        offset += 5 + es_info_len
    return streams


def _strip_pes_header(pes: bytes) -> bytes:
    """Return the elementary-stream payload of a PES packet."""
    if pes[:3] != b"\x00\x00\x01":
        raise ValueError("PES start code missing")
    header_data_length = pes[8]
    return pes[9 + header_data_length :]


def extract_timestamps(pes: bytes) -> Tuple[Optional[float], Optional[float]]:
    """Recover (pts, dts) seconds from one PES packet (None if absent)."""
    if pes[:3] != b"\x00\x00\x01":
        raise ValueError("PES start code missing")
    flags2 = pes[7]
    header = pes[9 : 9 + pes[8]]
    pts = dts = None
    if flags2 & 0x80:
        pts = _decode_pts(header[:5]) / PES_CLOCK_HZ
    if flags2 & 0x40:
        dts = _decode_pts(header[5:10]) / PES_CLOCK_HZ
    return pts, dts
