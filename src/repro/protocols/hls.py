"""HTTP Live Streaming: M3U8 playlists and the live segment window.

Periscope falls back to HLS (served from Fastly CDN) when a broadcast is
popular.  The protocol costs latency by construction: video must be
packaged into complete segments (3-6 s), the playlist must be refreshed,
and each segment is a separate HTTP GET — the paper measures >5 s average
delivery latency against RTMP's <300 ms.

This module implements the textual M3U8 playlist format (render + parse)
and the server-side live window bookkeeping.  The client fetch loop lives
in :mod:`repro.player.hls_player`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class PlaylistEntry:
    """One #EXTINF entry of a media playlist."""

    uri: str
    duration_s: float
    sequence: int

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("segment duration must be positive")


@dataclass
class MediaPlaylist:
    """A live media playlist (no #EXT-X-ENDLIST until the broadcast ends)."""

    target_duration_s: float
    media_sequence: int
    entries: List[PlaylistEntry] = field(default_factory=list)
    ended: bool = False
    version: int = 3

    def render(self) -> str:
        """Serialize to M3U8 text."""
        lines = [
            "#EXTM3U",
            f"#EXT-X-VERSION:{self.version}",
            # The spec's rounding is a ceiling: 3.0 stays 3, 3.2 becomes 4.
            f"#EXT-X-TARGETDURATION:{math.ceil(self.target_duration_s)}",
            f"#EXT-X-MEDIA-SEQUENCE:{self.media_sequence}",
        ]
        for entry in self.entries:
            lines.append(f"#EXTINF:{entry.duration_s:.3f},")
            lines.append(entry.uri)
        if self.ended:
            lines.append("#EXT-X-ENDLIST")
        return "\n".join(lines) + "\n"

    @property
    def nbytes(self) -> int:
        return len(self.render().encode("utf-8"))

    @classmethod
    def parse(cls, text: str) -> "MediaPlaylist":
        """Parse M3U8 text back into a playlist."""
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        if not lines or lines[0] != "#EXTM3U":
            raise ValueError("not an M3U8 playlist (missing #EXTM3U)")
        target = 0.0
        sequence = 0
        version = 3
        ended = False
        entries: List[PlaylistEntry] = []
        pending_duration: Optional[float] = None
        for line in lines[1:]:
            if line.startswith("#EXT-X-TARGETDURATION:"):
                target = float(line.split(":", 1)[1])
            elif line.startswith("#EXT-X-MEDIA-SEQUENCE:"):
                sequence = int(line.split(":", 1)[1])
            elif line.startswith("#EXT-X-VERSION:"):
                version = int(line.split(":", 1)[1])
            elif line.startswith("#EXTINF:"):
                pending_duration = float(line.split(":", 1)[1].rstrip(",").split(",")[0])
            elif line == "#EXT-X-ENDLIST":
                ended = True
            elif line.startswith("#"):
                continue  # unknown tag, per spec must be ignored
            else:
                if pending_duration is None:
                    raise ValueError(f"segment URI {line!r} without #EXTINF")
                entries.append(
                    PlaylistEntry(
                        uri=line,
                        duration_s=pending_duration,
                        sequence=sequence + len(entries),
                    )
                )
                pending_duration = None
        return cls(
            target_duration_s=target,
            media_sequence=sequence,
            entries=entries,
            ended=ended,
            version=version,
        )


class LiveWindow:
    """Server-side sliding window of the most recent segments.

    A live HLS origin keeps only the last ``window_size`` segments in the
    playlist; older ones age out (clients that fall behind skip forward).
    """

    def __init__(self, target_duration_s: float, window_size: int = 3) -> None:
        if window_size < 1:
            raise ValueError("window must hold at least one segment")
        self.target_duration_s = target_duration_s
        self.window_size = window_size
        self._entries: List[PlaylistEntry] = []
        self._next_sequence = 0
        self.ended = False

    def add_segment(self, uri: str, duration_s: float) -> PlaylistEntry:
        """Publish a newly completed segment."""
        if self.ended:
            raise RuntimeError("cannot add segments after end of stream")
        entry = PlaylistEntry(uri=uri, duration_s=duration_s, sequence=self._next_sequence)
        self._next_sequence += 1
        self._entries.append(entry)
        if len(self._entries) > self.window_size:
            self._entries.pop(0)
        return entry

    def end_stream(self) -> None:
        self.ended = True

    @property
    def newest_sequence(self) -> int:
        return self._next_sequence - 1

    def playlist(self) -> MediaPlaylist:
        """The playlist a client fetching right now would receive."""
        media_sequence = self._entries[0].sequence if self._entries else self._next_sequence
        return MediaPlaylist(
            target_duration_s=self.target_duration_s,
            media_sequence=media_sequence,
            entries=list(self._entries),
            ended=self.ended,
        )

    def entries_after(self, sequence: int) -> Sequence[PlaylistEntry]:
        """Segments newer than ``sequence`` still inside the window."""
        return [e for e in self._entries if e.sequence > sequence]
