"""HTTP Live Streaming: M3U8 playlists and the live segment window.

Periscope falls back to HLS (served from Fastly CDN) when a broadcast is
popular.  The protocol costs latency by construction: video must be
packaged into complete segments (3-6 s), the playlist must be refreshed,
and each segment is a separate HTTP GET — the paper measures >5 s average
delivery latency against RTMP's <300 ms.

This module implements the textual M3U8 playlist format (render + parse)
and the server-side live window bookkeeping.  The client fetch loop lives
in :mod:`repro.player.hls_player`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence


@dataclass(frozen=True)
class PlaylistEntry:
    """One #EXTINF entry of a media playlist."""

    uri: str
    duration_s: float
    sequence: int

    def __post_init__(self) -> None:
        if self.duration_s <= 0:
            raise ValueError("segment duration must be positive")


@dataclass
class MediaPlaylist:
    """A live media playlist (no #EXT-X-ENDLIST until the broadcast ends)."""

    target_duration_s: float
    media_sequence: int
    entries: List[PlaylistEntry] = field(default_factory=list)
    ended: bool = False
    version: int = 3

    def render(self) -> str:
        """Serialize to M3U8 text."""
        lines = [
            "#EXTM3U",
            f"#EXT-X-VERSION:{self.version}",
            # The spec's rounding is a ceiling: 3.0 stays 3, 3.2 becomes 4.
            f"#EXT-X-TARGETDURATION:{math.ceil(self.target_duration_s)}",
            f"#EXT-X-MEDIA-SEQUENCE:{self.media_sequence}",
        ]
        for entry in self.entries:
            lines.append(f"#EXTINF:{entry.duration_s:.3f},")
            lines.append(entry.uri)
        if self.ended:
            lines.append("#EXT-X-ENDLIST")
        return "\n".join(lines) + "\n"

    def _state_key(self) -> tuple:
        """Everything the rendered text depends on.  ``entries`` is a
        mutable list the window code appends to, so the key snapshots it
        (entries themselves are frozen)."""
        return (
            self.version,
            self.target_duration_s,
            self.media_sequence,
            self.ended,
            tuple(self.entries),
        )

    def render_bytes(self) -> bytes:
        """UTF-8 rendering, cached until any field mutates.

        A live origin answers every playlist poll with the same text
        until a segment is published; re-rendering per poll was a
        measurable hot path.  The cache key covers every rendered field,
        so mutation through any of them invalidates it.
        """
        key = self._state_key()
        cached = self.__dict__.get("_render_cache")
        if cached is not None and cached[0] == key:
            return cached[1]
        data = self.render().encode("utf-8")
        self.__dict__["_render_cache"] = (key, data)
        return data

    @property
    def nbytes(self) -> int:
        return len(self.render_bytes())

    @classmethod
    def parse(cls, text: str) -> "MediaPlaylist":
        """Parse M3U8 text back into a playlist.

        Two passes: header tags first, then entries.  RFC 8216 allows
        #EXT-X-MEDIA-SEQUENCE anywhere before the first media segment it
        applies to, so per-entry sequence numbers cannot be assigned
        until the whole header is known — a single pass numbered entries
        from whatever value had been *seen so far* (0 if the tag came
        after the first #EXTINF).
        """
        lines = [line.strip() for line in text.splitlines() if line.strip()]
        if not lines or lines[0] != "#EXTM3U":
            raise ValueError("not an M3U8 playlist (missing #EXTM3U)")
        target = 0.0
        sequence = 0
        version = 3
        ended = False
        # Pass 1: header/global tags, wherever they appear.
        for line in lines[1:]:
            if line.startswith("#EXT-X-TARGETDURATION:"):
                target = float(line.split(":", 1)[1])
            elif line.startswith("#EXT-X-MEDIA-SEQUENCE:"):
                sequence = int(line.split(":", 1)[1])
            elif line.startswith("#EXT-X-VERSION:"):
                version = int(line.split(":", 1)[1])
            elif line == "#EXT-X-ENDLIST":
                ended = True
        # Pass 2: media entries, numbered from the final media sequence.
        entries: List[PlaylistEntry] = []
        pending_duration: Optional[float] = None
        for line in lines[1:]:
            if line.startswith("#EXTINF:"):
                pending_duration = float(line.split(":", 1)[1].rstrip(",").split(",")[0])
            elif line.startswith("#"):
                continue  # header tag (pass 1) or unknown tag, ignored here
            else:
                if pending_duration is None:
                    raise ValueError(f"segment URI {line!r} without #EXTINF")
                entries.append(
                    PlaylistEntry(
                        uri=line,
                        duration_s=pending_duration,
                        sequence=sequence + len(entries),
                    )
                )
                pending_duration = None
        return cls(
            target_duration_s=target,
            media_sequence=sequence,
            entries=entries,
            ended=ended,
            version=version,
        )


class LiveWindow:
    """Server-side sliding window of the most recent segments.

    A live HLS origin keeps only the last ``window_size`` segments in the
    playlist; older ones age out (clients that fall behind skip forward).
    """

    def __init__(self, target_duration_s: float, window_size: int = 3) -> None:
        if window_size < 1:
            raise ValueError("window must hold at least one segment")
        self.target_duration_s = target_duration_s
        self.window_size = window_size
        self._entries: List[PlaylistEntry] = []
        self._next_sequence = 0
        self.ended = False
        #: Rendered playlist shared by every poll between mutations.
        #: Consumers treat playlists as read-only snapshots.
        self._playlist_cache: Optional[MediaPlaylist] = None

    def add_segment(self, uri: str, duration_s: float) -> PlaylistEntry:
        """Publish a newly completed segment."""
        if self.ended:
            raise RuntimeError("cannot add segments after end of stream")
        entry = PlaylistEntry(uri=uri, duration_s=duration_s, sequence=self._next_sequence)
        self._next_sequence += 1
        self._entries.append(entry)
        if len(self._entries) > self.window_size:
            self._entries.pop(0)
        self._playlist_cache = None
        return entry

    def end_stream(self) -> None:
        self.ended = True
        self._playlist_cache = None

    @property
    def newest_sequence(self) -> int:
        return self._next_sequence - 1

    def playlist(self) -> MediaPlaylist:
        """The playlist a client fetching right now would receive.

        A live origin is polled once per target duration by *every*
        viewer; between mutations all polls see the same text, so the
        built playlist (and through it the rendered bytes) is cached and
        rebuilt only when a segment is published or the stream ends.
        """
        cached = self._playlist_cache
        if cached is not None:
            return cached
        media_sequence = self._entries[0].sequence if self._entries else self._next_sequence
        built = MediaPlaylist(
            target_duration_s=self.target_duration_s,
            media_sequence=media_sequence,
            entries=list(self._entries),
            ended=self.ended,
        )
        self._playlist_cache = built
        return built

    def entries_after(self, sequence: int) -> Sequence[PlaylistEntry]:
        """Segments newer than ``sequence`` still inside the window."""
        return [e for e in self._entries if e.sequence > sequence]
