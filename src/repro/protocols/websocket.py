"""WebSocket framing for the chat channel.

Periscope delivers chat over WebSockets; the study's traffic analysis
only needs frame sizes and the JSON payloads, but the frame layer is
implemented for real (RFC 6455 base framing: FIN/opcode, 7/16/64-bit
lengths, client-side masking) so captures of the chat flow can be
dissected like any other.
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

OPCODE_TEXT = 0x1
OPCODE_BINARY = 0x2
OPCODE_CLOSE = 0x8
OPCODE_PING = 0x9
OPCODE_PONG = 0xA

#: Bytes of a masked text frame header for payloads under 126 bytes.
MIN_CLIENT_HEADER = 6


def encode_frame(
    payload: bytes,
    opcode: int = OPCODE_TEXT,
    mask_key: Optional[bytes] = None,
    fin: bool = True,
) -> bytes:
    """Serialize one WebSocket frame.  ``mask_key`` (4 bytes) enables
    client-to-server masking as RFC 6455 requires."""
    if mask_key is not None and len(mask_key) != 4:
        raise ValueError("mask key must be exactly 4 bytes")
    byte0 = (0x80 if fin else 0x00) | (opcode & 0x0F)
    length = len(payload)
    mask_bit = 0x80 if mask_key is not None else 0x00
    if length < 126:
        header = bytes([byte0, mask_bit | length])
    elif length < 1 << 16:
        header = bytes([byte0, mask_bit | 126]) + struct.pack(">H", length)
    else:
        header = bytes([byte0, mask_bit | 127]) + struct.pack(">Q", length)
    if mask_key is None:
        return header + payload
    masked = bytes(b ^ mask_key[i % 4] for i, b in enumerate(payload))
    return header + mask_key + masked


@dataclass(frozen=True)
class WsFrame:
    """One parsed WebSocket frame."""

    opcode: int
    payload: bytes
    fin: bool
    masked: bool

    def text(self) -> str:
        return self.payload.decode("utf-8")

    def json(self) -> Dict[str, Any]:
        return json.loads(self.payload)


def decode_frames(data: bytes) -> Tuple[List[WsFrame], bytes]:
    """Parse as many complete frames as possible; return (frames, rest)."""
    frames: List[WsFrame] = []
    offset = 0
    while True:
        if len(data) - offset < 2:
            break
        byte0, byte1 = data[offset], data[offset + 1]
        fin = bool(byte0 & 0x80)
        opcode = byte0 & 0x0F
        masked = bool(byte1 & 0x80)
        length = byte1 & 0x7F
        cursor = offset + 2
        if length == 126:
            if len(data) - cursor < 2:
                break
            length = struct.unpack(">H", data[cursor : cursor + 2])[0]
            cursor += 2
        elif length == 127:
            if len(data) - cursor < 8:
                break
            length = struct.unpack(">Q", data[cursor : cursor + 8])[0]
            cursor += 8
        mask_key = b""
        if masked:
            if len(data) - cursor < 4:
                break
            mask_key = data[cursor : cursor + 4]
            cursor += 4
        if len(data) - cursor < length:
            break
        payload = data[cursor : cursor + length]
        if masked:
            payload = bytes(b ^ mask_key[i % 4] for i, b in enumerate(payload))
        frames.append(WsFrame(opcode=opcode, payload=payload, fin=fin, masked=masked))
        offset = cursor + length
    return frames, data[offset:]


def text_frame_size(text: str, masked: bool = False) -> int:
    """Wire size of a text frame without serializing it (for traffic
    accounting at token fidelity)."""
    length = len(text.encode("utf-8"))
    if length < 126:
        header = 2
    elif length < 1 << 16:
        header = 4
    else:
        header = 10
    return header + (4 if masked else 0) + length


def chat_message_json(
    username: str, body: str, has_avatar: bool, avatar_url: str = ""
) -> Dict[str, Any]:
    """The JSON shape of one chat message as the app receives it.

    Messages arrive even when the chat UI is off; what differs with chat
    *on* is that the app then fetches the profile pictures referenced by
    ``avatar_url`` (Section 5.1's traffic amplification).
    """
    message: Dict[str, Any] = {
        "kind": "chat",
        "username": username,
        "body": body,
    }
    if has_avatar:
        message["profile_image_url"] = avatar_url or (
            f"https://s3.amazonaws.com/profile-images/{username}.jpg"
        )
    return message
