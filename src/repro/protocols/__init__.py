"""Wire protocols of the Periscope service.

* :mod:`repro.protocols.http` — HTTP/1.1-shaped request/response over the
  simulated network, including status 429 rate-limit answers and the JSON
  API message bodies.
* :mod:`repro.protocols.flv` — FLV tag muxing (the container RTMP carries).
* :mod:`repro.protocols.rtmp` — RTMP-like chunked push streaming.
* :mod:`repro.protocols.mpegts` — real MPEG-TS (ISO 13818-1) packetization
  used by HLS segments: 188-byte packets, PAT/PMT, PES with PTS.
* :mod:`repro.protocols.hls` — M3U8 playlists and live-window segment
  delivery over HTTP.
* :mod:`repro.protocols.websocket` — framing for the chat channel.
"""

from repro.protocols.http import (
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
    HttpStatus,
)

__all__ = [
    "HttpClient",
    "HttpRequest",
    "HttpResponse",
    "HttpServer",
    "HttpStatus",
]
