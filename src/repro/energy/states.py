"""The seven measured app states of Figure 7 as component operating
points.

Each state fixes CPU/GPU clock fractions, codec/camera activity and the
traffic pattern (average throughput + radio duty cycle).  The chat-on
state applies the paper's measured mechanics: CPU and GPU clock rates up
by roughly one third (hence ~2.4x processor power under cubic DVFS) and
the avatar-download traffic surge from ~0.5 to ~3.5 Mbps.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.energy.components import GALAXY_S4_MODEL, ComponentPowerModel, Radio

#: The chat feature raises average CPU/GPU clocks by about one third.
CHAT_CLOCK_BOOST = 4.0 / 3.0


class AppState(enum.Enum):
    """The x axis of Figure 7."""

    HOME_SCREEN = "home_screen"
    APP_ON = "app_on"
    VIDEO_NOT_LIVE = "video_not_live"
    VIDEO_RTMP_CHAT_OFF = "video_rtmp_chat_off"
    VIDEO_HLS_CHAT_OFF = "video_hls_chat_off"
    VIDEO_HLS_CHAT_ON = "video_hls_chat_on"
    BROADCAST = "broadcast"


@dataclass(frozen=True)
class OperatingPoint:
    """Component activity in one app state."""

    cpu_clock: float
    gpu_clock: float
    decoding: bool
    broadcasting: bool
    throughput_mbps: float
    radio_duty: float


#: Operating points per state.  Clocks and duties are the calibration
#: knobs; traffic levels come from the paper's own traffic measurements
#: (video ~0.45 Mbps aggregate; chat-on ~3.5 Mbps; feed refresh every
#: 5 s keeps the radio duty-cycled but never idle).
APP_STATES = {
    AppState.HOME_SCREEN: OperatingPoint(
        cpu_clock=0.10, gpu_clock=0.06, decoding=False, broadcasting=False,
        throughput_mbps=0.0, radio_duty=0.0,
    ),
    AppState.APP_ON: OperatingPoint(
        cpu_clock=0.50, gpu_clock=0.35, decoding=False, broadcasting=False,
        throughput_mbps=0.25, radio_duty=0.70,
    ),
    AppState.VIDEO_NOT_LIVE: OperatingPoint(
        cpu_clock=0.645, gpu_clock=0.45, decoding=True, broadcasting=False,
        throughput_mbps=0.50, radio_duty=1.0,
    ),
    AppState.VIDEO_RTMP_CHAT_OFF: OperatingPoint(
        cpu_clock=0.635, gpu_clock=0.44, decoding=True, broadcasting=False,
        throughput_mbps=0.45, radio_duty=1.0,
    ),
    AppState.VIDEO_HLS_CHAT_OFF: OperatingPoint(
        cpu_clock=0.655, gpu_clock=0.45, decoding=True, broadcasting=False,
        throughput_mbps=0.50, radio_duty=1.0,
    ),
    AppState.VIDEO_HLS_CHAT_ON: OperatingPoint(
        cpu_clock=min(1.0, 0.655 * CHAT_CLOCK_BOOST),
        gpu_clock=min(1.0, 0.45 * CHAT_CLOCK_BOOST),
        decoding=True, broadcasting=False,
        throughput_mbps=3.5, radio_duty=1.0,
    ),
    AppState.BROADCAST: OperatingPoint(
        cpu_clock=0.70, gpu_clock=0.40, decoding=False, broadcasting=True,
        throughput_mbps=0.60, radio_duty=1.0,
    ),
}


def state_power_mw(
    state: AppState,
    radio: Radio,
    model: ComponentPowerModel = GALAXY_S4_MODEL,
) -> float:
    """Mean power draw in one app state over one radio."""
    point = APP_STATES[state]
    power = model.platform_idle_mw + model.screen_full_mw
    power += model.cpu_mw(point.cpu_clock)
    power += model.gpu_mw(point.gpu_clock)
    if point.decoding:
        power += model.decoder_mw
    if point.broadcasting:
        power += model.camera_mw + model.encoder_mw
    power += model.radio_mw(radio, point.throughput_mbps, point.radio_duty)
    return power


def figure7_table(model: ComponentPowerModel = GALAXY_S4_MODEL):
    """All fourteen bars of Figure 7: {state: (wifi_mw, lte_mw)}."""
    return {
        state: (
            state_power_mw(state, Radio.WIFI, model),
            state_power_mw(state, Radio.LTE, model),
        )
        for state in AppState
    }


#: The paper's Figure 7 values (mW), for comparison in benches/tests.
PAPER_FIGURE7_MW = {
    AppState.HOME_SCREEN: (1067.0, 1006.0),
    AppState.APP_ON: (1673.0, 2159.0),
    AppState.VIDEO_NOT_LIVE: (2303.0, 3120.0),
    AppState.VIDEO_RTMP_CHAT_OFF: (2268.0, 2959.0),
    AppState.VIDEO_HLS_CHAT_OFF: (2400.0, 3033.0),
    AppState.VIDEO_HLS_CHAT_ON: (4169.0, 4540.0),
    AppState.BROADCAST: (3594.0, 4383.0),
}
