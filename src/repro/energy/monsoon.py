"""Monsoon Power Monitor simulator.

The paper attached a Galaxy S4 to a Monsoon monitor and recorded with
the PowerTool software.  The real instrument samples at 5 kHz; for the
averages Figure 7 reports, a model with per-sample measurement noise
and slow workload fluctuation reproduces what PowerTool's export gives.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Tuple

from repro.energy.components import ComponentPowerModel, Radio
from repro.energy.states import GALAXY_S4_MODEL, AppState, state_power_mw

#: The Monsoon's sampling rate (we sample a decimated 50 Hz — PowerTool
#: exports are typically downsampled for analysis).
SAMPLE_HZ = 50.0


@dataclass
class PowerTrace:
    """One recording: (time, mW) samples plus metadata."""

    state: AppState
    radio: Radio
    samples: List[Tuple[float, float]] = field(default_factory=list)

    def average_mw(self) -> float:
        if not self.samples:
            raise ValueError("empty trace")
        return sum(p for _, p in self.samples) / len(self.samples)

    def energy_j(self) -> float:
        """Integrated energy over the recording (trapezoid-free: uniform
        sampling makes the mean × duration exact enough)."""
        if len(self.samples) < 2:
            raise ValueError("need at least two samples")
        duration = self.samples[-1][0] - self.samples[0][0]
        return self.average_mw() / 1000.0 * duration

    def export_csv(self) -> str:
        """PowerTool-like CSV export."""
        lines = ["time_s,power_mw"]
        lines.extend(f"{t:.3f},{p:.2f}" for t, p in self.samples)
        return "\n".join(lines) + "\n"


class MonsoonMonitor:
    """Records power traces of app states with realistic variation.

    Per-sample white measurement noise plus a slow random-walk workload
    component (the app's duty cycles are not perfectly constant).
    """

    def __init__(
        self,
        rng: random.Random,
        model: ComponentPowerModel = GALAXY_S4_MODEL,
        noise_mw: float = 25.0,
        workload_wander_mw: float = 60.0,
    ) -> None:
        self.rng = rng
        self.model = model
        self.noise_mw = noise_mw
        self.workload_wander_mw = workload_wander_mw

    def record(
        self,
        state: AppState,
        radio: Radio,
        duration_s: float = 60.0,
    ) -> PowerTrace:
        """Record one state for ``duration_s`` seconds."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        base = state_power_mw(state, radio, self.model)
        trace = PowerTrace(state=state, radio=radio)
        wander = 0.0
        steps = int(duration_s * SAMPLE_HZ)
        for index in range(steps):
            t = index / SAMPLE_HZ
            # Mean-reverting workload wander.
            wander += self.rng.gauss(0.0, self.workload_wander_mw / 10.0) - 0.05 * wander
            noise = self.rng.gauss(0.0, self.noise_mw)
            power = max(0.0, base + wander + noise)
            trace.samples.append((t, power))
        return trace

    def measure_average(
        self, state: AppState, radio: Radio, duration_s: float = 60.0
    ) -> float:
        """The Figure 7 quantity: mean power of a recording."""
        return self.record(state, radio, duration_s).average_mw()
