"""Smartphone power modelling (Section 5.3, Figure 7).

The paper measured a Galaxy S4 on a Monsoon power monitor across seven
app states over WiFi and LTE.  This package provides:

* :mod:`repro.energy.components` — component power models (platform,
  screen, CPU/GPU under DVFS, hardware codec, camera, WiFi/LTE radios
  with duty cycling);
* :mod:`repro.energy.states` — the seven measured app states expressed
  as component operating points, with the chat state applying the
  paper's observed "+1/3 CPU and GPU clocks" and avatar-traffic surge;
* :mod:`repro.energy.monsoon` — a Monsoon-like sampler that integrates
  the model over time with measurement noise and exports PowerTool-style
  traces.
"""

from repro.energy.components import ComponentPowerModel, Radio
from repro.energy.states import APP_STATES, AppState, state_power_mw
from repro.energy.monsoon import MonsoonMonitor, PowerTrace

__all__ = [
    "ComponentPowerModel",
    "Radio",
    "APP_STATES",
    "AppState",
    "state_power_mw",
    "MonsoonMonitor",
    "PowerTrace",
]
