"""Component power models for a 2013-era flagship (Galaxy S4).

Constants follow the smartphone energy literature the paper cites
(Tarkoma et al., "Smartphone Energy Consumption"):

* CPU and GPU use DVFS; power scales roughly with V²f, i.e. cubically
  in the normalized clock — this is why the chat feature's "+1/3 clock
  rates" more than doubles processor power;
* the LTE radio costs far more than WiFi while RRC-connected, and duty
  cycling (DRX, inactivity tails) governs how much of that baseline a
  given traffic pattern pays;
* screen at full brightness (the paper's setting) is a large constant.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass


class Radio(enum.Enum):
    """The access network of the measurement."""

    WIFI = "wifi"
    LTE = "lte"


@dataclass(frozen=True)
class RadioPowerParams:
    """One radio's power profile."""

    idle_mw: float
    active_base_mw: float
    per_mbps_mw: float


#: WiFi: cheap idle listening, moderate active cost that grows with rate.
WIFI_PARAMS = RadioPowerParams(idle_mw=60.0, active_base_mw=210.0, per_mbps_mw=220.0)
#: LTE: near-zero DRX idle but an expensive RRC-connected baseline
#: (typical timer configuration, as the paper's footnote notes).
LTE_PARAMS = RadioPowerParams(idle_mw=15.0, active_base_mw=900.0, per_mbps_mw=130.0)


@dataclass(frozen=True)
class ComponentPowerModel:
    """All component constants in one calibration point."""

    platform_idle_mw: float = 380.0
    screen_full_mw: float = 630.0
    #: CPU package power at full clock, all cores busy.
    cpu_max_mw: float = 2400.0
    #: GPU power at full clock.
    gpu_max_mw: float = 900.0
    #: Hardware video decoder while playing.
    decoder_mw: float = 170.0
    #: Hardware encoder while broadcasting.
    encoder_mw: float = 450.0
    #: Camera sensor + ISP while broadcasting.
    camera_mw: float = 900.0
    #: DVFS exponent: P ~ f^n (n≈3 under voltage scaling).
    dvfs_exponent: float = 3.0

    def cpu_mw(self, clock_fraction: float) -> float:
        """CPU power at a normalized clock/load operating point."""
        if not 0.0 <= clock_fraction <= 1.0:
            raise ValueError("clock fraction must be in [0, 1]")
        return self.cpu_max_mw * clock_fraction**self.dvfs_exponent

    def gpu_mw(self, clock_fraction: float) -> float:
        """GPU power at a normalized clock operating point."""
        if not 0.0 <= clock_fraction <= 1.0:
            raise ValueError("clock fraction must be in [0, 1]")
        return self.gpu_max_mw * clock_fraction**self.dvfs_exponent

    def radio_mw(self, radio: Radio, throughput_mbps: float, duty: float) -> float:
        """Radio power for an average throughput and active duty cycle."""
        if throughput_mbps < 0:
            raise ValueError("throughput must be non-negative")
        if not 0.0 <= duty <= 1.0:
            raise ValueError("duty must be in [0, 1]")
        params = WIFI_PARAMS if radio == Radio.WIFI else LTE_PARAMS
        return params.idle_mw + duty * (
            params.active_base_mw + params.per_mbps_mw * throughput_mbps
        )


#: The calibration instance used throughout the reproduction.
GALAXY_S4_MODEL = ComponentPowerModel()
