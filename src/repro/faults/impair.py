"""Link impairments: loss, jitter, and flaps that respect FIFO order.

:mod:`repro.netsim.connection` assumes links are lossless in-order
conduits (real TCP hides loss from the application the same way), so an
impairment may never *drop* or *reorder* a packet.  Instead, every
impairment is expressed as extra serialization-side delay inside
``Link.send``:

* **loss** — a "lost" packet is retransmitted after a recovery timeout;
  each retransmission adds ``recovery_s`` plus another transmission time
  to the link's busy horizon.  That is exactly the head-of-line blocking
  an in-order transport exhibits, and it is monotone in ``_busy_until``,
  so FIFO delivery and the calendar queue's determinism are preserved.
* **jitter** — a non-negative random delay added before serialization
  starts (wireless scheduling / retransmission noise below the loss
  threshold).
* **flaps** — precomputed down windows; a packet arriving during one
  starts transmitting when the link comes back up.

All randomness comes from the single ``random.Random`` handed to the
impairment at construction — a dedicated ``child_rng`` stream — so a
plan with impairments disabled consumes zero draws.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs


@dataclass(frozen=True)
class LossSpec:
    """Packet-loss model parameters.

    ``model`` is ``"bernoulli"`` (i.i.d. per-packet loss at ``rate``) or
    ``"gilbert"`` (two-state Gilbert-Elliott: a good state with no loss
    and a bad/bursty state losing ``bad_loss`` of packets, transition
    probabilities sampled per packet).
    """

    model: str = "bernoulli"
    #: Bernoulli per-packet loss probability.
    rate: float = 0.0
    #: Gilbert-Elliott transition/emission probabilities.
    p_good_to_bad: float = 0.0
    p_bad_to_good: float = 0.25
    bad_loss: float = 0.5
    #: Recovery timeout charged per retransmission — a few RTTs on the
    #: simulated ~80 ms paths (fast retransmit rather than a full RTO;
    #: large enough to drain a jitter buffer under bursts, small enough
    #: that heavy loss degrades into *many* stalls instead of
    #: saturating the link into one continuous stall).
    recovery_s: float = 0.12
    #: Retransmissions before the model stops re-losing a packet (keeps
    #: worst-case delay bounded; real TCP would keep trying with larger
    #: timeouts, which the capped geometric sum approximates).
    max_retransmits: int = 6

    def __post_init__(self) -> None:
        if self.model not in ("bernoulli", "gilbert"):
            raise ValueError(f"unknown loss model {self.model!r}")
        for name in ("rate", "p_good_to_bad", "p_bad_to_good", "bad_loss"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be a probability, got {value}")
        if self.model == "bernoulli" and self.rate >= 1.0:
            raise ValueError("certain loss would never deliver a packet")
        if self.recovery_s < 0:
            raise ValueError("recovery timeout must be non-negative")
        if self.max_retransmits < 1:
            raise ValueError("need at least one retransmission attempt")

    @property
    def active(self) -> bool:
        if self.model == "bernoulli":
            return self.rate > 0.0
        return self.p_good_to_bad > 0.0 and self.bad_loss > 0.0


class LossProcess:
    """Stateful sampler for one link's loss sequence."""

    def __init__(self, spec: LossSpec, rng: random.Random) -> None:
        self.spec = spec
        self._rng = rng
        self._bad = False

    def sample_lost(self) -> bool:
        """Was this transmission attempt lost?  Advances the chain."""
        spec = self.spec
        if spec.model == "bernoulli":
            return self._rng.random() < spec.rate
        if self._bad:
            if self._rng.random() < spec.p_bad_to_good:
                self._bad = False
        else:
            if self._rng.random() < spec.p_good_to_bad:
                self._bad = True
        return self._bad and self._rng.random() < spec.bad_loss


@dataclass(frozen=True)
class OutageSpec:
    """A Poisson process of down windows with uniform durations.

    Used both for link flaps (netsim layer) and ingest-server outage
    windows (service layer); the same shape as the broadcaster-uplink
    outage model in :class:`repro.service.delivery.UplinkModel`.
    """

    rate_per_s: float = 0.0
    min_down_s: float = 0.5
    max_down_s: float = 3.0

    def __post_init__(self) -> None:
        if self.rate_per_s < 0:
            raise ValueError("outage rate must be non-negative")
        if self.min_down_s < 0 or self.max_down_s < self.min_down_s:
            raise ValueError("need 0 <= min_down_s <= max_down_s")

    @property
    def active(self) -> bool:
        return self.rate_per_s > 0.0 and self.max_down_s > 0.0

    def windows(
        self, rng: random.Random, start: float, duration_s: float
    ) -> List[Tuple[float, float]]:
        """Non-overlapping (start, end) windows within the horizon."""
        result: List[Tuple[float, float]] = []
        if not self.active:
            return result
        t = start
        while True:
            t += rng.expovariate(self.rate_per_s)
            if t >= start + duration_s:
                return result
            length = rng.uniform(self.min_down_s, self.max_down_s)
            result.append((t, t + length))
            t += length


class FlapSchedule:
    """Precomputed down windows a link transmission must skip over."""

    def __init__(self, windows: Sequence[Tuple[float, float]]) -> None:
        self.windows = sorted(windows)
        previous_end = float("-inf")
        for window_start, window_end in self.windows:
            if window_end < window_start:
                raise ValueError("flap window ends before it starts")
            if window_start < previous_end:
                raise ValueError("flap windows must not overlap")
            previous_end = window_end

    def defer(self, t: float) -> float:
        """Earliest time >= ``t`` at which the link is up."""
        for window_start, window_end in self.windows:
            if window_start <= t < window_end:
                return window_end
            if t < window_start:
                break
        return t

    def down_at(self, t: float) -> bool:
        return self.defer(t) > t


class LinkImpairment:
    """Everything wrong with one link, applied inside ``Link.send``.

    ``apply(start, tx_time)`` takes the serialization start the healthy
    link computed and returns ``(new_start, extra_busy_s)``: the start
    deferred past flaps and jitter, plus head-of-line recovery time for
    retransmissions.  Both terms only ever push the busy horizon later,
    never earlier, so per-link FIFO order is preserved by construction.
    """

    def __init__(
        self,
        rng: random.Random,
        loss: Optional[LossSpec] = None,
        jitter_s: float = 0.0,
        flaps: Optional[FlapSchedule] = None,
        name: str = "link",
    ) -> None:
        if jitter_s < 0:
            raise ValueError("jitter stddev must be non-negative")
        self._rng = rng
        self.loss = LossProcess(loss, rng) if loss is not None and loss.active else None
        self.jitter_s = jitter_s
        self.flaps = flaps
        self.name = name
        self.packets_seen = 0
        self.packets_lost = 0
        self.retransmissions = 0
        self.flap_defer_s = 0.0
        self.jitter_added_s = 0.0
        self.recovery_added_s = 0.0

    def apply(self, start: float, tx_time: float) -> Tuple[float, float]:
        """(deferred serialization start, extra busy-time after tx)."""
        self.packets_seen += 1
        deferred = start
        if self.flaps is not None:
            deferred = self.flaps.defer(deferred)
            self.flap_defer_s += deferred - start
        if self.jitter_s > 0.0:
            jitter = abs(self._rng.gauss(0.0, self.jitter_s))
            deferred += jitter
            self.jitter_added_s += jitter
        extra = 0.0
        if self.loss is not None and self.loss.sample_lost():
            self.packets_lost += 1
            spec = self.loss.spec
            attempts = 1
            extra = spec.recovery_s + tx_time
            while attempts < spec.max_retransmits and self.loss.sample_lost():
                attempts += 1
                extra += spec.recovery_s + tx_time
            self.retransmissions += attempts
            self.recovery_added_s += extra
            telemetry = obs.active()
            if telemetry.enabled and telemetry.metrics_on:
                telemetry.metrics.counter(
                    "faults_injected_total",
                    "Fault events injected across layers",
                    kind="packet-loss", link=self.name,
                ).inc()
        return deferred, extra
