"""The shared bounded-retry policy.

One policy object describes how any client in the simulation retries a
failed operation: exponential backoff with a cap, an attempt budget, an
optional wall-deadline (in *simulated* seconds), and optional seeded
jitter.  Crawler 429 backoff, HLS playlist/segment re-fetch, API-call
retries, and the RTMP reconnect probe all walk instances of the same
policy, so "retry counts bounded by policy" is a single invariant the
test suite can assert everywhere.

Determinism: jitter draws come only from an explicitly injected
``random.Random`` (a :func:`repro.util.rng.child_rng` stream).  A policy
with ``jitter_frac == 0`` or no rng consumes no randomness at all.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class RetryPolicy:
    """How a client retries a failing operation.

    ``delay_for(attempt)`` yields the wait before retry number
    ``attempt`` (1-based), or ``None`` once the attempt budget is spent.
    Frozen and hashable so plans embedding a policy stay picklable for
    the process pool.
    """

    #: Delay before the first retry.
    base_delay_s: float = 0.5
    #: Multiplier applied per subsequent retry (1.0 = constant backoff).
    factor: float = 2.0
    #: Ceiling on any single delay.
    max_delay_s: float = 8.0
    #: Total retry attempts before giving up.
    max_attempts: int = 6
    #: Multiplicative jitter: each delay is scaled by a uniform factor in
    #: ``[1 - jitter_frac, 1 + jitter_frac]`` when an rng is supplied.
    jitter_frac: float = 0.0
    #: Optional budget on total elapsed retry time (simulated seconds);
    #: a retry that would land past the deadline is not attempted.
    deadline_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.base_delay_s < 0 or self.max_delay_s < 0:
            raise ValueError("retry delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if self.max_attempts < 0:
            raise ValueError("attempt budget must be non-negative")
        if not 0.0 <= self.jitter_frac < 1.0:
            raise ValueError("jitter fraction must be in [0, 1)")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ValueError("deadline must be positive when set")

    def delay_for(
        self, attempt: int, rng: Optional[random.Random] = None
    ) -> Optional[float]:
        """Backoff before retry ``attempt`` (1-based); None = give up."""
        if attempt < 1:
            raise ValueError("attempts count from 1")
        if attempt > self.max_attempts:
            return None
        delay = min(self.max_delay_s, self.base_delay_s * self.factor ** (attempt - 1))
        if rng is not None and self.jitter_frac > 0.0:
            delay *= 1.0 + self.jitter_frac * (2.0 * rng.random() - 1.0)
        return delay


class RetrySchedule:
    """Per-operation retry state walking one :class:`RetryPolicy`.

    Tracks the attempt counter and the elapsed-time deadline; callers
    ask :meth:`next_delay` with the current simulated time and either
    get a backoff delay or ``None`` (budget exhausted — degrade
    gracefully).
    """

    def __init__(
        self,
        policy: RetryPolicy,
        rng: Optional[random.Random] = None,
        started_at: float = 0.0,
    ) -> None:
        self.policy = policy
        self.rng = rng
        self.started_at = started_at
        self.attempts = 0

    def next_delay(self, now: float) -> Optional[float]:
        """Delay before the next retry, or None once the budget is out."""
        self.attempts += 1
        delay = self.policy.delay_for(self.attempts, self.rng)
        if delay is None:
            return None
        deadline = self.policy.deadline_s
        if deadline is not None and (now - self.started_at) + delay > deadline:
            return None
        return delay

    @property
    def exhausted(self) -> bool:
        return self.policy.delay_for(max(1, self.attempts)) is None


#: The crawler's historical behaviour was a constant 2 s backoff with no
#: cap; the migrated default keeps the first retry at 2 s but bounds the
#: loop (satellite bugfix: a permanently-429ing service must terminate).
CRAWLER_RETRY = RetryPolicy(
    base_delay_s=2.0, factor=2.0, max_delay_s=16.0, max_attempts=8
)

#: The HLS player's historical behaviour was a fixed 1 s re-poll; the
#: policy keeps every delay at 1 s with a budget far beyond any 60 s
#: watch, so unfaulted sessions are bit-identical to the old loop.
HLS_TRANSPORT_RETRY = RetryPolicy(
    base_delay_s=1.0, factor=1.0, max_delay_s=1.0, max_attempts=120
)

#: Default policy for fault scenarios: exponential backoff with seeded
#: jitter and a deadline, per the app-resilience playbook.
FAULT_RETRY = RetryPolicy(
    base_delay_s=0.4,
    factor=2.0,
    max_delay_s=6.0,
    max_attempts=6,
    jitter_frac=0.25,
    deadline_s=30.0,
)
