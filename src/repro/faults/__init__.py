"""Seeded fault injection: impairments, outages, and client retry.

The paper measured Periscope over a shaped but *lossless* access link;
this package adds the missing robustness axis.  Three layers share it:

* :mod:`repro.faults.impair` — per-link packet-loss (Bernoulli or
  Gilbert-Elliott), latency jitter, and up/down flap schedules, modelled
  as head-of-line-blocking recovery delay so the reliable in-order
  stream abstraction of :mod:`repro.netsim.connection` stays intact;
* :mod:`repro.faults.plan` — :class:`FaultPlan`, the picklable scenario
  description wired through ``StudyConfig.faults`` and the ``--faults``
  CLI grammar;
* :mod:`repro.faults.retry` — the shared bounded-retry policy
  (exponential backoff, seeded jitter, deadline) used by the crawler,
  the HLS player, and the RTMP reconnect path.

Every random draw comes from a dedicated :func:`repro.util.rng.child_rng`
stream, so enabling faults never perturbs the existing seed tree and a
faulted run is bit-reproducible for a given (seed, plan).
"""

from repro.faults.impair import (
    FlapSchedule,
    LinkImpairment,
    LossProcess,
    LossSpec,
    OutageSpec,
)
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetryPolicy, RetrySchedule

__all__ = [
    "FaultPlan",
    "FlapSchedule",
    "LinkImpairment",
    "LossProcess",
    "LossSpec",
    "OutageSpec",
    "RetryPolicy",
    "RetrySchedule",
]
