"""FaultPlan: the picklable description of one fault scenario.

A plan names *what* can go wrong; *when* it goes wrong is sampled per
session from dedicated ``child_rng`` streams, so the same (seed, plan)
pair replays bit-identically — serially, across a process pool, and
across runs.

CLI grammar (``--faults``), comma-separated items::

    loss=P                      Bernoulli per-packet loss, probability P
    loss=ge:PGB:PBG:PLOSS       Gilbert-Elliott loss (good->bad, bad->good,
                                loss probability in the bad state)
    jitter=STD                  zero-mean latency jitter, stddev STD seconds
    flap=RATE:MIN:MAX           access-link flaps: Poisson rate (per s),
                                down-window duration uniform in [MIN, MAX]
    ingest=RATE:MIN:MAX         ingest-server outage windows (same shape)
    api5xx=P                    each API request fails with a 503, prob. P
    retry=BASE:FACTOR:ATTEMPTS  override the client retry policy

Example: ``--faults loss=0.05,jitter=0.01,ingest=0.02:3:8``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional

from repro.faults.impair import FlapSchedule, LinkImpairment, LossSpec, OutageSpec
from repro.faults.retry import FAULT_RETRY, RetryPolicy


class ApiErrorInjector:
    """Bernoulli 5xx injection for one session's API frontend."""

    def __init__(self, rate: float, rng: random.Random) -> None:
        self.rate = rate
        self._rng = rng
        self.injected = 0

    def fire(self) -> bool:
        if self.rate <= 0.0:
            return False
        if self._rng.random() < self.rate:
            self.injected += 1
            return True
        return False


@dataclass(frozen=True)
class FaultPlan:
    """One fault scenario, applied uniformly to every session of a study.

    ``None``/zero fields mean "that fault is off"; the all-defaults plan
    injects nothing and a study configured with ``faults=None`` follows
    the exact same code paths as before the subsystem existed.
    """

    #: Packet loss on the access (tether) link, both directions.
    loss: Optional[LossSpec] = None
    #: Stddev of zero-mean latency jitter on the access link (seconds).
    jitter_s: float = 0.0
    #: Up/down flap schedule for the access link.
    flap: Optional[OutageSpec] = None
    #: Ingest-server outage windows (RTMP disconnects / HLS publish gaps).
    ingest_outage: Optional[OutageSpec] = None
    #: Whether an RTMP reconnect may fail over to another region's ingest
    #: server (re-resolving accessVideo) instead of waiting out the outage.
    ingest_failover: bool = True
    #: Probability an API request is answered with an injected 503.
    api_error_rate: float = 0.0
    #: Retry policy the resilient clients walk under this plan.
    retry: RetryPolicy = field(default=FAULT_RETRY)

    def __post_init__(self) -> None:
        if self.jitter_s < 0:
            raise ValueError("jitter stddev must be non-negative")
        if not 0.0 <= self.api_error_rate < 1.0:
            raise ValueError("API error rate must be in [0, 1)")

    # ------------------------------------------------------------- predicates

    @property
    def has_link_faults(self) -> bool:
        return (
            (self.loss is not None and self.loss.active)
            or self.jitter_s > 0.0
            or (self.flap is not None and self.flap.active)
        )

    @property
    def has_ingest_faults(self) -> bool:
        return self.ingest_outage is not None and self.ingest_outage.active

    @property
    def has_api_faults(self) -> bool:
        return self.api_error_rate > 0.0

    @property
    def empty(self) -> bool:
        return not (self.has_link_faults or self.has_ingest_faults
                    or self.has_api_faults)

    # -------------------------------------------------------------- factories

    def link_impairment(
        self, rng: random.Random, horizon_s: float, name: str
    ) -> Optional[LinkImpairment]:
        """Build one link's impairment from a dedicated rng stream.

        Flap windows are materialized up front over ``horizon_s`` so the
        per-packet path stays draw-free for flaps.
        """
        if not self.has_link_faults:
            return None
        flaps = None
        if self.flap is not None and self.flap.active:
            flaps = FlapSchedule(self.flap.windows(rng, 0.0, horizon_s))
        return LinkImpairment(
            rng,
            loss=self.loss if self.loss is not None and self.loss.active else None,
            jitter_s=self.jitter_s,
            flaps=flaps,
            name=name,
        )

    def api_injector(self, rng: random.Random) -> Optional[ApiErrorInjector]:
        if not self.has_api_faults:
            return None
        return ApiErrorInjector(self.api_error_rate, rng)

    def ingest_windows(
        self, rng: random.Random, horizon_s: float
    ) -> List[tuple]:
        if not self.has_ingest_faults:
            return []
        assert self.ingest_outage is not None
        return self.ingest_outage.windows(rng, 0.0, horizon_s)

    # ------------------------------------------------------------------ parse

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``--faults`` grammar (see module docstring)."""
        text = (spec or "").strip()
        if not text or text.lower() in ("none", "off"):
            return cls()
        loss: Optional[LossSpec] = None
        jitter_s = 0.0
        flap: Optional[OutageSpec] = None
        ingest: Optional[OutageSpec] = None
        api_error_rate = 0.0
        retry = FAULT_RETRY
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"bad fault item {item!r}: expected key=value")
            key, _, value = item.partition("=")
            key = key.strip().lower()
            value = value.strip()
            try:
                if key == "loss":
                    loss = cls._parse_loss(value)
                elif key == "jitter":
                    jitter_s = float(value)
                elif key == "flap":
                    flap = cls._parse_outage(value)
                elif key == "ingest":
                    ingest = cls._parse_outage(value)
                elif key == "api5xx":
                    api_error_rate = float(value)
                elif key == "retry":
                    retry = cls._parse_retry(value)
                else:
                    raise ValueError(f"unknown fault key {key!r}")
            except ValueError as error:
                raise ValueError(f"bad fault item {item!r}: {error}") from error
        return cls(
            loss=loss,
            jitter_s=jitter_s,
            flap=flap,
            ingest_outage=ingest,
            api_error_rate=api_error_rate,
            retry=retry,
        )

    @staticmethod
    def _parse_loss(value: str) -> LossSpec:
        if value.lower().startswith("ge:"):
            parts = value.split(":")[1:]
            if len(parts) != 3:
                raise ValueError("gilbert loss needs ge:PGB:PBG:PLOSS")
            p_gb, p_bg, p_loss = (float(p) for p in parts)
            return LossSpec(
                model="gilbert",
                p_good_to_bad=p_gb,
                p_bad_to_good=p_bg,
                bad_loss=p_loss,
            )
        return LossSpec(model="bernoulli", rate=float(value))

    @staticmethod
    def _parse_outage(value: str) -> OutageSpec:
        parts = value.split(":")
        if len(parts) != 3:
            raise ValueError("outage spec needs RATE:MIN:MAX")
        rate, min_down, max_down = (float(p) for p in parts)
        return OutageSpec(rate_per_s=rate, min_down_s=min_down, max_down_s=max_down)

    @staticmethod
    def _parse_retry(value: str) -> RetryPolicy:
        parts = value.split(":")
        if len(parts) != 3:
            raise ValueError("retry spec needs BASE:FACTOR:ATTEMPTS")
        base, factor, attempts = float(parts[0]), float(parts[1]), int(parts[2])
        return RetryPolicy(
            base_delay_s=base,
            factor=factor,
            max_delay_s=max(base, base * factor ** max(0, attempts - 1)),
            max_attempts=attempts,
            jitter_frac=FAULT_RETRY.jitter_frac,
            deadline_s=FAULT_RETRY.deadline_s,
        )

    def describe(self) -> str:
        """Human-readable one-liner for logs and figure captions."""
        parts: List[str] = []
        if self.loss is not None and self.loss.active:
            if self.loss.model == "bernoulli":
                parts.append(f"loss={self.loss.rate:g}")
            else:
                parts.append(
                    f"loss=ge:{self.loss.p_good_to_bad:g}"
                    f":{self.loss.p_bad_to_good:g}:{self.loss.bad_loss:g}"
                )
        if self.jitter_s > 0.0:
            parts.append(f"jitter={self.jitter_s:g}")
        if self.flap is not None and self.flap.active:
            parts.append(
                f"flap={self.flap.rate_per_s:g}:{self.flap.min_down_s:g}"
                f":{self.flap.max_down_s:g}"
            )
        if self.ingest_outage is not None and self.ingest_outage.active:
            parts.append(
                f"ingest={self.ingest_outage.rate_per_s:g}"
                f":{self.ingest_outage.min_down_s:g}"
                f":{self.ingest_outage.max_down_s:g}"
            )
        if self.api_error_rate > 0.0:
            parts.append(f"api5xx={self.api_error_rate:g}")
        return ",".join(parts) if parts else "none"
