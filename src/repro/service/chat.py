"""The chat service and its traffic behaviour.

Section 5.1's key observation: JSON chat messages arrive over the
WebSocket **whether or not the chat UI is shown**, but with chat *on* the
app additionally downloads the profile picture of every chatting user
from Amazon S3 — and it does **not cache them**, so active chats inflate
the downstream traffic from ~500 kbps to several Mbps.  This module
generates the message process and the resulting avatar-fetch workload.
"""

from __future__ import annotations

import json
import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Optional

from repro import obs
from repro.protocols.websocket import chat_message_json, text_frame_size
from repro.util.sampling import bounded_lognormal

#: Fraction of chatting users that have a profile picture set.
AVATAR_PROBABILITY = 0.75

#: Profile pictures are phone-camera selfies served at original size;
#: the paper blames their "format and resolution" for the traffic.
AVATAR_BYTES_MEDIAN = 55_000
AVATAR_BYTES_SIGMA = 0.7
AVATAR_BYTES_MIN = 4_000
AVATAR_BYTES_MAX = 400_000

#: Message arrival model: chat activity grows with audience size but far
#: sublinearly — tiny rooms are chatty per capita (the broadcaster
#: responds to everyone), and Periscope stops accepting new senders once
#: the room is "full", capping the rate.
MESSAGES_PER_SQRT_VIEWER_PER_S = 0.45
MAX_MESSAGES_PER_S = 6.0

#: Messages of recent history the app renders (and fetches avatars for)
#: right when a viewer joins.
JOIN_HISTORY_MESSAGES = 12

_BODIES = (
    "hello from {}", "wow", "nice stream!", "where is this?", "lol",
    "can you say hi to {}?", "amazing", "first time here", "greetings",
    "what's happening?", "cool", "so beautiful", "hahaha", "hi everyone",
)


@dataclass(frozen=True)
class ChatMessage:
    """One chat message as delivered to viewers."""

    timestamp: float
    username: str
    body: str
    has_avatar: bool
    avatar_url: str
    avatar_bytes: int

    def json_payload(self) -> dict:
        return chat_message_json(
            self.username, self.body, self.has_avatar, self.avatar_url
        )

    def frame_bytes(self) -> int:
        """Wire size of the WebSocket frame carrying this message."""
        return text_frame_size(json.dumps(self.json_payload(), separators=(",", ":")))


class ChatFeed:
    """The message stream of one broadcast.

    The number of *distinct* chatting users is bounded (chat fills up),
    so with chat on, avatars repeat — and because the app does not cache
    them, every repetition is a fresh S3 download.
    """

    def __init__(
        self,
        rng: random.Random,
        viewers: float,
        chatter_pool_size: Optional[int] = None,
    ) -> None:
        if viewers < 0:
            raise ValueError("viewers must be non-negative")
        self._rng = rng
        self.viewers = viewers
        pool = chatter_pool_size or max(1, min(int(viewers * 0.3) + 1, 60))
        self._chatters: List[tuple] = []
        for index in range(pool):
            username = f"viewer{rng.randrange(10**7):07d}"
            has_avatar = rng.random() < AVATAR_PROBABILITY
            avatar_bytes = int(
                bounded_lognormal(
                    rng,
                    median=AVATAR_BYTES_MEDIAN,
                    sigma=AVATAR_BYTES_SIGMA,
                    low=AVATAR_BYTES_MIN,
                    high=AVATAR_BYTES_MAX,
                )
            )
            self._chatters.append((username, has_avatar, avatar_bytes))

    @property
    def message_rate_per_s(self) -> float:
        """Mean chat messages per second for this audience size."""
        if self.viewers <= 0:
            return 0.0
        return min(
            MESSAGES_PER_SQRT_VIEWER_PER_S * math.sqrt(self.viewers),
            MAX_MESSAGES_PER_S,
        )

    def messages(self, duration_s: float, start: float = 0.0) -> Iterator[ChatMessage]:
        """Yield the Poisson message stream over ``[start, start+duration)``."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        rate = self.message_rate_per_s
        if rate <= 0:
            return
        telemetry = obs.active()
        metrics_on = telemetry.enabled and telemetry.metrics_on
        t = start
        while True:
            t += self._rng.expovariate(rate)
            if t >= start + duration_s:
                return
            username, has_avatar, avatar_bytes = self._rng.choice(self._chatters)
            body = self._rng.choice(_BODIES).format(username)
            if metrics_on:
                telemetry.metrics.counter(
                    "chat_messages_total", "Chat messages generated",
                ).inc()
            yield ChatMessage(
                timestamp=t,
                username=username,
                body=body,
                has_avatar=has_avatar,
                avatar_url=f"https://s3.amazonaws.com/profile-images/{username}.jpg",
                avatar_bytes=avatar_bytes,
            )

    def history(self, count: int = JOIN_HISTORY_MESSAGES) -> List["ChatMessage"]:
        """The recent messages delivered as a burst at join time.

        The app renders the tail of the conversation immediately, which
        with the chat pane on means an immediate burst of avatar
        downloads competing with the initial video buffering.
        """
        if count < 0:
            raise ValueError("count must be non-negative")
        window = count / self.message_rate_per_s if self.message_rate_per_s > 0 else 0.0
        if window <= 0:
            return []
        backlog = list(self.messages(window, start=-window))
        burst = backlog[-count:]
        telemetry = obs.active()
        if telemetry.enabled and telemetry.metrics_on:
            telemetry.metrics.histogram(
                "chat_join_fanout_messages",
                "History messages delivered as the join burst",
                buckets=(0, 1, 2, 4, 8, 12, 16, 24, 32, 48, 64),
            ).observe(float(len(burst)))
            telemetry.metrics.counter(
                "chat_join_avatar_fanout_total",
                "Avatar downloads triggered by join bursts",
            ).inc(sum(1 for m in burst if m.has_avatar))
        return burst

    def expected_avatar_bps(self) -> float:
        """Rough downstream avatar traffic with chat on (no caching): every
        avatar-bearing message triggers a full image download."""
        if not self._chatters:
            return 0.0
        mean_avatar = sum(
            nbytes for _, has, nbytes in self._chatters if has
        ) / max(1, sum(1 for _, has, _ in self._chatters if has))
        avatar_share = sum(1 for _, has, _ in self._chatters if has) / len(self._chatters)
        return self.message_rate_per_s * avatar_share * mean_avatar * 8.0
