"""Live delivery: from the broadcaster's camera to the viewer's socket.

One :class:`LiveSourceDriver` per watched broadcast drives the AVC/AAC
encoder models in simulated time and models the broadcaster's uplink —
including occasional uplink *outages*, the paper's explanation for the
isolated 3-5 s stalls that produce the 0.05-0.09 stall-ratio cluster in
Fig. 3(a) even on an unthrottled viewer connection.

Two consumers exist:

* :class:`RtmpDelivery` — pushes every frame to the viewer the moment the
  ingest server has it (plus a small keyframe rewind at join so playback
  can start immediately);
* :class:`HlsOrigin` — packages frames into I-frame-aligned MPEG-TS
  segments, applies the packaging/transcode delay, publishes them to the
  CDN's live window and answers playlist/segment HTTP requests.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro import obs
from repro.media.audio import AacEncoderModel
from repro.media.content import ContentProcess
from repro.media.encoder import EncoderSettings, VideoEncoder
from repro.media.frames import AudioFrame, EncodedFrame
from repro.media.segmenter import HlsSegment, HlsSegmenter
from repro.netsim.events import EventLoop
from repro.protocols.hls import LiveWindow, MediaPlaylist
from repro.protocols.http import HttpRequest, HttpResponse, HttpStatus
from repro.protocols.rtmp import RtmpPushSession
from repro.service.broadcast import Broadcast
from repro.util.rng import child_rng

#: Overhead multiplier of MPEG-TS packetization (188/184 plus PES/PSI).
TS_OVERHEAD_FACTOR = 1.05

MediaFrame = Union[EncodedFrame, AudioFrame]
FrameSink = Callable[[MediaFrame, float], None]


@dataclass
class UplinkModel:
    """The broadcaster's mobile uplink.

    ``base_delay_s`` covers radio + path to the ingest server (which is
    near the broadcaster); outages model the glitches the paper blames
    for missing frames and mid-stream stalls.
    """

    base_delay_s: float = 0.05
    jitter_s: float = 0.02
    #: Mean outages per second (Poisson).
    outage_rate_per_s: float = 0.0045
    outage_min_s: float = 2.0
    outage_max_s: float = 7.0

    def outage_schedule(
        self, rng: random.Random, start: float, duration_s: float
    ) -> List[Tuple[float, float]]:
        """(start, end) outage intervals within [start, start+duration)."""
        outages: List[Tuple[float, float]] = []
        if self.outage_rate_per_s <= 0:
            return outages
        t = start
        while True:
            t += rng.expovariate(self.outage_rate_per_s)
            if t >= start + duration_s:
                return outages
            length = rng.uniform(self.outage_min_s, self.outage_max_s)
            outages.append((t, t + length))

    def arrival_time(
        self,
        capture_time: float,
        rng: random.Random,
        outages: Sequence[Tuple[float, float]],
    ) -> float:
        """When a frame captured at ``capture_time`` reaches the ingest
        server: base delay + jitter, deferred past any outage."""
        arrival, _ = self.arrival_with_defer(capture_time, rng, outages)
        return arrival

    def arrival_with_defer(
        self,
        capture_time: float,
        rng: random.Random,
        outages: Sequence[Tuple[float, float]],
    ) -> Tuple[float, float]:
        """:meth:`arrival_time` plus the seconds an outage deferred the
        frame (0.0 when no outage was in the way)."""
        base = capture_time + self.base_delay_s + abs(rng.gauss(0.0, self.jitter_s))
        arrival = base
        for outage_start, outage_end in outages:
            if outage_start <= arrival < outage_end:
                # Frames held up by an outage burst out at its end, keeping
                # capture order via a tiny spacing term.
                arrival = outage_end + max(0.0, capture_time - outage_start) * 0.01
        return arrival, max(0.0, arrival - base)


class LiveSourceDriver:
    """Drives one broadcast's encoders in simulated time.

    The viewer joins ``age_at_join`` seconds into the broadcast; session
    time 0 is the join instant, so the broadcast started at session time
    ``-age_at_join``.  Media timestamps (pts) count from the broadcast
    start as usual.

    ``generate_from`` trims history: frames before that media offset are
    never produced (an RTMP viewer needs only a keyframe of rewind; an
    HLS viewer needs the current live window of segments).
    """

    #: Audio frames are batched into bundles before transmission; RTMP
    #: interleaves them anyway and it keeps the event count sane.
    AUDIO_BUNDLE_S = 0.5

    def __init__(
        self,
        loop: EventLoop,
        broadcast: Broadcast,
        age_at_join: float,
        horizon_s: float,
        uplink: Optional[UplinkModel] = None,
        generate_from: Optional[float] = None,
        broadcaster_clock_offset_s: float = 0.0,
    ) -> None:
        if age_at_join < 0:
            raise ValueError("a viewer cannot join before the broadcast starts")
        self.loop = loop
        self.broadcast = broadcast
        self.age_at_join = age_at_join
        self.horizon_s = horizon_s
        self.uplink = uplink or UplinkModel()
        self.broadcast_start = -age_at_join  # session time

        rng_root = broadcast.seed
        self._rng = child_rng(rng_root, "uplink")
        content = ContentProcess(
            broadcast.content_profile, child_rng(rng_root, "content")
        )
        settings = EncoderSettings(
            target_bps=broadcast.target_bitrate_bps,
            gop=broadcast.gop,
        )
        # The broadcaster's NTP clock has a small sync error; delivery
        # latency samples inherit it (hence the occasional negative values
        # the paper reports).
        self.encoder = VideoEncoder(
            settings,
            content,
            child_rng(rng_root, "encoder"),
            wallclock_start=self.broadcast_start + broadcaster_clock_offset_s,
        )
        self.audio = AacEncoderModel(
            child_rng(rng_root, "audio"), nominal_bps=broadcast.audio_bitrate_bps
        )
        start = generate_from if generate_from is not None else 0.0
        self.generate_from = max(0.0, start)
        self._sinks: List[FrameSink] = []
        self._prepared = False
        #: Frames whose ingest arrival predates the join (history).
        self.history: List[Tuple[float, MediaFrame]] = []

    def add_sink(self, sink: FrameSink) -> None:
        """Register a consumer of (frame, ingest_arrival_time) pairs."""
        self._sinks.append(sink)

    # ---------------------------------------------------------------- driving

    def start(self) -> None:
        """Generate the media timeline and schedule ingest arrivals."""
        if self._prepared:
            raise RuntimeError("driver already started")
        self._prepared = True
        total_media = self.age_at_join + self.horizon_s
        duration = total_media - self.generate_from
        if duration <= 0:
            raise ValueError("nothing to generate: horizon precedes history start")

        outages = self.uplink.outage_schedule(
            self._rng, self.broadcast_start, total_media + 10.0
        )

        events: List[Tuple[float, MediaFrame, float]] = []
        for frame in self.encoder.generate(duration):
            shifted = _shift_video(frame, self.generate_from)
            capture = self.broadcast_start + shifted.dts
            arrival, defer = self.uplink.arrival_with_defer(
                capture, self._rng, outages
            )
            events.append((arrival, shifted, defer))

        bundle_bound = self.generate_from
        for frame in self.audio.generate(duration):
            shifted = AudioFrame(
                index=frame.index, pts=frame.pts + self.generate_from, nbytes=frame.nbytes
            )
            capture = self.broadcast_start + shifted.pts
            # Audio is bundled: all frames of a bundle arrive when the
            # bundle closes.
            bundle_close = (
                math.floor(shifted.pts / self.AUDIO_BUNDLE_S) + 1
            ) * self.AUDIO_BUNDLE_S
            capture_close = self.broadcast_start + bundle_close
            arrival, defer = self.uplink.arrival_with_defer(
                capture_close, self._rng, outages
            )
            events.append((arrival, shifted, defer))

        events.sort(key=lambda e: e[0])
        for arrival, frame, defer in events:
            if arrival <= self.loop.now:
                self.history.append((arrival, frame))
            else:
                self.loop.schedule_at(
                    arrival,
                    lambda f=frame, a=arrival, d=defer: self._emit(f, a, d),
                )

    def _emit(
        self, frame: MediaFrame, arrival: float, outage_defer: float = 0.0
    ) -> None:
        if outage_defer > 0.0:
            # Attributed here, inside the already-scheduled arrival
            # callback, so attribution adds no events to the loop.
            telemetry = obs.active()
            if telemetry.enabled and telemetry.causes_on:
                telemetry.causes.add("uplink.outage", outage_defer)
        for sink in self._sinks:
            sink(frame, arrival)


def _shift_video(frame: EncodedFrame, offset: float) -> EncodedFrame:
    """Rebase a freshly encoded frame onto the broadcast's media timeline."""
    if offset == 0.0:
        return frame
    return EncodedFrame(
        index=frame.index,
        pts=frame.pts + offset,
        dts=frame.dts + offset,
        frame_type=frame.frame_type,
        nbytes=frame.nbytes,
        qp=frame.qp,
        complexity=frame.complexity,
        ntp_timestamp=(
            frame.ntp_timestamp + offset if frame.ntp_timestamp is not None else None
        ),
    )


class RtmpDelivery:
    """Ingest-server side of an RTMP viewing session.

    On :meth:`start`, the most recent GOP of already-ingested history
    (back to the last keyframe) is pushed immediately so the player can
    begin decoding; afterwards every arriving frame is pushed on arrival.
    """

    def __init__(self, push: RtmpPushSession, driver: LiveSourceDriver) -> None:
        self.push = push
        self.driver = driver
        self.started = False
        #: Ingest-outage state: while interrupted, arriving frames are
        #: held and flushed on resume (the failover/recovered server has
        #: the stream the broadcaster kept pushing).
        self.interrupted = False
        self.interruptions = 0
        self._held: List[MediaFrame] = []
        driver.add_sink(self._on_ingest)

    def start(self) -> None:
        self.started = True
        backlog = self._keyframe_rewind(self.driver.history)
        for frame in backlog:
            self.push.push_frame(frame)

    def interrupt(self) -> None:
        """The ingest server went down: stop pushing to the viewer."""
        if self.interrupted:
            return
        self.interrupted = True
        self.interruptions += 1

    def resume(self) -> None:
        """The client reconnected: flush frames held during the outage."""
        if not self.interrupted:
            return
        self.interrupted = False
        held, self._held = self._held, []
        if self.started:
            for frame in held:
                self.push.push_frame(frame)

    @staticmethod
    def _keyframe_rewind(history: Sequence[Tuple[float, MediaFrame]]) -> List[MediaFrame]:
        """History frames from the last keyframe onward, in arrival order."""
        last_key_index = None
        for index, (_, frame) in enumerate(history):
            if isinstance(frame, EncodedFrame) and frame.frame_type == "I":
                last_key_index = index
        if last_key_index is None:
            return []
        key_pts = history[last_key_index][1].pts
        return [
            frame
            for _, frame in history[last_key_index:]
            if not isinstance(frame, AudioFrame) or frame.pts >= key_pts
        ]

    def _on_ingest(self, frame: MediaFrame, arrival: float) -> None:
        if not self.started:
            return
        if self.interrupted:
            self._held.append(frame)
            return
        self.push.push_frame(frame)


class RtmpFanout:
    """Encode-once delivery of one broadcast to many RTMP viewers.

    A popular broadcast is encoded exactly once: every attached viewer
    shares the same :class:`LiveSourceDriver` (and hence one encoder and
    audio model), while join state, interruption handling, and
    backpressure live per client on the :class:`RtmpFanoutClient` the
    ingest server hands out.  This is the server-side shape the paper's
    "RTMP scales by ingest-server fan-out" observation implies — the
    per-viewer cost is a socket and a cursor, not an encode.

    ``backpressure_bytes`` bounds how far a slow viewer's send backlog
    may grow before the server starts shedding: a client over the limit
    drops frames up to the next keyframe (a partial GOP is undecodable
    anyway), which is how real ingest edges keep one congested viewer
    from buffering unbounded frames server-side.
    """

    def __init__(
        self,
        driver: LiveSourceDriver,
        backpressure_bytes: int = 256 * 1024,
    ) -> None:
        if backpressure_bytes <= 0:
            raise ValueError("backpressure budget must be positive")
        self.driver = driver
        self.backpressure_bytes = backpressure_bytes
        self.clients: List["RtmpFanoutClient"] = []
        driver.add_sink(self._on_ingest)

    def attach(self, push: RtmpPushSession) -> "RtmpFanoutClient":
        """Register one viewer's push session; returns its client handle."""
        client = RtmpFanoutClient(push, self)
        self.clients.append(client)
        return client

    def detach(self, client: "RtmpFanoutClient") -> None:
        """Remove a viewer (idempotent); its push session is left alone."""
        if client in self.clients:
            self.clients.remove(client)

    def _on_ingest(self, frame: MediaFrame, arrival: float) -> None:
        for client in self.clients:
            client._on_frame(frame)


class RtmpFanoutClient:
    """Per-viewer delivery state inside an :class:`RtmpFanout`.

    Mirrors :class:`RtmpDelivery`'s join semantics (keyframe rewind on
    start) and adds the shed counterpart of its flow: when the viewer's
    connection backlog exceeds the fan-out's budget, video is dropped
    until the next keyframe finds the backlog drained.
    """

    def __init__(self, push: RtmpPushSession, fanout: RtmpFanout) -> None:
        self.push = push
        self.fanout = fanout
        self.started = False
        self.frames_delivered = 0
        self.frames_dropped = 0
        self._awaiting_key = False

    def start(self) -> None:
        """Begin delivery: push the keyframe rewind, then follow live."""
        self.started = True
        for frame in RtmpDelivery._keyframe_rewind(self.fanout.driver.history):
            self.push.push_frame(frame)
            self.frames_delivered += 1

    @property
    def lagging(self) -> bool:
        """Whether this viewer currently exceeds the backpressure budget."""
        return (self.push.connection.backlog_bytes
                > self.fanout.backpressure_bytes)

    def _on_frame(self, frame: MediaFrame) -> None:
        if not self.started:
            return
        if isinstance(frame, EncodedFrame):
            if self._awaiting_key:
                if frame.frame_type == "I" and not self.lagging:
                    self._awaiting_key = False
                else:
                    self.frames_dropped += 1
                    return
            elif self.lagging:
                self._awaiting_key = True
                self.frames_dropped += 1
                return
        elif self._awaiting_key:
            # Audio rides the video shed window: resuming it mid-GOP
            # would only desync the player.
            self.frames_dropped += 1
            return
        self.push.push_frame(frame)
        self.frames_delivered += 1


class HlsOrigin:
    """Packager + CDN origin for one broadcast.

    Completed segments incur ``packaging_delay_s`` (repackaging and
    possible transcoding at the Periscope backend before the CDN has
    them) and then enter the live window.  The HTTP handler answers
    ``GET <broadcast>/playlist.m3u8`` and ``GET <segment uri>``.
    """

    def __init__(
        self,
        loop: EventLoop,
        driver: LiveSourceDriver,
        target_segment_s: float = 3.6,
        window_size: int = 3,
        packaging_delay_s: Optional[float] = None,
        byte_fidelity: bool = False,
        outage_windows: Sequence[Tuple[float, float]] = (),
    ) -> None:
        self.loop = loop
        self.driver = driver
        self.segmenter_target = target_segment_s
        #: Ingest/packager outage windows: a segment whose publish time
        #: lands inside one is published when the outage ends (viewers
        #: see a stale playlist meanwhile — the HLS face of an ingest
        #: fault).
        self.outage_windows = sorted(outage_windows)
        self.publishes_deferred = 0
        if packaging_delay_s is None:
            # Packaging/transcode time varies per backend placement and
            # stream; sampled once per broadcast.
            rng = child_rng(driver.broadcast.seed, "packaging")
            packaging_delay_s = min(max(rng.lognormvariate(math.log(2.3), 0.35), 0.9), 5.5)
        self.packaging_delay_s = packaging_delay_s
        self.byte_fidelity = byte_fidelity
        self.window = LiveWindow(target_duration_s=target_segment_s, window_size=window_size)
        self._segments: Dict[str, HlsSegment] = {}
        self._current: Optional[HlsSegment] = None
        self._sequence = 0
        self.segments_published = 0
        driver.add_sink(self._on_ingest)

    def start(self) -> None:
        """Process already-ingested history (segments that existed before
        the viewer joined are published instantly)."""
        for arrival, frame in self.driver.history:
            self._consume(frame, arrival, historical=True)

    # ------------------------------------------------------------- packaging

    def _on_ingest(self, frame: MediaFrame, arrival: float) -> None:
        self._consume(frame, arrival, historical=False)

    def _consume(self, frame: MediaFrame, arrival: float, historical: bool) -> None:
        if isinstance(frame, AudioFrame):
            if self._current is not None:
                self._current.audio_frames.append(frame)
            return
        if self._current is not None and (
            frame.frame_type == "I"
            and frame.pts - self._current.start_pts >= self.segmenter_target
        ):
            self._close_segment(self._current, arrival, historical)
            self._current = None
        if self._current is None:
            self._current = HlsSegment(sequence=self._sequence, start_pts=frame.pts)
            self._sequence += 1
        self._current.video_frames.append(frame)

    def _close_segment(self, segment: HlsSegment, completed_at: float, historical: bool) -> None:
        publish_at = completed_at + self.packaging_delay_s
        outage_defer = 0.0
        for window_start, window_end in self.outage_windows:
            if window_start <= publish_at < window_end:
                outage_defer += window_end - publish_at
                publish_at = window_end
                self.publishes_deferred += 1
        telemetry = obs.active()
        if (telemetry.enabled and telemetry.causes_on
                and publish_at > self.loop.now):
            # Only viewer-visible delay counts: segments that published
            # before the session joined (history) cost the viewer nothing.
            telemetry.causes.add("service.packaging", self.packaging_delay_s)
            if outage_defer > 0.0:
                telemetry.causes.add("service.outage", outage_defer)
        if historical and publish_at <= self.loop.now:
            self._publish(segment)
        else:
            self.loop.schedule_at(
                max(publish_at, self.loop.now), lambda s=segment: self._publish(s)
            )

    def _publish(self, segment: HlsSegment) -> None:
        uri = f"seg{segment.sequence}.ts"
        self._segments[uri] = segment
        self.window.add_segment(uri, max(segment.duration_s, 0.04))
        self.segments_published += 1

    # --------------------------------------------------------------- serving

    def handle(self, request: HttpRequest, identity: str) -> HttpResponse:
        """HTTP handler for the CDN edge."""
        if request.method != "GET":
            return HttpResponse(HttpStatus.NOT_FOUND, json_body={"error": "GET only"})
        if request.path.endswith("playlist.m3u8"):
            playlist = self.window.playlist()
            return HttpResponse(
                HttpStatus.OK,
                body_bytes=playlist.nbytes,
                payload=playlist,
            )
        uri = request.path.rsplit("/", 1)[-1]
        segment = self._segments.get(uri)
        if segment is None:
            return HttpResponse(HttpStatus.NOT_FOUND, json_body={"error": "no such segment"})
        if self.byte_fidelity:
            from repro.protocols.mpegts import mux_segment

            data = mux_segment(segment.video_frames, segment.audio_frames)
            return HttpResponse(HttpStatus.OK, data=data, payload=segment)
        return HttpResponse(
            HttpStatus.OK,
            body_bytes=int(segment.nbytes * TS_OVERHEAD_FACTOR),
            payload=segment,
        )


class ReplayOrigin:
    """Replay ("available for replay") serving: the recorded broadcast as
    an ended VOD playlist.

    Built by segmenting the whole recording up front — what the backend
    does when a broadcast ends — and served by the same CDN handler
    contract as :class:`HlsOrigin`.  Viewing a replay is the paper's
    "Video on (not live)" state.
    """

    def __init__(
        self,
        broadcast: Broadcast,
        duration_s: float,
        target_segment_s: float = 3.6,
        byte_fidelity: bool = False,
    ) -> None:
        if duration_s <= 0:
            raise ValueError("replay duration must be positive")
        if not broadcast.available_for_replay:
            raise ValueError("broadcast is not available for replay")
        self.broadcast = broadcast
        self.byte_fidelity = byte_fidelity
        from repro.media.audio import AacEncoderModel
        from repro.media.content import ContentProcess
        from repro.media.encoder import EncoderSettings, VideoEncoder
        from repro.media.segmenter import HlsSegmenter

        content = ContentProcess(
            broadcast.content_profile, child_rng(broadcast.seed, "content")
        )
        encoder = VideoEncoder(
            EncoderSettings(target_bps=broadcast.target_bitrate_bps, gop=broadcast.gop),
            content,
            child_rng(broadcast.seed, "encoder"),
        )
        video = encoder.encode_all(duration_s)
        audio = AacEncoderModel(
            child_rng(broadcast.seed, "audio"), nominal_bps=broadcast.audio_bitrate_bps
        ).encode_all(duration_s)
        self._segments: Dict[str, HlsSegment] = {}
        entries = []
        for segment in HlsSegmenter(target_segment_s).segment(video, audio):
            uri = f"replay{segment.sequence}.ts"
            self._segments[uri] = segment
            entries.append((uri, max(segment.duration_s, 0.04)))
        window = LiveWindow(target_duration_s=target_segment_s,
                            window_size=max(1, len(entries)))
        for uri, seg_duration in entries:
            window.add_segment(uri, seg_duration)
        window.end_stream()
        self.window = window

    @property
    def segment_count(self) -> int:
        return len(self._segments)

    def handle(self, request: HttpRequest, identity: str) -> HttpResponse:
        """HTTP handler: an ended playlist plus every segment."""
        if request.method != "GET":
            return HttpResponse(HttpStatus.NOT_FOUND, json_body={"error": "GET only"})
        if request.path.endswith("playlist.m3u8"):
            playlist = self.window.playlist()
            return HttpResponse(HttpStatus.OK, body_bytes=playlist.nbytes,
                                payload=playlist)
        uri = request.path.rsplit("/", 1)[-1]
        segment = self._segments.get(uri)
        if segment is None:
            return HttpResponse(HttpStatus.NOT_FOUND,
                                json_body={"error": "no such segment"})
        if self.byte_fidelity:
            from repro.protocols.mpegts import mux_segment

            data = mux_segment(segment.video_frames, segment.audio_frames)
            return HttpResponse(HttpStatus.OK, data=data, payload=segment)
        return HttpResponse(
            HttpStatus.OK,
            body_bytes=int(segment.nbytes * TS_OVERHEAD_FACTOR),
            payload=segment,
        )
