"""The living service: broadcast arrivals, the directory, discovery.

A :class:`ServiceWorld` evolves a population of broadcasts over simulated
time.  Arrivals follow a Poisson process thinned by the broadcaster-local
diurnal profile (so world-wide concurrency breathes with the sun, and a
crawl at a different time of day finds a different count — the paper's
deep crawls found between 1K and 4K).  Discovery mirrors the app:

* ``query_map`` — the /mapGeoBroadcastFeed behaviour, returning at most a
  cap of broadcasts per rectangle (which is why the crawler must zoom);
* ``ranked_broadcasts`` — the app's home list of ~80 streams;
* ``teleport`` — a *popularity-biased* random pick; this bias is how a
  47%-HLS session mix coexists with >90% of broadcasts having <20
  viewers.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.service.broadcast import Broadcast, sample_broadcast
from repro.service.geo import GeoRect, local_hour, sample_location
from repro.util.rng import child_rng
from repro.util.sampling import DIURNAL_PROFILE, diurnal_weight


@dataclass
class WorldParameters:
    """Scale and behaviour knobs of the simulated service."""

    #: Average number of concurrently live public broadcasts.
    mean_concurrent: int = 2500
    #: Maximum broadcasts one /mapGeoBroadcastFeed response lists.
    map_response_cap: int = 60
    #: Fraction of broadcasts whose location is undisclosed (invisible to
    #: the map, still reachable by Teleport).
    undisclosed_fraction: float = 0.22
    #: Fraction of broadcasts that are private (invisible to everything
    #: public; they exist so totals exceed what crawls can see).
    private_fraction: float = 0.10
    #: How long ended broadcasts stay resolvable via /getBroadcasts.
    ended_grace_s: float = 900.0
    #: Pre-roll applied at construction so t=0 starts in steady state.
    warmup_s: float = 3.0 * 3600.0

    #: Empirical mean broadcast duration under the samplers (seconds);
    #: used to convert target concurrency into an arrival rate.
    MEAN_DURATION_S = 600.0

    def __post_init__(self) -> None:
        if self.mean_concurrent < 1:
            raise ValueError("mean_concurrent must be positive")
        if not 0 <= self.undisclosed_fraction < 1:
            raise ValueError("undisclosed fraction must be in [0, 1)")
        if not 0 <= self.private_fraction < 1:
            raise ValueError("private fraction must be in [0, 1)")


class ServiceWorld:
    """Deterministic, lazily evaluated broadcast population."""

    def __init__(self, params: WorldParameters, seed: int = 0) -> None:
        self.params = params
        self._rng = child_rng(seed, "service-world")
        self._mean_acceptance = sum(DIURNAL_PROFILE) / len(DIURNAL_PROFILE)
        #: Peak arrival rate before diurnal thinning (arrivals per second).
        self._peak_rate = (
            params.mean_concurrent
            / params.MEAN_DURATION_S
            / self._mean_acceptance
        )
        self._now = -params.warmup_s
        self._next_arrival = self._now + self._rng.expovariate(self._peak_rate)
        self._live: Dict[str, Broadcast] = {}
        self._ended: Dict[str, Broadcast] = {}
        #: Lightweight permanent registry: id -> broadcaster UTC offset
        #: (what the description's time zone would give an observer).
        self.utc_offset_by_id: Dict[str, int] = {}
        self.total_generated = 0
        self._last_retire_scan = self._now
        self.advance_to(0.0)

    # ------------------------------------------------------------------ time

    @property
    def now(self) -> float:
        return self._now

    def advance_to(self, t: float) -> None:
        """Generate arrivals and retire endings up to UTC time ``t``."""
        if t < self._now:
            raise ValueError("the world cannot move backwards in time")
        while self._next_arrival <= t:
            arrival = self._next_arrival
            self._next_arrival = arrival + self._rng.expovariate(self._peak_rate)
            self._spawn(arrival)
        self._now = t
        self._retire(t)

    def _spawn(self, start_time: float) -> None:
        location, center = sample_location(self._rng)
        # Diurnal thinning: broadcasters are active according to their
        # local hour.  The rejected draws keep the RNG stream aligned.
        acceptance = diurnal_weight(local_hour(start_time, center.utc_offset_hours))
        if self._rng.random() >= acceptance:
            return
        broadcast = sample_broadcast(self._rng, start_time, location, center)
        broadcast.is_private = self._rng.random() < self.params.private_fraction
        # Undisclosed location: modelled as a flag the map query filters.
        broadcast.description_has_location = (
            self._rng.random() >= self.params.undisclosed_fraction
        )
        self.total_generated += 1
        self._live[broadcast.broadcast_id] = broadcast
        self.utc_offset_by_id[broadcast.broadcast_id] = center.utc_offset_hours

    #: How often the retire scan runs (it is O(live set); callers advance
    #: time far more often than broadcasts end).
    RETIRE_SCAN_INTERVAL_S = 5.0

    def _retire(self, t: float, force: bool = False) -> None:
        # End times are not monotone in arrival order (durations vary), so
        # scan the live set rather than trusting a queue order — but only
        # every few simulated seconds.
        if not force and t - self._last_retire_scan < self.RETIRE_SCAN_INTERVAL_S:
            return
        self._last_retire_scan = t
        ended_now = [
            b_id for b_id, b in self._live.items() if b.end_time <= t
        ]
        for b_id in ended_now:
            self._ended[b_id] = self._live.pop(b_id)
        grace_cutoff = t - self.params.ended_grace_s
        stale = [b_id for b_id, b in self._ended.items() if b.end_time < grace_cutoff]
        for b_id in stale:
            del self._ended[b_id]

    # ------------------------------------------------------------- discovery

    def live_broadcasts(self) -> List[Broadcast]:
        """All currently live broadcasts (omniscient view, for tests)."""
        return list(self._live.values())

    def live_count(self) -> int:
        return len(self._live)

    def get_broadcast(self, broadcast_id: str) -> Optional[Broadcast]:
        """Resolve an id to its broadcast (live or recently ended)."""
        return self._live.get(broadcast_id) or self._ended.get(broadcast_id)

    def query_map(self, rect: GeoRect, cap: Optional[int] = None) -> List[Broadcast]:
        """The /mapGeoBroadcastFeed behaviour: public, location-disclosed
        live broadcasts inside ``rect``, at most ``cap`` of them (most
        viewed first) — zooming in reveals more."""
        cap = cap if cap is not None else self.params.map_response_cap
        matches = [
            b
            for b in self._live.values()
            if not b.is_private
            and b.description_has_location
            and b.is_live_at(self._now)
            and rect.contains(b.location)
        ]
        matches.sort(key=lambda b: (-b.viewers_at(self._now), b.broadcast_id))
        return matches[:cap]

    def ranked_broadcasts(self, count: int = 80) -> List[Broadcast]:
        """The app's home list: the most-viewed public broadcasts."""
        public = [b for b in self._live.values() if not b.is_private]
        public.sort(key=lambda b: (-b.viewers_at(self._now), b.broadcast_id))
        return public[:count]

    #: Base weight added to every broadcast in the Teleport lottery so
    #: zero-viewer broadcasts are reachable (just rarely).
    TELEPORT_BASE_WEIGHT = 0.2

    def teleport(
        self, rng: random.Random, exclude: Optional[set] = None
    ) -> Optional[Broadcast]:
        """A popularity-biased random public broadcast (the app's Teleport
        button).

        ``exclude`` suppresses recently watched ids: at real service scale
        (~40 K live) Teleport practically never repeats, but a scaled-down
        world would otherwise resample its few popular broadcasts.
        """
        exclude = exclude or set()
        public = [
            b
            for b in self._live.values()
            if not b.is_private
            and b.is_live_at(self._now)
            and b.broadcast_id not in exclude
        ]
        if not public:
            return None
        weights = [
            b.viewers_at(self._now) + self.TELEPORT_BASE_WEIGHT for b in public
        ]
        total = sum(weights)
        pick = rng.random() * total
        acc = 0.0
        for broadcast, weight in zip(public, weights):
            acc += weight
            if pick < acc:
                return broadcast
        return public[-1]
