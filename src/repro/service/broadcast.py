"""Broadcast lifecycle: identity, popularity, duration, encoder traits.

Population statistics are calibrated to Section 4 of the paper:

* durations are heavy-tailed — most broadcasts last 1-10 minutes, roughly
  half under 4 minutes, with a tail beyond a day;
* over 10% of broadcasts never have a viewer; they are much shorter on
  average (≈2 min vs ≈13 min) and >80% of them are not available for
  replay;
* over 90% of broadcasts average fewer than 20 viewers, but some attract
  thousands — and because the app's Teleport button is popularity-biased,
  nearly half of randomly "teleported" sessions land on a >100-viewer
  (HLS) broadcast even though such broadcasts are rare.
"""

from __future__ import annotations

import enum
import math
import random
import string
from dataclasses import dataclass, field
from typing import Optional

from repro.media.content import ContentProfile, pick_profile
from repro.media.encoder import GopPattern
from repro.service.geo import GeoPoint, PopulationCenter
from repro.util.sampling import bounded_lognormal, bounded_pareto

_ID_ALPHABET = string.ascii_letters + string.digits
#: Periscope broadcast ids are 13 characters (Table 1).
BROADCAST_ID_LENGTH = 13

#: Fraction of broadcasts that never attract a single viewer (paper: >10%).
ZERO_VIEWER_FRACTION = 0.11
#: Replay availability for zero-viewer broadcasts (paper: >80% unavailable).
ZERO_VIEWER_REPLAY_PROB = 0.17
#: Replay availability for viewed broadcasts (not reported; plausible).
VIEWED_REPLAY_PROB = 0.62

#: Chat stops accepting new senders once this many viewers joined.
CHAT_FULL_VIEWERS = 150


class BroadcastState(enum.Enum):
    """Where a broadcast is in its lifecycle at a given instant."""

    SCHEDULED = "scheduled"
    LIVE = "live"
    ENDED = "ended"


def make_broadcast_id(rng: random.Random) -> str:
    """A 13-character opaque broadcast id."""
    return "".join(rng.choice(_ID_ALPHABET) for _ in range(BROADCAST_ID_LENGTH))


#: A small fraction of viewed broadcasts are "marathons" (surveillance
#: cams, event coverage) running for hours to days — the paper's
#: distribution tail.
MARATHON_PROBABILITY = 0.002


def sample_duration_s(rng: random.Random, has_viewers: bool) -> float:
    """Broadcast duration, heavy tailed; viewed broadcasts run longer."""
    if has_viewers:
        if rng.random() < MARATHON_PROBABILITY:
            return bounded_lognormal(
                rng, median=6 * 3600.0, sigma=1.0, low=3600.0, high=2 * 86400.0
            )
        return bounded_lognormal(rng, median=4.2 * 60, sigma=1.3, low=20.0, high=2 * 86400.0)
    return bounded_lognormal(rng, median=1.5 * 60, sigma=1.0, low=10.0, high=12 * 3600.0)


def sample_mean_viewers(rng: random.Random) -> float:
    """Average concurrent viewers over the broadcast's life (0 allowed)."""
    if rng.random() < ZERO_VIEWER_FRACTION:
        return 0.0
    return bounded_pareto(rng, alpha=1.0, scale=0.8, high=20_000.0)


def sample_target_bitrate_bps(rng: random.Random, gop: GopPattern) -> float:
    """Encoder target bitrate.

    The bulk sits at 200-400 kbps; intra-only encoders (old hardware with
    broken rate control) run far hotter — they are the paper's
    explanation for the higher RTMP bitrate maximum in Fig. 6(a).
    """
    if gop.kind == "I":
        return bounded_lognormal(rng, median=900_000.0, sigma=0.25,
                                 low=500_000.0, high=1_400_000.0)
    return bounded_lognormal(rng, median=300_000.0, sigma=0.28,
                             low=120_000.0, high=900_000.0)


@dataclass
class Broadcast:
    """One live broadcast and everything derived observers can see."""

    broadcast_id: str
    username: str
    start_time: float  # UTC sim seconds
    duration_s: float
    location: GeoPoint
    center: PopulationCenter
    content_profile: ContentProfile
    gop: GopPattern
    target_bitrate_bps: float
    audio_bitrate_bps: float
    mean_viewers: float
    available_for_replay: bool
    is_private: bool = False
    #: False when the broadcaster withheld location (map queries skip it).
    description_has_location: bool = True
    #: Seed material for the broadcast's encoder/chat streams.
    seed: int = 0

    @property
    def end_time(self) -> float:
        return self.start_time + self.duration_s

    def state_at(self, t: float) -> BroadcastState:
        if t < self.start_time:
            return BroadcastState.SCHEDULED
        if t < self.end_time:
            return BroadcastState.LIVE
        return BroadcastState.ENDED

    def is_live_at(self, t: float) -> bool:
        return self.state_at(t) == BroadcastState.LIVE

    @property
    def has_viewers(self) -> bool:
        return self.mean_viewers > 0

    @property
    def utc_offset_hours(self) -> int:
        return self.center.utc_offset_hours

    def local_start_hour(self) -> float:
        """Broadcaster-local start hour (the Fig. 2(b) x axis)."""
        return ((self.start_time / 3600.0) + self.utc_offset_hours) % 24.0

    # ----------------------------------------------------------- viewer curve

    #: Shape parameters of the audience curve: quick ramp to a peak early
    #: in the broadcast, then slow exponential decay.
    _RAMP_FRACTION = 0.15
    _DECAY_RATE = 1.2

    def viewers_at(self, t: float) -> float:
        """Instantaneous concurrent viewers at UTC time ``t``.

        The curve integrates (approximately) to ``mean_viewers`` over the
        broadcast's life.
        """
        if not self.is_live_at(t) or self.mean_viewers <= 0:
            return 0.0
        x = (t - self.start_time) / self.duration_s  # progress in [0, 1)
        ramp = self._RAMP_FRACTION
        if x < ramp:
            shape = x / ramp
        else:
            shape = math.exp(-self._DECAY_RATE * (x - ramp) / (1.0 - ramp))
        # Normalize: integral of the shape over [0,1].
        integral = ramp / 2.0 + (1.0 - ramp) / self._DECAY_RATE * (
            1.0 - math.exp(-self._DECAY_RATE)
        )
        return self.mean_viewers * shape / integral

    def chat_is_full_at(self, t: float) -> bool:
        """New joiners cannot send messages once the chat filled up."""
        return self.viewers_at(t) >= CHAT_FULL_VIEWERS

    def description(self, t: float) -> dict:
        """The JSON description /getBroadcasts returns for this id."""
        return {
            "id": self.broadcast_id,
            "username": self.username,
            "state": "RUNNING" if self.is_live_at(t) else "ENDED",
            "start": self.start_time,
            "ip_lat": round(self.location.lat, 4),
            "ip_lng": round(self.location.lon, 4),
            "n_watching": int(round(self.viewers_at(t))),
            "available_for_replay": self.available_for_replay,
            "is_locked": self.is_private,
        }


def sample_broadcast(
    rng: random.Random,
    start_time: float,
    location: GeoPoint,
    center: PopulationCenter,
    username: Optional[str] = None,
) -> Broadcast:
    """Draw a complete broadcast with correlated traits."""
    mean_viewers = sample_mean_viewers(rng)
    gop = GopPattern.sample(rng)
    if gop.kind == "I":
        # Intra-only streams come from legacy hardware whose owners also
        # draw small audiences — so their hot bitrates surface on RTMP,
        # not HLS (the Fig. 6(a) max-bitrate asymmetry).
        mean_viewers = min(mean_viewers, 40.0)
    has_viewers = mean_viewers > 0
    replay_prob = VIEWED_REPLAY_PROB if has_viewers else ZERO_VIEWER_REPLAY_PROB
    return Broadcast(
        broadcast_id=make_broadcast_id(rng),
        username=username or f"user{rng.randrange(10**8):08d}",
        start_time=start_time,
        duration_s=sample_duration_s(rng, has_viewers),
        location=location,
        center=center,
        content_profile=pick_profile(rng),
        gop=gop,
        target_bitrate_bps=sample_target_bitrate_bps(rng, gop),
        audio_bitrate_bps=rng.choice((32_000.0, 64_000.0)),
        mean_viewers=mean_viewers,
        available_for_replay=rng.random() < replay_prob,
        is_private=False,
        seed=rng.getrandbits(48),
    )
