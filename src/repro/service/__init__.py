"""The simulated Periscope service.

Everything the measurement study observes from outside is produced here:
a world of geo-distributed broadcasts with heavy-tailed popularity and
durations, the private JSON API (Table 1) with its rate limiting, the
protocol-selection policy (RTMP below ~100 viewers, HLS above), the EC2
ingest pool and Fastly-like CDN, and the chat service whose avatar
downloads dominate the traffic when the chat UI is on.
"""

from repro.service.geo import GeoPoint, GeoRect, POPULATION_CENTERS, PopulationCenter
from repro.service.broadcast import Broadcast, BroadcastState
from repro.service.world import ServiceWorld, WorldParameters
from repro.service.api import ApiServer, RateLimiter, ApiError
from repro.service.ingest import CdnEdge, IngestPool, RtmpIngestServer
from repro.service.selection import DeliveryProtocol, select_protocol
from repro.service.chat import ChatFeed, ChatMessage
from repro.service.delivery import (
    HlsOrigin,
    LiveSourceDriver,
    ReplayOrigin,
    RtmpDelivery,
    UplinkModel,
)

__all__ = [
    "HlsOrigin",
    "LiveSourceDriver",
    "ReplayOrigin",
    "RtmpDelivery",
    "UplinkModel",
    "GeoPoint",
    "GeoRect",
    "POPULATION_CENTERS",
    "PopulationCenter",
    "Broadcast",
    "BroadcastState",
    "ServiceWorld",
    "WorldParameters",
    "ApiServer",
    "RateLimiter",
    "ApiError",
    "CdnEdge",
    "IngestPool",
    "RtmpIngestServer",
    "DeliveryProtocol",
    "select_protocol",
    "ChatFeed",
    "ChatMessage",
]
