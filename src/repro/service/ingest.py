"""Ingest servers and the CDN.

Section 5's infrastructure findings, reproduced structurally:

* RTMP streams come from **87 distinct Amazon EC2 servers** spread over
  every continent except Africa; the server **nearest the broadcaster**
  is chosen when the broadcast is initialized (confirmed by Wang et al.).
* All HLS segments come from just **two CDN IPs** (one in Europe, one in
  San Francisco); the edge is chosen by the **viewer's** location.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import FrozenSet, List, Optional, Sequence, Tuple

from repro.service.geo import GeoPoint

#: EC2 regions hosting RTMP ingest (continent coverage minus Africa).
EC2_REGIONS: Tuple[Tuple[str, GeoPoint], ...] = (
    ("us-east-1", GeoPoint(38.9, -77.4)),
    ("us-west-1", GeoPoint(37.4, -121.9)),
    ("us-west-2", GeoPoint(45.9, -119.3)),
    ("sa-east-1", GeoPoint(-23.5, -46.6)),
    ("eu-west-1", GeoPoint(53.3, -6.3)),
    ("eu-central-1", GeoPoint(50.1, 8.7)),
    ("ap-southeast-1", GeoPoint(1.3, 103.8)),
    ("ap-southeast-2", GeoPoint(-33.9, 151.2)),
    ("ap-northeast-1", GeoPoint(35.7, 139.7)),
)

#: Number of distinct RTMP ingest servers the paper observed.
RTMP_SERVER_COUNT = 87


@dataclass(frozen=True)
class RtmpIngestServer:
    """One EC2-hosted RTMP ingest instance."""

    name: str
    region: str
    location: GeoPoint
    ip: str

    def reverse_dns(self) -> str:
        """The EC2-style reverse-lookup name the paper used to identify
        these servers."""
        return f"ec2-{self.ip.replace('.', '-')}.{self.region}.compute.amazonaws.com"


@dataclass(frozen=True)
class CdnEdge:
    """One Fastly-like CDN edge serving HLS."""

    name: str
    location: GeoPoint
    ip: str


#: The two HLS-serving IPs of the paper (Europe; San Francisco).
CDN_EDGES: Tuple[CdnEdge, ...] = (
    CdnEdge("fastly-eu", GeoPoint(50.1, 8.7), ip="151.101.12.1"),
    CdnEdge("fastly-sf", GeoPoint(37.8, -122.4), ip="151.101.1.57"),
)


class IngestPool:
    """The fleet of RTMP ingest servers with nearest-broadcaster routing."""

    def __init__(self, rng: random.Random, server_count: int = RTMP_SERVER_COUNT) -> None:
        if server_count < len(EC2_REGIONS):
            raise ValueError("need at least one server per region")
        self.servers: List[RtmpIngestServer] = []
        for index in range(server_count):
            region, region_loc = EC2_REGIONS[index % len(EC2_REGIONS)]
            location = GeoPoint(
                min(max(region_loc.lat + rng.gauss(0.0, 0.3), -89.9), 89.9),
                region_loc.lon + rng.gauss(0.0, 0.3),
            )
            ip = f"54.{rng.randrange(64, 240)}.{rng.randrange(256)}.{rng.randrange(1, 255)}"
            self.servers.append(
                RtmpIngestServer(
                    name=f"vidman-{region}-{index:02d}",
                    region=region,
                    location=location,
                    ip=ip,
                )
            )

    def nearest_to(
        self,
        location: GeoPoint,
        exclude_regions: FrozenSet[str] = frozenset(),
    ) -> RtmpIngestServer:
        """The ingest server chosen at broadcast initialization: nearest
        to the *broadcaster*.  ``exclude_regions`` supports regional
        failover: during an ingest outage the re-resolved server comes
        from the nearest healthy region instead."""
        candidates = [
            s for s in self.servers if s.region not in exclude_regions
        ]
        if not candidates:
            raise ValueError("every ingest region is excluded")
        return min(candidates, key=lambda s: s.location.distance_deg(location))

    def by_ip(self, ip: str) -> Optional[RtmpIngestServer]:
        for server in self.servers:
            if server.ip == ip:
                return server
        return None


def nearest_cdn_edge(
    viewer_location: GeoPoint, edges: Sequence[CdnEdge] = CDN_EDGES
) -> CdnEdge:
    """The CDN edge chosen at request time: nearest to the *viewer*."""
    return min(edges, key=lambda e: e.location.distance_deg(viewer_location))
