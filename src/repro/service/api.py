"""The private Periscope API (Table 1) and its rate limiting.

All app-server interaction goes through POSTs of JSON bodies to
``/api/v2/apiRequest``.  The commands the study uses:

=====================  ==========================================  =========================================
API request            request contents                            response contents
=====================  ==========================================  =========================================
mapGeoBroadcastFeed    coordinates of a rectangular area           list of broadcasts inside the area
getBroadcasts          list of 13-character broadcast ids          descriptions (incl. number of viewers)
playbackMeta           playback statistics                         nothing
=====================  ==========================================  =========================================

plus ``accessVideo``, the call that resolves a broadcast to its delivery
endpoint (RTMP ingest server or HLS playlist URL) — the paper exercised
it implicitly whenever a viewing session started.

Too-frequent requests are answered with HTTP 429 ("Too many requests"),
which is what forces the paper's crawler to pace itself and run four
crawler identities in parallel.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.protocols.http import HttpRequest, HttpResponse, HttpStatus
from repro.service.broadcast import Broadcast
from repro.service.geo import GeoRect
from repro.service.ingest import CDN_EDGES, IngestPool, nearest_cdn_edge
from repro.service.selection import (
    DEFAULT_HLS_VIEWER_THRESHOLD,
    DeliveryProtocol,
    select_protocol,
)
from repro.service.world import ServiceWorld

API_PATH = "/api/v2/apiRequest"


class ApiError(Exception):
    """Raised for malformed API requests (the server answers 404/400)."""


class RateLimiter:
    """Per-identity token bucket, the 429 source.

    Defaults are calibrated so that a single identity replaying map
    queries as fast as the network allows gets throttled to roughly one
    request per second — which stretches a deep crawl past 10 minutes,
    as the paper reports.
    """

    def __init__(self, rate_per_s: float = 1.2, burst: int = 8) -> None:
        if rate_per_s <= 0 or burst < 1:
            raise ValueError("rate must be positive and burst >= 1")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens: Dict[str, float] = {}
        self._updated: Dict[str, float] = {}
        self.throttled_count = 0

    def allow(self, identity: str, now: float) -> bool:
        """Consume one token for ``identity``; False means throttle."""
        tokens = self._tokens.get(identity, float(self.burst))
        last = self._updated.get(identity, now)
        tokens = min(float(self.burst), tokens + (now - last) * self.rate_per_s)
        self._updated[identity] = now
        if tokens >= 1.0:
            self._tokens[identity] = tokens - 1.0
            return True
        self._tokens[identity] = tokens
        self.throttled_count += 1
        return False


@dataclass
class PlaybackMetaRecord:
    """One playbackMeta upload, as stored server side (and as dumped by
    the study's mitmproxy inline script)."""

    received_at: float
    identity: str
    stats: Dict[str, Any]


class ApiServer:
    """Implements the apiRequest dispatch against a :class:`ServiceWorld`.

    The instance is transport agnostic: :meth:`handle` has the
    :data:`~repro.protocols.http.RequestHandler` signature and can be
    mounted on any number of per-client :class:`HttpServer` instances.
    """

    def __init__(
        self,
        world: ServiceWorld,
        ingest: IngestPool,
        clock: Callable[[], float],
        rng: random.Random,
        rate_limiter: Optional[RateLimiter] = None,
        hls_threshold: float = DEFAULT_HLS_VIEWER_THRESHOLD,
        error_injector: Optional[Callable[[], bool]] = None,
    ) -> None:
        self.world = world
        self.ingest = ingest
        self.clock = clock
        self._rng = rng
        self.rate_limiter = rate_limiter or RateLimiter()
        self.hls_threshold = hls_threshold
        #: Fault hook: when it returns True the request is answered with
        #: an injected 503 (see :class:`repro.faults.plan.ApiErrorInjector`).
        #: Draws from its own stream, so ``None`` changes nothing.
        self.error_injector = error_injector
        self.playback_metas: List[PlaybackMetaRecord] = []
        self.requests_handled = 0
        self.errors_injected = 0

    # ------------------------------------------------------------- dispatch

    def handle(self, request: HttpRequest, identity: str) -> HttpResponse:
        """RequestHandler entry point."""
        now = self.clock()
        self.world.advance_to(max(now, self.world.now))
        if request.method != "POST" or request.path != API_PATH:
            return HttpResponse(HttpStatus.NOT_FOUND, json_body={"error": "unknown endpoint"})
        body = request.json_body or {}
        command = body.get("request")
        telemetry = obs.active()
        metrics_on = telemetry.enabled and telemetry.metrics_on
        if not self.rate_limiter.allow(identity or "anonymous", now):
            if metrics_on:
                telemetry.metrics.counter(
                    "api_throttled_total", "apiRequest commands answered 429",
                    command=str(command),
                ).inc()
            return HttpResponse(
                HttpStatus.TOO_MANY_REQUESTS, json_body={"error": "Too many requests"}
            )
        if self.error_injector is not None and self.error_injector():
            self.errors_injected += 1
            if metrics_on:
                telemetry.metrics.counter(
                    "faults_injected_total",
                    "Fault events injected across layers",
                    kind="api-5xx", command=str(command),
                ).inc()
            return HttpResponse(
                HttpStatus.SERVICE_UNAVAILABLE,
                json_body={"error": "Service Unavailable"},
            )
        self.requests_handled += 1
        if metrics_on:
            telemetry.metrics.counter(
                "api_commands_total", "apiRequest commands handled",
                command=str(command),
            ).inc()
        try:
            if command == "mapGeoBroadcastFeed":
                return self._map_geo_broadcast_feed(body)
            if command == "getBroadcasts":
                return self._get_broadcasts(body)
            if command == "playbackMeta":
                return self._playback_meta(body, identity, now)
            if command == "accessVideo":
                return self._access_video(body)
        except ApiError as error:
            return HttpResponse(HttpStatus.NOT_FOUND, json_body={"error": str(error)})
        return HttpResponse(
            HttpStatus.NOT_FOUND, json_body={"error": f"unknown request {command!r}"}
        )

    # ------------------------------------------------------------- commands

    def _map_geo_broadcast_feed(self, body: Dict[str, Any]) -> HttpResponse:
        try:
            rect = GeoRect(
                south=float(body["p1_lat"]),
                west=float(body["p1_lng"]),
                north=float(body["p2_lat"]),
                east=float(body["p2_lng"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ApiError(f"bad coordinates: {exc}") from exc
        include_replay = bool(body.get("include_replay", False))
        broadcasts = self.world.query_map(rect)
        if not include_replay:
            broadcasts = [b for b in broadcasts if b.is_live_at(self.world.now)]
        return HttpResponse(
            HttpStatus.OK,
            json_body={
                "broadcasts": [
                    self._map_entry(broadcast) for broadcast in broadcasts
                ]
            },
        )

    def _map_entry(self, broadcast: Broadcast) -> Dict[str, Any]:
        """The abbreviated description map responses carry."""
        return {
            "id": broadcast.broadcast_id,
            "ip_lat": round(broadcast.location.lat, 4),
            "ip_lng": round(broadcast.location.lon, 4),
            "state": "RUNNING",
        }

    def _get_broadcasts(self, body: Dict[str, Any]) -> HttpResponse:
        ids = body.get("broadcast_ids")
        if not isinstance(ids, list):
            raise ApiError("broadcast_ids must be a list")
        descriptions = []
        for broadcast_id in ids:
            broadcast = self.world.get_broadcast(str(broadcast_id))
            if broadcast is not None:
                descriptions.append(broadcast.description(self.world.now))
        return HttpResponse(HttpStatus.OK, json_body={"broadcasts": descriptions})

    def _playback_meta(
        self, body: Dict[str, Any], identity: str, now: float
    ) -> HttpResponse:
        stats = body.get("stats")
        if not isinstance(stats, dict):
            raise ApiError("stats must be an object")
        self.playback_metas.append(
            PlaybackMetaRecord(received_at=now, identity=identity, stats=stats)
        )
        return HttpResponse(HttpStatus.OK, json_body={})

    def _access_video(self, body: Dict[str, Any]) -> HttpResponse:
        broadcast_id = body.get("broadcast_id")
        broadcast = self.world.get_broadcast(str(broadcast_id))
        if broadcast is None:
            raise ApiError(f"unknown broadcast {broadcast_id!r}")
        protocol = select_protocol(broadcast, self.world.now, self.hls_threshold)
        if protocol == DeliveryProtocol.RTMP:
            server = self.ingest.nearest_to(broadcast.location)
            return HttpResponse(
                HttpStatus.OK,
                json_body={
                    "protocol": "rtmp",
                    "host": f"vidman-{server.region}.periscope.tv",
                    "ip": server.ip,
                    "port": 80,
                    "https": broadcast.is_private,
                },
            )
        return HttpResponse(
            HttpStatus.OK,
            json_body={
                "protocol": "hls",
                "playlist_url": (
                    f"https://cdn.periscope.tv/{broadcast.broadcast_id}/playlist.m3u8"
                ),
                "edges": [edge.ip for edge in CDN_EDGES],
                "port": 443 if broadcast.is_private else 80,
            },
        )
