"""Delivery-protocol selection policy.

Section 5: "HLS seems to be used only when a broadcast is very popular
... the boundary number of viewers beyond which HLS is used is somewhere
around 100 viewers."  RTMP push scales linearly in ingest-server fan-out,
so the service offloads popular broadcasts to the CDN.
"""

from __future__ import annotations

import enum

from repro.service.broadcast import Broadcast

#: Viewer count beyond which the service serves a broadcast over HLS.
DEFAULT_HLS_VIEWER_THRESHOLD = 100.0


class DeliveryProtocol(enum.Enum):
    """How the video reaches a viewer."""

    RTMP = "rtmp"
    HLS = "hls"


def select_protocol(
    broadcast: Broadcast,
    at_time: float,
    threshold: float = DEFAULT_HLS_VIEWER_THRESHOLD,
) -> DeliveryProtocol:
    """The protocol a viewer joining ``broadcast`` at ``at_time`` gets.

    The decision uses the current audience size; a broadcast can
    therefore be served over RTMP early in its life and over HLS once it
    catches fire, which matches the paper's "boundary is *somewhere
    around* 100" fuzziness — sessions near the boundary see either.
    """
    if threshold < 0:
        raise ValueError("threshold must be non-negative")
    viewers = broadcast.viewers_at(at_time)
    if viewers >= threshold:
        return DeliveryProtocol.HLS
    return DeliveryProtocol.RTMP
