"""Geography: coordinates, map rectangles, and where broadcasters live.

Broadcast locations cluster around population centers — that clustering
is what makes the paper's crawling strategy work (half of the map areas
hold at least 80% of the broadcasts, Fig. 1(b)) — and each broadcast's
local time zone drives the diurnal pattern of Fig. 2(b).
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import List, Tuple


@dataclass(frozen=True)
class GeoPoint:
    """A WGS84-ish coordinate pair in degrees."""

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude {self.lat} out of range")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude {self.lon} out of range")

    def distance_deg(self, other: "GeoPoint") -> float:
        """Euclidean distance in degree space — a crude but monotone
        proxy adequate for nearest-server selection."""
        dlat = self.lat - other.lat
        dlon = min(abs(self.lon - other.lon), 360.0 - abs(self.lon - other.lon))
        return math.hypot(dlat, dlon)


@dataclass(frozen=True)
class GeoRect:
    """A map rectangle, as sent in /mapGeoBroadcastFeed requests."""

    south: float
    west: float
    north: float
    east: float

    def __post_init__(self) -> None:
        if self.south > self.north:
            raise ValueError("south must not exceed north")
        if self.west > self.east:
            raise ValueError("west must not exceed east")

    @classmethod
    def world(cls) -> "GeoRect":
        return cls(south=-90.0, west=-180.0, north=90.0, east=180.0)

    def contains(self, point: GeoPoint) -> bool:
        return (
            self.south <= point.lat <= self.north
            and self.west <= point.lon <= self.east
        )

    @property
    def area_deg2(self) -> float:
        return (self.north - self.south) * (self.east - self.west)

    def quadrants(self) -> Tuple["GeoRect", "GeoRect", "GeoRect", "GeoRect"]:
        """Split into four equal sub-rectangles (the deep crawl's zoom)."""
        mid_lat = (self.south + self.north) / 2.0
        mid_lon = (self.west + self.east) / 2.0
        return (
            GeoRect(self.south, self.west, mid_lat, mid_lon),
            GeoRect(self.south, mid_lon, mid_lat, self.east),
            GeoRect(mid_lat, self.west, self.north, mid_lon),
            GeoRect(mid_lat, mid_lon, self.north, self.east),
        )

    def key(self) -> Tuple[float, float, float, float]:
        """Hashable identity for bookkeeping crawled areas."""
        return (self.south, self.west, self.north, self.east)


@dataclass(frozen=True)
class PopulationCenter:
    """A city-scale cluster of broadcasters."""

    name: str
    location: GeoPoint
    #: Relative share of the world's broadcasts originating here.
    weight: float
    #: Whole-hour offset from UTC (DST ignored; enough for diurnality).
    utc_offset_hours: int
    #: Degrees of scatter around the center.
    spread_deg: float = 1.2


#: A 36-city sketch of where Periscope broadcasters were: North America,
#: Europe and Turkey heavy (Periscope's biggest 2016 markets), plus Asia,
#: South America, Oceania — and none in Africa, matching the paper's
#: observation that no RTMP ingest server was located there.
POPULATION_CENTERS: List[PopulationCenter] = [
    PopulationCenter("new-york", GeoPoint(40.7, -74.0), 7.0, -5),
    PopulationCenter("los-angeles", GeoPoint(34.1, -118.2), 6.0, -8),
    PopulationCenter("chicago", GeoPoint(41.9, -87.6), 3.0, -6),
    PopulationCenter("houston", GeoPoint(29.8, -95.4), 2.5, -6),
    PopulationCenter("toronto", GeoPoint(43.7, -79.4), 2.0, -5),
    PopulationCenter("mexico-city", GeoPoint(19.4, -99.1), 2.5, -6),
    PopulationCenter("sao-paulo", GeoPoint(-23.6, -46.6), 3.5, -3),
    PopulationCenter("buenos-aires", GeoPoint(-34.6, -58.4), 1.5, -3),
    PopulationCenter("london", GeoPoint(51.5, -0.1), 5.0, 0),
    PopulationCenter("paris", GeoPoint(48.9, 2.3), 3.0, 1),
    PopulationCenter("berlin", GeoPoint(52.5, 13.4), 2.0, 1),
    PopulationCenter("madrid", GeoPoint(40.4, -3.7), 2.0, 1),
    PopulationCenter("rome", GeoPoint(41.9, 12.5), 1.8, 1),
    PopulationCenter("amsterdam", GeoPoint(52.4, 4.9), 1.2, 1),
    PopulationCenter("stockholm", GeoPoint(59.3, 18.1), 1.0, 1),
    PopulationCenter("helsinki", GeoPoint(60.2, 24.9), 0.8, 2),
    PopulationCenter("moscow", GeoPoint(55.8, 37.6), 3.0, 3),
    PopulationCenter("istanbul", GeoPoint(41.0, 28.9), 8.0, 3),
    PopulationCenter("ankara", GeoPoint(39.9, 32.9), 3.0, 3),
    PopulationCenter("izmir", GeoPoint(38.4, 27.1), 2.0, 3),
    PopulationCenter("dubai", GeoPoint(25.2, 55.3), 1.2, 4),
    PopulationCenter("riyadh", GeoPoint(24.7, 46.7), 2.5, 3),
    PopulationCenter("mumbai", GeoPoint(19.1, 72.9), 1.5, 5),
    PopulationCenter("bangkok", GeoPoint(13.8, 100.5), 1.5, 7),
    PopulationCenter("jakarta", GeoPoint(-6.2, 106.8), 1.8, 7),
    PopulationCenter("singapore", GeoPoint(1.3, 103.8), 1.0, 8),
    PopulationCenter("manila", GeoPoint(14.6, 121.0), 1.2, 8),
    PopulationCenter("tokyo", GeoPoint(35.7, 139.7), 4.0, 9),
    PopulationCenter("osaka", GeoPoint(34.7, 135.5), 1.5, 9),
    PopulationCenter("seoul", GeoPoint(37.6, 127.0), 2.0, 9),
    PopulationCenter("sydney", GeoPoint(-33.9, 151.2), 1.5, 10),
    PopulationCenter("melbourne", GeoPoint(-37.8, 145.0), 1.0, 10),
    PopulationCenter("auckland", GeoPoint(-36.8, 174.8), 0.4, 12),
    PopulationCenter("san-francisco", GeoPoint(37.8, -122.4), 3.5, -8),
    PopulationCenter("miami", GeoPoint(25.8, -80.2), 2.0, -5),
    PopulationCenter("vancouver", GeoPoint(49.3, -123.1), 1.0, -8),
]


def sample_location(rng: random.Random) -> Tuple[GeoPoint, PopulationCenter]:
    """Draw a broadcaster location: weighted center + gaussian scatter."""
    total = sum(c.weight for c in POPULATION_CENTERS)
    pick = rng.random() * total
    acc = 0.0
    center = POPULATION_CENTERS[-1]
    for candidate in POPULATION_CENTERS:
        acc += candidate.weight
        if pick < acc:
            center = candidate
            break
    lat = center.location.lat + rng.gauss(0.0, center.spread_deg)
    lon = center.location.lon + rng.gauss(0.0, center.spread_deg)
    lat = min(max(lat, -89.9), 89.9)
    lon = ((lon + 180.0) % 360.0) - 180.0
    return GeoPoint(lat, lon), center


def local_hour(utc_seconds: float, utc_offset_hours: int) -> float:
    """Fractional local hour of day for a UTC timestamp."""
    return ((utc_seconds / 3600.0) + utc_offset_hours) % 24.0
