"""Canonical, stable content hashing for campaign cells.

A campaign memoizes cell results under a key derived from the
*fully-resolved* cell description (a :class:`~repro.campaign.spec.CellSpec`
holding a :class:`~repro.core.config.StudyConfig`).  The key must be

* **canonical** — two descriptions equal under ``==`` always hash equal,
  so ``1`` and ``1.0`` and ``-0.0``/``0.0`` encode identically;
* **stable** — the same description hashes the same across process
  restarts, interpreters, and ``PYTHONHASHSEED`` values, so the walk is
  an ordered field traversal with explicit type tags and length
  prefixes, never ``repr`` or pickle (both leak incidental state);
* **sensitive** — any single-field change, however nested (a fault
  spec's transition probability, a retry policy's factor), lands in the
  digest because every field contributes its name and its value;
* **versioned** — :data:`SCHEMA_VERSION` salts the digest, so a schema
  change invalidates every old key cleanly instead of serving blobs
  computed under different semantics.

Fields that cannot change results are excluded: ``StudyConfig.workers``
only picks the execution strategy, and the parallel bit-identity suite
pins that datasets do not depend on it — so a sweep re-run with a
different worker count is a pure cache hit.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import math
import struct
from typing import Iterator

#: Bump on any change to the encoding below or to the meaning of cell
#: execution (new pickled blob layout, new cell semantics): old keys
#: must stop matching rather than resurrect stale results.
SCHEMA_VERSION = 1

#: The digest salt; includes the schema version.
_SALT = f"repro.campaign/v{SCHEMA_VERSION}\x00".encode("ascii")

#: (dataclass name, field name) pairs left out of the digest because
#: they cannot affect results — only how they are computed.
EXECUTION_ONLY_FIELDS = frozenset({("StudyConfig", "workers")})


class UnhashableValueError(TypeError):
    """A value the canonical encoding refuses (NaN, unknown types)."""


def _encode_number(value: float) -> bytes:
    """One encoding per *numeric value*: ``True == 1 == 1.0`` must agree.

    Dataclass ``==`` compares fields with ``==``, so configs differing
    only in numeric *type* (or in ``0.0`` vs ``-0.0``) are equal and
    must share a key.  Integral values normalize to decimal; the rest
    keep their exact IEEE bits (big-endian, process-independent).
    """
    if isinstance(value, float):
        if math.isnan(value):
            raise UnhashableValueError(
                "NaN has no canonical identity (NaN != NaN); a config "
                "holding NaN cannot be memoized"
            )
        if math.isinf(value):
            return b"f+inf" if value > 0 else b"f-inf"
        if value == int(value):
            return b"n%d" % int(value)
        return b"f" + struct.pack(">d", value)
    return b"n%d" % int(value)


def _iter_encoded(value: object) -> Iterator[bytes]:
    """Yield the type-tagged canonical byte stream for ``value``."""
    if value is None:
        yield b"N;"
    elif isinstance(value, (bool, int, float)):
        yield _encode_number(value)
        yield b";"
    elif isinstance(value, str):
        data = value.encode("utf-8")
        yield b"s%d:" % len(data)
        yield data
    elif isinstance(value, bytes):
        yield b"y%d:" % len(value)
        yield value
    elif isinstance(value, enum.Enum):
        yield b"E"
        yield type(value).__name__.encode("utf-8")
        yield b":"
        yield from _iter_encoded(value.value)
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        name = type(value).__name__
        yield b"D"
        yield name.encode("utf-8")
        yield b"{"
        for field in dataclasses.fields(value):
            if (name, field.name) in EXECUTION_ONLY_FIELDS:
                continue
            yield field.name.encode("utf-8")
            yield b"="
            yield from _iter_encoded(getattr(value, field.name))
        yield b"}"
    elif isinstance(value, (list, tuple)):
        # One tag for both: a config built with a list where the default
        # is a tuple is the same study, and the distinction is exactly
        # the kind of incidental state a canonical key must shed.
        yield b"["
        for item in value:
            yield from _iter_encoded(item)
        yield b"]"
    elif isinstance(value, dict):
        yield b"{"
        entries = sorted(
            (canonical_bytes(key), canonical_bytes(item))
            for key, item in value.items()
        )
        for encoded_key, encoded_item in entries:
            yield encoded_key
            yield b":"
            yield encoded_item
        yield b"}"
    elif isinstance(value, (set, frozenset)):
        yield b"("
        for item in sorted(canonical_bytes(member) for member in value):
            yield item
        yield b")"
    else:
        raise UnhashableValueError(
            f"no canonical encoding for {type(value).__name__}; extend "
            f"repro.campaign.hashing (and bump SCHEMA_VERSION) deliberately"
        )


def canonical_bytes(value: object) -> bytes:
    """The canonical byte encoding of ``value`` (unsalted)."""
    return b"".join(_iter_encoded(value))


def content_hash(value: object) -> str:
    """Salted SHA-256 hex digest of the canonical encoding."""
    digest = hashlib.sha256()
    digest.update(_SALT)
    digest.update(canonical_bytes(value))
    return digest.hexdigest()


def blob_hash(data: bytes) -> str:
    """Content address of a result blob (unsalted: the address *is* the
    bytes, so recomputing a cell reproduces the same address)."""
    return hashlib.sha256(data).hexdigest()
