"""The campaign runner: plan, skip, execute, checkpoint, resume.

A campaign run is a fixpoint computation over the store:

1. **Plan** the cell grid from the spec (pure; see
   :func:`~repro.campaign.spec.plan_cells`).
2. **Survey** the journal: every planned cell whose journaled blob
   exists *and re-hashes to its address* is memoized; a missing or
   corrupt blob demotes the cell back to pending (and is reported —
   never silently served).
3. **Execute** the pending cells — inline when ``workers <= 1``,
   otherwise whole cells fan out over
   :func:`repro.core.parallel.run_tasks` — journaling each completed
   cell (blob first, then the record: the journal may under-promise,
   never over-promise) plus a running checkpoint record.
4. **Finalize**: decode every planned blob in plan order and write the
   merged artifacts — ``dataset.pkl`` (the campaign dataset),
   ``metrics.prom`` / ``metrics.json`` (cell registries folded in plan
   order).  Because inputs and fold order are identical whether a cell
   was computed now, in a previous crashed run, or served from cache,
   the artifact bytes equal a cold serial run's — the property the
   kill/resume suite enforces.

Progress is surfaced Prometheus-style: ``progress.prom`` in the
campaign directory is atomically rewritten after every completed cell
(a textfile-collector/``watch cat`` friendly dump rendered by the same
exporter as ``--metrics``).
"""

from __future__ import annotations

import pickle
from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.campaign.cells import (
    BLOB_PICKLE_PROTOCOL,
    CellResult,
    decode_result,
    execute_cell,
)
from repro.campaign.spec import CampaignSpec, CellSpec, cell_key, plan_cells
from repro.campaign.store import (
    RECORD_CELL,
    RECORD_CHECKPOINT,
    RECORD_CORRUPT,
    CampaignStore,
    CorruptBlobError,
    JournalScan,
)
from repro.obs import MetricsRegistry
from repro.obs.export import render_metrics

SPEC_NAME = "campaign.json"
DATASET_NAME = "dataset.pkl"
METRICS_PROM_NAME = "metrics.prom"
METRICS_JSON_NAME = "metrics.json"
PROGRESS_NAME = "progress.prom"

MEMOIZED = "memoized"
PENDING = "pending"
CORRUPT = "corrupt"
DONE = "done"


@dataclass
class CampaignStatus:
    """A read-only survey of a campaign directory against a spec."""

    planned: int = 0
    memoized: int = 0
    pending: int = 0
    #: Journaled cells not in the current plan (older specs); their
    #: blobs stay live — memoization across spec edits is the point.
    extra_journal: int = 0
    journal_damaged: int = 0
    journal_torn: bool = False
    #: (label, key, state) per planned cell, in plan order.
    cells: List[Tuple[str, str, str]] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return self.planned > 0 and self.memoized == self.planned


@dataclass
class CampaignSummary:
    """What one :meth:`CampaignRunner.run` call did."""

    planned: int = 0
    memoized: int = 0
    executed: int = 0
    corrupt_recomputed: int = 0
    journal_damaged: int = 0
    journal_torn: bool = False
    artifacts: Dict[str, str] = field(default_factory=dict)


class CampaignRunner:
    """Drives one campaign directory to completion (resumably)."""

    def __init__(
        self,
        store: CampaignStore,
        spec: CampaignSpec,
        workers: int = 1,
    ) -> None:
        self.store = store
        self.spec = spec
        self.workers = workers
        self._planned: List[Tuple[str, CellSpec]] = []
        self._completed_keys: List[str] = []

    # ------------------------------------------------------------------ plan

    def plan(self) -> List[Tuple[str, CellSpec]]:
        """The ordered (key, cell) grid; cached per runner."""
        if not self._planned:
            cells = plan_cells(self.spec)
            self._planned = [(cell_key(cell), cell) for cell in cells]
            if len({key for key, _ in self._planned}) != len(self._planned):
                raise ValueError("campaign plan contains duplicate cells")
        return self._planned

    def _survey(
        self, scan: JournalScan, verify_blobs: bool
    ) -> Tuple[Dict[str, str], List[str]]:
        """(valid completed key -> blob, corrupt keys) for planned cells."""
        journaled = self.store.completed_cells(scan)
        valid: Dict[str, str] = {}
        corrupt: List[str] = []
        for key, _cell in self.plan():
            address = journaled.get(key)
            if address is None:
                continue
            if verify_blobs:
                try:
                    self.store.read_blob(address)
                except (CorruptBlobError, FileNotFoundError):
                    corrupt.append(key)
                    continue
            elif not self.store.has_blob(address):
                corrupt.append(key)
                continue
            valid[key] = address
        return valid, corrupt

    def status(self) -> CampaignStatus:
        """Survey without locking (safe beside a live runner: reads only)."""
        scan = self.store.scan_journal()
        valid, corrupt = self._survey(scan, verify_blobs=False)
        journaled = self.store.completed_cells(scan)
        planned_keys = {key for key, _ in self.plan()}
        status = CampaignStatus(
            planned=len(self.plan()),
            memoized=len(valid),
            pending=len(self.plan()) - len(valid),
            extra_journal=len(set(journaled) - planned_keys),
            journal_damaged=scan.damaged,
            journal_torn=scan.torn_tail,
        )
        for key, cell in self.plan():
            if key in valid:
                state = MEMOIZED
            elif key in corrupt:
                state = CORRUPT
            else:
                state = PENDING
            status.cells.append((cell.label(), key, state))
        return status

    # ------------------------------------------------------------------- run

    def run(self) -> CampaignSummary:
        """Execute the campaign to completion (or resume it there)."""
        summary = CampaignSummary(planned=len(self.plan()))
        self.store.acquire_lock()
        try:
            self.store.write_artifact(SPEC_NAME, self.spec.to_json().encode("utf-8"))
            scan = self.store.open_journal()
            summary.journal_damaged = scan.damaged
            summary.journal_torn = scan.torn_tail
            valid, corrupt = self._survey(scan, verify_blobs=True)
            for key in corrupt:
                self.store.append_record({
                    "kind": RECORD_CORRUPT,
                    "key": key,
                })
            summary.memoized = len(valid)
            summary.corrupt_recomputed = len(corrupt)
            self._completed_keys = [
                key for key, _ in self.plan() if key in valid
            ]
            pending = [
                (key, cell) for key, cell in self.plan() if key not in valid
            ]
            self._write_progress(summary)

            if pending:
                if self.workers > 1 and len(pending) > 1:
                    from repro.core.parallel import run_tasks

                    run_tasks(
                        execute_cell,
                        pending,
                        workers=self.workers,
                        on_result=lambda index, blob: self._commit_cell(
                            pending[index][0], pending[index][1], blob, summary
                        ),
                    )
                else:
                    for key, cell in pending:
                        blob = execute_cell((key, cell))
                        self._commit_cell(key, cell, blob, summary)

            summary.artifacts = self._finalize()
            self.store.append_record({
                "kind": RECORD_CHECKPOINT,
                "completed": len(self._completed_keys),
                "planned": summary.planned,
                "final": True,
            })
            self._write_progress(summary, complete=True)
        finally:
            self.store.close()
        return summary

    def _commit_cell(
        self,
        key: str,
        cell: CellSpec,
        blob: bytes,
        summary: CampaignSummary,
    ) -> None:
        """Blob first, then the journal record, then the checkpoint —
        a crash between any two steps loses at most recomputable work."""
        address = self.store.put_blob(blob)
        self.store.append_record({
            "kind": RECORD_CELL,
            "key": key,
            "blob": address,
            "label": cell.label(),
        })
        self._completed_keys.append(key)
        summary.executed += 1
        self.store.append_record({
            "kind": RECORD_CHECKPOINT,
            "completed": len(self._completed_keys),
            "planned": summary.planned,
        })
        self._write_progress(summary)

    # -------------------------------------------------------------- finalize

    def _finalize(self) -> Dict[str, str]:
        """Decode every planned blob in plan order; write merged artifacts."""
        completed = self.store.completed_cells()
        merged = MetricsRegistry()
        cells_out: List[dict] = []
        for key, cell in self.plan():
            result: CellResult = decode_result(
                self.store.read_blob(completed[key])
            )
            cells_out.append({
                "key": key,
                "label": cell.label(),
                "seed": cell.seed,
                "kind": cell.kind,
                "bandwidth_limit_mbps": cell.bandwidth_limit_mbps,
                "viewers": cell.viewers,
                "dataset": result.dataset,
                "totals": result.totals,
            })
            merged.merge_from(result.snapshots["metrics"])
        dataset_payload = {
            "schema_version": 1,
            "kind": self.spec.kind,
            "cells": cells_out,
        }
        artifacts = {
            "dataset": self.store.write_artifact(
                DATASET_NAME,
                pickle.dumps(dataset_payload, protocol=BLOB_PICKLE_PROTOCOL),
            ),
            "metrics_prom": self.store.write_artifact(
                METRICS_PROM_NAME, render_metrics(merged).encode("utf-8")
            ),
            "metrics_json": self.store.write_artifact(
                METRICS_JSON_NAME, _snapshot_json(merged)
            ),
        }
        return artifacts

    # -------------------------------------------------------------- progress

    def _write_progress(
        self, summary: CampaignSummary, complete: bool = False
    ) -> None:
        """Atomically rewrite ``progress.prom`` (the --serve-style dump)."""
        registry = MetricsRegistry()
        registry.gauge(
            "campaign_cells_planned", "Cells in the current plan"
        ).set(float(summary.planned))
        registry.gauge(
            "campaign_cells_completed",
            "Planned cells with a valid journaled blob",
        ).set(float(len(self._completed_keys)))
        registry.gauge(
            "campaign_cells_memoized",
            "Planned cells served from the store this run",
        ).set(float(summary.memoized))
        registry.counter(
            "campaign_cells_executed_total", "Cells computed this run"
        ).inc(summary.executed)
        registry.counter(
            "campaign_corrupt_blobs_total",
            "Journaled blobs that failed verification and were recomputed",
        ).inc(summary.corrupt_recomputed)
        registry.counter(
            "campaign_journal_damaged_records_total",
            "Journal records dropped at reopen (bad frame mid-file)",
        ).inc(summary.journal_damaged)
        registry.gauge(
            "campaign_journal_torn_tail",
            "1 when reopening found (and truncated) a torn final record",
        ).set(1.0 if summary.journal_torn else 0.0)
        registry.gauge(
            "campaign_complete", "1 once every planned cell is journaled"
        ).set(1.0 if complete else 0.0)
        self.store.write_artifact(
            PROGRESS_NAME, render_metrics(registry).encode("utf-8")
        )


def _snapshot_json(registry: MetricsRegistry) -> bytes:
    import json

    return (json.dumps(registry.snapshot(), sort_keys=True) + "\n").encode("utf-8")
