"""The on-disk campaign store: blobs, journal, lock.

Crash-safety model — every write is one of:

* **Blob** (``objects/<aa>/<rest>``): content-addressed by SHA-256 of
  the bytes.  Written to a temp file in the same directory, flushed,
  fsync'd, then atomically renamed into place (and the directory
  fsync'd), so a reader either sees the complete blob under its final
  name or nothing.  A crash can only leave a ``*.tmp`` orphan, which
  :meth:`CampaignStore.gc` sweeps.
* **Journal record** (``journal.jsonl``): one CRC-framed JSON line,
  appended and fsync'd.  The journal is the checkpoint: a cell exists
  iff a valid record points at its blob.  A torn final line (the
  classic power-cut tail) is detected by the CRC/framing check,
  reported, and truncated away on reopen; records never reference a
  blob before the blob rename completed, so replaying the journal can
  only under-count finished work — the memoization layer recomputes the
  difference and, being deterministic, reproduces the identical bytes.
* **Named artifact** (``campaign.json``, ``dataset.pkl``, ...): full
  temp-write + rename, same as blobs.

Blob reads re-hash the bytes: a corrupted object (bit rot, truncation)
raises :class:`CorruptBlobError` instead of ever serving bad bytes, and
the runner treats the cell as missing.

One campaign directory admits one runner at a time: ``lock`` is held
with a non-blocking ``flock`` for the whole run, so a concurrent (or
"concurrent-ish", half-dead) second runner fails fast with
:class:`StoreLockedError` instead of interleaving journal appends.
"""

from __future__ import annotations

import errno
import fcntl
import json
import os
import zlib
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.campaign.hashing import blob_hash

JOURNAL_NAME = "journal.jsonl"
LOCK_NAME = "lock"
OBJECTS_DIR = "objects"

#: Journal record kinds.
RECORD_CELL = "cell"
RECORD_CHECKPOINT = "checkpoint"
RECORD_CORRUPT = "corrupt-blob"


class StoreError(RuntimeError):
    """Base class for campaign-store failures."""


class StoreLockedError(StoreError):
    """Another runner holds this campaign directory."""


class CorruptBlobError(StoreError):
    """A blob's bytes no longer match its content address."""

    def __init__(self, address: str, actual: str) -> None:
        super().__init__(
            f"blob {address} is corrupt (bytes hash to {actual}); "
            f"refusing to serve it — the cell will be recomputed"
        )
        self.address = address
        self.actual = actual


@dataclass
class JournalScan:
    """What reopening the journal found."""

    records: List[dict] = field(default_factory=list)
    #: Whole valid lines whose CRC or JSON did not check out (disk
    #: damage mid-file).  Their cells silently recompute.
    damaged: int = 0
    #: The final line was torn (no newline, bad frame): the append was
    #: interrupted.  Reopening truncates it away.
    torn_tail: bool = False


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _frame(record: dict) -> bytes:
    payload = json.dumps(record, sort_keys=True, separators=(",", ":"))
    data = payload.encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(data) & 0xFFFFFFFF, data)


def _parse_line(line: bytes) -> Optional[dict]:
    """A record, or None when the frame does not check out."""
    if len(line) < 10 or line[8:9] != b" ":
        return None
    try:
        expected = int(line[:8], 16)
    except ValueError:
        return None
    data = line[9:]
    if zlib.crc32(data) & 0xFFFFFFFF != expected:
        return None
    try:
        record = json.loads(data.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


class CampaignStore:
    """One campaign directory.  See the module docstring for the model."""

    def __init__(self, path: str) -> None:
        self.path = os.path.abspath(path)
        os.makedirs(os.path.join(self.path, OBJECTS_DIR), exist_ok=True)
        self._lock_fd: Optional[int] = None
        self._journal_fd: Optional[int] = None
        #: Test/ops hook: called after every fsync'd journal append with
        #: the record; the kill/resume harness SIGKILLs from here.
        self.post_append: Optional[Callable[[dict], None]] = None

    # ------------------------------------------------------------------ lock

    def acquire_lock(self) -> None:
        """Take the exclusive campaign lock or raise :class:`StoreLockedError`."""
        if self._lock_fd is not None:
            return
        fd = os.open(os.path.join(self.path, LOCK_NAME),
                     os.O_CREAT | os.O_RDWR, 0o644)
        try:
            fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError as error:
            os.close(fd)
            if error.errno in (errno.EAGAIN, errno.EACCES):
                raise StoreLockedError(
                    f"campaign directory {self.path} is locked by another "
                    f"runner; refusing a double-run"
                ) from error
            raise
        self._lock_fd = fd

    def release_lock(self) -> None:
        if self._lock_fd is not None:
            fcntl.flock(self._lock_fd, fcntl.LOCK_UN)
            os.close(self._lock_fd)
            self._lock_fd = None

    def __enter__(self) -> "CampaignStore":
        self.acquire_lock()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def close(self) -> None:
        if self._journal_fd is not None:
            os.close(self._journal_fd)
            self._journal_fd = None
        self.release_lock()

    # ----------------------------------------------------------------- blobs

    def _blob_path(self, address: str) -> str:
        return os.path.join(self.path, OBJECTS_DIR, address[:2], address[2:])

    def put_blob(self, data: bytes) -> str:
        """Write ``data`` under its content address; atomic and idempotent."""
        address = blob_hash(data)
        final = self._blob_path(address)
        if os.path.exists(final):
            # Content-addressed: same bytes should already be there — but
            # verify, so recomputing a cell whose blob rotted on disk
            # heals the object instead of leaving the corrupt bytes in
            # place under a now-valid journal record.
            with open(final, "rb") as existing:
                if blob_hash(existing.read()) == address:
                    return address
        os.makedirs(os.path.dirname(final), exist_ok=True)
        tmp = final + ".tmp"
        fd = os.open(tmp, os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, final)
        _fsync_dir(os.path.dirname(final))
        return address

    def read_blob(self, address: str) -> bytes:
        """The blob's bytes, verified against its address."""
        with open(self._blob_path(address), "rb") as source:
            data = source.read()
        actual = blob_hash(data)
        if actual != address:
            raise CorruptBlobError(address, actual)
        return data

    def has_blob(self, address: str) -> bool:
        return os.path.exists(self._blob_path(address))

    def blob_addresses(self) -> List[str]:
        """Every blob currently on disk (valid names only)."""
        addresses: List[str] = []
        root = os.path.join(self.path, OBJECTS_DIR)
        for shard in sorted(os.listdir(root)):
            shard_dir = os.path.join(root, shard)
            if len(shard) != 2 or not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                if not name.endswith(".tmp"):
                    addresses.append(shard + name)
        return addresses

    # --------------------------------------------------------------- journal

    @property
    def journal_path(self) -> str:
        return os.path.join(self.path, JOURNAL_NAME)

    def scan_journal(self) -> JournalScan:
        """Read the journal, tolerating a torn final record."""
        scan = JournalScan()
        if not os.path.exists(self.journal_path):
            return scan
        with open(self.journal_path, "rb") as source:
            raw = source.read()
        if not raw:
            return scan
        lines = raw.split(b"\n")
        tail = lines.pop()  # b"" when the file ends with a newline
        for line in lines:
            record = _parse_line(line)
            if record is None:
                scan.damaged += 1
            else:
                scan.records.append(record)
        if tail:
            # No trailing newline: the final append was interrupted.  A
            # complete frame that merely lost its newline is still good.
            record = _parse_line(tail)
            if record is not None:
                scan.records.append(record)
            else:
                scan.torn_tail = True
        return scan

    def open_journal(self) -> JournalScan:
        """Scan, then truncate away a torn tail so appends start clean.

        Requires the lock (truncation must never race another writer).
        """
        if self._lock_fd is None:
            raise StoreError("open_journal requires the campaign lock")
        scan = self.scan_journal()
        if scan.torn_tail or scan.damaged:
            # Rewrite only when something was wrong: valid records are
            # preserved byte-for-byte via re-framing identical payloads.
            tmp = self.journal_path + ".tmp"
            with open(tmp, "wb") as sink:
                for record in scan.records:
                    sink.write(_frame(record))
                sink.flush()
                os.fsync(sink.fileno())
            os.replace(tmp, self.journal_path)
            _fsync_dir(self.path)
        if self._journal_fd is not None:
            os.close(self._journal_fd)
        self._journal_fd = os.open(
            self.journal_path, os.O_CREAT | os.O_WRONLY | os.O_APPEND, 0o644
        )
        return scan

    def append_record(self, record: dict) -> None:
        """Append one fsync'd record; the journal must be open."""
        if self._journal_fd is None:
            raise StoreError("journal not open; call open_journal() first")
        os.write(self._journal_fd, _frame(record))
        os.fsync(self._journal_fd)
        if self.post_append is not None:
            self.post_append(record)

    def completed_cells(
        self, scan: Optional[JournalScan] = None
    ) -> Dict[str, str]:
        """Cell key -> blob address for every journaled cell (last wins)."""
        if scan is None:
            scan = self.scan_journal()
        completed: Dict[str, str] = {}
        for record in scan.records:
            if record.get("kind") == RECORD_CELL:
                completed[record["key"]] = record["blob"]
        return completed

    # ------------------------------------------------------------- artifacts

    def write_artifact(self, name: str, data: bytes) -> str:
        """Atomically (re)write a named file in the campaign directory."""
        final = os.path.join(self.path, name)
        tmp = final + ".tmp"
        fd = os.open(tmp, os.O_CREAT | os.O_WRONLY | os.O_TRUNC, 0o644)
        try:
            os.write(fd, data)
            os.fsync(fd)
        finally:
            os.close(fd)
        os.replace(tmp, final)
        _fsync_dir(self.path)
        return final

    def read_artifact(self, name: str) -> Optional[bytes]:
        try:
            with open(os.path.join(self.path, name), "rb") as source:
                return source.read()
        except FileNotFoundError:
            return None

    # ------------------------------------------------------------------- gc

    def gc(self) -> Tuple[int, int]:
        """Sweep temp orphans and unreferenced blobs.

        Every blob referenced by any valid journal record survives —
        the journal is the liveness root, so a cell checkpointed at any
        point in the campaign's history keeps its bytes.  Returns
        ``(blobs_removed, tmp_removed)``.
        """
        live = set(self.completed_cells().values())
        blobs_removed = 0
        tmp_removed = 0
        root = os.path.join(self.path, OBJECTS_DIR)
        for shard in sorted(os.listdir(root)):
            shard_dir = os.path.join(root, shard)
            if not os.path.isdir(shard_dir):
                continue
            for name in sorted(os.listdir(shard_dir)):
                full = os.path.join(shard_dir, name)
                if name.endswith(".tmp"):
                    os.unlink(full)
                    tmp_removed += 1
                elif shard + name not in live:
                    os.unlink(full)
                    blobs_removed += 1
        for name in sorted(os.listdir(self.path)):
            if name.endswith(".tmp"):
                os.unlink(os.path.join(self.path, name))
                tmp_removed += 1
        return blobs_removed, tmp_removed
