"""``repro-campaign`` — run, inspect, and garbage-collect campaigns.

::

    repro-campaign run    --campaign DIR [grid flags] [--workers N]
    repro-campaign status --campaign DIR
    repro-campaign gc     --campaign DIR

``run`` is resumable by construction: rerun the identical command after
a crash (or Ctrl-C) and journaled cells are skipped.  ``status`` never
locks the directory, so it is safe to point at a live run.  ``gc``
sweeps temp orphans and blobs no journal record references.

The ``--kill-after-appends N`` flag is the crash-test hook: the process
SIGKILLs itself immediately after the N-th fsync'd journal append —
a real, unhandled kill at a byte-exact journal offset, which is what
the kill/resume suite and the CI smoke job drive.
"""

from __future__ import annotations

import argparse
import os
import signal
import sys
from typing import List, Optional, Sequence

from repro.campaign.runner import (
    SPEC_NAME,
    CampaignRunner,
    CampaignStatus,
)
from repro.campaign.spec import POPULATION, SWEEP, CampaignSpec
from repro.campaign.store import CampaignStore, StoreLockedError
from repro.util.tables import render_table


def _int_list(text: str) -> List[int]:
    return [int(part) for part in text.split(",") if part.strip()]


def _float_list(text: str) -> List[float]:
    return [float(part) for part in text.split(",") if part.strip()]


def _add_grid_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--population", action="store_true",
                        help="population-world cells (one per seed at "
                             "--viewers) instead of bandwidth-sweep cells")
    parser.add_argument("--seeds", type=_int_list, default=[2016],
                        help="comma-separated study seeds (default: 2016)")
    parser.add_argument("--limits", type=_float_list,
                        default=[0.5, 2.0, 100.0],
                        help="comma-separated bandwidth limits in Mbps for "
                             "sweep cells (default: 0.5,2,100)")
    parser.add_argument("--sessions", type=int, default=4,
                        help="sessions per sweep cell (default: 4)")
    parser.add_argument("--viewers", type=int, default=100_000,
                        help="concurrent viewers per population cell")
    parser.add_argument("--sample-budget", type=int, default=16,
                        help="full-fidelity anchors per population cell")
    parser.add_argument("--watch", type=float, default=60.0,
                        help="per-session watch duration in seconds")
    parser.add_argument("--scale", type=float, default=0.05,
                        help="study scale factor (default: 0.05)")
    parser.add_argument("--faults", default="",
                        help="fault plan in the repro-faults grammar")
    parser.add_argument("--exact-net", action="store_true",
                        help="disable the netsim fast path")
    parser.add_argument("--explain", action="store_true",
                        help="capture cause attribution per cell")
    parser.add_argument("--health", action="store_true",
                        help="capture invariant monitors per cell")


def _spec_from_args(args: argparse.Namespace) -> CampaignSpec:
    return CampaignSpec(
        kind=POPULATION if args.population else SWEEP,
        seeds=tuple(args.seeds),
        limits_mbps=tuple(args.limits),
        sessions_per_cell=args.sessions,
        viewers=args.viewers,
        sample_budget=args.sample_budget,
        watch_seconds=args.watch,
        scale=args.scale,
        faults=args.faults,
        exact_network=args.exact_net,
        causes_enabled=args.explain,
        health_enabled=args.health,
    )


def _stored_spec(store: CampaignStore) -> Optional[CampaignSpec]:
    raw = store.read_artifact(SPEC_NAME)
    if raw is None:
        return None
    return CampaignSpec.from_json(raw.decode("utf-8"))


def _install_kill_hook(store: CampaignStore, after_appends: int) -> None:
    """SIGKILL this process after the N-th fsync'd journal append."""
    remaining = [after_appends]

    def _post_append(record: dict) -> None:
        remaining[0] -= 1
        if remaining[0] <= 0:
            os.kill(os.getpid(), signal.SIGKILL)

    store.post_append = _post_append


def _print_status(status: CampaignStatus) -> None:
    print(f"planned cells:   {status.planned}")
    print(f"completed:       {status.memoized}")
    print(f"pending:         {status.pending}")
    if status.extra_journal:
        print(f"extra journaled: {status.extra_journal} "
              f"(cells from other specs; blobs stay live)")
    if status.journal_damaged:
        print(f"damaged journal records: {status.journal_damaged}")
    if status.journal_torn:
        print("journal tail:    torn (will be truncated on next run)")
    print(f"complete:        {'yes' if status.complete else 'no'}")
    if status.cells:
        rows = [[label, state, key[:12]]
                for label, key, state in status.cells]
        print(render_table(["cell", "state", "key"], rows))


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-campaign",
        description="Crash-safe, memoized study campaigns.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    run_parser = subparsers.add_parser(
        "run", help="run (or resume) the campaign grid")
    run_parser.add_argument("--campaign", required=True, metavar="DIR",
                            help="campaign directory (created if missing)")
    _add_grid_flags(run_parser)
    run_parser.add_argument("--workers", type=int, default=1,
                            help="process-pool width across cells "
                                 "(default: 1, serial)")
    run_parser.add_argument("--kill-after-appends", type=int, default=None,
                            metavar="N",
                            help="crash-test hook: SIGKILL self after the "
                                 "N-th journal append")

    status_parser = subparsers.add_parser(
        "status", help="survey a campaign directory (read-only)")
    status_parser.add_argument("--campaign", required=True, metavar="DIR")
    _add_grid_flags(status_parser)

    gc_parser = subparsers.add_parser(
        "gc", help="sweep temp orphans and unreferenced blobs")
    gc_parser.add_argument("--campaign", required=True, metavar="DIR")

    args = parser.parse_args(argv)
    store = CampaignStore(args.campaign)

    if args.command == "gc":
        try:
            with store:
                blobs, tmps = store.gc()
        except StoreLockedError as error:
            print(error, file=sys.stderr)
            return 2
        print(f"removed {blobs} unreferenced blob(s), {tmps} temp orphan(s)")
        return 0

    if args.command == "status":
        # Prefer the spec the directory was last run with; fall back to
        # the grid flags for a never-run directory.
        spec = _stored_spec(store) or _spec_from_args(args)
        _print_status(CampaignRunner(store, spec).status())
        return 0

    # run
    spec = _spec_from_args(args)
    if args.kill_after_appends is not None:
        _install_kill_hook(store, args.kill_after_appends)
    runner = CampaignRunner(store, spec, workers=args.workers)
    try:
        summary = runner.run()
    except StoreLockedError as error:
        print(error, file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        print("\ninterrupted — journaled cells are checkpointed; rerun the "
              "same command to resume", file=sys.stderr)
        return 130
    print(f"campaign complete: {summary.planned} cell(s) "
          f"({summary.memoized} memoized, {summary.executed} executed, "
          f"{summary.corrupt_recomputed} recomputed after corruption)")
    if summary.journal_torn:
        print("note: a torn journal tail was truncated on resume")
    for name in sorted(summary.artifacts):
        print(f"  {name}: {summary.artifacts[name]}")
    return 0


if __name__ == "__main__":
    try:
        sys.exit(main())
    except BrokenPipeError:  # stdout piped into head/grep and closed early
        sys.exit(0)
