"""Crash-safe study campaigns: checkpoint/resume with content-addressed
memoization.

A campaign decomposes a study sweep into hermetic ``(seed,
config-cell)`` units, keys each by a canonical hash of its fully
resolved description (:mod:`~repro.campaign.hashing`), and runs the
grid against an on-disk store (:mod:`~repro.campaign.store`) whose
journal doubles as the checkpoint.  Kill the runner at any instant —
power cut, SIGKILL, Ctrl-C — and rerunning the same command resumes
where the journal left off, recomputing only unjournaled cells; because
cells are deterministic, the final artifacts are byte-identical to a
cold uninterrupted run (the kill/resume suite enforces this).

Layering: ``campaign`` sits above ``core`` and ``world`` in the lint
DAG and is deliberately **not** a hermetic package — its store is the
sanctioned filesystem surface (see D105 in
:mod:`repro.lint.rules_determinism`).  Simulation code never touches
disk; campaign code never touches simulation state except through
:func:`~repro.campaign.cells.execute_cell`.

CLI: ``repro-campaign run|status|gc --campaign DIR``
(:mod:`repro.campaign.__main__`).
"""

from repro.campaign.hashing import (
    SCHEMA_VERSION,
    UnhashableValueError,
    blob_hash,
    canonical_bytes,
    content_hash,
)
from repro.campaign.runner import (
    CampaignRunner,
    CampaignStatus,
    CampaignSummary,
)
from repro.campaign.spec import (
    POPULATION,
    SWEEP,
    CampaignSpec,
    CellSpec,
    cell_key,
    plan_cells,
    plan_keys,
    resolve_config,
)
from repro.campaign.store import (
    CampaignStore,
    CorruptBlobError,
    JournalScan,
    StoreError,
    StoreLockedError,
)

__all__ = [
    "SCHEMA_VERSION", "UnhashableValueError", "blob_hash",
    "canonical_bytes", "content_hash",
    "CampaignRunner", "CampaignStatus", "CampaignSummary",
    "POPULATION", "SWEEP", "CampaignSpec", "CellSpec", "cell_key",
    "plan_cells", "plan_keys", "resolve_config",
    "CampaignStore", "CorruptBlobError", "JournalScan",
    "StoreError", "StoreLockedError",
]
