"""Cell execution: the hermetic unit a campaign memoizes.

:func:`execute_cell` is a module-level callable — pickled *by
reference* into :func:`repro.core.parallel.run_tasks` workers — that
turns one :class:`~repro.campaign.spec.CellSpec` into the canonical
result blob.  The blob is the pickle (pinned protocol, see
:data:`BLOB_PICKLE_PROTOCOL`) of a :class:`CellResult`: the dataset
plus the cell's private telemetry snapshots.

Determinism contract: the blob bytes are a pure function of the cell
description.  The executor builds a fresh study world from the cell's
config, runs it with ``workers=1`` (campaign parallelism is *across*
cells), and captures telemetry in a scoped registry — so executing the
same cell inline, in a pool worker, or in a different process after a
crash produces byte-identical blobs, which is exactly what makes
content-addressed memoization sound.
"""

from __future__ import annotations

import dataclasses
import pickle
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro import obs
from repro.campaign.spec import POPULATION, SWEEP, CellSpec
from repro.core.popstudy import run_population_cell
from repro.core.study import AutomatedViewingStudy, StudyDataset

#: Pinned so blob bytes do not depend on the interpreter's default
#: protocol (which moved 4 -> 5 across supported Python versions).
BLOB_PICKLE_PROTOCOL = 4


@dataclass
class CellResult:
    """What one cell computed; the unit stored under the cell's key."""

    key: str
    label: str
    dataset: StudyDataset
    #: Population cells also ship the cohort aggregate totals
    #: (protocol value -> CohortAggregate).
    totals: Optional[dict] = None
    #: Surface name ("metrics"/"causes"/"health") -> snapshot dict.
    snapshots: Dict[str, dict] = field(default_factory=dict)


def encode_result(result: CellResult) -> bytes:
    return pickle.dumps(result, protocol=BLOB_PICKLE_PROTOCOL)


def decode_result(data: bytes) -> CellResult:
    return pickle.loads(data)


def execute_cell(item) -> bytes:
    """Run one ``(key, cell)`` pair and return its canonical blob bytes."""
    key, cell = item
    config = dataclasses.replace(cell.config, workers=1)
    previous = obs.active()
    telemetry = obs.activate(obs.Telemetry(
        metrics=True,
        tracing=False,
        profiling=False,
        causes=config.causes_enabled,
        health=config.health_enabled,
    ))
    try:
        totals: Optional[dict] = None
        if cell.kind == SWEEP:
            study = AutomatedViewingStudy(config)
            dataset = study.run_batch(
                cell.n_sessions,
                bandwidth_limit_mbps=cell.bandwidth_limit_mbps,
            )
        elif cell.kind == POPULATION:
            population = run_population_cell(
                config, viewers=cell.viewers, sample_budget=cell.sample_budget
            )
            dataset = population.sampled
            totals = dict(sorted(population.totals.items()))
        else:
            raise ValueError(f"unknown cell kind {cell.kind!r}")
        snapshots: Dict[str, dict] = {"metrics": telemetry.metrics.snapshot()}
        if config.causes_enabled:
            snapshots["causes"] = telemetry.causes.snapshot()
        if config.health_enabled:
            snapshots["health"] = telemetry.health.snapshot()
    finally:
        obs.activate(previous) if previous.enabled else obs.deactivate()
    return encode_result(CellResult(
        key=key,
        label=cell.label(),
        dataset=dataset,
        totals=totals,
        snapshots=snapshots,
    ))
