"""Campaign descriptions: what to run, decomposed into memoizable cells.

A :class:`CampaignSpec` is the user-facing description — primitives
only, so it round-trips through ``campaign.json`` — and
:func:`plan_cells` resolves it into the ordered grid of
:class:`CellSpec` units the runner executes.  A cell is the memoization
quantum: one ``(seed, config-cell)`` pair whose fully-resolved
description hashes to its store key (:func:`cell_key`), and whose
execution is hermetic — a fresh study world, sessions derived from the
cell's own seed tree, no state shared with other cells.

Two cell kinds:

* ``"sweep"`` — one :meth:`~repro.core.study.AutomatedViewingStudy.run_batch`
  at one bandwidth limit (the paper's tc-sweep shape);
* ``"population"`` — one :class:`~repro.core.popstudy.PopulationStudy`
  world advance (the PR-9 mesoscale layer) at a viewer count.
"""

from __future__ import annotations

import dataclasses
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.campaign.hashing import SCHEMA_VERSION, content_hash
from repro.core.config import StudyConfig
from repro.faults.plan import FaultPlan

SWEEP = "sweep"
POPULATION = "population"
_KINDS = (SWEEP, POPULATION)


@dataclass(frozen=True)
class CampaignSpec:
    """The primitive-typed campaign description stored in ``campaign.json``.

    ``faults`` stays in its CLI grammar (see :meth:`FaultPlan.parse`)
    rather than as a nested object so the JSON round-trip is trivial;
    it is resolved once, in :func:`plan_cells`.
    """

    kind: str = SWEEP
    seeds: Tuple[int, ...] = (2016,)
    #: Sweep cells: one per (seed, limit).
    limits_mbps: Tuple[float, ...] = (0.5, 2.0, 100.0)
    sessions_per_cell: int = 4
    #: Population cells: one per seed at this viewer count.
    viewers: int = 100_000
    sample_budget: int = 16
    #: Resolved into every cell's StudyConfig.
    watch_seconds: float = 60.0
    scale: float = 0.05
    faults: str = ""
    exact_network: bool = False
    causes_enabled: bool = False
    health_enabled: bool = False

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ValueError(f"unknown campaign kind {self.kind!r}")
        if not self.seeds:
            raise ValueError("a campaign needs at least one seed")
        if self.kind == SWEEP and not self.limits_mbps:
            raise ValueError("a sweep campaign needs at least one limit")
        if self.sessions_per_cell < 1:
            raise ValueError("sessions_per_cell must be positive")

    # ------------------------------------------------------------- round trip

    def to_json(self) -> str:
        payload = dataclasses.asdict(self)
        payload["seeds"] = list(self.seeds)
        payload["limits_mbps"] = list(self.limits_mbps)
        payload["schema_version"] = SCHEMA_VERSION
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        payload = json.loads(text)
        payload.pop("schema_version", None)
        payload["seeds"] = tuple(payload.get("seeds", ()))
        payload["limits_mbps"] = tuple(payload.get("limits_mbps", ()))
        return cls(**payload)


@dataclass(frozen=True)
class CellSpec:
    """One fully-resolved memoization unit.

    Everything that determines the result is *in here* (the config
    carries the cell's seed and fault plan), so
    :func:`~repro.campaign.hashing.content_hash` over this dataclass is
    the complete story of the bytes the cell will produce —
    ``config.workers`` excepted, which the hash skips and the executor
    normalizes to 1 anyway.
    """

    kind: str
    config: StudyConfig
    #: Sweep cells.
    n_sessions: int = 0
    bandwidth_limit_mbps: float = 100.0
    #: Population cells.
    viewers: int = 0
    sample_budget: int = 0

    @property
    def seed(self) -> int:
        return self.config.seed

    def label(self) -> str:
        """Stable human-readable cell name for journals and status."""
        if self.kind == SWEEP:
            return f"seed={self.seed} limit={self.bandwidth_limit_mbps:g}"
        return f"seed={self.seed} viewers={self.viewers}"


def cell_key(cell: CellSpec) -> str:
    """The content-addressed store key of one cell."""
    return content_hash(cell)


def resolve_config(spec: CampaignSpec, seed: int) -> StudyConfig:
    """The fully-resolved per-cell study config.

    Telemetry capture is the campaign runner's job (it snapshots every
    cell's registry itself), so ``metrics_enabled`` stays off here and
    the cause/health surfaces follow the spec.  ``workers`` is pinned to
    1: cells parallelize across the campaign pool, never inside.
    """
    faults: Optional[FaultPlan] = None
    if spec.faults:
        faults = FaultPlan.parse(spec.faults)
        if faults.empty:
            faults = None
    return StudyConfig(
        seed=seed,
        scale=spec.scale,
        workers=1,
        watch_seconds=spec.watch_seconds,
        faults=faults,
        exact_network=spec.exact_network,
        causes_enabled=spec.causes_enabled,
        health_enabled=spec.health_enabled,
    )


def plan_cells(spec: CampaignSpec) -> List[CellSpec]:
    """The ordered cell grid: seed-major, limit-minor.

    The order is part of the campaign's semantics — final artifacts
    merge cell results in plan order, so the plan must be a pure
    function of the spec.
    """
    cells: List[CellSpec] = []
    for seed in spec.seeds:
        config = resolve_config(spec, seed)
        if spec.kind == SWEEP:
            for limit in spec.limits_mbps:
                cells.append(CellSpec(
                    kind=SWEEP,
                    config=config,
                    n_sessions=spec.sessions_per_cell,
                    bandwidth_limit_mbps=limit,
                ))
        else:
            cells.append(CellSpec(
                kind=POPULATION,
                config=config,
                viewers=spec.viewers,
                sample_budget=spec.sample_budget,
            ))
    return cells


def plan_keys(spec: CampaignSpec) -> Dict[str, CellSpec]:
    """Key -> cell for the whole plan (keys are unique: the seed and the
    cell parameters are all inside the hashed description)."""
    plan = plan_cells(spec)
    keyed = {cell_key(cell): cell for cell in plan}
    if len(keyed) != len(plan):
        raise ValueError("campaign plan contains duplicate cells")
    return keyed
