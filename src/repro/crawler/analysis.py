"""Usage-pattern analytics over crawled broadcasts (Fig. 2 and §4 text).

Takes the :class:`~repro.crawler.targeted.TrackedBroadcast` records of a
targeted crawl — or several concatenated crawls — and computes the
published aggregates: the duration and viewer CDFs, the zero-viewer
population and its properties, and the viewers-by-local-hour series.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crawler.targeted import TrackedBroadcast
from repro.util.empirical import Ecdf


@dataclass
class UsagePatterns:
    """The Section 4 aggregates."""

    n_broadcasts: int
    n_with_viewer_info: int
    duration_cdf: Ecdf
    viewers_cdf: Ecdf
    zero_viewer_fraction: float
    zero_viewer_avg_duration_s: float
    viewed_avg_duration_s: float
    zero_viewer_no_replay_fraction: float
    zero_viewer_time_share: float
    #: hour -> mean of per-broadcast average viewers started that hour.
    viewers_by_local_hour: Dict[int, float]

    def summary_rows(self) -> List[Tuple[str, float]]:
        """Key numbers in paper order, for bench output."""
        return [
            ("broadcasts tracked", float(self.n_broadcasts)),
            ("with viewer info", float(self.n_with_viewer_info)),
            ("median duration (min)", self.duration_cdf.quantile(0.5) / 60.0),
            ("share shorter than 4 min", self.duration_cdf(240.0)),
            ("share of viewers < 20", self.viewers_cdf(20.0)),
            ("zero-viewer fraction", self.zero_viewer_fraction),
            ("zero-viewer avg duration (min)", self.zero_viewer_avg_duration_s / 60.0),
            ("viewed avg duration (min)", self.viewed_avg_duration_s / 60.0),
            ("zero-viewer no-replay share", self.zero_viewer_no_replay_fraction),
            ("zero-viewer time share", self.zero_viewer_time_share),
        ]


def _local_hour(tracked: TrackedBroadcast, utc_offsets: Optional[Dict[str, int]]) -> Optional[int]:
    if tracked.start_time is None:
        return None
    offset = 0
    if utc_offsets is not None:
        offset = utc_offsets.get(tracked.broadcast_id, 0)
    return int(((tracked.start_time / 3600.0) + offset) % 24)


def analyze_tracked(
    tracked: Sequence[TrackedBroadcast],
    utc_offsets: Optional[Dict[str, int]] = None,
) -> UsagePatterns:
    """Compute the usage patterns from completed broadcasts.

    ``utc_offsets`` maps broadcast id to the broadcaster's UTC offset —
    in the paper this comes from the time zone in the description; our
    descriptions carry coordinates, and the experiment driver resolves
    them the same way.
    """
    if not tracked:
        raise ValueError("no broadcasts to analyze")
    durations = [t.duration_estimate() for t in tracked]
    durations = [d for d in durations if d is not None and d > 0]
    if not durations:
        raise ValueError("no broadcasts with usable durations")
    with_info = [t for t in tracked if t.viewer_samples]
    viewer_avgs = [t.avg_viewers for t in with_info]

    zero = [t for t in with_info if t.avg_viewers == 0.0]
    viewed = [t for t in with_info if t.avg_viewers > 0.0]

    def mean_duration(group: Sequence[TrackedBroadcast]) -> float:
        values = [t.duration_estimate() or 0.0 for t in group]
        values = [v for v in values if v > 0]
        return sum(values) / len(values) if values else 0.0

    zero_time = sum(t.duration_estimate() or 0.0 for t in zero)
    total_time = sum(t.duration_estimate() or 0.0 for t in with_info)

    by_hour: Dict[int, List[float]] = {}
    for t in with_info:
        hour = _local_hour(t, utc_offsets)
        if hour is not None:
            by_hour.setdefault(hour, []).append(t.avg_viewers)
    viewers_by_hour = {
        hour: sum(vals) / len(vals) for hour, vals in sorted(by_hour.items())
    }

    no_replay = [t for t in zero if t.available_for_replay is False]

    return UsagePatterns(
        n_broadcasts=len(tracked),
        n_with_viewer_info=len(with_info),
        duration_cdf=Ecdf(durations),
        viewers_cdf=Ecdf(viewer_avgs) if viewer_avgs else Ecdf([0.0]),
        zero_viewer_fraction=len(zero) / len(with_info) if with_info else 0.0,
        zero_viewer_avg_duration_s=mean_duration(zero),
        viewed_avg_duration_s=mean_duration(viewed),
        zero_viewer_no_replay_fraction=(len(no_replay) / len(zero)) if zero else 0.0,
        zero_viewer_time_share=(zero_time / total_time) if total_time else 0.0,
        viewers_by_local_hour=viewers_by_hour,
    )
