"""Dataset 1: crawling the service for usage patterns (Section 4).

The paper's crawler is a mitmproxy inline script replaying
``/mapGeoBroadcastFeed`` with modified coordinates and intercepting
``/getBroadcasts`` for viewer counts.  Ours runs the same logic over the
simulated API:

* :class:`~repro.crawler.deep.DeepCrawler` — recursive quadtree zoom of
  the whole world until areas stop yielding substantially more
  broadcasts (Fig. 1);
* :class:`~repro.crawler.targeted.TargetedCrawl` — four identities
  repeatedly polling the most active areas for hours (Fig. 2);
* :mod:`repro.crawler.analysis` — duration/viewer/diurnal statistics.
"""

from repro.crawler.client import CrawlClient, CrawlHarness
from repro.crawler.deep import DeepCrawler, DeepCrawlResult
from repro.crawler.targeted import TargetedCrawl, TrackedBroadcast
from repro.crawler.analysis import UsagePatterns, analyze_tracked

__all__ = [
    "CrawlClient",
    "CrawlHarness",
    "DeepCrawler",
    "DeepCrawlResult",
    "TargetedCrawl",
    "TrackedBroadcast",
    "UsagePatterns",
    "analyze_tracked",
]
