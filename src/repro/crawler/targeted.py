"""The targeted crawl: four identities polling the most active areas.

Section 4: half the areas of a deep crawl hold at least 80% of its
broadcasts, so 64 high-yield areas are split across four logged-in
emulators that poll them continuously; a full round completes in about
50 seconds — fine-grained enough to estimate broadcast durations.  The
inline script also feeds every newly discovered id through
``/getBroadcasts`` to harvest viewer counts and replay availability.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.crawler.client import CrawlClient
from repro.protocols.http import HttpResponse
from repro.service.geo import GeoRect

#: getBroadcasts accepts batches of ids; keep requests reasonably sized.
GET_BROADCASTS_BATCH = 100


@dataclass
class TrackedBroadcast:
    """Everything the crawl learned about one broadcast."""

    broadcast_id: str
    first_seen: float
    last_seen: float
    start_time: Optional[float] = None
    viewer_samples: List[float] = field(default_factory=list)
    available_for_replay: Optional[bool] = None

    @property
    def avg_viewers(self) -> float:
        if not self.viewer_samples:
            return 0.0
        return sum(self.viewer_samples) / len(self.viewer_samples)

    def duration_estimate(self) -> Optional[float]:
        """Paper's estimator: last-seen time minus the start time from the
        description."""
        if self.start_time is None:
            return None
        return max(0.0, self.last_seen - self.start_time)


class TargetedCrawl:
    """Continuous polling of assigned areas by several identities."""

    def __init__(
        self,
        clients: Sequence[CrawlClient],
        areas: Sequence[GeoRect],
        duration_s: float,
    ) -> None:
        if not clients:
            raise ValueError("need at least one crawler identity")
        if not areas:
            raise ValueError("need at least one area")
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        self.clients = list(clients)
        self.duration_s = duration_s
        #: Areas are split across identities round-robin, as the paper
        #: divided its 64 areas into four sets.
        self.assignments: List[List[GeoRect]] = [[] for _ in self.clients]
        for index, area in enumerate(areas):
            self.assignments[index % len(self.clients)].append(area)
        self.tracked: Dict[str, TrackedBroadcast] = {}
        self.rounds_completed = [0] * len(self.clients)
        self.round_durations: List[float] = []
        self._started_at = 0.0
        self._ended_at = 0.0
        self._describe_queue: List[str] = []
        #: Round-robin refresh of already known broadcasts so viewer
        #: counts are sampled across each broadcast's life.
        self._refresh_ring: List[str] = []
        self._refresh_cursor = 0

    # ------------------------------------------------------------------ drive

    def start(self) -> None:
        self._started_at = self.clients[0].loop.now
        self._ended_at = self._started_at + self.duration_s
        for index, client in enumerate(self.clients):
            self._start_round(index, client)

    def _start_round(self, index: int, client: CrawlClient) -> None:
        if client.loop.now >= self._ended_at:
            return
        areas = self.assignments[index]
        if not areas:
            return
        round_start = client.loop.now
        self._query_area(index, client, areas, 0, round_start)

    def _query_area(
        self, index: int, client: CrawlClient, areas: List[GeoRect],
        position: int, round_start: float,
    ) -> None:
        if client.loop.now >= self._ended_at:
            return
        if position >= len(areas):
            self.rounds_completed[index] += 1
            self.round_durations.append(client.loop.now - round_start)
            self._flush_describe_queue(client)
            client.loop.schedule(
                client.pace_s, lambda: self._start_round(index, client)
            )
            return
        client.map_query(
            areas[position],
            lambda resp, now: self._on_map_response(
                resp, now, index, client, areas, position, round_start
            ),
        )

    def _on_map_response(
        self, response: HttpResponse, now: float, index: int,
        client: CrawlClient, areas: List[GeoRect], position: int,
        round_start: float,
    ) -> None:
        for entry in (response.json_body or {}).get("broadcasts", []):
            broadcast_id = entry["id"]
            tracked = self.tracked.get(broadcast_id)
            if tracked is None:
                self.tracked[broadcast_id] = TrackedBroadcast(
                    broadcast_id=broadcast_id, first_seen=now, last_seen=now
                )
                self._describe_queue.append(broadcast_id)
                self._refresh_ring.append(broadcast_id)
            else:
                tracked.last_seen = now
        client.loop.schedule(
            client.pace_s,
            lambda: self._query_area(index, client, areas, position + 1, round_start),
        )

    def _flush_describe_queue(self, client: CrawlClient) -> None:
        """The paper's trick: replace a /getBroadcasts request's contents
        with the ids found since the previous one."""
        batch = self._describe_queue[:GET_BROADCASTS_BATCH]
        del self._describe_queue[: len(batch)]
        # Fill the rest of the batch with refreshes of known broadcasts.
        refresh_budget = GET_BROADCASTS_BATCH - len(batch)
        for _ in range(min(refresh_budget, len(self._refresh_ring))):
            self._refresh_cursor = (self._refresh_cursor + 1) % len(self._refresh_ring)
            candidate = self._refresh_ring[self._refresh_cursor]
            if candidate not in batch:
                batch.append(candidate)
        if not batch:
            return
        client.get_broadcasts(batch, self._on_descriptions)

    def _on_descriptions(self, response: HttpResponse, now: float) -> None:
        ended_ids = []
        for desc in (response.json_body or {}).get("broadcasts", []):
            tracked = self.tracked.get(desc["id"])
            if tracked is None:
                continue
            tracked.start_time = desc.get("start")
            tracked.available_for_replay = desc.get("available_for_replay")
            if desc.get("state") == "RUNNING":
                tracked.viewer_samples.append(float(desc.get("n_watching", 0)))
            else:
                ended_ids.append(desc["id"])
        if ended_ids:
            # Stop burning refresh budget on finished broadcasts.
            ended = set(ended_ids)
            self._refresh_ring = [i for i in self._refresh_ring if i not in ended]
            self._refresh_cursor = 0

    # ---------------------------------------------------------------- results

    def completed_broadcasts(self, grace_s: float = 60.0) -> List[TrackedBroadcast]:
        """Broadcasts that ended during the crawl: not seen within the
        final ``grace_s`` (the paper's inclusion rule for durations)."""
        cutoff = self._ended_at - grace_s
        return [
            t
            for t in self.tracked.values()
            if t.last_seen < cutoff and t.start_time is not None
        ]

    @property
    def mean_round_s(self) -> float:
        if not self.round_durations:
            return 0.0
        return sum(self.round_durations) / len(self.round_durations)
