"""Crawler transport: emulator identities talking to the API over the
simulated network.

Each identity is one Genymotion emulator with its own login — its own
HTTP stream and, crucially, its own rate-limit bucket (running four of
them in parallel is how the paper got the targeted crawl under a minute
per round).
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional

from repro import obs
from repro.faults.retry import RetryPolicy, RetrySchedule
from repro.netsim.duplex import DuplexStream
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.protocols.http import (
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
    HttpStatus,
)
from repro.service.api import API_PATH, ApiServer, RateLimiter
from repro.service.geo import GeoPoint, GeoRect
from repro.service.ingest import IngestPool
from repro.service.world import ServiceWorld, WorldParameters
from repro.util.rng import child_rng

#: Emulators sat in Finland next to the phones.
CRAWLER_LOCATION = GeoPoint(60.2, 24.9)

ApiCallback = Callable[[HttpResponse, float], None]


class CrawlClient:
    """One crawler identity: issues apiRequest commands, honours 429s.

    Throttled (429) and unavailable (503) responses are retried per the
    shared bounded :class:`~repro.faults.retry.RetryPolicy` — the first
    retry keeps the historical 2 s backoff, later ones double up to a
    cap, and a permanently failing service terminates the call after
    ``max_attempts`` with the final error response handed to the
    callback.  Successful requests are spaced ``pace_s`` apart,
    mirroring the paper's pacing (what pushes a deep crawl beyond 10
    minutes).
    """

    def __init__(
        self,
        loop: EventLoop,
        http: HttpClient,
        identity: str,
        pace_s: float = 0.85,
        backoff_s: float = 2.0,
        retry: Optional[RetryPolicy] = None,
        retry_rng: Optional[random.Random] = None,
    ) -> None:
        self.loop = loop
        self.http = http
        self.identity = identity
        self.pace_s = pace_s
        self.backoff_s = backoff_s
        self.retry = retry if retry is not None else RetryPolicy(
            base_delay_s=backoff_s, factor=2.0,
            max_delay_s=8.0 * backoff_s, max_attempts=8,
        )
        self._retry_rng = retry_rng
        self.requests_sent = 0
        self.throttled = 0
        self.retries = 0
        self.gave_up = 0

    def call(self, command: str, payload: Dict[str, Any], callback: ApiCallback) -> None:
        """Issue one API command now (no pacing — callers schedule)."""
        body = {"request": command}
        body.update(payload)
        schedule = RetrySchedule(
            self.retry, rng=self._retry_rng, started_at=self.loop.now
        )

        def send() -> None:
            self.requests_sent += 1
            self.http.request(
                HttpRequest("POST", API_PATH, json_body=body), on_response
            )

        def on_response(response: HttpResponse, now: float) -> None:
            if response.status in (
                HttpStatus.TOO_MANY_REQUESTS, HttpStatus.SERVICE_UNAVAILABLE
            ):
                if response.status == HttpStatus.TOO_MANY_REQUESTS:
                    self.throttled += 1
                delay = schedule.next_delay(now)
                if delay is None:
                    # Bounded give-up: surface the error instead of
                    # retrying forever (the old constant-backoff loop
                    # never terminated against a permanently-429ing
                    # service).
                    self.gave_up += 1
                    callback(response, now)
                    return
                self.retries += 1
                telemetry = obs.active()
                if telemetry.enabled and telemetry.metrics_on:
                    telemetry.metrics.counter(
                        "retries_total", "Client retry attempts",
                        kind="crawler-api", identity=self.identity,
                    ).inc()
                self.loop.schedule(delay, send)
                return
            callback(response, now)

        send()

    def map_query(self, rect: GeoRect, callback: ApiCallback) -> None:
        """One /mapGeoBroadcastFeed for ``rect`` (live only)."""
        self.call(
            "mapGeoBroadcastFeed",
            {
                "p1_lat": rect.south,
                "p1_lng": rect.west,
                "p2_lat": rect.north,
                "p2_lng": rect.east,
                "include_replay": False,
            },
            callback,
        )

    def get_broadcasts(self, ids: List[str], callback: ApiCallback) -> None:
        """One /getBroadcasts for up to ~100 ids."""
        self.call("getBroadcasts", {"broadcast_ids": ids}, callback)


class CrawlHarness:
    """World + API + N crawler identities on one event loop."""

    def __init__(
        self,
        seed: int,
        mean_concurrent: int = 2500,
        identities: int = 1,
        rate_limiter: Optional[RateLimiter] = None,
    ) -> None:
        self.loop = EventLoop()
        self.world = ServiceWorld(
            WorldParameters(mean_concurrent=mean_concurrent), seed=seed
        )
        self.api = ApiServer(
            self.world,
            IngestPool(child_rng(seed, "crawl-ingest")),
            clock=lambda: self.loop.now,
            rng=child_rng(seed, "crawl-api"),
            rate_limiter=rate_limiter or RateLimiter(),
        )
        net = Network(self.loop)
        emulator = net.host("emulator")
        api_host = net.host("api")
        net.duplex(emulator, api_host, rate_bps=100e6, delay_s=0.040)
        self.clients: List[CrawlClient] = []
        for index in range(identities):
            stream = DuplexStream(
                self.loop, net, "emulator", "api", name=f"crawler-{index}"
            )
            identity = f"crawler-{index}"
            HttpServer(self.loop, stream, self.api.handle, client_label=identity,
                       processing_delay_s=0.020)
            self.clients.append(
                CrawlClient(self.loop, HttpClient(self.loop, stream), identity)
            )

    def run_until(self, t: float) -> None:
        self.loop.run_until(t)
