"""The deep crawl: recursive quadtree zoom over the world map.

Reproduces Section 4's discovery procedure: query an area, and because
the map response caps how many broadcasts it lists, split the area into
four and recurse wherever zooming keeps revealing substantially more
broadcasts.  The output is the Fig. 1 discovery curve (cumulative
broadcasts vs. areas queried) plus the per-area counts used to choose
the targeted-crawl areas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro import obs
from repro.crawler.client import CrawlClient
from repro.protocols.http import HttpResponse
from repro.service.geo import GeoRect


@dataclass
class AreaRecord:
    """One queried area and what it returned."""

    rect: GeoRect
    depth: int
    queried_at: float
    broadcast_ids: List[str]
    new_ids: int


@dataclass
class DeepCrawlResult:
    """Everything a deep crawl produced."""

    areas: List[AreaRecord] = field(default_factory=list)
    discovered: Set[str] = field(default_factory=set)
    started_at: float = 0.0
    finished_at: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.finished_at - self.started_at

    def discovery_curve(self) -> List[Tuple[int, int]]:
        """(areas queried, cumulative distinct broadcasts) — Fig. 1(a)."""
        seen: Set[str] = set()
        curve: List[Tuple[int, int]] = []
        for index, record in enumerate(self.areas, start=1):
            seen.update(record.broadcast_ids)
            curve.append((index, len(seen)))
        return curve

    def relative_curve(self) -> List[Tuple[float, float]]:
        """(% of areas, % of broadcasts), areas ordered by yield —
        Fig. 1(b)'s 'half the areas hold >=80%' view."""
        if not self.areas or not self.discovered:
            return []
        ordered = sorted(self.areas, key=lambda a: len(a.broadcast_ids), reverse=True)
        seen: Set[str] = set()
        curve: List[Tuple[float, float]] = []
        for index, record in enumerate(ordered, start=1):
            seen.update(record.broadcast_ids)
            curve.append((100.0 * index / len(ordered), 100.0 * len(seen) / len(self.discovered)))
        return curve

    def top_areas(self, count: int) -> List[GeoRect]:
        """The most active leaf areas — input for the targeted crawl."""
        leaves = [a for a in self.areas if a.depth > 0]
        leaves.sort(key=lambda a: len(a.broadcast_ids), reverse=True)
        return [a.rect for a in leaves[:count]]


class DeepCrawler:
    """Breadth-first quadtree crawl driven by one identity.

    Zoom rule: recurse into a quadrant while the response is large enough
    to suggest truncation or while it keeps adding substantially new
    broadcasts — "until it no longer discovers substantially more".
    """

    def __init__(
        self,
        client: CrawlClient,
        max_depth: int = 5,
        min_new_to_zoom: int = 6,
        min_result_to_zoom: int = 12,
        on_done: Optional[Callable[[DeepCrawlResult], None]] = None,
    ) -> None:
        self.client = client
        self.max_depth = max_depth
        self.min_new_to_zoom = min_new_to_zoom
        self.min_result_to_zoom = min_result_to_zoom
        self.on_done = on_done
        self.result = DeepCrawlResult()
        self._pending: List[Tuple[GeoRect, int]] = []
        self._running = False

    def start(self) -> None:
        """Begin the crawl from the whole world."""
        if self._running:
            raise RuntimeError("crawl already running")
        self._running = True
        self.result.started_at = self.client.loop.now
        self._pending.append((GeoRect.world(), 0))
        self._next_query()

    def _next_query(self) -> None:
        if not self._pending:
            self._running = False
            self.result.finished_at = self.client.loop.now
            if self.on_done is not None:
                self.on_done(self.result)
            return
        rect, depth = self._pending.pop(0)
        self.client.map_query(
            rect, lambda resp, now, r=rect, d=depth: self._on_response(resp, now, r, d)
        )

    def _on_response(self, response: HttpResponse, now: float, rect: GeoRect, depth: int) -> None:
        ids = [b["id"] for b in (response.json_body or {}).get("broadcasts", [])]
        new_ids = [i for i in ids if i not in self.result.discovered]
        self.result.discovered.update(new_ids)
        self.result.areas.append(
            AreaRecord(rect=rect, depth=depth, queried_at=now,
                       broadcast_ids=ids, new_ids=len(new_ids))
        )
        telemetry = obs.active()
        if telemetry.enabled and telemetry.metrics_on:
            metrics = telemetry.metrics
            metrics.counter(
                "crawl_areas_queried_total", "Map areas queried by deep crawls",
                identity=self.client.identity,
            ).inc()
            metrics.counter(
                "crawl_broadcasts_discovered_total",
                "Distinct broadcasts first seen by deep crawls",
                identity=self.client.identity,
            ).inc(len(new_ids))
            metrics.histogram(
                "crawl_area_yield_broadcasts",
                "Broadcasts returned per map query",
                buckets=(0, 1, 2, 4, 8, 16, 32, 64, 128),
                identity=self.client.identity,
            ).observe(float(len(ids)))
        should_zoom = (
            depth < self.max_depth
            and len(ids) >= self.min_result_to_zoom
            and (depth == 0 or len(new_ids) >= self.min_new_to_zoom)
        )
        if should_zoom:
            for quadrant in rect.quadrants():
                self._pending.append((quadrant, depth + 1))
        # Pace the next request (the 429 limiter would throttle us anyway).
        self.client.loop.schedule(self.client.pace_s, self._next_query)
