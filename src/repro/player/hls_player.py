"""HLS receive path: playlist polling and sequential segment fetching.

The latency cost of HLS is structural and reproduced here end to end:
video waits for its segment to complete at the packager, the packaged
segment waits to be discovered via a playlist refresh, and then the
whole segment must be downloaded before any of its frames play.  In
exchange the player holds segment-sized buffers, which is why it stalls
less than RTMP on the same broadcast glitches.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional

from repro import obs
from repro.faults.retry import HLS_TRANSPORT_RETRY, RetryPolicy
from repro.media.segmenter import HlsSegment
from repro.netsim.events import EventLoop
from repro.player.buffer import PlaybackReport, PlayoutBuffer
from repro.protocols.hls import MediaPlaylist, PlaylistEntry
from repro.protocols.http import HttpClient, HttpRequest, HttpResponse, HttpStatus

#: Playback starts as soon as the first fetched segment is buffered.
HLS_START_THRESHOLD_S = 0.2
HLS_REBUFFER_THRESHOLD_S = 0.5
#: Delay before re-requesting a playlist that had nothing new (the
#: normal live polling cadence; *failed* fetches walk the retry policy).
PLAYLIST_RETRY_S = 1.0


class HlsPlayer:
    """Fetches the live window and feeds the playout buffer.

    Uses two HTTP connections — one for playlists, one for segments —
    matching the paper's observation that HLS sessions may use multiple
    parallel connections.
    """

    def __init__(
        self,
        loop: EventLoop,
        playlist_client: HttpClient,
        segment_client: HttpClient,
        playlist_path: str,
        broadcast_start: float,
        session_start: float = 0.0,
        capture_clock_error_s: float = 0.0,
        vod: bool = False,
        transport_retry: RetryPolicy = HLS_TRANSPORT_RETRY,
        retry_rng: Optional[random.Random] = None,
    ) -> None:
        self.loop = loop
        self.playlist_client = playlist_client
        self.segment_client = segment_client
        self.playlist_path = playlist_path
        self.capture_clock_error_s = capture_clock_error_s
        #: Retry policy for *failed* playlist/segment fetches.  The
        #: default reproduces the historical fixed 1 s re-poll with a
        #: budget no 60 s watch can exhaust; fault plans swap in a
        #: bounded exponential policy with seeded jitter.
        self.transport_retry = transport_retry
        self._retry_rng = retry_rng
        #: Replay ("not live") sessions start from the first segment of an
        #: ended playlist instead of joining at the live edge.
        self.vod = vod
        self.buffer = PlayoutBuffer(
            loop,
            start_threshold_s=HLS_START_THRESHOLD_S,
            rebuffer_threshold_s=HLS_REBUFFER_THRESHOLD_S,
            broadcast_start=broadcast_start,
            session_start=session_start,
        )
        self.stopped = False
        self.segments_fetched: List[HlsSegment] = []
        self.delivery_latency_samples: List[float] = []
        self.playlist_fetches = 0
        self.stale_playlists = 0
        self.transport_retries = 0
        self.gave_up = False
        self._consecutive_errors = 0
        self._known_entries: Dict[int, PlaylistEntry] = {}
        self._next_sequence: Optional[int] = None
        self._fetching_segment = False
        self._origin_set = False
        self._display_fps_factor = 1.0

    def set_display_fps_factor(self, factor: float) -> None:
        """Device decode capability (see RtmpPlayer)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        self._display_fps_factor = factor

    # ----------------------------------------------------------------- start

    def start(self) -> None:
        self._request_playlist()

    def stop(self) -> None:
        self.stopped = True

    # ------------------------------------------------------------ resilience

    def _transport_error(self, action: Callable[[], None]) -> None:
        """A fetch failed: back off per policy, or degrade gracefully.

        Giving up stops fetching; the playout buffer drains and the rest
        of the watch is accounted as stall time — a QoE event, not a
        crash.
        """
        self._consecutive_errors += 1
        delay = self.transport_retry.delay_for(
            self._consecutive_errors, self._retry_rng
        )
        if delay is None:
            self.gave_up = True
            return
        self.transport_retries += 1
        telemetry = obs.active()
        if telemetry.enabled and telemetry.metrics_on:
            telemetry.metrics.counter(
                "retries_total", "Client retry attempts",
                kind="hls-transport",
            ).inc()
        if telemetry.enabled and telemetry.causes_on:
            telemetry.causes.add("transport.retry_backoff", delay)
        self.loop.schedule(delay, action)

    # -------------------------------------------------------------- playlist

    def _request_playlist(self) -> None:
        if self.stopped:
            return
        self.playlist_fetches += 1
        self.playlist_client.request(
            HttpRequest("GET", self.playlist_path), self._on_playlist
        )

    def _on_playlist(self, response: HttpResponse, now: float) -> None:
        if self.stopped:
            return
        if response.status != HttpStatus.OK or not isinstance(
            response.payload, MediaPlaylist
        ):
            self._transport_error(self._request_playlist)
            return
        self._consecutive_errors = 0
        playlist = response.payload
        new_entries = 0
        for entry in playlist.entries:
            if entry.sequence not in self._known_entries:
                self._known_entries[entry.sequence] = entry
                new_entries += 1
        if not playlist.entries:
            telemetry = obs.active()
            if telemetry.enabled and telemetry.causes_on:
                telemetry.causes.add("hls.playlist_wait", PLAYLIST_RETRY_S)
            self.loop.schedule(PLAYLIST_RETRY_S, self._request_playlist)
            return
        if new_entries == 0:
            self.stale_playlists += 1
        if self._next_sequence is None:
            if self.vod:
                # Replay: start from the beginning of the recording.
                self._next_sequence = playlist.entries[0].sequence
            else:
                # Join at the live edge: the newest published segment.
                self._next_sequence = playlist.entries[-1].sequence
        self._pump_segment_fetch()

    # -------------------------------------------------------------- segments

    def _pump_segment_fetch(self) -> None:
        if self.stopped or self._fetching_segment or self._next_sequence is None:
            return
        entry = self._known_entries.get(self._next_sequence)
        if entry is None:
            newest_known = max(self._known_entries) if self._known_entries else -1
            if newest_known > (self._next_sequence or 0):
                # We fell out of the live window; skip forward.
                self._next_sequence = newest_known
                entry = self._known_entries[newest_known]
            else:
                telemetry = obs.active()
                if telemetry.enabled and telemetry.causes_on:
                    telemetry.causes.add("hls.playlist_wait", PLAYLIST_RETRY_S)
                self.loop.schedule(PLAYLIST_RETRY_S, self._request_playlist)
                return
        self._fetching_segment = True
        self.segment_client.request(
            HttpRequest("GET", f"/{entry.uri}"),
            lambda resp, t, seq=entry.sequence: self._on_segment(resp, t, seq),
        )

    def _on_segment(self, response: HttpResponse, now: float, sequence: int) -> None:
        self._fetching_segment = False
        if self.stopped:
            return
        if response.status != HttpStatus.OK or not isinstance(
            response.payload, HlsSegment
        ):
            # Segment aged out before we fetched it; rejoin at the edge.
            self._next_sequence = None
            self._transport_error(self._request_playlist)
            return
        self._consecutive_errors = 0
        segment = response.payload
        self.segments_fetched.append(segment)
        self._next_sequence = sequence + 1
        observed = now + self.capture_clock_error_s
        last_pts = segment.start_pts
        for frame in segment.video_frames:
            last_pts = max(last_pts, frame.pts)
            if frame.ntp_timestamp is not None:
                self.delivery_latency_samples.append(observed - frame.ntp_timestamp)
        if not self._origin_set:
            self.buffer.set_play_origin(segment.start_pts)
            self._origin_set = True
        self.buffer.on_media(last_pts + 1.0 / 30.0)
        self._pump_segment_fetch()

    # ------------------------------------------------------------- reporting

    @property
    def video_frames(self) -> List:
        frames = []
        for segment in self.segments_fetched:
            frames.extend(segment.video_frames)
        return frames

    def displayed_fps(self, report: PlaybackReport) -> Optional[float]:
        frames = self.video_frames
        if report.playback_s <= 0 or len(frames) < 2:
            return None
        pts = sorted(f.pts for f in frames)
        span = pts[-1] - pts[0] + 1.0 / 30.0
        if span <= 0:
            return None
        return len(frames) * self._display_fps_factor / span

    def finalize(self, end_time: float) -> PlaybackReport:
        self.stop()
        return self.buffer.finalize(end_time)
