"""The playout buffer and its QoE accounting.

Media availability is a single monotone frontier ``buffered_until`` (the
player conceals isolated missing frames, so playability is contiguous).
Playback starts once ``start_threshold_s`` of media is buffered, stalls
whenever the playhead catches the frontier, and resumes once
``rebuffer_threshold_s`` accumulates again.

The buffer also derives **playback latency**: while playing, the wall
clock and the playhead advance in lockstep, so each playing interval has
a constant end-to-end latency ``t - (broadcast_start + playhead(t))``;
the session value is the time-weighted mean over playing intervals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.netsim.events import Event, EventLoop


@dataclass
class StallEvent:
    """One rebuffering interruption during playback.

    Defined here — the player layer is what observes stalls — and
    re-exported by :mod:`repro.core.qoe` for the dataset API.

    ``causes`` is populated only when cause attribution is enabled
    (``--explain``): seconds per upstream cause, clamped so they sum to
    at most ``duration``.  ``None`` otherwise, so QoE stays bit-identical
    with attribution off.
    """

    start: float
    duration: float
    causes: Optional[Dict[str, float]] = None


@dataclass
class PlaybackReport:
    """What one session's buffer observed (app's playbackMeta equivalent)."""

    started: bool
    join_time_s: float
    playback_s: float
    stalls: List[StallEvent]
    mean_playback_latency_s: Optional[float]
    #: Per-cause seconds for the join wait (attribution opt-in only).
    join_causes: Optional[Dict[str, float]] = None

    @property
    def stall_count(self) -> int:
        return len(self.stalls)

    @property
    def total_stall_s(self) -> float:
        return sum(s.duration for s in self.stalls)


class PlayoutBuffer:
    """Event-driven playout model over a session's event loop."""

    def __init__(
        self,
        loop: EventLoop,
        start_threshold_s: float,
        rebuffer_threshold_s: float,
        broadcast_start: float,
        session_start: float = 0.0,
    ) -> None:
        if start_threshold_s <= 0 or rebuffer_threshold_s <= 0:
            raise ValueError("thresholds must be positive")
        self.loop = loop
        self.start_threshold_s = start_threshold_s
        self.rebuffer_threshold_s = rebuffer_threshold_s
        self.broadcast_start = broadcast_start
        self.session_start = session_start

        self._buffered_until: Optional[float] = None  # media frontier (pts)
        self._play_origin: Optional[float] = None     # pts where playback begins
        self._playing = False
        self._started_at: Optional[float] = None
        self._anchor_media = 0.0   # playhead pts at _anchor_time
        self._anchor_time = 0.0
        self._stall_event: Optional[Event] = None
        self._stall_started_at: Optional[float] = None
        self._stalls: List[StallEvent] = []
        #: (duration, latency) per completed playing interval.
        self._intervals: List[Tuple[float, float]] = []
        self._finalized = False
        #: Cause-ledger snapshots bounding the join and current-stall
        #: attribution windows (None unless attribution is enabled).
        self._causes_join_base: Optional[Dict[str, float]] = None
        self._causes_stall_base: Optional[Dict[str, float]] = None
        self.join_causes: Optional[Dict[str, float]] = None
        telemetry = obs.active()
        if telemetry.enabled and telemetry.causes_on:
            # The session's ledger bucket starts empty at session start
            # (contexts are per-session), so the join window's base is
            # the empty snapshot — it must include delays accrued before
            # the buffer exists (API retries, packaging of the first
            # segments), not just post-construction ones.
            self._causes_join_base = {}

    # ------------------------------------------------------------- ingestion

    def on_media(self, upto_pts: float) -> None:
        """The playable frontier grew to ``upto_pts`` (monotone max)."""
        if self._finalized:
            return
        if self._buffered_until is None:
            self._buffered_until = upto_pts
            # Default origin: the first frontier seen.  set_play_origin
            # may pin a different one, but only before playback starts.
            self._play_origin = upto_pts
        if upto_pts <= self._buffered_until and self._playing:
            return
        self._buffered_until = max(self._buffered_until, upto_pts)
        telemetry = obs.active()
        if telemetry.enabled and telemetry.health_on and self._playing:
            gap = self._buffered_until - self._playhead(self.loop.now)
            telemetry.health.check(
                "player.buffer_nonnegative", gap >= -1e-9,
                f"frontier-playhead gap {gap:.6f}s at t={self.loop.now:.3f}",
            )
        if telemetry.enabled and telemetry.metrics_on:
            telemetry.metrics.histogram(
                "player_buffer_level_seconds",
                "Playable media ahead of the playhead, sampled per arrival",
                buckets=(0.0, 0.25, 0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0),
            ).observe(self.buffer_level_s())
        if not self._playing:
            self._maybe_start_or_resume()
        else:
            self._reschedule_underrun()

    def set_play_origin(self, pts: float) -> None:
        """Pin where the playhead will start (e.g. an HLS segment start).

        Must be called before playback starts; by default the origin is
        the first media frontier seen.
        """
        if self._started_at is not None:
            raise RuntimeError("playback already started")
        self._play_origin = pts
        if self._buffered_until is None:
            self._buffered_until = pts

    # -------------------------------------------------------------- playback

    def _playhead(self, now: float) -> float:
        if not self._playing:
            return self._anchor_media
        return self._anchor_media + (now - self._anchor_time)

    @property
    def buffered_until(self) -> Optional[float]:
        return self._buffered_until

    @property
    def playing(self) -> bool:
        return self._playing

    def buffer_level_s(self) -> float:
        """Seconds of playable media ahead of the playhead."""
        if self._buffered_until is None:
            return 0.0
        return max(0.0, self._buffered_until - self._playhead(self.loop.now))

    def _maybe_start_or_resume(self) -> None:
        assert self._buffered_until is not None
        now = self.loop.now
        if self._started_at is None:
            assert self._play_origin is not None
            if self._buffered_until - self._play_origin >= self.start_threshold_s:
                self._started_at = now
                self._anchor_media = self._play_origin
                telemetry = obs.active()
                if telemetry.enabled and telemetry.metrics_on:
                    telemetry.metrics.histogram(
                        "player_join_seconds",
                        "Session start to first displayed frame",
                    ).observe(now - self.session_start)
                if telemetry.enabled and telemetry.causes_on:
                    self._record_join_window(telemetry, now)
                self._begin_playing(now)
        elif self._stall_started_at is not None:
            if self._buffered_until - self._anchor_media >= self.rebuffer_threshold_s:
                stall_duration = now - self._stall_started_at
                event = StallEvent(
                    start=self._stall_started_at,
                    duration=stall_duration,
                )
                self._stalls.append(event)
                self._stall_started_at = None
                telemetry = obs.active()
                if telemetry.enabled and telemetry.metrics_on:
                    telemetry.metrics.counter(
                        "player_stall_ends_total", "Stalls that recovered",
                    ).inc()
                    telemetry.metrics.histogram(
                        "player_stall_seconds", "Recovered stall durations",
                    ).observe(stall_duration)
                if telemetry.enabled and telemetry.causes_on:
                    self._record_stall_window(telemetry, event)
                self._begin_playing(now)

    def _begin_playing(self, now: float) -> None:
        self._playing = True
        self._anchor_time = now
        self._reschedule_underrun()

    def _reschedule_underrun(self) -> None:
        if self._stall_event is not None:
            self._stall_event.cancel()
            self._stall_event = None
        if not self._playing:
            return
        assert self._buffered_until is not None
        underrun_at = self._anchor_time + (self._buffered_until - self._anchor_media)
        self._stall_event = self.loop.schedule_at(
            max(underrun_at, self.loop.now), self._on_underrun
        )

    def _on_underrun(self) -> None:
        now = self.loop.now
        self._close_interval(now)
        self._playing = False
        self._anchor_media = self._buffered_until if self._buffered_until is not None else 0.0
        self._stall_started_at = now
        self._stall_event = None
        telemetry = obs.active()
        if telemetry.enabled and telemetry.metrics_on:
            telemetry.metrics.counter(
                "player_stalls_total", "Playback underruns (stall begins)",
            ).inc()
        if telemetry.enabled and telemetry.causes_on:
            # Snapshot the ledger as the stall opens; the delta when it
            # closes is what delayed media during this stall.
            self._causes_stall_base = telemetry.causes.totals()

    def _record_join_window(self, telemetry, now: float) -> None:
        if self._causes_join_base is None:
            return
        record = telemetry.causes.record_window(
            "join",
            start=self.session_start,
            duration=now - self.session_start,
            base=self._causes_join_base,
        )
        self.join_causes = record.causes
        self._causes_join_base = None

    def _record_stall_window(self, telemetry, event: StallEvent) -> None:
        if self._causes_stall_base is None:
            return
        record = telemetry.causes.record_window(
            "stall",
            start=event.start,
            duration=event.duration,
            base=self._causes_stall_base,
        )
        event.causes = record.causes
        self._causes_stall_base = None

    def _close_interval(self, now: float) -> None:
        duration = now - self._anchor_time
        if duration > 0:
            latency = self._anchor_time - self._anchor_media - self.broadcast_start
            self._intervals.append((duration, latency))

    # ------------------------------------------------------------- reporting

    def finalize(self, end_time: float) -> PlaybackReport:
        """Stop the clock at ``end_time`` and produce the session report.

        A stall in progress runs to the end of the session; a session that
        never started playing is all join time (the paper computes join
        time as 60 s minus playback and stall time, so an unstarted
        session has join time 60 s).
        """
        if self._finalized:
            raise RuntimeError("already finalized")
        self._finalized = True
        if self._stall_event is not None:
            self._stall_event.cancel()
            self._stall_event = None
        watch = end_time - self.session_start
        telemetry = obs.active()
        if self._started_at is None:
            # The whole session was join wait; close its window here.
            if telemetry.enabled and telemetry.causes_on:
                self._record_join_window(telemetry, end_time)
            return PlaybackReport(
                started=False,
                join_time_s=watch,
                playback_s=0.0,
                stalls=[],
                mean_playback_latency_s=None,
                join_causes=self.join_causes,
            )
        if self._playing:
            self._close_interval(end_time)
            self._playing = False
        elif self._stall_started_at is not None:
            event = StallEvent(
                start=self._stall_started_at,
                duration=end_time - self._stall_started_at,
            )
            self._stalls.append(event)
            self._stall_started_at = None
            if telemetry.enabled and telemetry.causes_on:
                self._record_stall_window(telemetry, event)
        playback = sum(d for d, _ in self._intervals)
        mean_latency = (
            sum(d * l for d, l in self._intervals) / playback
            if playback > 0 else None
        )
        if telemetry.enabled and telemetry.health_on:
            total_stall = sum(s.duration for s in self._stalls)
            join = self._started_at - self.session_start
            telemetry.health.check(
                "player.stall_within_watch",
                0.0 <= total_stall <= watch + 1e-9,
                f"stall {total_stall:.3f}s over watch {watch:.3f}s",
            )
            telemetry.health.check(
                "player.accounting_consistent",
                abs(join + playback + total_stall - watch) <= 1e-6,
                f"join {join:.3f} + playback {playback:.3f} + "
                f"stall {total_stall:.3f} != watch {watch:.3f}",
            )
        return PlaybackReport(
            started=True,
            join_time_s=self._started_at - self.session_start,
            playback_s=playback,
            stalls=list(self._stalls),
            mean_playback_latency_s=mean_latency,
            join_causes=self.join_causes,
        )
