"""The app's chat pane and its traffic cost.

Chat JSON arrives over the WebSocket whether or not the pane is shown.
With the pane **on**, the app downloads the profile picture next to each
message — and since it does not cache images, a handful of active
chatters can multiply the session's downstream traffic (Section 5.1
measured ~500 kbps growing to 3.5 Mbps).  An optional cache implements
the paper's proposed mitigation, used by the ablation benchmark.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Set, Union

from repro.netsim.connection import Message
from repro.netsim.events import EventLoop
from repro.protocols.http import HttpClient, HttpRequest, HttpResponse, HttpStatus
from repro.service.chat import ChatMessage

#: Image fetches run over a small pool of parallel connections (the HTTP
#: stack's default connection-per-host pool) — at a throttled access link
#: those flows collectively crowd out the single video stream, which is
#: the mechanics behind the paper's 2 Mbps QoE boundary.
AVATAR_POOL_CONNECTIONS = 4


class ChatClient:
    """Receives chat messages; fetches avatars when the pane is shown."""

    def __init__(
        self,
        loop: EventLoop,
        avatar_client: Union[HttpClient, Sequence[HttpClient], None],
        ui_on: bool,
        cache_avatars: bool = False,
    ) -> None:
        if isinstance(avatar_client, HttpClient):
            avatar_clients: List[HttpClient] = [avatar_client]
        else:
            avatar_clients = list(avatar_client or [])
        if ui_on and not avatar_clients:
            raise ValueError("chat UI on requires at least one avatar HTTP client")
        self.loop = loop
        self.avatar_clients = avatar_clients
        self._next_client = 0
        self.ui_on = ui_on
        self.cache_avatars = cache_avatars
        self.messages_received = 0
        self.avatar_requests = 0
        self.avatar_bytes_received = 0
        self.duplicate_avatar_downloads = 0
        self._seen_urls: Set[str] = set()
        self._cached: Set[str] = set()

    def on_message(self, message: Message, now: float) -> None:
        """Connection callback for the chat WebSocket."""
        if message.annotations.get("protocol") != "websocket":
            return
        chat = message.payload
        if not isinstance(chat, ChatMessage):
            return
        self.messages_received += 1
        if not self.ui_on or not chat.has_avatar:
            return
        if self.cache_avatars and chat.avatar_url in self._cached:
            return
        if chat.avatar_url in self._seen_urls:
            self.duplicate_avatar_downloads += 1
        self._seen_urls.add(chat.avatar_url)
        self.avatar_requests += 1
        client = self.avatar_clients[self._next_client % len(self.avatar_clients)]
        self._next_client += 1
        client.request(
            HttpRequest(
                "GET",
                f"/avatars/{chat.username}.jpg",
                headers={"x-size": str(chat.avatar_bytes)},
            ),
            lambda resp, t, url=chat.avatar_url: self._on_avatar(resp, url),
        )

    def _on_avatar(self, response: HttpResponse, url: str) -> None:
        if response.status == HttpStatus.OK:
            self.avatar_bytes_received += response.body_bytes
            if self.cache_avatars:
                self._cached.add(url)
