"""The viewer's player: playout buffering, stalls, join and latency.

Implements both receive paths the Periscope app uses — RTMP push with a
small jitter buffer, and HLS segment fetching against the CDN's live
window — over one shared :class:`~repro.player.buffer.PlayoutBuffer`
that does the QoE accounting (join time, stall events, playback
latency), exactly the quantities the app's ``playbackMeta`` upload and
the paper's post-processing report.
"""

from repro.player.buffer import PlaybackReport, PlayoutBuffer
from repro.player.rtmp_player import RtmpPlayer
from repro.player.hls_player import HlsPlayer
from repro.player.chat_client import ChatClient

__all__ = [
    "PlaybackReport",
    "PlayoutBuffer",
    "RtmpPlayer",
    "HlsPlayer",
    "ChatClient",
]
