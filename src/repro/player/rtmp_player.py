"""RTMP receive path: frames stream in, playback starts after a short
jitter buffer.

The app's RTMP player keeps only a couple of seconds of buffer — that is
what makes RTMP's playback latency "a few seconds" (mostly buffering,
since delivery itself is sub-300 ms) and what makes it stall on
broadcaster uplink glitches that HLS's segment-sized buffer absorbs.
"""

from __future__ import annotations

import random
from typing import Callable, List, Optional, Union

from repro import obs
from repro.faults.retry import RetryPolicy, RetrySchedule
from repro.media.frames import AudioFrame, EncodedFrame
from repro.netsim.connection import Message
from repro.netsim.events import EventLoop
from repro.player.buffer import PlaybackReport, PlayoutBuffer

#: Nominal per-frame display duration used to extend the frontier.
NOMINAL_FRAME_S = 1.0 / 30.0

#: Media buffered before playback starts (join) and after a stall.
RTMP_START_THRESHOLD_S = 1.8
RTMP_REBUFFER_THRESHOLD_S = 1.0


class RtmpPlayer:
    """Consumes pushed RTMP frames; drives the playout buffer."""

    def __init__(
        self,
        loop: EventLoop,
        broadcast_start: float,
        session_start: float = 0.0,
        capture_clock_error_s: float = 0.0,
        start_threshold_s: float = RTMP_START_THRESHOLD_S,
        rebuffer_threshold_s: float = RTMP_REBUFFER_THRESHOLD_S,
    ) -> None:
        self.loop = loop
        self.buffer = PlayoutBuffer(
            loop,
            start_threshold_s=start_threshold_s,
            rebuffer_threshold_s=rebuffer_threshold_s,
            broadcast_start=broadcast_start,
            session_start=session_start,
        )
        self.capture_clock_error_s = capture_clock_error_s
        self.frames_received = 0
        self.video_frames: List[EncodedFrame] = []
        self.delivery_latency_samples: List[float] = []
        self._display_fps_factor = 1.0
        #: Reconnect bookkeeping (ingest outages; see begin_reconnect).
        self.disconnects = 0
        self.reconnects = 0
        self.reconnect_attempts = 0
        self.reconnect_gave_up = False

    def set_display_fps_factor(self, factor: float) -> None:
        """Device decode capability: fraction of received frames the
        device manages to display (Galaxy S3 < S4)."""
        if not 0.0 < factor <= 1.0:
            raise ValueError("factor must be in (0, 1]")
        self._display_fps_factor = factor

    # ------------------------------------------------------------- receiving

    def on_message(self, message: Message, now: float) -> None:
        """Connection callback for the RTMP stream."""
        if message.annotations.get("protocol") != "rtmp":
            return
        frame = message.payload
        self.on_frame(frame, now)

    def on_frame(self, frame: Union[EncodedFrame, AudioFrame], now: float) -> None:
        """One media frame arrived at the phone."""
        self.frames_received += 1
        if isinstance(frame, AudioFrame):
            return  # video gates playability; audio frames ride along
        self.video_frames.append(frame)
        if frame.ntp_timestamp is not None:
            observed = now + self.capture_clock_error_s
            self.delivery_latency_samples.append(observed - frame.ntp_timestamp)
        self.buffer.on_media(frame.pts + NOMINAL_FRAME_S)

    # ------------------------------------------------------------ resilience

    def begin_reconnect(
        self,
        policy: RetryPolicy,
        probe: Callable[[float], bool],
        on_restored: Callable[[float], None],
        rng: Optional[random.Random] = None,
    ) -> None:
        """The stream disconnected (ingest outage): walk the retry policy.

        ``probe(now)`` models one reconnect attempt — True when a server
        (recovered primary or a failover region) accepts the connection.
        On success ``on_restored(now)`` fires; when the budget runs out
        the player gives up and playback degrades to a stall for the
        rest of the watch instead of crashing.
        """
        self.disconnects += 1
        telemetry = obs.active()
        if telemetry.enabled and telemetry.metrics_on:
            telemetry.metrics.counter(
                "faults_injected_total",
                "Fault events injected across layers",
                kind="rtmp-disconnect",
            ).inc()
        schedule = RetrySchedule(policy, rng=rng, started_at=self.loop.now)

        def attempt() -> None:
            now = self.loop.now
            self.reconnect_attempts += 1
            tel = obs.active()
            if tel.enabled and tel.metrics_on:
                tel.metrics.counter(
                    "retries_total", "Client retry attempts",
                    kind="rtmp-reconnect",
                ).inc()
            if probe(now):
                self.reconnects += 1
                if tel.enabled and tel.metrics_on:
                    tel.metrics.counter(
                        "reconnects_total", "Successful stream reconnects",
                        protocol="rtmp",
                    ).inc()
                on_restored(now)
                return
            delay = schedule.next_delay(now)
            if delay is None:
                self.reconnect_gave_up = True
                return
            if tel.enabled and tel.causes_on:
                tel.causes.add("transport.retry_backoff", delay)
            self.loop.schedule(delay, attempt)

        first = schedule.next_delay(self.loop.now)
        if first is None:
            self.reconnect_gave_up = True
            return
        if telemetry.enabled and telemetry.causes_on:
            telemetry.causes.add("transport.retry_backoff", first)
        self.loop.schedule(first, attempt)

    # ------------------------------------------------------------- reporting

    def displayed_fps(self, report: PlaybackReport) -> Optional[float]:
        """Average displayed frame rate: frames the device managed to
        render over the media span they cover."""
        if report.playback_s <= 0 or len(self.video_frames) < 2:
            return None
        pts = sorted(f.pts for f in self.video_frames)
        span = pts[-1] - pts[0] + NOMINAL_FRAME_S
        if span <= 0:
            return None
        return len(self.video_frames) * self._display_fps_factor / span

    def finalize(self, end_time: float) -> PlaybackReport:
        return self.buffer.finalize(end_time)
