"""Measurement automation: the paper's phones, adb scripting and clocks.

The study automated viewing with two Samsung phones reverse-tethered to
a Linux desktop (``tc`` for bandwidth limits, NTP for clock sync, adb
tap events driving the app's Teleport button).  This package models the
device differences, the clock-synchronization error that produces the
occasional negative delivery-latency sample, and the shaping setup.
"""

from repro.automation.adb import AdbViewingScript, AdbRunLog, UiEvent
from repro.automation.devices import DEVICES, DeviceProfile, GALAXY_S3, GALAXY_S4
from repro.automation.ntp import ClockModel, NtpSyncedClock
from repro.automation.shaping import shaper_for_limit

__all__ = [
    "AdbViewingScript",
    "AdbRunLog",
    "UiEvent",
    "DEVICES",
    "DeviceProfile",
    "GALAXY_S3",
    "GALAXY_S4",
    "ClockModel",
    "NtpSyncedClock",
    "shaper_for_limit",
]
