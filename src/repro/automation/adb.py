"""adb-style automation: the paper's Teleport tap loop.

Section 2: "Automation was achieved with a script that sends tap events
through Android debug bridge (adb) to push the Teleport button, wait for
60 s, push the close button, push the 'home' button and repeat all over
again.  The script also captures all the video and audio traffic using
tcpdump."

:class:`AdbViewingScript` reproduces that loop verbatim as a sequence of
UI events driving :class:`~repro.core.study.AutomatedViewingStudy`
sessions, with the event log exposed for inspection — useful to verify
experiment cadence and for the documentation examples.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, List, Optional

if TYPE_CHECKING:  # pragma: no cover - break the automation<->core cycle
    from repro.core.study import AutomatedViewingStudy, StudyDataset

#: UI navigation overhead between taps, seconds (launching the app view,
#: animations); matches the study cadence of roughly 70 s per session.
TAP_OVERHEAD_S = 10.0 / 3.0


@dataclass(frozen=True)
class UiEvent:
    """One scripted adb input event."""

    at: float  # experiment wall time, seconds
    action: str  # "tap_teleport" | "wait" | "tap_close" | "tap_home"
    detail: str = ""


def _new_dataset() -> "StudyDataset":
    from repro.core.study import StudyDataset

    return StudyDataset()


@dataclass
class AdbRunLog:
    """The script's event log plus the collected dataset."""

    events: List[UiEvent] = field(default_factory=list)
    dataset: "StudyDataset" = field(default_factory=_new_dataset)

    def taps(self, action: str) -> List[UiEvent]:
        return [e for e in self.events if e.action == action]


class AdbViewingScript:
    """Drives the Teleport loop against a study harness."""

    def __init__(self, study: "AutomatedViewingStudy") -> None:
        self.study = study

    def run(
        self,
        n_sessions: int,
        bandwidth_limit_mbps: float = 100.0,
        watch_seconds: Optional[float] = None,
    ) -> AdbRunLog:
        """Execute ``n_sessions`` iterations of the tap loop."""
        if n_sessions < 1:
            raise ValueError("need at least one session")
        watch = watch_seconds if watch_seconds is not None else self.study.config.watch_seconds
        log = AdbRunLog()
        clock = 0.0
        completed = 0
        attempts = 0
        while completed < n_sessions and attempts < 4 * n_sessions:
            attempts += 1
            log.events.append(UiEvent(clock, "tap_teleport"))
            setup = self.study._next_setup(bandwidth_limit_mbps)
            if setup is None:
                # Landed on a dying broadcast; the app bounces back.
                log.events.append(UiEvent(clock + 1.0, "tap_close", "retry"))
                clock += TAP_OVERHEAD_S
                continue
            artifacts = self.study.run_session(setup)
            log.dataset.sessions.append(artifacts.qoe)
            log.dataset.avatar_bytes.append(artifacts.avatar_bytes)
            log.dataset.down_bytes.append(artifacts.total_down_bytes)
            clock += TAP_OVERHEAD_S
            log.events.append(UiEvent(clock, "wait", f"{watch:.0f}s"))
            clock += watch
            log.events.append(UiEvent(clock, "tap_close",
                                      setup.broadcast.broadcast_id))
            clock += TAP_OVERHEAD_S
            log.events.append(UiEvent(clock, "tap_home"))
            clock += TAP_OVERHEAD_S
            completed += 1
        return log
