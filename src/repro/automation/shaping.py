"""Traffic shaping: the ``tc`` setup on the tethering desktop.

The paper imposed artificial bandwidth limits with ``tc`` on the Linux
host providing reverse tethering.  We reproduce it as a token-bucket
filter on the desktop→phone direction (the download path the streams
traverse)."""

from __future__ import annotations

from typing import Optional

from repro.netsim.link import TokenBucketShaper
from repro.util.units import MBPS

#: tc tbf default-ish burst: enough for a few packets, small relative to
#: a second of traffic at any of the studied rates.
DEFAULT_BURST_BYTES = 16 * 1024


def shaper_for_limit(limit_mbps: float, burst_bytes: int = DEFAULT_BURST_BYTES) -> Optional[TokenBucketShaper]:
    """A shaper for the given sweep point; ``>= 100`` means unlimited
    (the paper labels the unshaped case "100")."""
    if limit_mbps <= 0:
        raise ValueError("limit must be positive")
    if limit_mbps >= 100.0:
        return None
    return TokenBucketShaper(rate_bps=limit_mbps * MBPS, bucket_bytes=burst_bytes)
