"""Clock models: NTP-synchronized, imperfectly.

The delivery-latency method subtracts an NTP timestamp embedded by the
*broadcaster's* phone from the packet-capture timestamp on the *viewer's*
tethering desktop.  Both clocks are NTP synced against the same pool, but
neither perfectly: the paper "sometimes observed small negative time
differences indicating that the synchronization was imperfect".  The
models here give each clock a per-session offset so those artifacts
reproduce.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class ClockModel:
    """Distribution of a device's clock offset from true time."""

    sigma_s: float
    max_abs_s: float

    def sample_offset(self, rng: random.Random) -> float:
        """One session's clock offset (true + offset = displayed)."""
        if self.sigma_s < 0 or self.max_abs_s < 0:
            raise ValueError("clock parameters must be non-negative")
        offset = rng.gauss(0.0, self.sigma_s)
        return min(max(offset, -self.max_abs_s), self.max_abs_s)


#: The tethering desktop runs ntpd against the same pool as the app;
#: wired, disciplined, small error.
CAPTURE_DESKTOP_CLOCK = ClockModel(sigma_s=0.010, max_abs_s=0.050)

#: Broadcaster phones sync over cellular/WiFi with sleep/wake drift;
#: larger error — occasionally exceeding the RTMP delivery latency
#: itself, which is what makes some measured latencies negative.
BROADCASTER_PHONE_CLOCK = ClockModel(sigma_s=0.060, max_abs_s=0.300)


class NtpSyncedClock:
    """A clock = true simulated time + a fixed per-session offset."""

    def __init__(self, offset_s: float) -> None:
        self.offset_s = offset_s

    def read(self, true_time: float) -> float:
        """What the device believes the time is."""
        return true_time + self.offset_s
