"""Device profiles: Samsung Galaxy S3 and S4.

Section 5: "Since we had data from two different devices, we performed a
number of Welch's t-tests ... Only the frame rate differs statistically
significantly between the two datasets."  The S3's older SoC drops more
frames during decode/display; everything else (network-driven metrics)
is device independent, which the t-test benchmark verifies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class DeviceProfile:
    """A viewer phone."""

    name: str
    #: Fraction of received frames the device manages to display.
    display_fps_factor: float
    #: Jitter of the display factor across sessions (thermal state etc.).
    display_fps_jitter: float

    def __post_init__(self) -> None:
        if not 0.0 < self.display_fps_factor <= 1.0:
            raise ValueError("display_fps_factor must be in (0, 1]")


GALAXY_S3 = DeviceProfile(
    name="galaxy-s3", display_fps_factor=0.88, display_fps_jitter=0.04
)
GALAXY_S4 = DeviceProfile(
    name="galaxy-s4", display_fps_factor=0.97, display_fps_jitter=0.02
)

DEVICES: Dict[str, DeviceProfile] = {
    GALAXY_S3.name: GALAXY_S3,
    GALAXY_S4.name: GALAXY_S4,
}
