"""Dataset 2: the automated-viewing study (Section 5).

Drives the adb Teleport loop against the simulated service: each session
teleports to a (popularity-biased) random broadcast, watches 60 seconds,
and records QoE.  The study alternates the two phones, advances the
service world between sessions, and runs the ``tc`` bandwidth sweep the
paper uses for Figures 3(b) and 4.
"""

from __future__ import annotations

import math
import random
import warnings
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.automation.devices import GALAXY_S3, GALAXY_S4, DeviceProfile
from repro.core.config import StudyConfig
from repro.core.parallel import run_sessions
from repro.core.qoe import SessionQoE
from repro.core.session import SessionArtifacts, SessionSetup, ViewingSession
from repro.netsim import fastpath
from repro.service.ingest import IngestPool
from repro.service.selection import DeliveryProtocol, select_protocol
from repro.service.world import ServiceWorld, WorldParameters
from repro.util.rng import child_rng

#: Wall time between session starts in the adb loop: 60 s watch + app
#: navigation overhead.
SESSION_CADENCE_S = 70.0


@dataclass
class StudyDataset:
    """Everything the automated-viewing harness collected."""

    sessions: List[SessionQoE] = field(default_factory=list)
    #: Aggregate traffic facts per session (chat/avatar accounting).
    avatar_bytes: List[int] = field(default_factory=list)
    down_bytes: List[int] = field(default_factory=list)
    #: Sessions requested but never sampled: the teleport retry budget
    #: ran out (scaled-down worlds with few live broadcasts).  Figure
    #: drivers should report this instead of silently plotting a
    #: truncated sample.
    shortfall: int = 0

    def by_protocol(self, protocol: str) -> List[SessionQoE]:
        return [s for s in self.sessions if s.protocol == protocol]

    def by_device(self, device: str) -> List[SessionQoE]:
        return [s for s in self.sessions if s.device == device]

    def by_limit(self, limit_mbps: float) -> List[SessionQoE]:
        # Tolerant match: sweep points are often computed (0.1 * 5 is not
        # 0.5 exactly), and exact float == would silently drop them.
        return [
            s for s in self.sessions
            if math.isclose(s.bandwidth_limit_mbps, limit_mbps,
                            rel_tol=1e-9, abs_tol=1e-12)
        ]

    def extend(self, other: "StudyDataset") -> None:
        self.sessions.extend(other.sessions)
        self.avatar_bytes.extend(other.avatar_bytes)
        self.down_bytes.extend(other.down_bytes)
        self.shortfall += other.shortfall


class AutomatedViewingStudy:
    """The paper's measurement harness, reborn against the simulator."""

    def __init__(self, config: StudyConfig) -> None:
        self.config = config
        obs.ensure_active(metrics=config.metrics_enabled,
                          tracing=config.tracing_enabled,
                          causes=config.causes_enabled,
                          health=config.health_enabled)
        self.world = ServiceWorld(
            WorldParameters(mean_concurrent=config.scaled(config.concurrent_broadcasts,
                                                          minimum=600)),
            seed=config.seed,
        )
        self.ingest = IngestPool(child_rng(config.seed, "ingest-pool"))
        self._teleport_rng = child_rng(config.seed, "teleport")
        self._session_counter = 0
        #: Recently watched ids, so the scaled-down world does not keep
        #: resampling its handful of popular broadcasts.
        self._recently_watched: List[str] = []

    # ------------------------------------------------------------- sampling

    def _next_setup(
        self,
        bandwidth_limit_mbps: float,
        chat_ui_on: bool = True,
        cache_avatars: bool = False,
        forced_protocol: Optional[DeliveryProtocol] = None,
    ) -> Optional[SessionSetup]:
        """Advance the world one cadence step and teleport."""
        self._session_counter += 1
        self.world.advance_to(self.world.now + SESSION_CADENCE_S)
        broadcast = self.world.teleport(
            self._teleport_rng, exclude=set(self._recently_watched)
        )
        if broadcast is None:
            return None
        self._recently_watched.append(broadcast.broadcast_id)
        if len(self._recently_watched) > 8:
            self._recently_watched.pop(0)
        age = self.world.now - broadcast.start_time
        remaining = broadcast.end_time - self.world.now
        if remaining < 5.0 or age <= 0.5:
            # The app would land on a dying/new broadcast; the loop just
            # teleports again, as ours does via the caller's retry.
            return None
        protocol = forced_protocol or select_protocol(
            broadcast, self.world.now, self.config.hls_viewer_threshold
        )
        device = GALAXY_S3 if self._session_counter % 2 == 0 else GALAXY_S4
        return SessionSetup(
            broadcast=broadcast,
            age_at_join=age,
            protocol=protocol,
            device=device,
            bandwidth_limit_mbps=bandwidth_limit_mbps,
            watch_seconds=self.config.watch_seconds,
            chat_ui_on=chat_ui_on,
            cache_avatars=cache_avatars,
            seed=child_rng(self.config.seed, "session", self._session_counter)
            .getrandbits(48),
            faults=self.config.faults,
        )

    def run_session(self, setup: SessionSetup) -> SessionArtifacts:
        """Execute one prepared session."""
        return ViewingSession(setup, ingest=self.ingest).run()

    # ----------------------------------------------------------------- runs

    def run_batch(
        self,
        n_sessions: int,
        bandwidth_limit_mbps: float = 100.0,
        chat_ui_on: bool = True,
        cache_avatars: bool = False,
        forced_protocol: Optional[DeliveryProtocol] = None,
        workers: Optional[int] = None,
    ) -> StudyDataset:
        """Run ``n_sessions`` Teleport sessions at one bandwidth limit.

        Two phases.  **Sampling** always runs serially on this thread:
        world evolution and the teleport RNG are the only order-sensitive
        state, so the sampled setups are identical for every worker
        count.  **Execution** runs the sampled sessions either inline
        (``workers`` <= 1) or fanned out over a process pool
        (:mod:`repro.core.parallel`); each session is hermetic given its
        setup, so both paths produce bit-identical datasets.
        """
        workers = self.config.workers if workers is None else workers
        telemetry = obs.active()
        metrics_on = telemetry.enabled and telemetry.metrics_on
        limit_label = f"{bandwidth_limit_mbps:g}"

        # ---- phase 1: serial sampling -----------------------------------
        setups: List[SessionSetup] = []
        attempts = 0
        while len(setups) < n_sessions and attempts < n_sessions * 4:
            attempts += 1
            setup = self._next_setup(
                bandwidth_limit_mbps,
                chat_ui_on=chat_ui_on,
                cache_avatars=cache_avatars,
                forced_protocol=forced_protocol,
            )
            if metrics_on:
                telemetry.metrics.counter(
                    "study_teleport_attempts_total",
                    "Teleport attempts (incl. dead/new-broadcast retries)",
                    limit=limit_label,
                ).inc()
            if setup is not None:
                setups.append(setup)

        dataset = StudyDataset()
        if len(setups) < n_sessions:
            dataset.shortfall = n_sessions - len(setups)
            warnings.warn(
                f"study batch shortfall: sampled {len(setups)} of "
                f"{n_sessions} sessions at {limit_label} Mbps before the "
                f"teleport retry budget ({n_sessions * 4} attempts) ran "
                f"out; the world has too few live broadcasts",
                RuntimeWarning,
                stacklevel=2,
            )
            if metrics_on:
                telemetry.metrics.counter(
                    "study_batch_shortfall_total",
                    "Requested sessions the teleport retry budget "
                    "could not sample",
                    limit=limit_label,
                ).inc(dataset.shortfall)

        # ---- phase 2: session execution ---------------------------------
        # The network-path switch scopes to execution only: sampling never
        # builds connections, and restoring the previous value keeps a
        # study from leaking its mode into the caller's process state.
        previous_fast = fastpath.enabled()
        fastpath.set_enabled(not self.config.exact_network)
        try:
            self._execute_batch(setups, dataset, workers, telemetry,
                                metrics_on, limit_label)
        finally:
            fastpath.set_enabled(previous_fast)
        return dataset

    def _execute_batch(self, setups, dataset, workers, telemetry,
                       metrics_on, limit_label) -> None:
        """Phase 2 of :meth:`run_batch`: run prepared setups (inline or
        fanned out) and fold results into ``dataset``."""
        if workers > 1 and len(setups) > 1:
            results, snapshots = run_sessions(
                setups,
                study_seed=self.config.seed,
                workers=workers,
                metrics_enabled=metrics_on,
                causes_enabled=telemetry.enabled and telemetry.causes_on,
                health_enabled=telemetry.enabled and telemetry.health_on,
                exact_network=self.config.exact_network,
            )
            for snapshot in snapshots:
                if snapshot.get("metrics") is not None:
                    telemetry.metrics.merge_from(snapshot["metrics"])
                if snapshot.get("causes") is not None:
                    telemetry.causes.merge_from(snapshot["causes"])
                if snapshot.get("health") is not None:
                    telemetry.health.merge_from(snapshot["health"])
            for result in results:
                dataset.sessions.append(result.qoe)
                dataset.avatar_bytes.append(result.avatar_bytes)
                dataset.down_bytes.append(result.down_bytes)
            if metrics_on and results:
                metrics = telemetry.metrics
                metrics.counter(
                    "study_sessions_total", "Study sessions completed",
                    limit=limit_label,
                ).inc(len(results))
                metrics.gauge(
                    "study_limit_progress",
                    "Sessions completed toward the per-limit target",
                    limit=limit_label,
                ).set(float(len(dataset.sessions)))
        else:
            for setup in setups:
                artifacts = self.run_session(setup)
                dataset.sessions.append(artifacts.qoe)
                dataset.avatar_bytes.append(artifacts.avatar_bytes)
                dataset.down_bytes.append(artifacts.total_down_bytes)
                if metrics_on:
                    metrics = telemetry.metrics
                    metrics.counter(
                        "study_sessions_total", "Study sessions completed",
                        limit=limit_label,
                    ).inc()
                    metrics.gauge(
                        "study_limit_progress",
                        "Sessions completed toward the per-limit target",
                        limit=limit_label,
                    ).set(float(len(dataset.sessions)))

    def run_unlimited(self, n_sessions: Optional[int] = None) -> StudyDataset:
        """The unshaped dataset (paper: 1796 RTMP + 1586 HLS sessions)."""
        count = n_sessions if n_sessions is not None else self.config.scaled(
            self.config.rtmp_sessions_unlimited + self.config.hls_sessions_unlimited,
            minimum=20,
        )
        return self.run_batch(count, bandwidth_limit_mbps=100.0)

    def run_bandwidth_sweep(
        self,
        sessions_per_limit: Optional[int] = None,
        limits_mbps: Optional[Sequence[float]] = None,
    ) -> Dict[float, StudyDataset]:
        """The tc sweep of Figures 3(b) and 4."""
        per_limit = sessions_per_limit if sessions_per_limit is not None else max(
            6, self.config.scaled(self.config.sessions_per_limit, minimum=6)
        )
        limits = list(limits_mbps if limits_mbps is not None
                      else self.config.bandwidth_limits_mbps)
        return {
            limit: self.run_batch(per_limit, bandwidth_limit_mbps=limit)
            for limit in limits
        }
