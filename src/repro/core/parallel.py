"""Process-parallel execution of prepared viewing sessions.

The automated-viewing study runs in two phases (see
:meth:`~repro.core.study.AutomatedViewingStudy.run_batch`): phase one
samples every :class:`~repro.core.session.SessionSetup` serially — world
evolution and the teleport RNG stay on one thread, so the sampled
population is byte-for-byte the same regardless of worker count — and
phase two executes the expensive :meth:`ViewingSession.run` calls.  This
module is phase two's fan-out: chunked dispatch over a
:class:`concurrent.futures.ProcessPoolExecutor` with an index-ordered
merge, so the parallel path returns results in exactly the order the
serial path would have produced them.

Why the results are bit-identical to the serial path:

* each session owns a private :class:`~repro.netsim.events.EventLoop`
  and derives every RNG stream from its own ``setup.seed``;
* the only shared state a session reads is the
  :class:`~repro.service.ingest.IngestPool`, which is immutable after
  construction and fully determined by the study seed — each worker
  rebuilds it from that seed in :func:`_worker_init`;
* telemetry never feeds back into simulation state, so workers record
  metrics into a private registry whose snapshot the parent folds in
  with :meth:`~repro.obs.metrics.MetricsRegistry.merge_from`.

A worker that raises propagates the exception to the parent through
``Future.result()`` — a poisoned setup fails the batch loudly instead of
hanging or silently dropping sessions.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro import obs
from repro.core.qoe import SessionQoE
from repro.netsim import fastpath
from repro.core.session import SessionSetup, ViewingSession
from repro.service.ingest import IngestPool
from repro.util.rng import Seedable, child_rng

#: Chunks dispatched per worker: small enough to balance skewed session
#: costs (a 0.5 Mbps session simulates far more packet events than an
#: unshaped one), large enough to amortize pickling.
CHUNKS_PER_WORKER = 4


@dataclass
class SessionResult:
    """The slim, picklable per-session outcome a worker ships back.

    Exactly what :class:`~repro.core.study.StudyDataset` keeps — the
    heavyweight :class:`SessionArtifacts` (full traffic capture, raw
    playbackMeta) never crosses the process boundary.
    """

    qoe: SessionQoE
    avatar_bytes: int
    down_bytes: int


#: Worker-process globals, installed once per worker by :func:`_worker_init`.
_WORKER_INGEST: Optional[IngestPool] = None
_WORKER_METRICS = False
_WORKER_CAUSES = False
_WORKER_HEALTH = False


def _worker_init(
    study_seed: Seedable,
    metrics_enabled: bool,
    causes_enabled: bool = False,
    health_enabled: bool = False,
    exact_network: bool = False,
) -> None:
    """Bootstrap one worker: rebuild the frozen ingest pool from the seed.

    ``IngestPool`` consumes its RNG entirely at construction and is
    immutable afterwards, so rebuilding it from
    ``child_rng(study_seed, "ingest-pool")`` yields the identical fleet
    the parent study holds.  Any telemetry state inherited over fork is
    discarded — each chunk activates (and snapshots) its own registry.
    """
    global _WORKER_INGEST, _WORKER_METRICS, _WORKER_CAUSES, _WORKER_HEALTH
    obs.deactivate()
    # Mirror the parent's network-path mode: a forked worker inherits the
    # parent's flag, but a spawned one starts at the default.
    fastpath.set_enabled(not exact_network)
    _WORKER_INGEST = IngestPool(child_rng(study_seed, "ingest-pool"))
    _WORKER_METRICS = metrics_enabled
    _WORKER_CAUSES = causes_enabled
    _WORKER_HEALTH = health_enabled


def _run_chunk(
    setups: Sequence[SessionSetup],
    start: int = 0,
) -> Tuple[List[SessionResult], Optional[dict]]:
    """Run one contiguous chunk of prepared setups inside a worker.

    Returns the per-session results in input order plus a telemetry
    snapshot covering exactly this chunk (``None`` when every surface is
    off).  The snapshot maps surface name -> surface snapshot, with keys
    only for enabled surfaces: ``{"metrics": ..., "causes": ...,
    "health": ...}``.  Telemetry is fresh per chunk so a worker that
    serves several chunks never double-counts.

    ``start`` is the chunk's offset in the full setup sequence: a
    session that raises gets the *global* index of the failing cell
    attached as ``cell_index`` (an instance attribute, so it survives
    the pickle trip back to the parent alongside the remote traceback),
    letting batch and campaign callers name the poisoned unit instead
    of guessing which of hundreds of sessions died.
    """
    if _WORKER_INGEST is None:
        raise RuntimeError("worker not initialized; dispatch via run_sessions")
    telemetry: Optional[obs.Telemetry] = None
    if _WORKER_METRICS or _WORKER_CAUSES or _WORKER_HEALTH:
        telemetry = obs.activate(
            obs.Telemetry(
                metrics=_WORKER_METRICS,
                tracing=False,
                profiling=False,
                causes=_WORKER_CAUSES,
                health=_WORKER_HEALTH,
            )
        )
    try:
        results = []
        for offset, setup in enumerate(setups):
            try:
                artifacts = ViewingSession(setup, ingest=_WORKER_INGEST).run()
            except Exception as error:
                error.cell_index = start + offset  # type: ignore[attr-defined]
                raise
            results.append(SessionResult(
                qoe=artifacts.qoe,
                avatar_bytes=artifacts.avatar_bytes,
                down_bytes=artifacts.total_down_bytes,
            ))
        snapshot: Optional[dict] = None
        if telemetry is not None:
            snapshot = {}
            if _WORKER_METRICS:
                snapshot["metrics"] = telemetry.metrics.snapshot()
            if _WORKER_CAUSES:
                snapshot["causes"] = telemetry.causes.snapshot()
            if _WORKER_HEALTH:
                snapshot["health"] = telemetry.health.snapshot()
    finally:
        if telemetry is not None:
            obs.deactivate()
    return results, snapshot


def chunk_bounds(n_items: int, workers: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` chunk bounds for ``n_items`` setups.

    Deterministic in (n_items, workers): the dispatch plan — and with it
    the parent's merge order — never depends on scheduling.
    """
    if n_items <= 0:
        return []
    chunk_size = max(1, math.ceil(n_items / (workers * CHUNKS_PER_WORKER)))
    return [
        (start, min(start + chunk_size, n_items))
        for start in range(0, n_items, chunk_size)
    ]


def run_sessions(
    setups: Sequence[SessionSetup],
    *,
    study_seed: Seedable,
    workers: int,
    metrics_enabled: bool = False,
    causes_enabled: bool = False,
    health_enabled: bool = False,
    exact_network: bool = False,
) -> Tuple[List[SessionResult], List[dict]]:
    """Fan ``ViewingSession.run()`` out across ``workers`` processes.

    Results come back index-ordered (position ``i`` belongs to
    ``setups[i]``), and the returned snapshots are in chunk order, so
    folding them into the parent registry is deterministic.  Cause
    ledgers merge as per-context dict unions (each session's floats stay
    together), which is why attribution reports are byte-identical for
    every worker count.  Worker exceptions re-raise here, in the parent.
    """
    if workers < 2:
        raise ValueError("run_sessions needs at least two workers; "
                         "the serial path handles workers=1")
    results: List[Optional[SessionResult]] = [None] * len(setups)
    snapshots: List[dict] = []
    bounds = chunk_bounds(len(setups), workers)
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_init,
        initargs=(study_seed, metrics_enabled, causes_enabled,
                  health_enabled, exact_network),
    ) as pool:
        futures = [
            (start, pool.submit(_run_chunk, list(setups[start:stop]), start))
            for start, stop in bounds
        ]
        for start, future in futures:
            chunk_results, snapshot = future.result()
            for offset, result in enumerate(chunk_results):
                results[start + offset] = result
            if snapshot is not None:
                snapshots.append(snapshot)
    assert all(result is not None for result in results)
    return results, snapshots  # type: ignore[return-value]


def _run_task(func, index: int, item):
    """Worker-side shim for :func:`run_tasks`: tag failures with the
    task index (instance attribute -> survives the pickle trip)."""
    try:
        return func(item)
    except Exception as error:
        error.task_index = index  # type: ignore[attr-defined]
        raise


def run_tasks(
    func,
    items: Sequence,
    *,
    workers: int,
    on_result=None,
) -> List:
    """Index-ordered process fan-out for hermetic task units.

    The generic sibling of :func:`run_sessions`, used by the campaign
    runner to dispatch whole cells: ``func`` must be a module-level
    callable (pickled by reference) and each item must be picklable and
    hermetic — the result may depend only on the item.  Results come
    back in input order; ``on_result(index, result)`` fires in the
    parent, also in input order, as each prefix of the submission
    completes — which is what lets a caller checkpoint finished work
    incrementally without ever observing completion order.  A task that
    raises re-raises here with ``task_index`` attached.
    """
    if workers < 2:
        raise ValueError("run_tasks needs at least two workers; "
                         "run items inline for the serial path")
    results: List = []
    with ProcessPoolExecutor(max_workers=workers) as pool:
        futures = [
            pool.submit(_run_task, func, index, item)
            for index, item in enumerate(items)
        ]
        for index, future in enumerate(futures):
            result = future.result()
            results.append(result)
            if on_result is not None:
                on_result(index, result)
    return results
