"""Population-scale studies: the mesoscale world anchored by exact sessions.

:mod:`repro.world` advances viewer cohorts with closed-form aggregate
dynamics and plans a stratified sample of members to promote to full
fidelity.  This module supplies the two halves the world layer cannot
import itself (it sits *below* ``core`` in the layer DAG):

* :func:`run_expansions` — the injected expansion runner.  A module-level
  callable (pickled by reference into pool workers) that rebuilds each
  sampled member's exact :class:`~repro.core.session.SessionSetup` and
  runs it through the unchanged per-packet simulator — same
  :class:`~repro.service.ingest.IngestPool` reconstruction, faults, and
  netsim fast path as :mod:`repro.core.parallel` workers;
* :class:`PopulationStudy` — the orchestration:
  serial population sampling in the parent (phase 1, exactly like
  :meth:`~repro.core.study.AutomatedViewingStudy.run_batch`), sharded
  world advancement over the process pool (phase 2), telemetry snapshot
  merge, and a :class:`PopulationResult` joining the exact population
  facts, the cohort aggregates, and the anchored session dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.automation.devices import GALAXY_S3, GALAXY_S4, DeviceProfile
from repro.core.config import StudyConfig
from repro.core.parallel import SessionResult
from repro.core.session import SessionSetup, ViewingSession
from repro.core.study import StudyDataset
from repro.faults.plan import FaultPlan
from repro.service.ingest import IngestPool
from repro.service.selection import DeliveryProtocol
from repro.util.rng import Seedable, child_rng
from repro.world.cohorts import CohortAggregate
from repro.world.popularity import (
    Population,
    PopulationParameters,
    build_broadcast,
    sample_population,
)
from repro.world.sampler import ExpansionRequest, joinable_min_duration_s
from repro.world.shards import WorldContext, WorldResult, run_world

#: Device roster by name — expansion requests carry the name (a plain
#: string pickles smaller and keeps the world layer free of automation
#: imports).
_DEVICES_BY_NAME: Dict[str, DeviceProfile] = {
    GALAXY_S3.name: GALAXY_S3,
    GALAXY_S4.name: GALAXY_S4,
}


def setup_for(
    world_seed: Seedable,
    request: ExpansionRequest,
    faults: Optional[FaultPlan] = None,
) -> SessionSetup:
    """Rebuild the exact :class:`SessionSetup` a sampled member denotes.

    Deterministic in ``(world_seed, request)``: the broadcaster is
    re-materialized from its index (same child stream, same duration
    floor as cohort formation), so the standalone setup equals the one
    the sharded world ran — the property the bit-identity suite pins.
    """
    broadcast = build_broadcast(
        world_seed,
        request.broadcaster_index,
        request.audience,
        joinable_min_duration_s(request.watch_seconds),
    )
    return SessionSetup(
        broadcast=broadcast,
        age_at_join=request.age_at_join_s,
        protocol=DeliveryProtocol(request.protocol_value),
        device=_DEVICES_BY_NAME[request.device_name],
        bandwidth_limit_mbps=request.bandwidth_limit_mbps,
        watch_seconds=request.watch_seconds,
        chat_ui_on=True,
        cache_avatars=False,
        seed=request.session_seed,
        faults=faults,
    )


def run_expansions(
    world_seed: Seedable,
    requests: Sequence[ExpansionRequest],
    faults: Optional[FaultPlan] = None,
    metrics_enabled: bool = False,
    causes_enabled: bool = False,
    health_enabled: bool = False,
) -> Tuple[List[SessionResult], Optional[List[dict]]]:
    """Run a shard's expansion requests at full fidelity, in order.

    The injected runner for :class:`~repro.world.shards.WorldContext`.
    The ingest pool is rebuilt from ``child_rng(world_seed,
    "ingest-pool")`` — the identical frozen fleet every study process
    holds — and results ship back in the slim picklable
    :class:`~repro.core.parallel.SessionResult` form.

    Telemetry is captured **per session** in a private registry whose
    snapshot ships back alongside the result (surface name -> snapshot,
    one dict per session; ``None`` when every surface is off).  Finer
    than :mod:`repro.core.parallel`'s per-chunk snapshots on purpose:
    the parent folds session snapshots in global session order, so the
    float accumulation tree — and with it the merged registry, byte for
    byte — is independent of shard *and* worker count.  Session-level
    tracing spans are not collected here for the same reason.
    """
    ingest = IngestPool(child_rng(world_seed, "ingest-pool"))
    telemetry_on = metrics_enabled or causes_enabled or health_enabled
    results: List[SessionResult] = []
    snapshots: Optional[List[dict]] = [] if telemetry_on else None
    for request in requests:
        previous = obs.active()
        telemetry: Optional[obs.Telemetry] = None
        if telemetry_on:
            telemetry = obs.activate(obs.Telemetry(
                metrics=metrics_enabled,
                tracing=False,
                profiling=False,
                causes=causes_enabled,
                health=health_enabled,
            ))
        try:
            artifacts = ViewingSession(
                setup_for(world_seed, request, faults), ingest=ingest
            ).run()
        finally:
            if telemetry is not None:
                obs.activate(previous) if previous.enabled else obs.deactivate()
        results.append(
            SessionResult(
                qoe=artifacts.qoe,
                avatar_bytes=artifacts.avatar_bytes,
                down_bytes=artifacts.total_down_bytes,
            )
        )
        if telemetry is not None and snapshots is not None:
            snapshot: dict = {}
            if metrics_enabled:
                snapshot["metrics"] = telemetry.metrics.snapshot()
            if causes_enabled:
                snapshot["causes"] = telemetry.causes.snapshot()
            if health_enabled:
                snapshot["health"] = telemetry.health.snapshot()
            snapshots.append(snapshot)
    return results, snapshots


@dataclass
class PopulationResult:
    """A completed population-scale study."""

    population: Population
    world: WorldResult
    #: Full-fidelity sampled sessions, in global broadcaster-index order
    #: — the same :class:`StudyDataset` shape every figure driver reads.
    sampled: StudyDataset = field(default_factory=StudyDataset)

    @property
    def totals(self) -> Dict[str, CohortAggregate]:
        return self.world.totals

    def stall_ratio(self, protocol_value: str) -> float:
        aggregate = self.world.totals.get(protocol_value)
        return aggregate.stall_ratio() if aggregate is not None else 0.0

    def mean_join_delay_s(self, protocol_value: str) -> float:
        aggregate = self.world.totals.get(protocol_value)
        if aggregate is None or aggregate.sessions <= 0.0:
            return 0.0
        return aggregate.join_seconds / aggregate.sessions


def run_population_cell(
    config: StudyConfig,
    viewers: int,
    sample_budget: int = 16,
    workers: int = 1,
) -> "PopulationResult":
    """One campaign-sized population unit: a full world advance at a
    viewer count, defaulting to serial execution.

    The memoization quantum of a ``population`` campaign cell
    (:mod:`repro.campaign`): everything the result depends on is in
    ``(config, viewers, sample_budget)`` — ``workers`` only picks the
    execution strategy, which the shard/worker-invariance suite proves
    is result-free.
    """
    params = PopulationParameters(viewers=viewers, sample_budget=sample_budget)
    return PopulationStudy(config, params).run(workers=workers)


class PopulationStudy:
    """Mesoscale study driver: cohort masses + stratified exact anchors.

    Mirrors :class:`~repro.core.study.AutomatedViewingStudy`'s two-phase
    discipline: population sampling runs serially in the parent (one
    child stream per broadcaster index, then one global integral
    apportionment), and the expensive phase — broadcast materialization,
    cohort advancement, and sampled full-fidelity sessions — fans out
    over index-sharded workers.
    """

    def __init__(
        self,
        config: StudyConfig,
        params: Optional[PopulationParameters] = None,
    ) -> None:
        self.config = config
        self.params = params if params is not None else PopulationParameters()
        obs.ensure_active(metrics=config.metrics_enabled,
                          tracing=config.tracing_enabled,
                          causes=config.causes_enabled,
                          health=config.health_enabled)

    def run(
        self,
        workers: Optional[int] = None,
        shards: Optional[int] = None,
    ) -> PopulationResult:
        """Advance the whole world and collect the anchored sample."""
        workers = self.config.workers if workers is None else workers
        telemetry = obs.active()
        metrics_on = telemetry.enabled and telemetry.metrics_on

        # ---- phase 1: serial population sampling ------------------------
        population = sample_population(self.config.seed, self.params)
        total_viewers = population.total_viewers
        sample_rate = (
            self.params.sample_budget / total_viewers if total_viewers else 0.0
        )

        # ---- phase 2: sharded world advancement -------------------------
        context = WorldContext(
            seed=self.config.seed,
            watch_seconds=self.config.watch_seconds,
            hls_viewer_threshold=self.config.hls_viewer_threshold,
            sample_rate=sample_rate,
            faults=self.config.faults,
            exact_network=self.config.exact_network,
            metrics_enabled=metrics_on,
            causes_enabled=telemetry.enabled and telemetry.causes_on,
            health_enabled=telemetry.enabled and telemetry.health_on,
            runner=run_expansions,
        )
        world = run_world(
            context,
            population.viewers_by_broadcaster,
            workers=workers,
            shards=shards,
        )
        for snapshot in world.telemetry_snapshots:
            if snapshot.get("metrics") is not None:
                telemetry.metrics.merge_from(snapshot["metrics"])
            if snapshot.get("causes") is not None:
                telemetry.causes.merge_from(snapshot["causes"])
            if snapshot.get("health") is not None:
                telemetry.health.merge_from(snapshot["health"])

        sampled = StudyDataset()
        for result in world.session_results:
            sampled.sessions.append(result.qoe)
            sampled.avatar_bytes.append(result.avatar_bytes)
            sampled.down_bytes.append(result.down_bytes)

        if metrics_on:
            metrics = telemetry.metrics
            metrics.counter(
                "population_viewers_total",
                "Concurrent viewers advanced in cohort form",
            ).inc(total_viewers)
            metrics.counter(
                "population_broadcasters_total",
                "Broadcasters materialized for cohort advancement",
            ).inc(population.n_broadcasters)
            metrics.counter(
                "population_sampled_sessions_total",
                "Cohort members promoted to full-fidelity sessions",
            ).inc(len(sampled.sessions))

        return PopulationResult(
            population=population, world=world, sampled=sampled
        )
