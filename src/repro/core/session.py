"""One automated viewing session, end to end.

Reproduces the paper's adb loop for a single broadcast: tap Teleport,
resolve the broadcast through the API, connect over the selected
protocol, watch for exactly 60 seconds with the chat pane visible (the
app's default), then close — while tcpdump runs on the tether and the
app finally uploads its playbackMeta statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from repro import obs
from repro.automation.devices import DeviceProfile
from repro.automation.ntp import BROADCASTER_PHONE_CLOCK, CAPTURE_DESKTOP_CLOCK
from repro.automation.shaping import shaper_for_limit
from repro.core.qoe import SessionQoE
from repro.core.testbed import SessionTestbed, TestbedConfig, VIEWER_LOCATION
from repro.faults.plan import FaultPlan
from repro.faults.retry import RetrySchedule
from repro.media.frames import EncodedFrame
from repro.netsim.connection import Connection, Message
from repro.netsim.events import EventLoop
from repro.player.chat_client import ChatClient
from repro.player.hls_player import HlsPlayer
from repro.player.rtmp_player import RtmpPlayer
from repro.protocols.http import HttpClient, HttpRequest, HttpResponse, HttpServer, HttpStatus
from repro.protocols.rtmp import (
    HANDSHAKE_C0,
    HANDSHAKE_C1,
    HANDSHAKE_C2,
    HANDSHAKE_S0S1S2,
    RtmpPushSession,
)
from repro.service.broadcast import Broadcast
from repro.service.chat import ChatFeed
from repro.service.delivery import HlsOrigin, LiveSourceDriver, RtmpDelivery
from repro.service.geo import GeoPoint
from repro.service.ingest import IngestPool, nearest_cdn_edge
from repro.service.selection import DeliveryProtocol
from repro.util.rng import child_rng

#: Fixed server locations (API frontend and chat in San Francisco —
#: Periscope/Twitter infrastructure — avatars in us-east S3).
API_LOCATION = GeoPoint(37.8, -122.4)
CHAT_LOCATION = GeoPoint(37.8, -122.4)
S3_LOCATION = GeoPoint(38.9, -77.4)

#: History the driver generates before the join, per protocol.
RTMP_HISTORY_S = 3.0
HLS_HISTORY_S = 16.0


@dataclass
class SessionSetup:
    """Everything needed to run one session deterministically."""

    broadcast: Broadcast
    age_at_join: float
    protocol: DeliveryProtocol
    device: DeviceProfile
    bandwidth_limit_mbps: float = 100.0
    watch_seconds: float = 60.0
    chat_ui_on: bool = True
    cache_avatars: bool = False
    seed: int = 0
    #: Optional fault plan; ``None`` runs the pristine network with
    #: bit-identical behaviour to builds that predate fault injection.
    faults: Optional[FaultPlan] = None


@dataclass
class SessionArtifacts:
    """Raw per-session outputs beyond the QoE record (for the capture
    pipeline and for debugging)."""

    qoe: SessionQoE
    capture: object
    playback_meta: dict
    chat_messages: int
    avatar_requests: int
    avatar_bytes: int
    duplicate_avatar_downloads: int
    total_down_bytes: int


class ViewingSession:
    """Builds the testbed, runs the 60 s watch, and reports QoE."""

    def __init__(self, setup: SessionSetup, ingest: Optional[IngestPool] = None) -> None:
        self.setup = setup
        seed = (setup.seed, setup.broadcast.broadcast_id)
        self._rng = child_rng(seed, "session")
        self.ingest = ingest or IngestPool(child_rng(seed, "ingest"))
        self.loop = EventLoop()
        self.testbed = SessionTestbed(
            self.loop,
            TestbedConfig(
                shaper=shaper_for_limit(setup.bandwidth_limit_mbps),
                faults=setup.faults,
                fault_seed=seed,
                fault_horizon_s=setup.watch_seconds + 10.0,
            ),
        )
        self._capture_clock_error = CAPTURE_DESKTOP_CLOCK.sample_offset(
            child_rng(seed, "capture-clock")
        )
        self._broadcaster_clock_error = BROADCASTER_PHONE_CLOCK.sample_offset(
            child_rng(seed, "broadcaster-clock")
        )
        self._viewers = setup.broadcast.viewers_at(
            setup.broadcast.start_time + setup.age_at_join
        )
        self._player: Optional[object] = None
        self._rtmp_push: Optional[RtmpPushSession] = None
        self._rtmp_delivery: Optional[RtmpDelivery] = None
        self._delivery_started = False
        self._fault_events: List[str] = []
        self._api_retries = 0
        self._ingest_windows: List[Tuple[float, float]] = []

    # -------------------------------------------------------------- topology

    def _media_server_location(self) -> GeoPoint:
        if self.setup.protocol == DeliveryProtocol.RTMP:
            return self.ingest.nearest_to(self.setup.broadcast.location).location
        return nearest_cdn_edge(VIEWER_LOCATION).location

    # ------------------------------------------------------------------- run

    def run(self) -> SessionArtifacts:
        setup = self.setup
        loop = self.loop
        tb = self.testbed
        telemetry = obs.active()
        if telemetry.enabled and telemetry.causes_on:
            # Scope the attribution ledger to this session.  The key is
            # derived from the setup (never from execution order), so a
            # parallel run's per-context buckets merge back into exactly
            # the serial ledger.
            plan_key = (setup.faults.describe()
                        if setup.faults is not None else "none")
            telemetry.causes.set_context(
                f"{setup.broadcast.broadcast_id}"
                f":{setup.seed}"
                f":{setup.bandwidth_limit_mbps:g}"
                f":{plan_key}"
            )
        session_span = None
        if telemetry.enabled and telemetry.tracing_on:
            session_span = telemetry.tracer.begin(
                "session", sim_time=0.0,
                broadcast_id=setup.broadcast.broadcast_id,
                protocol=setup.protocol.value,
                device=setup.device.name,
                bandwidth_limit_mbps=setup.bandwidth_limit_mbps,
            )
        tb.add_server("api", API_LOCATION)
        tb.add_server("media", self._media_server_location())
        tb.add_server("chat", CHAT_LOCATION)
        tb.add_server("s3", S3_LOCATION)

        history = RTMP_HISTORY_S if setup.protocol == DeliveryProtocol.RTMP else HLS_HISTORY_S
        driver = LiveSourceDriver(
            loop,
            setup.broadcast,
            age_at_join=setup.age_at_join,
            horizon_s=setup.watch_seconds + 5.0,
            generate_from=max(0.0, setup.age_at_join - history),
            broadcaster_clock_offset_s=self._broadcaster_clock_error,
        )

        # --- fault plan ----------------------------------------------------
        plan = setup.faults
        seed = (setup.seed, setup.broadcast.broadcast_id)
        api_fault = None
        api_retry_rng = None
        if plan is not None and plan.has_api_faults:
            api_fault = plan.api_injector(child_rng(seed, "fault-api"))
        if plan is not None:
            api_retry_rng = child_rng(seed, "fault-api-retry")
        if plan is not None and plan.has_ingest_faults:
            self._ingest_windows = plan.ingest_windows(
                child_rng(seed, "fault-ingest"), setup.watch_seconds
            )
            for window_start, _window_end in self._ingest_windows:
                self._fault_events.append(f"ingest-outage@{window_start:.2f}")

        # --- API frontend -------------------------------------------------
        api_stream = tb.stream_to("api", name="api")
        api_responses = {"count": 0}

        def api_handler(request: HttpRequest, identity: str) -> HttpResponse:
            if api_fault is not None and api_fault.fire():
                tel = obs.active()
                if tel.enabled and tel.metrics_on:
                    tel.metrics.counter(
                        "faults_injected_total",
                        "Fault events injected across layers",
                        kind="api-5xx",
                    ).inc()
                return HttpResponse(
                    HttpStatus.SERVICE_UNAVAILABLE,
                    json_body={"error": "Service Unavailable"},
                )
            api_responses["count"] += 1
            return HttpResponse(HttpStatus.OK, json_body={"ok": True})

        HttpServer(loop, api_stream, api_handler, processing_delay_s=0.030)
        api_client = HttpClient(loop, api_stream)

        def api_call(json_body: dict, on_ok, kind: str) -> None:
            """Issue one API request; with a fault plan active, walk the
            shared retry policy on 5xx and degrade gracefully (a recorded
            fault event) when the budget runs out."""
            request = HttpRequest("POST", "/api/v2/apiRequest", json_body=json_body)
            if plan is None:
                api_client.request(request, on_ok)
                return
            schedule = RetrySchedule(
                plan.retry, rng=api_retry_rng, started_at=loop.now
            )

            def send() -> None:
                api_client.request(request, on_response)

            def on_response(response: HttpResponse, now: float) -> None:
                if response.status != HttpStatus.OK:
                    delay = schedule.next_delay(now)
                    if delay is None:
                        self._fault_events.append(f"api-gave-up:{kind}")
                        return
                    self._api_retries += 1
                    tel = obs.active()
                    if tel.enabled and tel.metrics_on:
                        tel.metrics.counter(
                            "retries_total", "Client retry attempts",
                            kind="session-api",
                        ).inc()
                    if tel.enabled and tel.causes_on:
                        tel.causes.add("api.retry_backoff", delay)
                    loop.schedule(delay, send)
                    return
                on_ok(response, now)

            send()

        # --- media path ----------------------------------------------------
        if setup.protocol == DeliveryProtocol.RTMP:
            self._setup_rtmp(driver)
        else:
            self._setup_hls(driver)

        driver.start()

        # --- chat ----------------------------------------------------------
        chat_stream = tb.stream_to("chat", name="chat")

        def s3_handler(request: HttpRequest, identity: str) -> HttpResponse:
            nbytes = int(request.headers.get("x-size", "30000"))
            return HttpResponse(HttpStatus.OK, body_bytes=nbytes)

        from repro.player.chat_client import AVATAR_POOL_CONNECTIONS

        avatar_clients = []
        for pool_index in range(AVATAR_POOL_CONNECTIONS):
            s3_stream = tb.stream_to("s3", name=f"s3-{pool_index}")
            HttpServer(loop, s3_stream, s3_handler, processing_delay_s=0.005)
            avatar_clients.append(HttpClient(loop, s3_stream))
        chat_client = ChatClient(
            loop,
            avatar_clients,
            ui_on=setup.chat_ui_on,
            cache_avatars=setup.cache_avatars,
        )
        chat_stream.on_at_a = chat_client.on_message
        feed = ChatFeed(child_rng((setup.seed, setup.broadcast.broadcast_id), "chat"),
                        viewers=self._viewers)
        # Joining delivers the recent chat history as one burst (avatar
        # downloads then compete with initial video buffering).
        history_at = 0.35  # right after the websocket connects
        for chat_msg in feed.history():
            loop.schedule_at(
                history_at,
                lambda m=chat_msg: (
                    None
                    if chat_stream.closed
                    else chat_stream.send_from_b(
                        Message(
                            payload=m,
                            nbytes=m.frame_bytes(),
                            annotations={"protocol": "websocket", "kind": "history"},
                        )
                    )
                ),
            )
        for chat_msg in feed.messages(setup.watch_seconds + 2.0):
            loop.schedule_at(
                chat_msg.timestamp,
                lambda m=chat_msg: (
                    None
                    if chat_stream.closed
                    else chat_stream.send_from_b(
                        Message(
                            payload=m,
                            nbytes=m.frame_bytes(),
                            annotations={"protocol": "websocket", "kind": "chat"},
                        )
                    )
                ),
            )

        # --- the Teleport tap: API exchange, then connect ------------------
        def on_access_video(response: HttpResponse, now: float) -> None:
            self._begin_media(now)

        def on_teleport(response: HttpResponse, now: float) -> None:
            api_call(
                {"request": "accessVideo",
                 "broadcast_id": setup.broadcast.broadcast_id},
                on_access_video,
                kind="accessVideo",
            )

        api_call(
            {"request": "getBroadcasts",
             "broadcast_ids": [setup.broadcast.broadcast_id]},
            on_teleport,
            kind="getBroadcasts",
        )

        # --- run the watch --------------------------------------------------
        loop.run_until(setup.watch_seconds)
        report = self._player.finalize(setup.watch_seconds)

        # The app uploads playbackMeta after the session closes.
        playback_meta = self._playback_meta(report)
        api_call(
            {"request": "playbackMeta", "stats": playback_meta},
            lambda resp, t: None,
            kind="playbackMeta",
        )
        loop.run_until(setup.watch_seconds + 2.0)

        qoe = self._build_qoe(report)
        if telemetry.enabled:
            end_time = setup.watch_seconds + 2.0
            if session_span is not None:
                self._record_lifecycle_spans(telemetry, session_span, report,
                                             end_time)
            if telemetry.metrics_on:
                self._record_session_metrics(telemetry, report)
        return SessionArtifacts(
            qoe=qoe,
            capture=tb.capture,
            playback_meta=playback_meta,
            chat_messages=chat_client.messages_received,
            avatar_requests=chat_client.avatar_requests,
            avatar_bytes=chat_client.avatar_bytes_received,
            duplicate_avatar_downloads=chat_client.duplicate_avatar_downloads,
            total_down_bytes=tb.capture.total_bytes(direction="down"),
        )

    # --------------------------------------------------------------- protocols

    def _begin_media(self, now: float) -> None:
        """API resolution done: connect to the media server."""
        if self.setup.protocol == DeliveryProtocol.RTMP:
            self._rtmp_handshake()
        else:
            self._hls_player.start()

    def _setup_rtmp(self, driver: LiveSourceDriver) -> None:
        setup = self.setup
        down_fwd, down_rev = self.testbed.server_paths("media")
        player = RtmpPlayer(
            self.loop,
            broadcast_start=-setup.age_at_join,
            capture_clock_error_s=self._capture_clock_error,
        )
        player.set_display_fps_factor(self._display_factor())
        def client_side(message: Message, now: float) -> None:
            if message.annotations.get("protocol") == "rtmp-control":
                # S0S1S2 arrived: finish the handshake and ask to play.
                self._rtmp_up.send(
                    Message(payload="C2+play", nbytes=HANDSHAKE_C2 + 200,
                            annotations={"protocol": "rtmp", "kind": "handshake"})
                )
                return
            player.on_message(message, now)

        down_conn = Connection(
            self.loop, down_fwd, down_rev, on_message=client_side,
            name="rtmp-down",
        )
        up_fwd = self.testbed.net.path("phone", "desktop", "media")
        up_rev = self.testbed.net.path("media", "desktop", "phone")
        self._rtmp_up = Connection(
            self.loop, up_fwd, up_rev, on_message=self._rtmp_server_side,
            name="rtmp-up",
        )
        self._rtmp_push = RtmpPushSession(down_conn)
        self._rtmp_delivery = RtmpDelivery(self._rtmp_push, driver)
        self._player = player
        self._handshake_stage = 0
        if self._ingest_windows:
            reconnect_rng = child_rng(
                (setup.seed, setup.broadcast.broadcast_id), "fault-reconnect"
            )
            for window in self._ingest_windows:
                self.loop.schedule_at(
                    window[0],
                    lambda w=window, r=reconnect_rng: self._on_ingest_outage(
                        w[0], w[1], r
                    ),
                )

    def _on_ingest_outage(self, window_start: float, window_end: float,
                          rng: random.Random) -> None:
        """An ingest server went down mid-stream: the RTMP push stops and
        the player walks the reconnect policy.  With regional failover a
        healthy region accepts immediately; otherwise reconnects fail
        until the primary recovers at ``window_end``."""
        delivery = self._rtmp_delivery
        if delivery is None or not delivery.started or delivery.interrupted:
            return
        delivery.interrupt()
        telemetry = obs.active()
        if telemetry.enabled and telemetry.metrics_on:
            telemetry.metrics.counter(
                "faults_injected_total", "Fault events injected across layers",
                kind="ingest-outage",
            ).inc()
        plan = self.setup.faults
        assert plan is not None
        primary = self.ingest.nearest_to(self.setup.broadcast.location)
        failover_ok = plan.ingest_failover and any(
            s.region != primary.region for s in self.ingest.servers
        )

        def probe(now: float) -> bool:
            return failover_ok or now >= window_end

        outage_began = self.loop.now

        def on_restored(now: float) -> None:
            tel = obs.active()
            if tel.enabled and tel.causes_on:
                tel.causes.add("service.outage", now - outage_began)
            delivery.resume()

        self._player.begin_reconnect(plan.retry, probe, on_restored, rng=rng)

    def _rtmp_handshake(self) -> None:
        # C0+C1 travel to the server; the reply and the play command are
        # handled in _rtmp_server_side / _rtmp_client_side.
        self._rtmp_up.send(
            Message(payload="C0C1", nbytes=HANDSHAKE_C0 + HANDSHAKE_C1,
                    annotations={"protocol": "rtmp", "kind": "handshake"})
        )

    def _rtmp_server_side(self, message: Message, now: float) -> None:
        kind = message.payload
        if kind == "C0C1":
            # S0+S1+S2 ride the down connection ahead of any media.
            assert self._rtmp_push is not None
            self._rtmp_push.connection.send(
                Message(payload="S0S1S2", nbytes=HANDSHAKE_S0S1S2,
                        annotations={"protocol": "rtmp-control", "kind": "handshake"})
            )
        elif kind == "C2+play":
            if not self._delivery_started:
                self._delivery_started = True
                self._rtmp_delivery.start()

    def _display_factor(self) -> float:
        device = self.setup.device
        rng = child_rng((self.setup.seed, self.setup.broadcast.broadcast_id), "device")
        factor = device.display_fps_factor + rng.gauss(0.0, device.display_fps_jitter)
        return min(max(factor, 0.5), 1.0)

    def _setup_hls(self, driver: LiveSourceDriver) -> None:
        setup = self.setup
        origin = HlsOrigin(self.loop, driver,
                           outage_windows=tuple(self._ingest_windows))
        playlist_stream = self.testbed.stream_to("media", name="hls-playlist")
        segment_stream = self.testbed.stream_to("media", name="hls-segments")
        HttpServer(self.loop, playlist_stream, origin.handle, processing_delay_s=0.003)
        HttpServer(self.loop, segment_stream, origin.handle, processing_delay_s=0.003)
        player_kwargs = {}
        if setup.faults is not None:
            player_kwargs = {
                "transport_retry": setup.faults.retry,
                "retry_rng": child_rng(
                    (setup.seed, setup.broadcast.broadcast_id), "fault-hls-retry"
                ),
            }
        player = HlsPlayer(
            self.loop,
            playlist_client=HttpClient(self.loop, playlist_stream),
            segment_client=HttpClient(self.loop, segment_stream),
            playlist_path=f"/{setup.broadcast.broadcast_id}/playlist.m3u8",
            broadcast_start=-setup.age_at_join,
            capture_clock_error_s=self._capture_clock_error,
            **player_kwargs,
        )
        player.set_display_fps_factor(self._display_factor())
        self._hls_origin = origin
        self._hls_player = player
        self._player = player
        # Process pre-join history once the driver has generated it.
        self.loop.schedule(0.0, origin.start)

    # ------------------------------------------------------------- telemetry

    def _record_lifecycle_spans(self, telemetry, session_span, report,
                                end_time: float) -> None:
        """Reconstruct join → playback → stalls → teardown as sim-time
        child spans of the session span, from the playback report."""
        tracer = telemetry.tracer
        watch = self.setup.watch_seconds
        if not report.started:
            tracer.record("session.join", 0.0, end_time, parent=session_span,
                          started=False)
            tracer.end(session_span, sim_time=end_time)
            return
        tracer.record("session.join", 0.0, report.join_time_s,
                      parent=session_span)
        cursor = report.join_time_s
        for stall in sorted(report.stalls, key=lambda s: s.start):
            if stall.start > cursor:
                tracer.record("session.playback", cursor, stall.start,
                              parent=session_span)
            tracer.record("session.stall", stall.start,
                          stall.start + stall.duration, parent=session_span)
            cursor = stall.start + stall.duration
        if cursor < watch:
            tracer.record("session.playback", cursor, watch,
                          parent=session_span)
        tracer.record("session.teardown", watch, end_time,
                      parent=session_span)
        tracer.end(session_span, sim_time=end_time)

    def _record_session_metrics(self, telemetry, report) -> None:
        setup = self.setup
        metrics = telemetry.metrics
        protocol = setup.protocol.value
        limit = f"{setup.bandwidth_limit_mbps:g}"
        metrics.counter(
            "sessions_total", "Viewing sessions completed",
            protocol=protocol, limit=limit, device=setup.device.name,
        ).inc()
        metrics.histogram(
            "session_join_seconds", "Join time per session",
            protocol=protocol,
        ).observe(report.join_time_s)
        if report.started and setup.watch_seconds > 0:
            metrics.histogram(
                "session_stall_ratio",
                "Stall time share of the watch window",
                buckets=(0.0, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
                protocol=protocol, limit=limit,
            ).observe(report.total_stall_s / setup.watch_seconds)
            metrics.counter(
                "session_stalls_total", "Stalls across sessions",
                protocol=protocol, limit=limit,
            ).inc(report.stall_count)

    # --------------------------------------------------------------- reporting

    def _playback_meta(self, report) -> dict:
        """What the app reports: RTMP includes stall durations, HLS only
        the stall count (Section 2)."""
        meta = {
            "protocol": self.setup.protocol.value,
            "n_stalls": report.stall_count,
        }
        if self.setup.protocol == DeliveryProtocol.RTMP:
            meta["avg_stall_s"] = (
                report.total_stall_s / report.stall_count if report.stall_count else 0.0
            )
            meta["playback_s"] = report.playback_s
            meta["latency_s"] = report.mean_playback_latency_s
        return meta

    def _build_qoe(self, report) -> SessionQoE:
        player = self._player
        frames: List[EncodedFrame] = player.video_frames
        bitrate = qp = fps = None
        if frames:
            pts = sorted(f.pts for f in frames)
            span = pts[-1] - pts[0]
            if span > 1.0:
                bitrate = sum(f.nbytes for f in frames) * 8.0 / span
            qp = sum(f.qp for f in frames) / len(frames)
            fps = player.displayed_fps(report)
        fault_events = list(self._fault_events)
        if getattr(player, "gave_up", False) or getattr(
            player, "reconnect_gave_up", False
        ):
            fault_events.append("player-gave-up")
        qoe = SessionQoE(
            broadcast_id=self.setup.broadcast.broadcast_id,
            protocol=self.setup.protocol.value,
            device=self.setup.device.name,
            bandwidth_limit_mbps=self.setup.bandwidth_limit_mbps,
            watch_seconds=self.setup.watch_seconds,
            join_time_s=report.join_time_s,
            playback_s=report.playback_s,
            stalls=report.stalls,
            playback_latency_s=report.mean_playback_latency_s,
            delivery_latency_samples=list(player.delivery_latency_samples),
            video_bitrate_bps=bitrate,
            avg_qp=qp,
            avg_fps=fps,
            avg_viewers=self._viewers,
            fault_events=fault_events,
            api_retries=self._api_retries,
            transport_retries=getattr(player, "transport_retries", 0),
            disconnects=getattr(player, "disconnects", 0),
            reconnects=getattr(player, "reconnects", 0),
            join_causes=getattr(report, "join_causes", None),
        )
        telemetry = obs.active()
        if telemetry.enabled and telemetry.health_on:
            health = telemetry.health
            health.check(
                "qoe.consistent", qoe.consistent(),
                f"{qoe.broadcast_id}: join {qoe.join_time_s:.3f} + "
                f"playback {qoe.playback_s:.3f} + stall "
                f"{qoe.total_stall_s:.3f} != watch {qoe.watch_seconds:.3f}",
            )
            plan = self.setup.faults
            if plan is not None:
                # Three API calls per session, each bounded by the
                # shared retry budget (the test_properties bound).
                budget = 3 * plan.retry.max_attempts
                health.check(
                    "session.retries_bounded",
                    qoe.api_retries <= budget,
                    f"{qoe.broadcast_id}: {qoe.api_retries} API retries "
                    f"over budget {budget}",
                )
            else:
                health.check(
                    "session.retries_bounded", qoe.api_retries == 0,
                    f"{qoe.broadcast_id}: {qoe.api_retries} API retries "
                    f"without a fault plan",
                )
        return qoe
