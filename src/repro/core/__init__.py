"""The study itself: configuration, QoE metrics and orchestration.

This package is the reproduction of the paper's *methodology* — the
quantities Section 5 defines (stall ratio, join time, playback latency,
delivery latency) and the harnesses that generate the two datasets
(service crawl; automated 60-second viewing sessions).
"""

from repro.core.config import StudyConfig
from repro.core.qoe import SessionQoE, stall_ratio

__all__ = ["StudyConfig", "SessionQoE", "stall_ratio"]
