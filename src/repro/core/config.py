"""Experiment configuration.

One :class:`StudyConfig` carries every knob of the reproduction: the
paper's session counts, watch duration, bandwidth-limit sweep, and the
service-scale parameters.  All experiments accept a config plus a seed so
results are reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

from repro.faults.plan import FaultPlan
from repro.util.units import MBPS


#: Bandwidth limits (Mbps) used for the tc sweep in Figures 3(b) and 4.
#: ``None``-like "unlimited" is encoded as 100 Mbps, matching the paper's
#: x-axis label "100" for the unlimited case.
DEFAULT_BANDWIDTH_LIMITS_MBPS: Tuple[float, ...] = (
    0.5,
    1.0,
    2.0,
    3.0,
    4.0,
    5.0,
    6.0,
    7.0,
    8.0,
    9.0,
    10.0,
    100.0,
)


@dataclass
class StudyConfig:
    """Tunable parameters of the reproduction study.

    Defaults reproduce the paper's dataset sizes where given, scaled down
    by :attr:`scale` so the default test/bench runs stay laptop-sized.
    With ``scale=1.0`` the populations match the paper (4615 QoE
    sessions, ≈220 K crawled broadcasts).
    """

    #: Master seed; every subsystem derives independent child streams.
    seed: int = 2016
    #: Linear scale factor on population sizes (1.0 = paper scale).
    scale: float = 0.05
    #: Worker processes for session execution in
    #: :meth:`~repro.core.study.AutomatedViewingStudy.run_batch`.  1 runs
    #: everything inline; higher values fan sessions out over a process
    #: pool (results are bit-identical either way — sampling stays
    #: serial and each session is hermetic given its setup).
    workers: int = 1

    # ---------------------------------------------------------------- QoE study
    #: Seconds each broadcast is watched after pressing Teleport (paper: 60 s).
    watch_seconds: float = 60.0
    #: Unlimited-bandwidth RTMP sessions (paper: 1796).
    rtmp_sessions_unlimited: int = 1796
    #: Unlimited-bandwidth HLS sessions (paper: 1586).
    hls_sessions_unlimited: int = 1586
    #: Sessions recorded per bandwidth limit (paper: 18-91; we use the middle).
    sessions_per_limit: int = 54
    #: The tc sweep (Mbps); 100 encodes "unlimited".
    bandwidth_limits_mbps: Sequence[float] = DEFAULT_BANDWIDTH_LIMITS_MBPS

    # ------------------------------------------------------------- service scale
    #: Concurrent public live broadcasts with disclosed location (paper
    #: discovers 1 K-4 K in a deep crawl).
    concurrent_broadcasts: int = 2500
    #: Distinct broadcasts tracked across the targeted crawls (paper: ≈220 K).
    tracked_broadcasts: int = 220_000
    #: Viewer threshold above which the service serves a broadcast over HLS
    #: via the CDN (paper estimates ≈100).
    hls_viewer_threshold: int = 100

    # ------------------------------------------------------------------ faults
    #: Optional fault scenario (see :mod:`repro.faults`).  ``None`` means
    #: the pristine network of the original study; a plan's randomness
    #: comes from dedicated child streams, so setups and unfaulted
    #: subsystems sample identically either way.
    faults: Optional[FaultPlan] = None

    # --------------------------------------------------------------- telemetry
    #: Opt-in observability (see :mod:`repro.obs`).  Both default off;
    #: enabling them never changes simulation results — metrics, spans,
    #: and the event-loop profile observe without consuming RNG or
    #: reordering events (guarded by a determinism regression test).
    metrics_enabled: bool = False
    tracing_enabled: bool = False
    #: Stall forensics: per-cause delay attribution and online invariant
    #: monitors (see :mod:`repro.obs.causes` / :mod:`repro.obs.health`).
    #: Same contract as the other telemetry flags — opt-in, RNG-free,
    #: bit-identical QoE on or off.
    causes_enabled: bool = False
    health_enabled: bool = False

    # ------------------------------------------------------------------ network
    #: Force the exact per-packet network path (one event-loop callback
    #: per packet per link) instead of the default segment-granularity
    #: fast path (:mod:`repro.netsim.fastpath`).  Results are
    #: bit-identical either way — enforced by the fast-path identity
    #: tests — so this is a debugging/verification knob, not a fidelity
    #: one.
    exact_network: bool = False
    #: Unshaped access bandwidth of the tethered phone (paper: >100 Mbps).
    access_bandwidth_bps: float = 100.0 * MBPS
    #: One-way propagation delay phone <-> tethering desktop.
    tether_delay_s: float = 0.001
    #: One-way propagation delay desktop <-> nearest servers.
    internet_delay_s: float = 0.020

    def scaled(self, count: int, minimum: int = 1) -> int:
        """Apply the population scale factor to a paper-sized count."""
        return max(minimum, int(round(count * self.scale)))

    def with_scale(self, scale: float) -> "StudyConfig":
        """A copy of this config at a different population scale."""
        import dataclasses

        return dataclasses.replace(self, scale=scale)

    def limit_bps(self, limit_mbps: float) -> float:
        """Convert a sweep point to bits/second (100 means unlimited and is
        returned as the unshaped access bandwidth)."""
        if limit_mbps >= 100.0:
            return self.access_bandwidth_bps
        return limit_mbps * MBPS
