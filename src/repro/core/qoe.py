"""QoE metric definitions (Section 5 of the paper).

* **stall ratio** — summed stall time divided by total stream duration
  (stall + playback time).
* **join time** (startup latency) — watch duration minus playback and
  stall time; the time between pressing Teleport and the first frame.
* **playback latency** — end-to-end latency from capture at the
  broadcaster to display at the viewer.
* **video delivery latency** — network-only part of playback latency,
  computed from NTP timestamps the broadcaster embeds in the video data
  minus the capture time of the packet carrying them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.player.buffer import StallEvent  # noqa: F401  (re-exported API)


def stall_ratio(total_stall_s: float, playback_s: float) -> float:
    """Summed stall time over total stream duration (stall + playback).

    Returns 0 for an empty session rather than dividing by zero: a session
    that never started playing has no stall time either.
    """
    if total_stall_s < 0 or playback_s < 0:
        raise ValueError("durations must be non-negative")
    duration = total_stall_s + playback_s
    if duration == 0:
        return 0.0
    return total_stall_s / duration


@dataclass
class SessionQoE:
    """Everything the study records about one viewing session.

    Mirrors the union of what the app's ``playbackMeta`` reports (RTMP:
    stall count + mean stall duration; HLS: stall count only) and what the
    post-processing pipeline extracts from traffic captures.
    """

    broadcast_id: str
    protocol: str  # "rtmp" or "hls"
    device: str
    bandwidth_limit_mbps: float
    watch_seconds: float

    join_time_s: float
    playback_s: float
    stalls: List[StallEvent] = field(default_factory=list)

    #: End-to-end latency samples (capture -> display), seconds.
    playback_latency_s: Optional[float] = None
    #: Per-timestamp delivery-latency samples (NTP method), seconds.
    delivery_latency_samples: List[float] = field(default_factory=list)

    #: Media facts recovered by the inspector (None when the session was
    #: run at token fidelity without reconstruction).
    video_bitrate_bps: Optional[float] = None
    avg_qp: Optional[float] = None
    avg_fps: Optional[float] = None
    avg_viewers: float = 0.0

    #: Resilience bookkeeping (empty/zero unless a fault plan was active).
    #: ``fault_events`` records injected faults and graceful degradations
    #: ("ingest-outage@12.40", "api-gave-up:accessVideo", "player-gave-up").
    fault_events: List[str] = field(default_factory=list)
    api_retries: int = 0
    transport_retries: int = 0
    disconnects: int = 0
    reconnects: int = 0

    #: Join-delay seconds per upstream cause; populated (like
    #: ``StallEvent.causes``) only when cause attribution is enabled, so
    #: the dataset stays bit-identical with attribution off.
    join_causes: Optional[Dict[str, float]] = None

    @property
    def stall_count(self) -> int:
        return len(self.stalls)

    @property
    def total_stall_s(self) -> float:
        return sum(s.duration for s in self.stalls)

    @property
    def stall_ratio(self) -> float:
        return stall_ratio(self.total_stall_s, self.playback_s)

    @property
    def mean_stall_s(self) -> float:
        """Average stall-event duration (what RTMP playbackMeta reports)."""
        if not self.stalls:
            return 0.0
        return self.total_stall_s / len(self.stalls)

    @property
    def delivery_latency_s(self) -> Optional[float]:
        """Mean of the per-broadcast delivery-latency samples (the paper
        averages all samples of a broadcast)."""
        if not self.delivery_latency_samples:
            return None
        return sum(self.delivery_latency_samples) / len(self.delivery_latency_samples)

    def consistent(self) -> bool:
        """Sanity invariant: join + playback + stalls ≈ watch duration."""
        total = self.join_time_s + self.playback_s + self.total_stall_s
        return abs(total - self.watch_seconds) < 1e-6


def combine_sessions(groups: Sequence[Sequence[SessionQoE]]) -> List[SessionQoE]:
    """Flatten session groups (e.g. the two devices) into one dataset, as
    the paper does after the Welch's t-tests justify pooling."""
    merged: List[SessionQoE] = []
    for group in groups:
        merged.extend(group)
    return merged
