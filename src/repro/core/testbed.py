"""Per-session testbed topology.

Mirrors the paper's measurement setup: a phone reverse-tethered through a
USB link to a Linux desktop with >100 Mbps of Internet access, optional
``tc`` shaping on the desktop→phone direction, and ``tcpdump`` capture on
the tether.  Servers (API frontend, media server, chat, the S3 avatar
bucket) each sit behind their own desktop↔server path whose propagation
delay reflects geography.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.faults.plan import FaultPlan
from repro.netsim.duplex import DuplexStream
from repro.netsim.events import EventLoop
from repro.netsim.link import TokenBucketShaper
from repro.netsim.topology import Network
from repro.netsim.trace import TraceCapture
from repro.service.geo import GeoPoint
from repro.util.rng import child_rng
from repro.util.units import MBPS

#: Where the measurement phones sat (Finland).
VIEWER_LOCATION = GeoPoint(60.2, 24.9)

#: Propagation model: per-degree great-circle-ish cost plus a floor for
#: last-mile and peering hops.
DELAY_FLOOR_S = 0.008
DELAY_PER_DEG_S = 0.0009


def path_delay_s(a: GeoPoint, b: GeoPoint) -> float:
    """One-way propagation delay between two locations."""
    return DELAY_FLOOR_S + a.distance_deg(b) * DELAY_PER_DEG_S


@dataclass
class TestbedConfig:
    """Knobs of one session's network environment."""

    # Not a test class despite the name; keep pytest from collecting it.
    __test__ = False

    #: Download shaping on the tether (None = unshaped).
    shaper: Optional[TokenBucketShaper] = None
    access_bandwidth_bps: float = 100.0 * MBPS
    tether_delay_s: float = 0.001
    backbone_bandwidth_bps: float = 500.0 * MBPS
    capture_payload: bool = False
    #: Optional fault scenario; link impairments are built from child
    #: streams of ``fault_seed`` over ``fault_horizon_s`` of session time.
    faults: Optional[FaultPlan] = None
    fault_seed: object = 0
    fault_horizon_s: float = 120.0


class SessionTestbed:
    """One phone + desktop + the servers a session talks to."""

    def __init__(self, loop: EventLoop, config: TestbedConfig) -> None:
        self.loop = loop
        self.config = config
        self.net = Network(loop)
        self.phone = self.net.host("phone")
        self.desktop = self.net.host("desktop")
        self._server_locations: Dict[str, GeoPoint] = {}
        # The tether: shaping applies desktop -> phone (download).
        self.net.duplex(
            self.desktop,
            self.phone,
            rate_bps=config.access_bandwidth_bps,
            delay_s=config.tether_delay_s,
            down_shaper=config.shaper,
        )
        # Access-link impairments: the tether is where mobile loss,
        # jitter, and flaps live (each direction draws its own stream).
        if config.faults is not None and config.faults.has_link_faults:
            down_link = self.net.link_between(self.desktop, self.phone)
            up_link = self.net.link_between(self.phone, self.desktop)
            down_link.impairment = config.faults.link_impairment(
                child_rng(config.fault_seed, "fault-link-down"),
                config.fault_horizon_s, name=down_link.name,
            )
            up_link.impairment = config.faults.link_impairment(
                child_rng(config.fault_seed, "fault-link-up"),
                config.fault_horizon_s, name=up_link.name,
            )
        # tcpdump on the tether, both directions.
        self.capture = TraceCapture(capture_payload=config.capture_payload)
        self.capture.tap_link(self.net.link_between(self.desktop, self.phone), "down")
        self.capture.tap_link(self.net.link_between(self.phone, self.desktop), "up")

    def add_server(self, name: str, location: GeoPoint) -> None:
        """Create a server host behind the desktop at the given location."""
        if name in self._server_locations:
            raise ValueError(f"server {name!r} already exists")
        server = self.net.host(name)
        self.net.duplex(
            server,
            self.desktop,
            rate_bps=self.config.backbone_bandwidth_bps,
            delay_s=path_delay_s(location, VIEWER_LOCATION),
        )
        self._server_locations[name] = location

    def stream_to(self, server_name: str, window_bytes: Optional[int] = None,
                  name: str = "") -> DuplexStream:
        """A duplex stream phone <-> server through the desktop."""
        if server_name not in self._server_locations:
            raise KeyError(f"unknown server {server_name!r}")
        return DuplexStream(
            self.loop, self.net, "phone", "desktop", server_name,
            window_bytes=window_bytes, name=name or f"phone<->{server_name}",
        )

    def server_paths(self, server_name: str):
        """(server->phone, phone->server) paths for raw connections."""
        forward = self.net.path(server_name, "desktop", "phone")
        reverse = self.net.path("phone", "desktop", server_name)
        return forward, reverse

    def rtt_to(self, server_name: str) -> float:
        """Round-trip propagation time phone <-> server."""
        forward, _ = self.server_paths(server_name)
        return 2.0 * (forward.propagation_delay())
