"""Population-scale worlds: the mesoscale simulation layer.

The per-packet simulator (``repro.core.session``) is exact but caps
studies at hundreds of viewers.  This package scales the same seeded
world to millions of concurrent viewers by changing *what* is simulated,
not how honestly:

* :mod:`repro.world.popularity` — a heavy-tailed broadcaster population
  (truncated-Pareto audiences, reusing :mod:`repro.util.sampling`) with
  integral largest-remainder apportionment of the viewer budget;
* :mod:`repro.world.cohorts` — viewer *cohorts* that share a delivery
  path (broadcaster x protocol x bandwidth class) and are advanced with
  closed-form fluid dynamics (join/leave mass, buffer occupancy, stall
  mass) instead of per-viewer event loops;
* :mod:`repro.world.sampler` — stratified sampling that promotes
  selected cohort members to *full-fidelity* sessions, anchoring the
  cohort approximations to the exact simulator;
* :mod:`repro.world.shards` — world state sharded over a process pool
  with an index-ordered merge.

Determinism: every random draw is keyed by the broadcaster index through
:func:`repro.util.rng.child_rng` — never by shard or worker — so any
shard count and any worker count produce byte-identical results.
"""

from repro.world.cohorts import (
    BANDWIDTH_CLASSES,
    BandwidthClass,
    Cohort,
    CohortAggregate,
    build_cohorts,
    cohort_aggregate,
)
from repro.world.popularity import (
    Population,
    PopulationParameters,
    apportion,
    build_broadcast,
    sample_population,
)
from repro.world.sampler import (
    ExpansionRequest,
    joinable_min_duration_s,
    plan_expansions,
)
from repro.world.shards import ShardResult, WorldContext, WorldResult, run_world

__all__ = [
    "BANDWIDTH_CLASSES",
    "BandwidthClass",
    "Cohort",
    "CohortAggregate",
    "ExpansionRequest",
    "Population",
    "PopulationParameters",
    "ShardResult",
    "WorldContext",
    "WorldResult",
    "apportion",
    "build_broadcast",
    "build_cohorts",
    "cohort_aggregate",
    "joinable_min_duration_s",
    "plan_expansions",
    "run_world",
    "sample_population",
]
