"""Heavy-tailed broadcaster popularity for population-scale worlds.

The Periscope paper's Section 4 and the Twitch measurement literature
agree on the audience shape: a handful of "event" broadcasters carry
most concurrent viewers while >90% of broadcasts average fewer than 20.
This module samples that population at any scale and apportions a total
viewer budget over it *integrally*, so the world's viewer count is exact
(not just in expectation).

Determinism contract: everything about broadcaster ``i`` derives from
``child_rng(seed, "pop-weight", i)`` (its popularity draw) and
``child_rng(seed, "pop-broadcast", i)`` (its full broadcast traits).
No draw is keyed by shard, worker, or iteration order, which is what
lets :mod:`repro.world.shards` split the population arbitrarily while
staying byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Sequence

from repro.service.broadcast import (
    ZERO_VIEWER_FRACTION,
    Broadcast,
    sample_broadcast,
)
from repro.service.geo import sample_location
from repro.util.rng import Seedable, child_rng
from repro.util.sampling import bounded_pareto


@dataclass(frozen=True)
class PopulationParameters:
    """Scale and shape knobs of the mesoscale world."""

    #: Total concurrent viewers apportioned over the broadcaster
    #: population (exactly — see :func:`apportion`).
    viewers: int = 100_000
    #: Truncated-Pareto audience shape (matches
    #: :func:`repro.service.broadcast.sample_mean_viewers`).
    pareto_alpha: float = 1.0
    pareto_scale: float = 0.8
    pareto_high: float = 20_000.0
    #: Fraction of broadcasters with no viewers at all (paper: >10%).
    zero_viewer_fraction: float = ZERO_VIEWER_FRACTION
    #: Full-fidelity sessions the stratified sampler promotes out of the
    #: cohort population (expectation; realized count is within +-1 per
    #: cohort by stochastic rounding).
    sample_budget: int = 16

    def __post_init__(self) -> None:
        if self.viewers < 1:
            raise ValueError("viewers must be positive")
        if self.sample_budget < 0:
            raise ValueError("sample_budget must be non-negative")
        if not 0 <= self.zero_viewer_fraction < 1:
            raise ValueError("zero_viewer_fraction must be in [0, 1)")

    def mean_audience(self) -> float:
        """Analytic mean of the zero-inflated truncated Pareto draw.

        Used to size the broadcaster population for a viewer budget, so
        the realized audience skew matches the sampler's tail exactly.
        """
        alpha, scale, high = self.pareto_alpha, self.pareto_scale, self.pareto_high
        tail = 1.0 - (scale / high) ** alpha
        if abs(alpha - 1.0) < 1e-12:
            mean = scale * math.log(high / scale) / tail
        else:
            mean = (
                alpha * scale ** alpha
                * (scale ** (1.0 - alpha) - high ** (1.0 - alpha))
                / ((alpha - 1.0) * tail)
            )
        return (1.0 - self.zero_viewer_fraction) * mean


def apportion(total: int, weights: Sequence[float]) -> List[int]:
    """Integral largest-remainder apportionment of ``total`` over
    ``weights``.

    Sums to exactly ``total``; ties in the fractional parts break by
    index, so the result is a pure function of its arguments.
    """
    if total < 0:
        raise ValueError("total must be non-negative")
    if not weights:
        return []
    weight_sum = float(sum(weights))
    if weight_sum <= 0.0:
        # Degenerate population (every broadcaster drew zero viewers):
        # park the whole budget on index 0 so the total stays exact.
        counts = [0] * len(weights)
        counts[0] = total
        return counts
    quotas = [total * w / weight_sum for w in weights]
    counts = [int(q) for q in quotas]
    remainder = total - sum(counts)
    by_fraction = sorted(
        range(len(weights)), key=lambda i: (counts[i] - quotas[i], i)
    )
    for i in by_fraction[:remainder]:
        counts[i] += 1
    return counts


@dataclass
class Population:
    """A sampled broadcaster population with its apportioned audience."""

    seed: Seedable
    params: PopulationParameters
    #: Apportioned concurrent viewers per broadcaster, index-aligned.
    viewers_by_broadcaster: List[int] = field(default_factory=list)

    @property
    def n_broadcasters(self) -> int:
        return len(self.viewers_by_broadcaster)

    @property
    def total_viewers(self) -> int:
        return sum(self.viewers_by_broadcaster)

    def zero_audience_count(self) -> int:
        return sum(1 for v in self.viewers_by_broadcaster if v == 0)

    def audience_cdf(self, audience: float) -> float:
        """Fraction of broadcasters whose audience is <= ``audience``
        (the Fig. 2(a)-style viewer CDF, exact over the population)."""
        if not self.viewers_by_broadcaster:
            return 0.0
        below = sum(1 for v in self.viewers_by_broadcaster if v <= audience)
        return below / self.n_broadcasters

    def top_share(self, fraction: float) -> float:
        """Share of all viewers carried by the top ``fraction`` of
        broadcasters — the audience-concentration statistic."""
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        total = self.total_viewers
        if total == 0:
            return 0.0
        count = max(1, int(math.ceil(self.n_broadcasters * fraction)))
        top = sorted(self.viewers_by_broadcaster, reverse=True)[:count]
        return sum(top) / total


def sample_population(
    seed: Seedable, params: PopulationParameters
) -> Population:
    """Sample the broadcaster population and apportion the viewer budget.

    Runs serially in the parent (like study phase-1 sampling): one
    popularity draw per broadcaster, each from its own child stream, and
    a global largest-remainder apportionment — the only step that needs
    the whole population at once.
    """
    n_broadcasters = max(1, int(round(params.viewers / params.mean_audience())))
    weights: List[float] = []
    for index in range(n_broadcasters):
        rng = child_rng(seed, "pop-weight", index)
        if rng.random() < params.zero_viewer_fraction:
            weights.append(0.0)
        else:
            weights.append(
                bounded_pareto(
                    rng,
                    alpha=params.pareto_alpha,
                    scale=params.pareto_scale,
                    high=params.pareto_high,
                )
            )
    return Population(
        seed=seed,
        params=params,
        viewers_by_broadcaster=apportion(params.viewers, weights),
    )


def build_broadcast(
    seed: Seedable,
    index: int,
    audience: int,
    min_duration_s: float = 0.0,
) -> Broadcast:
    """Materialize broadcaster ``index`` as a full :class:`Broadcast`.

    Deterministic in ``(seed, index)``: cohort formation and sampled
    full-fidelity expansion rebuild the *same* broadcast wherever they
    run.  ``mean_viewers`` is overridden with the apportioned audience
    so the viewer curve integrates to the population's allocation, and
    the duration is floored at ``min_duration_s`` — a mesoscale world
    observes broadcasts *live at the study instant*, and that
    observation is length-biased toward streams that outlast the watch
    window.
    """
    rng = child_rng(seed, "pop-broadcast", index)
    location, center = sample_location(rng)
    broadcast = sample_broadcast(rng, 0.0, location, center)
    broadcast.mean_viewers = float(audience)
    if broadcast.duration_s < min_duration_s:
        broadcast.duration_s = min_duration_s
    return broadcast
