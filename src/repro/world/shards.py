"""Sharded execution of population-scale worlds.

The broadcaster population is split into contiguous index ranges
(*shards*) and advanced over a :class:`ProcessPoolExecutor`, mirroring
:mod:`repro.core.parallel`: a module-level initializer bootstraps each
worker, shards are submitted in index order, and results merge back in
submission order.  Two properties make the split invisible:

* every random draw inside a shard is keyed by **broadcaster index**
  (see :mod:`repro.world.popularity` / :mod:`repro.world.sampler`), so
  the shard boundaries never touch an RNG stream — 1 shard and N shards
  produce byte-identical cohorts, samples, and session results;
* telemetry recorded by full-fidelity expansions lands in per-session
  private registries whose snapshots ship back with the shard result
  (a finer grain than :mod:`repro.core.parallel`'s per-chunk
  snapshots); the parent folds them in global session order, so the
  merged registry is byte-identical for every shard and worker count.

The full-fidelity *runner* is injected by the caller (a module-level
callable, picklable by reference) rather than imported: the mesoscale
layer sits below ``core`` in the layer DAG, and the dependency points
upward only at run time, through a value.
"""

from __future__ import annotations

import math
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.faults.plan import FaultPlan
from repro.netsim import fastpath
from repro.util.rng import Seedable
from repro.world.cohorts import CohortAggregate, build_cohorts, cohort_aggregate
from repro.world.popularity import build_broadcast
from repro.world.sampler import (
    ExpansionRequest,
    joinable_min_duration_s,
    plan_expansions,
)

#: Shards dispatched per worker by default: enough to balance the heavy
#: tail (an "event" broadcaster's expansions cluster in one shard),
#: cheap enough that per-shard dispatch stays negligible.
SHARDS_PER_WORKER = 4

#: Signature of the injected full-fidelity runner:
#: ``runner(world_seed, requests, faults, metrics_enabled,
#: causes_enabled, health_enabled) -> (results, per-session snapshots)``
#: where snapshots is ``None`` when every telemetry surface is off.
ExpansionRunner = Callable[
    [Seedable, Sequence[ExpansionRequest], Optional[FaultPlan],
     bool, bool, bool],
    Tuple[List[object], Optional[List[dict]]],
]


@dataclass(frozen=True)
class WorldContext:
    """Everything a shard needs, picklable and shard-count-free."""

    seed: Seedable
    watch_seconds: float
    hls_viewer_threshold: float
    #: Global sampling rate (budget / total viewers).
    sample_rate: float
    faults: Optional[FaultPlan] = None
    exact_network: bool = False
    metrics_enabled: bool = False
    causes_enabled: bool = False
    health_enabled: bool = False
    #: Module-level callable executing expansion requests at full
    #: fidelity (``None`` plans the sample but runs nothing).
    runner: Optional[ExpansionRunner] = None


@dataclass
class ShardResult:
    """One shard's outcome, merged index-ordered in the parent.

    Aggregates stay **per broadcaster** (a broadcaster is never split
    across shards): the cross-broadcaster fold happens only in the
    parent, over the same index-ordered sequence for every shard count,
    so its float operations reassociate identically — merged totals are
    byte-for-byte shard-count-invariant.
    """

    shard_index: int
    broadcasters: int
    live_broadcasters: int
    cohorts: int
    #: ``(broadcaster_index, protocol value, merged cohort aggregate)``
    #: per live broadcaster, in index order.
    broadcaster_totals: List[Tuple[int, str, CohortAggregate]] = field(
        default_factory=list
    )
    requests: List[ExpansionRequest] = field(default_factory=list)
    session_results: List[object] = field(default_factory=list)
    #: Per-session telemetry snapshots (surface name -> snapshot, one
    #: dict per expanded session, in session order), or ``None`` when
    #: every surface is off.
    telemetry: Optional[List[dict]] = None


@dataclass
class WorldResult:
    """The merged world: exact population facts + cohort aggregates +
    anchored full-fidelity session results."""

    broadcasters: int = 0
    live_broadcasters: int = 0
    cohorts: int = 0
    shard_count: int = 0
    totals: Dict[str, CohortAggregate] = field(default_factory=dict)
    requests: List[ExpansionRequest] = field(default_factory=list)
    session_results: List[object] = field(default_factory=list)
    telemetry_snapshots: List[dict] = field(default_factory=list)

    def fold(self, shard: ShardResult) -> None:
        self.broadcasters += shard.broadcasters
        self.live_broadcasters += shard.live_broadcasters
        self.cohorts += shard.cohorts
        self.shard_count += 1
        for _index, protocol_value, aggregate in shard.broadcaster_totals:
            into = self.totals.setdefault(protocol_value, CohortAggregate())
            into.merge(aggregate)
        self.requests.extend(shard.requests)
        self.session_results.extend(shard.session_results)
        if shard.telemetry is not None:
            self.telemetry_snapshots.extend(shard.telemetry)


def shard_bounds(n_broadcasters: int, shards: int) -> List[Tuple[int, int]]:
    """Contiguous ``[start, stop)`` index ranges covering the population.

    Deterministic in its arguments; the parent's merge order follows
    this list, never completion order.
    """
    if n_broadcasters <= 0:
        return []
    shards = max(1, shards)
    size = max(1, math.ceil(n_broadcasters / shards))
    return [
        (start, min(start + size, n_broadcasters))
        for start in range(0, n_broadcasters, size)
    ]


def compute_shard(
    context: WorldContext,
    shard_index: int,
    start: int,
    audiences: Sequence[int],
) -> ShardResult:
    """Advance one shard: materialize broadcasters, fold cohort
    aggregates, and run this shard's slice of the stratified sample.

    Pure function of ``(context, start, audiences)`` — the shard index
    is carried for bookkeeping only and feeds no draw.
    """
    min_duration_s = joinable_min_duration_s(context.watch_seconds)
    result = ShardResult(
        shard_index=shard_index,
        broadcasters=len(audiences),
        live_broadcasters=0,
        cohorts=0,
    )
    for offset, audience in enumerate(audiences):
        if audience <= 0:
            continue
        index = start + offset
        result.live_broadcasters += 1
        broadcast = build_broadcast(
            context.seed, index, audience, min_duration_s
        )
        broadcaster_total = CohortAggregate()
        protocol_value = ""
        for cohort in build_cohorts(
            broadcast, index, audience, context.hls_viewer_threshold
        ):
            result.cohorts += 1
            protocol_value = cohort.protocol.value
            broadcaster_total.merge(
                cohort_aggregate(broadcast, cohort, context.watch_seconds)
            )
            result.requests.extend(
                plan_expansions(
                    context.seed, cohort, context.sample_rate,
                    context.watch_seconds,
                )
            )
        result.broadcaster_totals.append(
            (index, protocol_value, broadcaster_total)
        )
    if result.requests and context.runner is not None:
        session_results, snapshots = context.runner(
            context.seed, result.requests, context.faults,
            context.metrics_enabled, context.causes_enabled,
            context.health_enabled,
        )
        result.session_results = list(session_results)
        result.telemetry = snapshots
    return result


#: Worker-process context, installed once per worker by :func:`_worker_init`.
_WORKER_CONTEXT: Optional[WorldContext] = None


def _worker_init(context: WorldContext) -> None:
    """Bootstrap one worker: adopt the world context and network mode.

    Telemetry inherited over ``fork`` is discarded — expansion sessions
    capture their own per-session registries through the runner.
    """
    global _WORKER_CONTEXT
    obs.deactivate()
    fastpath.set_enabled(not context.exact_network)
    _WORKER_CONTEXT = context


def _run_shard(
    shard_index: int, start: int, audiences: Sequence[int]
) -> ShardResult:
    """Run one shard inside a worker."""
    context = _WORKER_CONTEXT
    if context is None:
        raise RuntimeError("worker not initialized; dispatch via run_world")
    return compute_shard(context, shard_index, start, audiences)


def run_world(
    context: WorldContext,
    viewers_by_broadcaster: Sequence[int],
    *,
    workers: int = 1,
    shards: Optional[int] = None,
) -> WorldResult:
    """Advance the whole world, sharded over ``workers`` processes.

    ``shards`` fixes the number of work units (default
    ``workers x SHARDS_PER_WORKER``); any value yields byte-identical
    results because no draw is keyed by shard.  ``workers <= 1`` runs
    every shard inline — same code path, no pool.
    """
    bounds = shard_bounds(
        len(viewers_by_broadcaster),
        shards if shards is not None else max(1, workers) * SHARDS_PER_WORKER,
    )
    merged = WorldResult(shard_count=0)
    if workers <= 1:
        previous_fast = fastpath.enabled()
        fastpath.set_enabled(not context.exact_network)
        try:
            for shard_index, (start, stop) in enumerate(bounds):
                merged.fold(
                    compute_shard(
                        context, shard_index, start,
                        viewers_by_broadcaster[start:stop],
                    )
                )
        finally:
            fastpath.set_enabled(previous_fast)
        return merged
    with ProcessPoolExecutor(
        max_workers=workers,
        initializer=_worker_init,
        initargs=(context,),
    ) as pool:
        futures = [
            pool.submit(
                _run_shard, shard_index, start,
                list(viewers_by_broadcaster[start:stop]),
            )
            for shard_index, (start, stop) in enumerate(bounds)
        ]
        # Submission-order iteration: the merge never sees completion
        # order, so parallel worlds match inline ones byte for byte.
        for future in futures:
            merged.fold(future.result())
    return merged
