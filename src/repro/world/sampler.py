"""Stratified sampling: promoting cohort members to full fidelity.

The cohort aggregates in :mod:`repro.world.cohorts` are honest fluid
approximations — useful for mass statistics, useless as ground truth.
This module picks a stratified sample of cohort members and emits
:class:`ExpansionRequest` records; each request carries everything
needed to rebuild the member's exact :class:`~repro.core.session.SessionSetup`
(the broadcaster is re-materialized from its index via
:func:`repro.world.popularity.build_broadcast`), so the promoted member
runs through the *unchanged* per-packet simulator — faults, netsim fast
path, and all.

Allocation is proportional: every cohort expands
``members x rate`` sessions in expectation, realized by stochastic
rounding from a per-cohort child stream
(``child_rng(seed, "world-sample", broadcaster_index, class_name)``).
Because strata are delivery paths, the sample covers the
protocol x bandwidth matrix in proportion to member mass — and because
the stream is keyed by broadcaster index, the realized sample is
byte-identical for every shard and worker count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.util.rng import Seedable, child_rng
from repro.world.cohorts import Cohort

#: Margin (seconds) a sampled member keeps clear of the broadcast's end,
#: mirroring the Teleport loop's "dying broadcast" filter.
END_MARGIN_S = 6.0
#: Earliest join age (the app never lands on a <0.5 s-old broadcast).
MIN_JOIN_AGE_S = 1.0


def joinable_min_duration_s(watch_seconds: float) -> float:
    """Duration floor for materialized broadcasters: every member needs a
    joinable window (min age + watch + end margin).  Shard computation
    and full-fidelity expansion must use the same floor so they rebuild
    the *same* broadcast."""
    return MIN_JOIN_AGE_S + watch_seconds + END_MARGIN_S


@dataclass(frozen=True)
class ExpansionRequest:
    """A picklable ticket to run one cohort member at full fidelity."""

    broadcaster_index: int
    audience: int
    #: Stratum identity (bandwidth-class name; the protocol pins the
    #: rest of the delivery path).
    cohort_key: str
    protocol_value: str
    bandwidth_limit_mbps: float
    age_at_join_s: float
    watch_seconds: float
    #: Member position within the cohort's sample (for labels/debug).
    member_rank: int
    #: 48-bit session seed drawn from the cohort's child stream.
    session_seed: int
    device_name: str


def plan_expansions(
    seed: Seedable,
    cohort: Cohort,
    rate: float,
    watch_seconds: float,
) -> List[ExpansionRequest]:
    """Sample this cohort's full-fidelity members.

    ``rate`` is the global sampling rate (budget / total viewers), so
    expectation across all cohorts is exactly the budget while every
    decision stays local to one cohort — the property that makes the
    sample shard-invariant.
    """
    if rate <= 0.0 or cohort.members <= 0:
        return []
    rng = child_rng(seed, "world-sample", cohort.broadcaster_index,
                    cohort.bandwidth.name)
    expected = cohort.members * rate
    count = int(expected)
    if rng.random() < expected - count:
        count += 1
    count = min(count, cohort.members)
    if count == 0:
        return []

    # Joinable age window, clear of the ramp-up start and the dying end.
    latest_join_s = cohort.duration_s - watch_seconds - END_MARGIN_S
    earliest_join_s = MIN_JOIN_AGE_S
    requests: List[ExpansionRequest] = []
    for member_rank in range(count):
        if latest_join_s > earliest_join_s:
            age_at_join_s = rng.uniform(earliest_join_s, latest_join_s)
        else:
            age_at_join_s = earliest_join_s
        requests.append(
            ExpansionRequest(
                broadcaster_index=cohort.broadcaster_index,
                audience=cohort.audience,
                cohort_key=cohort.bandwidth.name,
                protocol_value=cohort.protocol.value,
                bandwidth_limit_mbps=cohort.bandwidth.downlink_mbps,
                age_at_join_s=age_at_join_s,
                watch_seconds=watch_seconds,
                member_rank=member_rank,
                session_seed=rng.getrandbits(48),
                device_name="galaxy-s3" if rng.random() < 0.5 else "galaxy-s4",
            )
        )
    return requests
