"""Viewer cohorts: aggregate delivery-path dynamics, no event loops.

A *cohort* is every viewer of one broadcaster who shares a delivery
path: the same protocol (RTMP push below the HLS viewer threshold, CDN
HLS above it) and the same access-bandwidth class.  Instead of one
event-loop session per viewer, a cohort is advanced with closed-form
fluid dynamics over the broadcast's audience curve:

* **join/leave mass** — the audience curve
  (:meth:`~repro.service.broadcast.Broadcast.viewers_at`) is integrated
  stepwise; positive increments are joins, negative ones leaves, and
  member-seconds divided by the watch window gives the session count;
* **stall mass** — fluid starvation: at access rate ``C`` below the
  stream rate ``R``, playback advances at ``C/R`` of real time, so the
  stalled fraction of every watched second is ``1 - C/R``;
* **buffer occupancy** — surplus bandwidth fills the player buffer at
  ``C/R - 1`` media-seconds per second up to the protocol's cap.

These aggregates are deliberately *approximate*; the stratified sampler
(:mod:`repro.world.sampler`) promotes cohort members to full-fidelity
sessions so the approximated distributions stay anchored to the exact
simulator.  Cohort formation and advancement consume **no RNG** — both
are pure functions of the broadcaster's traits — which keeps every draw
in the world keyed by broadcaster index alone.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.service.broadcast import Broadcast
from repro.service.selection import DeliveryProtocol
from repro.util.units import MBPS
from repro.world.popularity import apportion


@dataclass(frozen=True)
class BandwidthClass:
    """One access-bandwidth stratum of the viewer population."""

    name: str
    downlink_mbps: float
    #: Share of the viewer population in this class.
    weight: float


#: Access-bandwidth strata.  The rates intentionally coincide with the
#: study's tc sweep points (0.5/2/8/100 Mbps), so anchored sessions land
#: on bandwidth limits the per-packet simulator is already calibrated
#: and benchmarked at.
BANDWIDTH_CLASSES: Tuple[BandwidthClass, ...] = (
    BandwidthClass("wifi", 100.0, 0.46),
    BandwidthClass("lte", 8.0, 0.30),
    BandwidthClass("umts", 2.0, 0.16),
    BandwidthClass("edge", 0.5, 0.08),
)

#: Container/retransmission overhead on top of the elementary streams.
STREAM_OVERHEAD_FACTOR = 1.15

#: Connection setup cost before any media flows (API + handshake RTTs).
SETUP_DELAY_S = {DeliveryProtocol.RTMP: 0.45, DeliveryProtocol.HLS: 0.35}

#: Media-seconds the player fetches before playback starts (RTMP starts
#: nearly live; HLS must fetch a playlist plus ~3 segments).
STARTUP_MEDIA_S = {DeliveryProtocol.RTMP: 1.0, DeliveryProtocol.HLS: 9.0}

#: Player buffer cap in media-seconds (RTMP keeps a shallow live edge;
#: HLS buffers the fetched segment window).
BUFFER_CAP_S = {DeliveryProtocol.RTMP: 2.0, DeliveryProtocol.HLS: 16.0}


@dataclass(frozen=True)
class Cohort:
    """Viewers of one broadcaster sharing protocol + bandwidth class."""

    broadcaster_index: int
    #: The broadcaster's full apportioned audience (mean concurrent).
    audience: int
    #: This cohort's slice of that audience (mean concurrent members).
    members: int
    protocol: DeliveryProtocol
    bandwidth: BandwidthClass
    #: Effective stream rate on the wire (video + audio + overhead).
    stream_rate_bps: float
    duration_s: float


@dataclass
class CohortAggregate:
    """Closed-form per-cohort outcomes, all in member-mass units."""

    member_seconds: float = 0.0
    sessions: float = 0.0
    joins: float = 0.0
    leaves: float = 0.0
    peak_members: float = 0.0
    join_seconds: float = 0.0
    stall_seconds: float = 0.0
    #: Time- and member-weighted mean buffer level (media-seconds).
    mean_buffer_s: float = 0.0

    def merge(self, other: "CohortAggregate") -> None:
        """Fold another aggregate in (member-weighted for the buffer)."""
        total = self.member_seconds + other.member_seconds
        if total > 0.0:
            self.mean_buffer_s = (
                self.mean_buffer_s * self.member_seconds
                + other.mean_buffer_s * other.member_seconds
            ) / total
        self.member_seconds = total
        self.sessions += other.sessions
        self.joins += other.joins
        self.leaves += other.leaves
        self.peak_members = max(self.peak_members, other.peak_members)
        self.join_seconds += other.join_seconds
        self.stall_seconds += other.stall_seconds

    def stall_ratio(self) -> float:
        """Stalled share of watched member time (the Fig. 3 statistic,
        cohort-approximated)."""
        if self.member_seconds <= 0.0:
            return 0.0
        return self.stall_seconds / self.member_seconds


def effective_stream_rate_bps(broadcast: Broadcast) -> float:
    """What one viewer must sustain to watch in real time."""
    return (
        broadcast.target_bitrate_bps + broadcast.audio_bitrate_bps
    ) * STREAM_OVERHEAD_FACTOR


def peak_viewers(broadcast: Broadcast) -> float:
    """The audience curve's maximum (reached at the end of the ramp)."""
    ramp_end_s = broadcast.start_time + Broadcast._RAMP_FRACTION * broadcast.duration_s
    return broadcast.viewers_at(ramp_end_s)


def select_cohort_protocol(
    broadcast: Broadcast, hls_viewer_threshold: float
) -> DeliveryProtocol:
    """Delivery path for the whole cohort population of one broadcaster.

    The service's per-session policy
    (:func:`repro.service.selection.select_protocol`) keys on the
    instantaneous audience; at cohort granularity the representative
    instant is the curve's peak — the service offloads a broadcast to
    the CDN when it catches fire, which is exactly when most of its
    member mass watches.
    """
    if peak_viewers(broadcast) >= hls_viewer_threshold:
        return DeliveryProtocol.HLS
    return DeliveryProtocol.RTMP


def build_cohorts(
    broadcast: Broadcast,
    index: int,
    audience: int,
    hls_viewer_threshold: float,
) -> List[Cohort]:
    """Split one broadcaster's audience into delivery-path cohorts.

    Pure function of its arguments (largest-remainder apportionment over
    the fixed bandwidth-class weights; no RNG), so the cohort set is the
    same no matter which shard materializes it.
    """
    if audience <= 0:
        return []
    protocol = select_cohort_protocol(broadcast, hls_viewer_threshold)
    stream_rate_bps = effective_stream_rate_bps(broadcast)
    class_members = apportion(
        audience, [cls.weight for cls in BANDWIDTH_CLASSES]
    )
    return [
        Cohort(
            broadcaster_index=index,
            audience=audience,
            members=members,
            protocol=protocol,
            bandwidth=cls,
            stream_rate_bps=stream_rate_bps,
            duration_s=broadcast.duration_s,
        )
        for cls, members in zip(BANDWIDTH_CLASSES, class_members)
        if members > 0
    ]


#: Integration steps over the broadcast life for the audience curve.
AUDIENCE_CURVE_STEPS = 32


def cohort_aggregate(
    broadcast: Broadcast,
    cohort: Cohort,
    watch_seconds: float,
    steps: int = AUDIENCE_CURVE_STEPS,
) -> CohortAggregate:
    """Advance one cohort over the broadcast's life in closed form."""
    if watch_seconds <= 0.0:
        raise ValueError("watch_seconds must be positive")
    duration_s = broadcast.duration_s
    share = cohort.members / cohort.audience if cohort.audience else 0.0
    dt_s = duration_s / steps
    member_seconds = 0.0
    joins = 0.0
    leaves = 0.0
    peak_members = 0.0
    previous_members = 0.0
    for step in range(steps):
        # Midpoint rule keeps the integral close to ``mean * duration``
        # even at coarse step counts.
        t_s = broadcast.start_time + (step + 0.5) * dt_s
        members_now = share * broadcast.viewers_at(t_s)
        member_seconds += members_now * dt_s
        delta = members_now - previous_members
        if delta >= 0.0:
            joins += delta
        else:
            leaves -= delta
        peak_members = max(peak_members, members_now)
        previous_members = members_now
    leaves += previous_members  # everyone leaves when the broadcast ends

    sessions = member_seconds / watch_seconds
    capacity_bps = cohort.bandwidth.downlink_mbps * MBPS
    rate_ratio = capacity_bps / cohort.stream_rate_bps

    # Join delay: connection setup plus the startup media fetched at the
    # access rate (encoded at the stream rate).
    join_delay_s = (
        SETUP_DELAY_S[cohort.protocol]
        + STARTUP_MEDIA_S[cohort.protocol] / rate_ratio
    )
    join_seconds = sessions * join_delay_s

    # Fluid starvation: below the stream rate, playback advances at
    # ``rate_ratio`` of real time, so the rest of the watch stalls.
    stall_fraction = max(0.0, 1.0 - rate_ratio)
    stall_seconds = member_seconds * stall_fraction

    # Buffer occupancy: surplus bandwidth fills the buffer at
    # ``rate_ratio - 1`` media-seconds per second up to the cap.
    buffer_cap_s = BUFFER_CAP_S[cohort.protocol]
    if rate_ratio <= 1.0:
        mean_buffer_s = 0.0
    else:
        fill_rate = rate_ratio - 1.0
        time_to_fill_s = buffer_cap_s / fill_rate
        if time_to_fill_s >= watch_seconds:
            # Still filling when the member leaves: average of a ramp.
            mean_buffer_s = fill_rate * watch_seconds / 2.0
        else:
            ramp_share = time_to_fill_s / watch_seconds
            mean_buffer_s = buffer_cap_s * (1.0 - ramp_share / 2.0)

    return CohortAggregate(
        member_seconds=member_seconds,
        sessions=sessions,
        joins=joins,
        leaves=leaves,
        peak_members=peak_members,
        join_seconds=join_seconds,
        stall_seconds=stall_seconds,
        mean_buffer_s=mean_buffer_s,
    )
