"""repro — reproduction of *A First Look at Quality of Mobile Live
Streaming Experience: the Case of Periscope* (Siekkinen, Masala and
Kämäräinen, IMC 2016).

The original paper measures a live commercial service that no longer
exists.  This package therefore contains two halves:

* a faithful, deterministic **simulation of the measured system** — a
  Periscope-like live-streaming service (API, RTMP-like and HLS delivery,
  chat, CDN/ingest infrastructure), mobile clients, an access network, a
  media encoder and a smartphone power model; and
* a reimplementation of the paper's **measurement methodology** — the API
  crawler, the automated-viewing harness, traffic capture and stream
  reconstruction, media inspection and the QoE/energy analyses — run
  against that simulation to regenerate every table and figure.

Entry points:

* :mod:`repro.core` — high-level study orchestration and QoE metrics.
* :mod:`repro.experiments` — one driver per paper table/figure.

See ``DESIGN.md`` for the system inventory and ``EXPERIMENTS.md`` for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

from repro.core.config import StudyConfig
from repro.core.qoe import SessionQoE

__all__ = ["StudyConfig", "SessionQoE", "__version__"]
