"""tcpdump-equivalent: packet capture at chosen links.

The paper captured all video/audio traffic on the tethering desktop with
``tcpdump`` and later reconstructed streams with wireshark.  Here a
:class:`TraceCapture` taps one or more links and accumulates
:class:`~repro.netsim.packet.PacketRecord` entries, which
:mod:`repro.capture.reconstruct` post-processes the same way.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.netsim.link import Link
from repro.netsim.packet import HEADER_BYTES, Packet, PacketRecord

RecordFilter = Callable[[PacketRecord], bool]


class TraceCapture:
    """Accumulates packet records from tapped links.

    Each tapped link is labelled with a *direction* string (e.g. ``"down"``
    for server→phone, ``"up"`` for phone→server) that ends up on every
    record, mirroring how a capture on a physical interface distinguishes
    RX from TX.
    """

    def __init__(self, capture_payload: bool = True) -> None:
        self.records: List[PacketRecord] = []
        self.capture_payload = capture_payload
        self._taps: List[tuple] = []
        self.enabled = True

    def tap_link(self, link: Link, direction: str) -> None:
        """Start capturing packets entering ``link``."""
        keep_payload = self.capture_payload
        records = self.records
        append = records.append
        record = PacketRecord

        def observer(packet: Packet, timestamp: float, _direction: str = direction) -> None:
            # Inlined PacketRecord.of: this closure runs once per packet
            # per tapped link, the hottest capture-side call site.
            if self.enabled:
                annotations = packet.ann_items
                if annotations is None:
                    annotations = tuple(sorted(packet.annotations.items()))
                payload = packet.payload_bytes
                append(record(
                    timestamp,
                    packet.flow_id,
                    packet.seq,
                    payload,
                    payload + HEADER_BYTES,
                    packet.is_ack,
                    _direction,
                    packet.message_id,
                    packet.message_offset,
                    packet.message_total,
                    annotations,
                    packet.chunk if keep_payload else None,
                ))

        link.tap(observer)
        self._taps.append((link, observer))

    def stop(self) -> None:
        """Detach from all links (records are kept)."""
        for link, observer in self._taps:
            link.untap(observer)
        self._taps.clear()

    def pause(self) -> None:
        """Temporarily stop recording without detaching."""
        self.enabled = False

    def resume(self) -> None:
        self.enabled = True

    # ------------------------------------------------------------- queries

    def filter(self, predicate: RecordFilter) -> List[PacketRecord]:
        """All records matching ``predicate``, in capture order."""
        return [r for r in self.records if predicate(r)]

    def flows(self) -> Dict[int, List[PacketRecord]]:
        """Records grouped by flow id (ACKs included)."""
        grouped: Dict[int, List[PacketRecord]] = {}
        for record in self.records:
            grouped.setdefault(record.flow_id, []).append(record)
        return grouped

    def data_records(self, flow_id: Optional[int] = None) -> List[PacketRecord]:
        """Non-ACK records, optionally restricted to one flow."""
        return [
            r
            for r in self.records
            if not r.is_ack and (flow_id is None or r.flow_id == flow_id)
        ]

    def total_bytes(self, direction: Optional[str] = None, include_acks: bool = True) -> int:
        """Total wire bytes observed (for traffic-volume comparisons)."""
        return sum(
            r.wire_bytes
            for r in self.records
            if (direction is None or r.direction == direction)
            and (include_acks or not r.is_ack)
        )

    def byterate_bps(self, t0: float, t1: float, direction: Optional[str] = None) -> float:
        """Average observed rate over ``[t0, t1)`` in bits per second."""
        if t1 <= t0:
            raise ValueError("t1 must exceed t0")
        nbytes = sum(
            r.wire_bytes
            for r in self.records
            if t0 <= r.timestamp < t1 and (direction is None or r.direction == direction)
        )
        return nbytes * 8.0 / (t1 - t0)

    def __len__(self) -> int:
        return len(self.records)
