"""Links: rate-limited, delayed, FIFO packet conduits.

A link serializes packets at ``rate_bps`` and delivers each after a fixed
propagation delay.  Because all flows traversing a link share one FIFO
serialization queue, bandwidth sharing and cross-traffic interference
(e.g. chat avatar downloads delaying video packets) emerge naturally.

:class:`TokenBucketShaper` models the ``tc`` token-bucket filter the paper
used on the tethering host to impose artificial bandwidth limits.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro import obs
from repro.faults.impair import LinkImpairment
from repro.netsim.events import EventLoop
from repro.netsim.packet import Packet

PacketSink = Callable[[Packet], None]
PacketTap = Callable[[Packet, float], None]


class Link:
    """Unidirectional link with serialization rate and propagation delay.

    ``deliver`` is called with each packet once it has fully crossed the
    link.  Observers registered with :meth:`tap` see packets at the moment
    they *enter* the link (like tcpdump on the sending interface).

    An optional :class:`~repro.faults.impair.LinkImpairment` injects
    loss/jitter/flap delay; it only ever pushes the busy horizon later,
    so the link stays a FIFO and the reliable-stream layer above needs
    no changes.
    """

    def __init__(
        self,
        loop: EventLoop,
        rate_bps: float,
        delay_s: float,
        name: str = "link",
        shaper: Optional["TokenBucketShaper"] = None,
        impairment: Optional[LinkImpairment] = None,
    ) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        if delay_s < 0:
            raise ValueError("link delay must be non-negative")
        self.loop = loop
        self.rate_bps = rate_bps
        self.delay_s = delay_s
        self.name = name
        self.shaper = shaper
        self.impairment = impairment
        self.deliver: Optional[PacketSink] = None
        self._busy_until = 0.0
        #: Total serialization time ever scheduled (including the tail of
        #: packets still queued or on the wire).
        self._busy_time_scheduled = 0.0
        #: Loss-recovery time still occupying the busy horizon: queue
        #: wait behind it is HOL blocking caused by retransmissions, and
        #: attribution charges it to loss recovery, not the queue.
        self._recovery_backlog_s = 0.0
        #: Wall-clock frontier up to which queue waiting has been charged
        #: to attribution.  Per-packet waits overlap (every queued packet
        #: waits through the same busy interval), so attribution charges
        #: the *union* of waiting intervals — the wall-clock seconds some
        #: packet was queued — which is the delay the frontier packet,
        #: and hence the player, actually experiences.
        self._queue_charged_until = 0.0
        #: Idle intervals inside the busy horizon: a shaper or impairment
        #: deferral leaves the wire silent between the previous packet's
        #: end and the deferred start, yet ``_busy_until`` spans the gap.
        #: Gaps wholly in the past are pruned as they expire.
        self._gaps: Deque[Tuple[float, float]] = deque()
        self._taps: List[PacketTap] = []
        self.bytes_carried = 0
        self.packets_carried = 0

    def tap(self, observer: PacketTap) -> None:
        """Register a capture observer (tcpdump-like, ingress side)."""
        self._taps.append(observer)

    def untap(self, observer: PacketTap) -> None:
        """Remove a previously registered observer."""
        self._taps.remove(observer)

    def _pending_tx_time(self, now: float) -> float:
        """Transmission work still ahead of the wire at ``now``.

        The busy horizon minus any idle deferral gaps inside it: a
        shaper or flap/jitter deferral pushes ``_busy_until`` out without
        the transmitter doing work over the gap, so the horizon alone
        overstates pending work.
        """
        pending = self._busy_until - now
        gaps = self._gaps
        if pending <= 0.0:
            if gaps:
                gaps.clear()
            return 0.0
        while gaps and gaps[0][1] <= now:
            gaps.popleft()
        for gap_start, gap_end in gaps:
            overlap = min(gap_end, self._busy_until) - max(gap_start, now)
            if overlap > 0.0:
                pending -= overlap
        return max(0.0, pending)

    def utilization_until_now(self) -> float:
        """Fraction of elapsed time the transmitter has been busy.

        Counts only transmission that has already happened: serialization
        scheduled beyond ``now`` (bytes still queued or on the wire) and
        idle shaper/impairment deferral gaps are excluded, so the value
        is a true busy-time integral and always lands in [0, 1].
        """
        now = self.loop.now
        if now <= 0:
            return 0.0
        completed = self._busy_time_scheduled - self._pending_tx_time(now)
        return min(1.0, max(0.0, completed / now))

    def send(self, packet: Packet) -> None:
        """Enqueue ``packet`` for transmission."""
        now = self.loop.now
        for observer in self._taps:
            observer(packet, now)
        arrival = self._admit(packet.wire_bytes, now)
        self.loop.schedule_at(arrival, lambda p=packet: self._arrive(p))

    def _admit(self, wire_bytes: int, now: float) -> float:
        """Book ``wire_bytes`` onto the wire at ``now``; return arrival time.

        All state arithmetic, attribution, and telemetry of packet
        admission live here, shared verbatim between the per-packet
        exact path (:meth:`send`) and the :mod:`repro.netsim.fastpath`
        engine — which is what makes the two paths bit-identical.

        This is the hottest function in the simulator (called once per
        packet per link); it is written with branches instead of
        ``max()`` calls and gates every telemetry-only computation, but
        the floating-point operations and their order are unchanged.
        """
        busy = self._busy_until
        if busy > now:
            queue_wait = busy - now
            charged = self._queue_charged_until
            frontier = now if now > charged else charged
            queue_charge = busy - frontier if busy > frontier else 0.0
            if charged < busy:
                self._queue_charged_until = busy
            eligible = busy
        else:
            queue_wait = 0.0
            queue_charge = 0.0
            eligible = now
        start = eligible
        shaper = self.shaper
        if shaper is not None:
            shaped = shaper.earliest_start(wire_bytes, start)
            if shaped > start:
                start = shaped
            shaper.consume(wire_bytes, start)
        throttle_wait = start - eligible
        tx_time = wire_bytes * 8.0 / self.rate_bps
        telemetry = obs._active  # obs.active() sans the call, per packet
        enabled = telemetry.enabled
        causes_on = enabled and telemetry.causes_on
        impair_wait = 0.0
        flap_wait = jitter_wait = recovery_wait = 0.0
        impairment = self.impairment
        if impairment is not None:
            if causes_on:
                flap_before = impairment.flap_defer_s
                jitter_before = impairment.jitter_added_s
                recovery_before = impairment.recovery_added_s
            impaired_start, recovery = impairment.apply(start, tx_time)
            impair_wait = (impaired_start - start) + recovery
            if causes_on:
                flap_wait = impairment.flap_defer_s - flap_before
                jitter_wait = impairment.jitter_added_s - jitter_before
                recovery_wait = impairment.recovery_added_s - recovery_before
            start = impaired_start
            tx_time += recovery
        if start > eligible:
            # The wire sits idle over [eligible, start): remember the gap
            # so utilization does not count it as pending work, and move
            # the queue-charge frontier past it so the next packet's wait
            # across the gap stays charged to throttle/flap/jitter (it
            # was, above) rather than re-charged to link.queue.
            self._gaps.append((eligible, start))
            if self._queue_charged_until < start:
                self._queue_charged_until = start
        busy = start + tx_time
        self._busy_until = busy
        self._busy_time_scheduled += tx_time
        self.bytes_carried += wire_bytes
        self.packets_carried += 1
        arrival = busy + self.delay_s
        if not enabled:
            return arrival
        if causes_on:
            causes = telemetry.causes
            recovered_share = min(queue_charge, self._recovery_backlog_s)
            if recovered_share > 0.0:
                self._recovery_backlog_s -= recovered_share
                causes.add("link.loss_recovery", recovered_share)
            if queue_charge > recovered_share:
                causes.add("link.queue", queue_charge - recovered_share)
            if throttle_wait > 0.0:
                causes.add("link.throttle", throttle_wait)
            if flap_wait > 0.0:
                causes.add("link.flap", flap_wait)
            if jitter_wait > 0.0:
                causes.add("link.jitter", jitter_wait)
            if recovery_wait > 0.0:
                causes.add("link.loss_recovery", recovery_wait)
                self._recovery_backlog_s += recovery_wait
        if telemetry.health_on and now > 0.0:
            completed = self._busy_time_scheduled - self._pending_tx_time(now)
            telemetry.health.check(
                "link.utilization_bounded", completed <= now + 1e-9,
                f"{self.name}: {completed:.3f}s busy in {now:.3f}s elapsed",
            )
        if telemetry.metrics_on:
            metrics = telemetry.metrics
            metrics.counter(
                "netsim_link_packets_total", "Packets entering the link",
                link=self.name,
            ).inc()
            metrics.counter(
                "netsim_link_bytes_total", "Wire bytes entering the link",
                link=self.name,
            ).inc(wire_bytes)
            metrics.histogram(
                "netsim_link_queue_delay_seconds",
                "Serialization-queue wait per packet", link=self.name,
            ).observe(queue_wait)
            if throttle_wait > 0.0:
                metrics.counter(
                    "netsim_link_throttle_seconds_total",
                    "Token-bucket shaping delay", link=self.name,
                ).inc(throttle_wait)
            if impair_wait > 0.0:
                metrics.counter(
                    "netsim_link_impairment_seconds_total",
                    "Injected loss-recovery/jitter/flap delay",
                    link=self.name,
                ).inc(impair_wait)
        return arrival

    def _arrive(self, packet: Packet) -> None:
        if self.deliver is None:
            raise RuntimeError(f"link {self.name!r} has no downstream sink")
        self.deliver(packet)

    @property
    def queue_delay_now(self) -> float:
        """Time a packet arriving now would wait before transmission."""
        return max(0.0, self._busy_until - self.loop.now)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Link({self.name!r}, {self.rate_bps / 1e6:.2f} Mbps, {self.delay_s * 1e3:.1f} ms)"


class TokenBucketShaper:
    """Token-bucket rate limiter, the model of ``tc ... tbf``.

    Tokens accrue at ``rate_bps``; a packet may start transmission once the
    bucket holds its full wire size.  The bucket depth bounds burst size.
    """

    def __init__(self, rate_bps: float, bucket_bytes: int) -> None:
        if rate_bps <= 0:
            raise ValueError("shaper rate must be positive")
        if bucket_bytes <= 0:
            raise ValueError("bucket must hold at least one byte")
        self.rate_bps = rate_bps
        self.bucket_bytes = bucket_bytes
        self._tokens = float(bucket_bytes)
        self._last_update = 0.0

    def _refill(self, now: float) -> None:
        elapsed = max(0.0, now - self._last_update)
        self._tokens = min(
            float(self.bucket_bytes), self._tokens + elapsed * self.rate_bps / 8.0
        )
        self._last_update = now

    def earliest_start(self, nbytes: int, now: float) -> float:
        """Earliest time a packet of ``nbytes`` may begin transmission."""
        self._refill(now)
        if self._tokens >= nbytes:
            return now
        deficit = nbytes - self._tokens
        return now + deficit * 8.0 / self.rate_bps

    def consume(self, nbytes: int, when: float) -> None:
        """Debit the bucket for a packet that starts at ``when``."""
        self._refill(when)
        self._tokens -= nbytes
