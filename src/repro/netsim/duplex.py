"""Bidirectional streams: a pair of connections, one per direction.

Request/response protocols (HTTP, the Periscope API, WebSockets) need
both directions to carry data.  A :class:`DuplexStream` owns two
:class:`~repro.netsim.connection.Connection` objects over the same chain
of hosts and exposes symmetric endpoints.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.netsim.connection import Connection, Message, Path
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network

MessageHandler = Callable[[Message, float], None]


class DuplexStream:
    """A bidirectional reliable stream between two hosts.

    ``a`` and ``b`` name the endpoints; :meth:`send_from_a` /
    :meth:`send_from_b` transmit toward the opposite end, which receives
    through the ``on_at_b`` / ``on_at_a`` callbacks (settable after
    construction because client and server usually wire themselves up
    separately).
    """

    def __init__(
        self,
        loop: EventLoop,
        net: Network,
        *host_names: str,
        window_bytes: Optional[int] = None,
        name: str = "",
    ) -> None:
        if len(host_names) < 2:
            raise ValueError("a duplex stream spans at least two hosts")
        self.loop = loop
        self.name = name or "duplex"
        self.on_at_a: Optional[MessageHandler] = None
        self.on_at_b: Optional[MessageHandler] = None

        kwargs = {}
        if window_bytes is not None:
            kwargs["window_bytes"] = window_bytes
        fwd_ab, rev_ab = net.duplex_paths(*host_names)
        self._a_to_b = Connection(
            loop, fwd_ab, rev_ab,
            on_message=lambda m, t: self._dispatch(self.on_at_b, m, t),
            name=f"{self.name}:a->b", **kwargs,
        )
        fwd_ba, rev_ba = net.duplex_paths(*reversed(host_names))
        self._b_to_a = Connection(
            loop, fwd_ba, rev_ba,
            on_message=lambda m, t: self._dispatch(self.on_at_a, m, t),
            name=f"{self.name}:b->a", **kwargs,
        )

    @staticmethod
    def _dispatch(handler: Optional[MessageHandler], message: Message, t: float) -> None:
        if handler is not None:
            handler(message, t)

    @property
    def a_host(self):
        return self._a_to_b.src

    @property
    def b_host(self):
        return self._a_to_b.dst

    def send_from_a(self, message: Message) -> Message:
        """Transmit toward endpoint b."""
        return self._a_to_b.send(message)

    def send_from_b(self, message: Message) -> Message:
        """Transmit toward endpoint a."""
        return self._b_to_a.send(message)

    def close(self) -> None:
        """Tear down both directions."""
        self._a_to_b.close()
        self._b_to_a.close()

    @property
    def closed(self) -> bool:
        return self._a_to_b.closed and self._b_to_a.closed
