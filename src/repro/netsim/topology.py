"""Topology building helpers: duplex links and path construction.

Keeps the wiring boilerplate (terminate both directions, remember the
link pair between two hosts) out of experiment code.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.netsim.events import EventLoop
from repro.netsim.host import Host
from repro.netsim.link import Link, TokenBucketShaper
from repro.netsim.connection import Path


@dataclass
class DuplexLink:
    """A pair of opposite-direction links between two hosts."""

    a: Host
    b: Host
    a_to_b: Link
    b_to_a: Link

    def toward(self, host: Host) -> Link:
        """The link whose packets arrive at ``host``."""
        if host is self.b:
            return self.a_to_b
        if host is self.a:
            return self.b_to_a
        raise ValueError(f"{host!r} is not an endpoint of this duplex link")


class Network:
    """A collection of hosts and duplex links with path construction.

    The simulated testbed graphs are tiny (a handful of hosts), so path
    lookup walks explicit adjacency rather than running a routing
    algorithm.
    """

    def __init__(self, loop: EventLoop) -> None:
        self.loop = loop
        self.hosts: Dict[str, Host] = {}
        self._adjacent: Dict[Tuple[str, str], DuplexLink] = {}

    def host(self, name: str) -> Host:
        """Get or create the named host."""
        if name not in self.hosts:
            self.hosts[name] = Host(self.loop, name)
        return self.hosts[name]

    def duplex(
        self,
        a: Host,
        b: Host,
        rate_bps: float,
        delay_s: float,
        up_rate_bps: Optional[float] = None,
        up_shaper: Optional[TokenBucketShaper] = None,
        down_shaper: Optional[TokenBucketShaper] = None,
    ) -> DuplexLink:
        """Create and wire a duplex link ``a <-> b``.

        ``rate_bps`` applies a→b (the "down" direction when *b* is the
        client); ``up_rate_bps`` defaults to symmetric.
        """
        ab = Link(self.loop, rate_bps, delay_s, name=f"{a.name}->{b.name}", shaper=down_shaper)
        ba = Link(
            self.loop,
            up_rate_bps if up_rate_bps is not None else rate_bps,
            delay_s,
            name=f"{b.name}->{a.name}",
            shaper=up_shaper,
        )
        b.terminate(ab)
        a.terminate(ba)
        duplex = DuplexLink(a=a, b=b, a_to_b=ab, b_to_a=ba)
        self._adjacent[(a.name, b.name)] = duplex
        self._adjacent[(b.name, a.name)] = duplex
        return duplex

    def link_between(self, src: Host, dst: Host) -> Link:
        """The directional link carrying packets from ``src`` to ``dst``."""
        duplex = self._adjacent.get((src.name, dst.name))
        if duplex is None:
            raise KeyError(f"no link between {src.name} and {dst.name}")
        return duplex.toward(dst)

    def path(self, *host_names: str) -> Path:
        """Build a :class:`Path` along the named chain of hosts."""
        if len(host_names) < 2:
            raise ValueError("a path needs at least two hosts")
        hosts = [self.host(name) for name in host_names]
        links = [
            self.link_between(src, dst) for src, dst in zip(hosts, hosts[1:])
        ]
        return Path(hosts, links)

    def duplex_paths(self, *host_names: str) -> Tuple[Path, Path]:
        """Forward and reverse paths along the same chain of hosts."""
        forward = self.path(*host_names)
        reverse = self.path(*reversed(host_names))
        return forward, reverse
