"""Window-limited reliable byte streams ("TCP-ish" connections).

The model keeps what matters for the paper's phenomena and drops the
rest:

* **kept** — in-order reliable delivery; a bounded window of unacknowledged
  bytes (so a sender cannot flood the path: ACK clocking makes concurrent
  flows share a bottleneck link roughly fairly, and bounds queue build-up);
  per-packet serialization and queueing delays; message framing so the
  application sees frame/segment boundaries.
* **dropped** — loss and retransmission (links are lossless FIFOs, so
  ordering is guaranteed and loss recovery would be dead code); byte-exact
  header emulation beyond a constant per-packet overhead.

A :class:`Message` is the application unit (an RTMP chunk batch, an HTTP
response carrying a TS segment, a chat frame...).  Messages are chunked
into MSS-sized packets; the receiver's callback fires when the final byte
of the message arrives.
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Sequence

import repro.netsim.fastpath as fastpath
from repro.netsim.events import EventLoop
from repro.netsim.host import Host
from repro.netsim.link import Link
from repro.netsim.packet import MSS, Packet

_flow_ids = itertools.count(1)
_message_ids = itertools.count(1)

#: Default window of unacknowledged bytes per connection.  64 kB is the
#: classic un-scaled TCP receive window; with RTTs of tens of milliseconds
#: it supports well above the stream rates in this study.
DEFAULT_WINDOW_BYTES = 64 * 1024

#: ACK packets carry no payload bytes (pure header on the wire).
ACK_BYTES = 0


@dataclass
class Message:
    """An application-level message travelling over a connection."""

    payload: Any
    nbytes: int
    annotations: Dict[str, Any] = field(default_factory=dict)
    message_id: int = field(default_factory=lambda: next(_message_ids))
    #: Real bytes, when the experiment runs at byte fidelity.  When set,
    #: each packet carries its slice so captures can be reassembled into
    #: the original bitstream.
    data: Optional[bytes] = None
    #: Filled in by the connection when the message is queued / delivered.
    queued_at: float = -1.0
    delivered_at: float = -1.0

    def __post_init__(self) -> None:
        if self.data is not None and len(self.data) != self.nbytes:
            raise ValueError(
                f"data length {len(self.data)} != declared nbytes {self.nbytes}"
            )
        if self.nbytes <= 0:
            raise ValueError("messages must carry at least one byte")


class Path:
    """A unidirectional route: alternating hosts and links.

    ``hosts`` has one more element than ``links``; ``hosts[0]`` is the
    sender and ``hosts[-1]`` the receiver.  The path does not own the
    links — many paths may share a link (that sharing *is* the bottleneck
    model).
    """

    def __init__(self, hosts: Sequence[Host], links: Sequence[Link]) -> None:
        if len(hosts) != len(links) + 1:
            raise ValueError("a path interleaves N+1 hosts with N links")
        if not links:
            raise ValueError("a path needs at least one link")
        self.hosts = list(hosts)
        self.links = list(links)

    @property
    def src(self) -> Host:
        return self.hosts[0]

    @property
    def dst(self) -> Host:
        return self.hosts[-1]

    @property
    def first_link(self) -> Link:
        return self.links[0]

    def install(
        self, flow_id: int, handler: Callable[[Packet], None], ack: bool = False
    ) -> None:
        """Install forwarding state for one direction of ``flow_id`` along
        the path and the terminal ``handler`` at the destination."""
        for host, next_link in zip(self.hosts[1:-1], self.links[1:]):
            host.route_flow(flow_id, next_link, ack=ack)
        self.dst.bind_flow(flow_id, handler, ack=ack)

    def uninstall(self, flow_id: int) -> None:
        """Remove the per-flow state installed by :meth:`install`."""
        for host in self.hosts[1:]:
            host.unbind_flow(flow_id)

    def propagation_delay(self) -> float:
        """Sum of propagation delays along the path."""
        return sum(link.delay_s for link in self.links)

    def reversed_over(self, reverse_links: Sequence[Link]) -> "Path":
        """Build the reverse path over the given opposite-direction links."""
        return Path(list(reversed(self.hosts)), list(reverse_links))


class Connection:
    """A bidirectional reliable stream between two hosts.

    Data flows ``src -> dst`` over ``forward``; ACKs flow back over
    ``reverse``.  Call :meth:`send` on the source side; the destination
    receives whole messages through ``on_message``.
    """

    def __init__(
        self,
        loop: EventLoop,
        forward: Path,
        reverse: Path,
        on_message: Optional[Callable[[Message, float], None]] = None,
        window_bytes: int = DEFAULT_WINDOW_BYTES,
        name: str = "",
    ) -> None:
        if window_bytes < MSS:
            raise ValueError("window must hold at least one segment")
        if forward.src is not reverse.dst or forward.dst is not reverse.src:
            raise ValueError("reverse path must mirror the forward path endpoints")
        self.loop = loop
        self.forward = forward
        self.reverse = reverse
        self.on_message = on_message
        self.window_bytes = window_bytes
        self.flow_id = next(_flow_ids)
        self.name = name or f"conn{self.flow_id}"
        self.closed = False

        self._send_queue: Deque[Packet] = deque()
        self._in_flight = 0
        self._next_seq = 0
        self._bytes_sent = 0
        self._bytes_delivered = 0

        forward.install(self.flow_id, self._deliver_data, ack=False)
        reverse.install(self.flow_id, self._deliver_ack, ack=True)

        #: Fast-path lane (see :mod:`repro.netsim.fastpath`): books the
        #: same link arithmetic without per-packet events.  None when
        #: the exact per-packet path is requested.
        self._lane: Optional[fastpath.FastLane] = None
        engine = fastpath.attach(loop)
        if engine is not None:
            self._lane = fastpath.FastLane(engine, self)

    @property
    def src(self) -> Host:
        return self.forward.src

    @property
    def dst(self) -> Host:
        return self.forward.dst

    # ------------------------------------------------------------------ send

    def send(self, message: Message) -> Message:
        """Queue a message for transmission.  Returns the message (with
        ``queued_at`` stamped) for caller-side bookkeeping."""
        if self.closed:
            raise RuntimeError(f"send on closed connection {self.name}")
        if self._lane is not None:
            return self._lane.send(message)
        message.queued_at = self.loop.now
        offset = 0
        while offset < message.nbytes:
            size = min(MSS, message.nbytes - offset)
            chunk = None
            if message.data is not None:
                chunk = message.data[offset : offset + size]
            packet = Packet(
                flow_id=self.flow_id,
                seq=self._next_seq,
                payload_bytes=size,
                message_id=message.message_id,
                message_offset=offset,
                message_total=message.nbytes,
                annotations=dict(message.annotations),
                chunk=chunk,
            )
            # Stash the payload object on the final packet so the receiver
            # can hand the application the original message.
            if offset + size >= message.nbytes:
                packet.annotations["_message"] = message
            self._next_seq += 1
            offset += size
            self._send_queue.append(packet)
        self._pump()
        return message

    def _pump(self) -> None:
        while (
            self._send_queue
            and self._in_flight + self._send_queue[0].payload_bytes <= self.window_bytes
        ):
            packet = self._send_queue.popleft()
            packet.sent_at = self.loop.now
            self._in_flight += packet.payload_bytes
            self._bytes_sent += packet.payload_bytes
            self.forward.first_link.send(packet)

    # --------------------------------------------------------------- receive

    def _deliver_data(self, packet: Packet) -> None:
        if self.closed:
            return
        self._bytes_delivered += packet.payload_bytes
        # Lossless FIFO path: arrival order is send order, so the last
        # packet of a message marks message completion.
        message = packet.annotations.get("_message")
        if message is not None:
            message.delivered_at = self.loop.now
            if self.on_message is not None:
                self.on_message(message, self.loop.now)
        ack = Packet(
            flow_id=self.flow_id,
            seq=packet.seq,
            payload_bytes=ACK_BYTES,
            is_ack=True,
            annotations={"_acked_bytes": packet.payload_bytes},
        )
        self.reverse.first_link.send(ack)

    def _deliver_ack(self, packet: Packet) -> None:
        if self.closed:
            return
        self._in_flight -= packet.annotations.get("_acked_bytes", 0)
        self._pump()

    # ----------------------------------------------------------------- admin

    def close(self) -> None:
        """Tear down the connection; queued data is discarded."""
        if self.closed:
            return
        self.closed = True
        self._send_queue.clear()
        self.forward.uninstall(self.flow_id)
        self.reverse.uninstall(self.flow_id)

    @property
    def backlog_bytes(self) -> int:
        """Bytes queued at the sender but not yet handed to the network."""
        return sum(p.payload_bytes for p in self._send_queue)

    @property
    def bytes_delivered(self) -> int:
        return self._bytes_delivered

    @property
    def in_flight_bytes(self) -> int:
        return self._in_flight

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Connection({self.name!r}, {self.src.name}->{self.dst.name})"
