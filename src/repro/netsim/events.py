"""Event loop for the discrete-event simulation.

A classic calendar queue on :mod:`heapq`.  Simulated time is a float in
seconds, starts at 0 and only moves forward.  Events scheduled for the
same instant fire in scheduling order (a monotonically increasing
sequence number breaks ties), which keeps runs deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class Event:
    """A scheduled callback.  Returned by :meth:`EventLoop.schedule` so the
    caller can :meth:`cancel` it."""

    __slots__ = ("time", "seq", "callback", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[[], None]) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        self.cancelled = True
        self.callback = None


class EventLoop:
    """Deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks fired so far (diagnostics)."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), callback)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        return self.schedule(time - self._now, callback)

    def _pop_next(self) -> Optional[Event]:
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if not event.cancelled:
                return event
        return None

    def step(self) -> bool:
        """Run the next pending event.  Returns False when the queue is
        empty."""
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        callback, event.callback = event.callback, None
        self._processed += 1
        assert callback is not None
        callback()
        return True

    def run(self, max_events: int = 50_000_000) -> None:
        """Run until no events remain.

        ``max_events`` is a runaway guard; exceeding it raises
        :class:`RuntimeError` rather than hanging the host process.
        """
        for _ in range(max_events):
            if not self.step():
                return
        raise RuntimeError(f"event loop exceeded {max_events} events")

    def run_until(self, time: float, max_events: int = 50_000_000) -> None:
        """Run events with timestamps ``<= time``; afterwards ``now`` equals
        ``time`` even if the queue went empty earlier."""
        if time < self._now:
            raise ValueError("cannot run backwards in time")
        for _ in range(max_events):
            # Purge cancelled entries so the peeked head is a live event —
            # otherwise step() could skip past the deadline.
            while self._queue and self._queue[0][2].cancelled:
                heapq.heappop(self._queue)
            if not self._queue:
                break
            next_time = self._queue[0][0]
            if next_time > time:
                break
            if not self.step():
                break
        else:
            raise RuntimeError(f"event loop exceeded {max_events} events")
        self._now = time

    def pending(self) -> int:
        """Number of queued, non-cancelled events."""
        return sum(1 for _, _, e in self._queue if not e.cancelled)
