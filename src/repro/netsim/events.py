"""Event loop for the discrete-event simulation.

A classic calendar queue on :mod:`heapq`.  Simulated time is a float in
seconds, starts at 0 and only moves forward.  Events scheduled for the
same instant fire in scheduling order (a monotonically increasing
sequence number breaks ties), which keeps runs deterministic.

The loop carries a live-event counter (so :meth:`EventLoop.pending` is
O(1) and telemetry can sample queue depth every tick) and optional
profiling hooks: when :mod:`repro.obs` telemetry is active at
construction time, every fired callback is attributed to a named
callback site with its wall-time cost.  Profiling only observes — it
never reorders events or consumes RNG.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro import obs


class Event:
    """A scheduled callback.  Returned by :meth:`EventLoop.schedule` so the
    caller can :meth:`cancel` it."""

    __slots__ = ("time", "seq", "callback", "cancelled", "_loop")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        loop: Optional["EventLoop"] = None,
    ) -> None:
        self.time = time
        self.seq = seq
        self.callback: Optional[Callable[[], None]] = callback
        self.cancelled = False
        self._loop = loop

    def cancel(self) -> None:
        """Prevent the callback from firing (idempotent)."""
        if self.cancelled:
            return
        self.cancelled = True
        self.callback = None
        loop, self._loop = self._loop, None
        if loop is not None:
            loop._live -= 1


class EventLoop:
    """Deterministic discrete-event scheduler."""

    def __init__(self) -> None:
        self._now = 0.0
        self._queue: List[Tuple[float, int, Event]] = []
        self._seq = itertools.count()
        self._processed = 0
        self._live = 0
        self.queue_depth_high_water = 0
        #: Shared profiler when telemetry is active at construction; the
        #: common case is None and costs one attribute check per step.
        self.profiler = obs.active().loop_profiler()
        #: Fast-path micro-event engine (:mod:`repro.netsim.fastpath`);
        #: attaches itself when the first fast-lane connection is built.
        #: Micro-events always run interleaved in global (time, seq)
        #: order with real events, so the fast path cannot reorder
        #: anything relative to the exact path.
        self._fast = None

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Number of callbacks fired so far (diagnostics)."""
        return self._processed

    def schedule(self, delay: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        event = Event(self._now + delay, next(self._seq), callback, loop=self)
        heapq.heappush(self._queue, (event.time, event.seq, event))
        self._live += 1
        if self._live > self.queue_depth_high_water:
            self.queue_depth_high_water = self._live
            if self.profiler is not None:
                self.profiler.note_queue_depth(self._live)
        return event

    def schedule_at(self, time: float, callback: Callable[[], None]) -> Event:
        """Schedule ``callback`` at an absolute simulated time."""
        return self.schedule(time - self._now, callback)

    def _pop_next(self) -> Optional[Event]:
        while self._queue:
            _, _, event = heapq.heappop(self._queue)
            if not event.cancelled:
                self._live -= 1
                event._loop = None  # fired: a late cancel() must not decrement
                return event
        return None

    def _peek_live(self) -> Optional[Tuple[float, int, Event]]:
        """The earliest non-cancelled queue entry, purging dead heads.

        Called once per fast-path micro-event; the head is almost always
        live, so that case takes a single tuple access."""
        queue = self._queue
        if not queue:
            return None
        head = queue[0]
        if not head[2].cancelled:
            return head
        while queue and queue[0][2].cancelled:
            heapq.heappop(queue)
        return queue[0] if queue else None

    def step(self) -> bool:
        """Run the next pending event (first draining any fast-path
        micro-events that precede it).  Returns False when nothing —
        event or micro-event — remains."""
        fast = self._fast
        if fast is not None and fast.active:
            fast.drain_before_events()
        event = self._pop_next()
        if event is None:
            return False
        self._now = event.time
        callback, event.callback = event.callback, None
        self._processed += 1
        assert callback is not None
        if self.profiler is not None:
            self.profiler.run_callback(self._now, callback)
        else:
            callback()
        return True

    def run(self, max_events: int = 50_000_000) -> None:
        """Run until no events remain.

        ``max_events`` is a runaway guard counting *fired* callbacks;
        exceeding it raises :class:`RuntimeError` rather than hanging the
        host process.
        """
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events and self._live > 0:
                raise RuntimeError(f"event loop exceeded {max_events} events")

    def run_until(self, time: float, max_events: int = 50_000_000) -> None:
        """Run events with timestamps ``<= time``; afterwards ``now`` equals
        ``time`` even if the queue went empty earlier.

        As in :meth:`run`, only fired callbacks count against
        ``max_events`` — purging cancelled queue entries is bookkeeping,
        not work.
        """
        if time < self._now:
            raise ValueError("cannot run backwards in time")
        fired = 0
        while True:
            # Purge cancelled entries so the peeked head is a live event —
            # otherwise step() could skip past the deadline.
            while self._queue and self._queue[0][2].cancelled:
                heapq.heappop(self._queue)
            if self._queue and self._queue[0][0] <= time:
                if fired >= max_events:
                    raise RuntimeError(
                        f"event loop exceeded {max_events} events")
                self.step()
                fired += 1
                continue
            # No real event is due: flush fast-path micro-events up to
            # the deadline.  Their handlers may schedule new real events
            # inside the window, so loop back around.
            fast = self._fast
            if fast is not None and fast.active and fast.drain_until(time):
                continue
            break
        self._now = time

    def pending(self) -> int:
        """Number of queued, non-cancelled events (O(1))."""
        return self._live
