"""Packet and capture-record types.

A :class:`Packet` is the unit moved by links.  Application payloads are
chunked into packets of at most ``MSS`` bytes by the connection layer; a
packet remembers which message it belongs to and which byte range of the
message it carries, which is exactly the information the reassembly code
in :mod:`repro.capture.reconstruct` needs (it mirrors what wireshark's
"follow TCP stream" recovers from sequence numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, NamedTuple, Optional, Tuple

#: Maximum segment size used by connections, in bytes (typical TCP MSS on
#: an Ethernet path).
MSS = 1448

#: Bytes of per-packet overhead counted on the wire (IP + TCP headers).
HEADER_BYTES = 52


@dataclass
class Packet:
    """A data or ACK packet in flight.

    ``payload_bytes`` is application bytes only; :attr:`wire_bytes` adds
    header overhead and is what links serialize.
    """

    flow_id: int
    seq: int
    payload_bytes: int
    is_ack: bool = False
    message_id: int = -1
    message_offset: int = 0
    message_total: int = 0
    annotations: Dict[str, Any] = field(default_factory=dict)
    #: Byte slice of the message carried by this packet (only when the
    #: message was sent with real bytes attached).
    chunk: Optional[bytes] = None
    #: Filled by the connection layer: time the packet entered the network.
    sent_at: float = 0.0
    #: Pre-sorted ``annotations.items()`` — set by the fast path, which
    #: sorts once per message instead of once per capture record.  When
    #: present it must equal ``sorted(annotations.items())``.
    ann_items: Optional[Tuple[Tuple[str, Any], ...]] = None

    @property
    def wire_bytes(self) -> int:
        """Size serialized on the wire, including headers."""
        return self.payload_bytes + HEADER_BYTES


class PacketRecord(NamedTuple):
    """One line of a tcpdump-like capture: an observed packet at a capture
    point, with its observation timestamp.

    A named tuple rather than a frozen dataclass: captures create one
    record per packet per tapped link, and tuple construction is the
    cheapest immutable snapshot Python offers.
    """

    timestamp: float
    flow_id: int
    seq: int
    payload_bytes: int
    wire_bytes: int
    is_ack: bool
    direction: str
    message_id: int
    message_offset: int
    message_total: int
    annotations: Tuple[Tuple[str, Any], ...]
    chunk: Optional[bytes] = None

    @staticmethod
    def of(
        packet: Packet,
        timestamp: float,
        direction: str,
        keep_payload: bool = True,
    ) -> "PacketRecord":
        """Snapshot ``packet`` as observed at ``timestamp``.

        ``keep_payload=False`` drops the byte slice (a capture without
        payloads, like ``tcpdump -s 96``)."""
        annotations = packet.ann_items
        if annotations is None:
            # Keys are unique, so a plain tuple sort equals key-sorted order.
            annotations = tuple(sorted(packet.annotations.items()))
        return PacketRecord(
            timestamp,
            packet.flow_id,
            packet.seq,
            packet.payload_bytes,
            packet.payload_bytes + HEADER_BYTES,
            packet.is_ack,
            direction,
            packet.message_id,
            packet.message_offset,
            packet.message_total,
            annotations,
            packet.chunk if keep_payload else None,
        )

    def annotation(self, key: str, default: Any = None) -> Any:
        """Look up one annotation by key."""
        for k, v in self.annotations:
            if k == key:
                return v
        return default
