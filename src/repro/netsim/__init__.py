"""Discrete-event network simulator.

Models the measurement testbed of the paper: hosts connected by
bandwidth/latency-constrained links (the reverse-tethered USB/desktop
uplink, shaped with ``tc`` in some experiments), over which window-limited
reliable byte streams ("TCP-ish" connections) carry the streaming
protocols.  Packet-level capture hooks provide the ``tcpdump`` equivalent
used by the reconstruction pipeline in :mod:`repro.capture`.
"""

from repro.netsim.events import EventLoop, Event
from repro.netsim.packet import Packet, PacketRecord
from repro.netsim.link import Link, TokenBucketShaper
from repro.netsim.host import Host, Interface
from repro.netsim.connection import Connection, Message, Path
from repro.netsim.trace import TraceCapture

__all__ = [
    "EventLoop",
    "Event",
    "Packet",
    "PacketRecord",
    "Link",
    "TokenBucketShaper",
    "Host",
    "Interface",
    "Connection",
    "Message",
    "Path",
    "TraceCapture",
]
