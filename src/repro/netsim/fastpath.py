"""Segment-granularity transport fast path.

The exact network model moves every packet through the topology as a
chain of event-loop callbacks: one scheduled arrival per link crossed by
the packet, one more per ACK hop, plus host dictionary routing and a
:class:`~repro.netsim.packet.Packet` object at each step.  Profiling
shows that for a viewing session this machinery — not the link
arithmetic — dominates wall time.

This module removes the machinery without touching the arithmetic.  A
:class:`FastLane` replaces the per-packet event chain of one connection
with *micro-events* kept in per-hop FIFO deques owned by the loop's
:class:`FastEngine`:

* Packet admission calls the same :meth:`Link._admit` the exact path
  uses — identical floating-point operations in identical order, so
  busy horizons, shaper state, impairment RNG draws, causes attribution
  and telemetry are bit-identical by construction.
* Micro-events are processed in global time order, interleaved with the
  loop's real events: the loop drains every micro-event that precedes
  its next live event before firing it (ties break on the shared
  sequence counter).  A booking can therefore never happen out of order
  with respect to any other flow — fast or exact — sharing a link.
* Because links are FIFO and a lane's packets cross each link in
  sequence order, the pending arrivals of one (lane, hop) pair are
  already time-ordered — a deque per hop replaces a heap, enqueue is
  O(1) with zero allocation (the pending time rides on the packet
  itself), and a lane's earliest event is the minimum over at most four
  deque heads, cached on the lane.
* Arbitrary code (which can touch other lanes, links, or the real-event
  queue) runs only inside a completed message's ``on_message`` callback.
  :meth:`FastEngine._drain` exploits that: it computes the interference
  bound — the earliest real event and earliest other-lane micro-event —
  once per region, then runs the winning lane's hops in a tight inner
  loop until the bound is reached or a callback fires.

What is intentionally **not** preserved in fast mode: per-hop event-loop
callbacks (so ``EventLoop.events_processed`` and profiler callback-site
attribution shrink) and capture-record order between packets with
exactly equal float timestamps (sums and per-flow order are unchanged).
Simulation *results* — delivery times, QoE, datasets — are bit-identical
to the exact path; run with :func:`exact_network` (or
``StudyConfig.exact_network``) when per-packet event traces themselves
are the object of study.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from typing import Iterator, List, Optional

from repro.netsim.events import EventLoop
from repro.netsim.packet import HEADER_BYTES, MSS, Packet

__all__ = [
    "FastEngine",
    "FastLane",
    "attach",
    "enabled",
    "exact_network",
    "set_enabled",
]

#: ACK packets carry no payload: header bytes only on the wire.
_ACK_WIRE_BYTES = HEADER_BYTES

_INF = float("inf")

#: Process-wide switch.  On by default; the exact per-packet path is the
#: opt-in (``StudyConfig.exact_network`` / ``--exact-net``).  Read once
#: per Connection at construction, so flipping it never strands a
#: half-migrated transfer.
_enabled = True


def enabled() -> bool:
    """Whether new connections use the fast path."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Turn the fast path on or off for subsequently built connections."""
    global _enabled
    _enabled = bool(flag)


@contextmanager
def exact_network() -> Iterator[None]:
    """Context manager forcing the exact per-packet path."""
    previous = _enabled
    set_enabled(False)
    try:
        yield
    finally:
        set_enabled(previous)


def attach(loop: EventLoop) -> Optional["FastEngine"]:
    """The loop's engine (created on first use), or None when disabled."""
    if not _enabled:
        return None
    engine = loop._fast
    if engine is None:
        engine = FastEngine(loop)
    return engine


class _FastPacket:
    """Slim per-segment state: one MSS-sized slice of a message.

    Replaces the per-hop :class:`Packet` dataclass; a real ``Packet`` is
    materialized lazily (and cached) only when a tapped link needs to
    show one to its observers.
    """

    __slots__ = (
        "seq",
        "payload_bytes",
        "message",
        "offset",
        "final",
        "chunk",
        "ann_items",
        "sent_at",
        "_data_packet",
        "_ack_packet",
        # Micro-event slot: a packet sits in exactly one per-hop FIFO at
        # a time, so its pending (time, tie-break seq) live on the packet
        # itself — no event tuples are ever allocated.
        "ev_time",
        "ev_seq",
    )

    def as_data_packet(self, flow_id: int) -> Packet:
        packet = self._data_packet
        if packet is None:
            message = self.message
            ann_items = self.ann_items
            packet = Packet.__new__(Packet)
            packet.__dict__ = {
                "flow_id": flow_id,
                "seq": self.seq,
                "payload_bytes": self.payload_bytes,
                "is_ack": False,
                "message_id": message.message_id,
                "message_offset": self.offset,
                "message_total": message.nbytes,
                "annotations": dict(ann_items),
                "chunk": self.chunk,
                "sent_at": self.sent_at,
                "ann_items": ann_items,
            }
            self._data_packet = packet
        return packet

    def as_ack_packet(self, flow_id: int) -> Packet:
        packet = self._ack_packet
        if packet is None:
            items = (("_acked_bytes", self.payload_bytes),)
            packet = Packet.__new__(Packet)
            packet.__dict__ = {
                "flow_id": flow_id,
                "seq": self.seq,
                "payload_bytes": 0,
                "is_ack": True,
                "message_id": -1,
                "message_offset": 0,
                "message_total": 0,
                "annotations": dict(items),
                "chunk": None,
                "sent_at": 0.0,
                "ann_items": items,
            }
            self._ack_packet = packet
        return packet


class FastEngine:
    """Per-loop micro-event scheduler for fast-path transfers.

    Micro-events are not kept in one global heap.  Within a lane,
    packets cross each route link in seq order and every link is a
    FIFO, so the pending arrivals of one (lane, hop) pair are already
    time-ordered — a plain deque per hop suffices, with the pending
    ``(ev_time, ev_seq)`` stored on the packet itself (no event tuples,
    no heap sifts).  Each lane caches the minimum over its hop deques;
    the engine's next micro-event is the minimum over the (few) active
    lanes' cached heads.

    Tie-break sequence numbers come from the loop's own counter, so
    micro-events order against real events exactly as two real events
    would.
    """

    def __init__(self, loop: EventLoop) -> None:
        self.loop = loop
        #: Lanes with at least one pending micro-event.  Kept tiny (the
        #: handful of connections with bytes in flight), so a linear
        #: minimum scan beats heap maintenance.
        self.active: List["FastLane"] = []
        self._seq = loop._seq
        loop._fast = self

    # ------------------------------------------------------------- draining

    def drain_before_events(self) -> None:
        """Process every micro-event preceding the loop's next live event."""
        self._drain(_INF, 0)

    def drain_until(self, time: float) -> bool:
        """Process micro-events with timestamps ``<= time`` (still yielding
        to earlier real events).  Returns True if any was processed."""
        return self._drain(time, _INF)

    def _drain(self, limit_time: float, limit_seq: float) -> bool:
        """The micro-event pump.  The hop handling that conceptually lives
        on :class:`FastLane` is inlined here — this loop runs once per
        packet per link and is the hottest code in the simulator.

        The key structural fact: processing a micro-event runs arbitrary
        code (which may send on other connections, schedule real events,
        or close things) **only** when a completed message's
        ``on_message`` callback fires.  Every other hop touches nothing
        but its own lane and its links.  The loop therefore computes the
        interference bound — the earliest pending real event and the
        earliest other-lane micro-event — once per *region*, then runs
        the winning lane's events in a tight inner loop against that
        bound, rescanning only after an ``on_message`` (or when the
        bound is reached).
        """
        active = self.active
        if not active:
            return False
        loop = self.loop
        peek = loop._peek_live
        seq = self._seq
        processed = False
        while active:
            # ---- earliest micro-event across active lanes (cached heads)
            lane = active[0]
            t = lane.head_time
            s = lane.head_seq
            for other in active:
                ot = other.head_time
                if ot < t or (ot == t and other.head_seq < s):
                    lane = other
                    t = ot
                    s = other.head_seq
            if t > limit_time or (t == limit_time and s >= limit_seq):
                break
            head = peek()
            if head is not None and (head[0] < t or (head[0] == t and head[1] < s)):
                break  # a real event precedes this micro-event
            # ---- interference bound for this lane's run
            bound_t = limit_time
            bound_s = limit_seq
            if head is not None and (head[0] < bound_t or
                                     (head[0] == bound_t and head[1] < bound_s)):
                bound_t = head[0]
                bound_s = head[1]
            for other in active:
                if other is not lane:
                    ot = other.head_time
                    if ot < bound_t or (ot == bound_t and other.head_seq < bound_s):
                        bound_t = ot
                        bound_s = other.head_seq
            pending = lane.pending
            conn = lane.conn
            flow_id = conn.flow_id
            last_data = lane.last_data
            last_stage = lane.last_stage
            hops = lane.hops
            # ---- tight per-lane run up to the bound
            while True:
                t = lane.head_time
                if t > bound_t or (t == bound_t and lane.head_seq >= bound_s):
                    break
                r = lane.head_hop
                fp = pending[r].popleft()
                npending = lane.npending - 1
                lane.npending = npending
                if npending == 0:
                    active.remove(lane)
                    lane.head_time = _INF
                    lane.head_hop = -1
                else:
                    # Recompute this lane's cached head (<= 4 deque peeks).
                    bt = _INF
                    bs = 0
                    br = -1
                    hop = 0
                    for d in pending:
                        if d:
                            h = d[0]
                            ht = h.ev_time
                            if ht < bt or (ht == bt and h.ev_seq < bs):
                                bt = ht
                                bs = h.ev_seq
                                br = hop
                        hop += 1
                    lane.head_time = bt
                    lane.head_seq = bs
                    lane.head_hop = br
                processed = True
                # -------- hop arrival (FastLane logic, inlined) --------
                loop._now = t
                if conn.closed:
                    if npending == 0:
                        break
                    continue
                ran_callback = False
                if r == last_data:
                    # Data reached the receiver endpoint.  The ACK departs
                    # within the same instant — even if the handler just
                    # closed the connection (the exact path books the ACK
                    # onto the first reverse link before the unbound host
                    # drops it downstream).
                    conn._bytes_delivered += fp.payload_bytes
                    if fp.final:
                        message = fp.message
                        message.delivered_at = t
                        on_message = conn.on_message
                        if on_message is not None:
                            on_message(message, t)
                            ran_callback = True
                    nxt = lane.nf
                elif r == last_stage:
                    # ACK reached the sender endpoint: open the window.
                    conn._in_flight -= fp.payload_bytes
                    if conn._send_queue:
                        lane.pump(t)
                    if npending == 0 and lane.npending == 0:
                        break
                    continue
                else:
                    nxt = r + 1
                admit, taps, is_data = hops[nxt]
                if is_data:
                    if taps:
                        packet = fp.as_data_packet(flow_id)
                        for observer in taps:
                            observer(packet, t)
                    t2 = admit(fp.payload_bytes + HEADER_BYTES, t)
                else:
                    if taps:
                        packet = fp.as_ack_packet(flow_id)
                        for observer in taps:
                            observer(packet, t)
                    t2 = admit(_ACK_WIRE_BYTES, t)
                # ---- enqueue the next hop's arrival (O(1), no allocation)
                s2 = next(seq)
                fp.ev_time = t2
                fp.ev_seq = s2
                pending[nxt].append(fp)
                if lane.npending == 0:
                    active.append(lane)
                    lane.npending = 1
                    lane.head_time = t2
                    lane.head_seq = s2
                    lane.head_hop = nxt
                else:
                    lane.npending += 1
                    ht = lane.head_time
                    if t2 < ht or (t2 == ht and s2 < lane.head_seq):
                        lane.head_time = t2
                        lane.head_seq = s2
                        lane.head_hop = nxt
                if ran_callback:
                    # Arbitrary code ran: other lanes and the real-event
                    # queue may have changed.  Recompute the bound.
                    break
        return processed


class FastLane:
    """Fast-path transport state for one :class:`Connection`.

    Shares the connection's ``_send_queue`` / ``_in_flight`` /
    ``_next_seq`` bookkeeping so backpressure properties
    (``backlog_bytes``, ``in_flight_bytes``) keep working unchanged.
    """

    __slots__ = ("engine", "loop", "conn", "route", "hops", "nf",
                 "last_data", "last_stage", "pending", "npending",
                 "head_time", "head_seq", "head_hop")

    def __init__(self, engine: FastEngine, conn) -> None:
        self.engine = engine
        self.loop = engine.loop
        self.conn = conn
        #: Forward (data) links then reverse (ACK) links, in hop order.
        self.route = tuple(conn.forward.links) + tuple(conn.reverse.links)
        self.nf = len(conn.forward.links)
        self.last_data = self.nf - 1
        self.last_stage = len(self.route) - 1
        #: Per-hop dispatch table: ``(link._admit, link._taps, is_data)``.
        #: Bound methods and the (mutable, identity-stable) tap lists are
        #: resolved once so the drain loop does no attribute chasing.
        self.hops = tuple(
            (link._admit, link._taps, index < self.nf)
            for index, link in enumerate(self.route)
        )
        #: One FIFO of in-flight packets per hop (arrivals are time-ordered
        #: within a hop), plus the cached minimum across the hop heads.
        self.pending = tuple(deque() for _ in self.route)
        self.npending = 0
        self.head_time = _INF
        self.head_seq = 0
        self.head_hop = -1

    # ----------------------------------------------------------------- send

    def send(self, message) -> None:
        """Chunk ``message`` and transmit what the window allows — the
        fast twin of ``Connection.send`` + ``Connection._pump``."""
        conn = self.conn
        now = self.loop.now
        message.queued_at = now
        # Annotation keys are unique, so a plain tuple sort never falls
        # through to comparing values and equals the key-sorted order.
        base_items = tuple(sorted(message.annotations.items()))
        # The final segment additionally carries the message object under
        # "_message"; splice it into its sorted slot instead of re-sorting.
        slot = 0
        for key, _ in base_items:
            if key > "_message":
                break
            slot += 1
        final_items = base_items[:slot] + (("_message", message),) + base_items[slot:]
        queue = conn._send_queue
        append = queue.append
        data = message.data
        total = message.nbytes
        seq = conn._next_seq
        offset = 0
        while offset < total:
            remaining = total - offset
            size = MSS if remaining > MSS else remaining
            fp = _FastPacket()
            fp.seq = seq
            fp.payload_bytes = size
            fp.message = message
            fp.offset = offset
            fp.chunk = data[offset : offset + size] if data is not None else None
            fp.sent_at = 0.0
            fp._data_packet = None
            fp._ack_packet = None
            seq += 1
            offset += size
            if offset >= total:
                fp.final = True
                fp.ann_items = final_items
            else:
                fp.final = False
                fp.ann_items = base_items
            append(fp)
        conn._next_seq = seq
        self.pump(now)
        return message

    def pump(self, t: float) -> None:
        """Book window-eligible queued segments onto the first link."""
        conn = self.conn
        queue = conn._send_queue
        if not queue:
            return
        window = conn.window_bytes
        engine = self.engine
        seq = engine._seq
        admit, taps, _ = self.hops[0]
        flow_id = conn.flow_id
        pend0 = self.pending[0]
        while queue and conn._in_flight + queue[0].payload_bytes <= window:
            fp = queue.popleft()
            fp.sent_at = t
            payload = fp.payload_bytes
            conn._in_flight += payload
            conn._bytes_sent += payload
            if taps:
                packet = fp.as_data_packet(flow_id)
                for observer in taps:
                    observer(packet, t)
            t2 = admit(payload + HEADER_BYTES, t)
            s2 = next(seq)
            fp.ev_time = t2
            fp.ev_seq = s2
            pend0.append(fp)
            if self.npending == 0:
                engine.active.append(self)
                self.npending = 1
                self.head_time = t2
                self.head_seq = s2
                self.head_hop = 0
            elif t2 < self.head_time or (
                t2 == self.head_time and s2 < self.head_seq
            ):
                self.npending += 1
                self.head_time = t2
                self.head_seq = s2
                self.head_hop = 0
            else:
                self.npending += 1

    # The per-hop arrival handling (host routing, ``_deliver_data`` /
    # ``_deliver_ack`` mirroring, next-hop admission) lives inlined in
    # :meth:`FastEngine._drain` — it runs once per packet per link.
