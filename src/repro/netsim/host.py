"""Hosts: named nodes that terminate links and route packets by flow.

The testbed topology is hub-and-spoke — phone ↔ tethering desktop ↔ many
servers — and several connections share the phone's access link (video,
chat, avatar downloads).  Links are wired to their receiving host once, at
topology-build time; each connection then installs per-flow state at every
host on its path: a *local handler* at the endpoints and a *next-hop link*
at intermediate hosts.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.netsim.events import EventLoop
from repro.netsim.link import Link
from repro.netsim.packet import Packet


class Host:
    """A named simulation node (phone, desktop, ingest server, CDN edge)."""

    def __init__(self, loop: EventLoop, name: str) -> None:
        self.loop = loop
        self.name = name
        # Per-flow state is keyed by (flow_id, is_ack) because the data and
        # ACK directions of one connection traverse the same intermediate
        # hosts in opposite directions.
        self._handlers: Dict[tuple, Callable[[Packet], None]] = {}
        self._routes: Dict[tuple, Link] = {}
        self.incoming: List[Link] = []

    def terminate(self, link: Link) -> None:
        """Declare this host the receiving end of ``link``."""
        link.deliver = self.receive
        self.incoming.append(link)

    def bind_flow(
        self, flow_id: int, handler: Callable[[Packet], None], ack: bool = False
    ) -> None:
        """Deliver arriving packets of one flow direction to ``handler``."""
        key = (flow_id, ack)
        if key in self._handlers:
            raise ValueError(f"flow {key} already bound on {self.name}")
        self._handlers[key] = handler

    def route_flow(self, flow_id: int, next_link: Link, ack: bool = False) -> None:
        """Forward arriving packets of one flow direction onto ``next_link``."""
        key = (flow_id, ack)
        if key in self._routes:
            raise ValueError(f"flow {key} already routed on {self.name}")
        self._routes[key] = next_link

    def unbind_flow(self, flow_id: int) -> None:
        """Remove all per-flow state for ``flow_id`` (idempotent)."""
        for ack in (False, True):
            self._handlers.pop((flow_id, ack), None)
            self._routes.pop((flow_id, ack), None)

    def receive(self, packet: Packet) -> None:
        """Handle an arriving packet: local delivery, forward, or drop."""
        key = (packet.flow_id, packet.is_ack)
        handler = self._handlers.get(key)
        if handler is not None:
            handler(packet)
            return
        next_link = self._routes.get(key)
        if next_link is not None:
            next_link.send(packet)
            return
        # Packet for a closed/unknown connection: drop, as a real kernel
        # answers with an RST nobody listens for.

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Host({self.name!r})"


class Interface:
    """Convenience alias kept for symmetry with real stacks: terminating a
    link at a host is the only interface operation the simulator needs."""

    def __init__(self, host: Host, link: Link) -> None:
        self.host = host
        self.link = link
        host.terminate(link)
