"""Stream reconstruction from tether captures (the wireshark step).

Two fidelity levels, matching how a session was run:

* **byte fidelity** — packets carry real byte slices; flows are
  reassembled into the original byte streams and dissected with the real
  parsers (RTMP chunk parser, MPEG-TS demuxer);
* **token fidelity** — packets carry message annotations; the same
  extraction is driven off message boundaries (sizes and payload objects
  are exact, parsing is skipped).

Either way the output is identical in kind to the paper's: per-flow
media frames for RTMP, and isolated ``.ts`` segments for HLS ("saving
the response of the HTTP GET request, which contains an MPEG-TS file
ready to be played").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from repro.media.frames import AudioFrame, EncodedFrame
from repro.media.segmenter import HlsSegment
from repro.netsim.packet import PacketRecord
from repro.netsim.trace import TraceCapture
from repro.protocols.rtmp import ChunkParser, RtmpMessageType, media_frame_of

MediaFrame = Union[EncodedFrame, AudioFrame]


@dataclass
class ReassembledStream:
    """One direction of one TCP flow, reassembled."""

    flow_id: int
    direction: str
    total_payload_bytes: int
    #: Contiguous byte stream (byte-fidelity captures only).
    data: Optional[bytes]
    #: Message-boundary records: (timestamp of completion, annotations).
    messages: List[Tuple[float, dict]] = field(default_factory=list)
    first_seen: float = 0.0
    last_seen: float = 0.0

    @property
    def duration_s(self) -> float:
        return self.last_seen - self.first_seen

    def average_rate_bps(self) -> float:
        if self.duration_s <= 0:
            return 0.0
        return self.total_payload_bytes * 8.0 / self.duration_s


def reassemble_flows(capture: TraceCapture) -> Dict[Tuple[int, str], ReassembledStream]:
    """Group capture records by (flow, direction) and reassemble.

    Ordering uses sequence numbers (as TCP reassembly does); with the
    simulator's lossless FIFO paths capture order already matches, but we
    sort anyway so the function is honest about its contract.
    """
    grouped: Dict[Tuple[int, str], List[PacketRecord]] = {}
    for record in capture.records:
        if record.is_ack:
            continue
        grouped.setdefault((record.flow_id, record.direction), []).append(record)
    streams: Dict[Tuple[int, str], ReassembledStream] = {}
    for key, records in grouped.items():
        records.sort(key=lambda r: r.seq)
        chunks = [r.chunk for r in records]
        data = b"".join(c for c in chunks if c is not None) if any(
            c is not None for c in chunks
        ) else None
        messages = []
        for record in records:
            # The final packet of each message carries the payload object.
            message = record.annotation("_message")
            if message is not None:
                messages.append((record.timestamp, dict(record.annotations)))
        streams[key] = ReassembledStream(
            flow_id=key[0],
            direction=key[1],
            total_payload_bytes=sum(r.payload_bytes for r in records),
            data=data,
            messages=messages,
            first_seen=records[0].timestamp,
            last_seen=records[-1].timestamp,
        )
    return streams


def extract_rtmp_frames(
    stream: ReassembledStream,
) -> List[Tuple[float, MediaFrame]]:
    """Recover (arrival_time, frame) pairs from an RTMP flow.

    Byte-fidelity streams are dissected with the chunk parser (the
    wireshark RTMP dissector); token streams are read off message
    boundaries.
    """
    frames: List[Tuple[float, MediaFrame]] = []
    token_frames = [
        (t, ann) for t, ann in stream.messages if ann.get("protocol") == "rtmp"
    ]
    if token_frames:
        for timestamp, annotations in token_frames:
            message = annotations.get("_message")
            if message is not None and isinstance(
                message.payload, (EncodedFrame, AudioFrame)
            ):
                frames.append((timestamp, message.payload))
        return frames
    if stream.data is not None:
        parser = ChunkParser()
        for rtmp_message in parser.feed(stream.data):
            if rtmp_message.msg_type in (RtmpMessageType.AUDIO, RtmpMessageType.VIDEO):
                frames.append((stream.last_seen, media_frame_of(rtmp_message)))
        return frames
    return frames


def extract_hls_segments(
    stream: ReassembledStream,
) -> List[Tuple[float, HlsSegment]]:
    """Isolate the MPEG-TS segments an HLS flow fetched.

    Token captures hand back the segment payload objects; byte captures
    would additionally allow :func:`repro.protocols.mpegts.demux_segment`
    on each response body (exercised in the byte-fidelity tests).
    """
    segments: List[Tuple[float, HlsSegment]] = []
    for timestamp, annotations in stream.messages:
        if annotations.get("protocol") != "http" or annotations.get("kind") != "response":
            continue
        path = annotations.get("path", "")
        if not str(path).endswith(".ts"):
            continue
        message = annotations.get("_message")
        if message is None:
            continue
        response = message.payload
        payload = getattr(response, "payload", None)
        if isinstance(payload, HlsSegment):
            segments.append((timestamp, payload))
    return segments


def classify_flows(
    streams: Dict[Tuple[int, str], ReassembledStream],
) -> Dict[str, List[ReassembledStream]]:
    """Split reassembled flows by protocol, like the paper's first pass
    over a capture."""
    buckets: Dict[str, List[ReassembledStream]] = {
        "rtmp": [], "http": [], "websocket": [], "other": [],
    }
    for stream in streams.values():
        protocols = {ann.get("protocol") for _, ann in stream.messages}
        if "rtmp" in protocols:
            buckets["rtmp"].append(stream)
        elif "http" in protocols:
            buckets["http"].append(stream)
        elif "websocket" in protocols:
            buckets["websocket"].append(stream)
        else:
            buckets["other"].append(stream)
    return buckets
