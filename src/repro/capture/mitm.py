"""mitmproxy equivalent: transparent interception with inline scripts.

The study put an SSL-capable MITM proxy between the phone and the
service (possible because the Android app, unlike iOS, does not pin
certificates).  Inline scripts observe — and may modify — each request
and response.  Both study datasets were produced by such scripts: the
crawler (replaying map queries with modified coordinates) and the
playbackMeta dumper.

Our proxy wraps an HTTP handler: it sits server-side of the simulated
network exactly where a transparent proxy would terminate TLS.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.protocols.http import HttpRequest, HttpResponse, RequestHandler


@dataclass
class Flow:
    """One intercepted request/response pair (mitmproxy's `flow`)."""

    request: HttpRequest
    client: str
    response: Optional[HttpResponse] = None
    #: Scripts may park metadata here (mitmproxy's flow.metadata).
    metadata: dict = field(default_factory=dict)


class InlineScript:
    """Base class for inline scripts: override ``request`` / ``response``.

    ``request`` runs before the upstream handler and may return a
    replacement :class:`HttpRequest` (the crawler rewrites coordinates
    this way) or an :class:`HttpResponse` to short-circuit entirely.
    ``response`` observes/modifies the upstream response.
    """

    def request(self, flow: Flow) -> Optional[object]:
        return None

    def response(self, flow: Flow) -> Optional[HttpResponse]:
        return None


class MitmProxy:
    """Chains inline scripts around an upstream handler."""

    def __init__(self, upstream: RequestHandler) -> None:
        self.upstream = upstream
        self.scripts: List[InlineScript] = []
        self.flows: List[Flow] = []

    def addon(self, script: InlineScript) -> None:
        """Register an inline script (mitmproxy -s equivalent)."""
        self.scripts.append(script)

    def handler(self) -> RequestHandler:
        """The wrapped handler to mount on an HttpServer."""

        def handle(request: HttpRequest, client: str) -> HttpResponse:
            flow = Flow(request=request, client=client)
            self.flows.append(flow)
            for script in self.scripts:
                result = script.request(flow)
                if isinstance(result, HttpResponse):
                    flow.response = result
                    return result
                if isinstance(result, HttpRequest):
                    flow.request = result
            response = self.upstream(flow.request, client)
            flow.response = response
            for script in self.scripts:
                replaced = script.response(flow)
                if isinstance(replaced, HttpResponse):
                    flow.response = replaced
                    response = replaced
            return response

        return handle


class RecordingScript(InlineScript):
    """Utility script: records (path, body) of every API exchange —
    the playbackMeta-dumping inline script is exactly this plus a
    filter."""

    def __init__(self, path_filter: Optional[Callable[[str], bool]] = None) -> None:
        self.path_filter = path_filter
        self.requests: List[dict] = []
        self.responses: List[dict] = []

    def request(self, flow: Flow) -> None:
        if self.path_filter is None or self.path_filter(flow.request.path):
            self.requests.append(
                {"path": flow.request.path, "json": flow.request.json_body,
                 "client": flow.client}
            )
        return None

    def response(self, flow: Flow) -> None:
        if self.path_filter is None or self.path_filter(flow.request.path):
            self.responses.append(
                {"path": flow.request.path,
                 "status": int(flow.response.status) if flow.response else None,
                 "json": flow.response.json_body if flow.response else None}
            )
        return None
