"""The measurement pipeline: interception, reconstruction, inspection.

Mirrors the paper's tooling stack:

* :mod:`repro.capture.mitm` — the SSL-capable man-in-the-middle proxy
  with inline scripts (mitmproxy);
* :mod:`repro.capture.reconstruct` — TCP stream reassembly and media
  extraction from tether captures (wireshark: "follow TCP stream",
  HTTP GET → MPEG-TS segment isolation, RTMP dissection);
* :mod:`repro.capture.inspector` — media inspection of reconstructed
  streams: bitrate, average QP, frame rate, frame-type patterns,
  segment durations (libav).
"""

from repro.capture.mitm import InlineScript, MitmProxy
from repro.capture.reconstruct import (
    ReassembledStream,
    extract_hls_segments,
    extract_rtmp_frames,
    reassemble_flows,
)
from repro.capture.inspector import MediaReport, classify_gop, inspect_frames

__all__ = [
    "InlineScript",
    "MitmProxy",
    "ReassembledStream",
    "extract_hls_segments",
    "extract_rtmp_frames",
    "reassemble_flows",
    "MediaReport",
    "classify_gop",
    "inspect_frames",
]
