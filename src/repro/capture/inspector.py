"""Media inspection (the libav step): facts about a reconstructed stream.

Given the frames of one stream (or one HLS segment), compute what
Section 5.2 reports: average bitrate, average QP, effective frame rate,
the GOP classification (IBP / I+P-only / intra-only), the I-frame period
and — for HLS — segment durations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.media.frames import AudioFrame, EncodedFrame

MediaFrame = Union[EncodedFrame, AudioFrame]


@dataclass(frozen=True)
class MediaReport:
    """Per-stream facts recovered by inspection."""

    n_video_frames: int
    n_audio_frames: int
    duration_s: float
    video_bitrate_bps: float
    audio_bitrate_bps: float
    average_qp: float
    average_fps: float
    gop_kind: str  # "IBP" | "IP" | "I" | "unknown"
    i_frame_period: Optional[float]
    has_missing_frames: bool


def classify_gop(types: Sequence[str]) -> str:
    """Classify a frame-type sequence the way the paper's census does."""
    present = set(types)
    if not present or not present <= {"I", "P", "B"}:
        return "unknown"
    if present == {"I"}:
        return "I"
    if "B" in present:
        return "IBP"
    return "IP"


def _i_frame_period(frames: Sequence[EncodedFrame]) -> Optional[float]:
    """Mean distance in frames between consecutive I frames."""
    indices = [k for k, f in enumerate(frames) if f.frame_type == "I"]
    if len(indices) < 2:
        return None
    gaps = [b - a for a, b in zip(indices, indices[1:])]
    return sum(gaps) / len(gaps)


def inspect_frames(
    video_frames: Iterable[EncodedFrame],
    audio_frames: Iterable[AudioFrame] = (),
    nominal_fps: float = 30.0,
) -> MediaReport:
    """Inspect one stream's frames."""
    video = sorted(video_frames, key=lambda f: f.pts)
    audio = list(audio_frames)
    if len(video) < 2:
        raise ValueError("need at least two video frames to inspect")
    pts = [f.pts for f in video]
    duration = pts[-1] - pts[0] + 1.0 / nominal_fps
    video_bytes = sum(f.nbytes for f in video)
    audio_bytes = sum(f.nbytes for f in audio)
    gaps = [b - a for a, b in zip(pts, pts[1:])]
    nominal_gap = 1.0 / nominal_fps
    missing = any(gap > 2.2 * nominal_gap for gap in gaps)
    decode_order = sorted(video, key=lambda f: f.dts)
    return MediaReport(
        n_video_frames=len(video),
        n_audio_frames=len(audio),
        duration_s=duration,
        video_bitrate_bps=video_bytes * 8.0 / duration,
        audio_bitrate_bps=audio_bytes * 8.0 / duration if duration > 0 else 0.0,
        average_qp=sum(f.qp for f in video) / len(video),
        average_fps=len(video) / duration,
        gop_kind=classify_gop([f.frame_type for f in decode_order]),
        i_frame_period=_i_frame_period(decode_order),
        has_missing_frames=missing,
    )


def segment_durations(
    segments: Iterable,
) -> List[float]:
    """Durations of HLS segments (Section 5.2's 3-6 s census)."""
    return [segment.duration_s for segment in segments]


def qp_bitrate_points(
    reports: Iterable[MediaReport],
) -> List[Tuple[float, float]]:
    """(bitrate, avg QP) scatter points — Fig. 6(b)'s axes."""
    return [(r.video_bitrate_bps, r.average_qp) for r in reports]
