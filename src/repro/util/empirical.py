"""Empirical distribution helpers: ECDFs and boxplot summaries.

These are the two presentation primitives used by every figure in the
paper (CDF plots and boxplots).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Tuple


class Ecdf:
    """Empirical cumulative distribution function over a sample.

    >>> e = Ecdf([1.0, 2.0, 2.0, 4.0])
    >>> e(2.0)
    0.75
    >>> e.quantile(0.5)
    2.0
    """

    def __init__(self, samples: Iterable[float]) -> None:
        self._sorted: List[float] = sorted(float(s) for s in samples)
        if not self._sorted:
            raise ValueError("Ecdf requires at least one sample")

    def __len__(self) -> int:
        return len(self._sorted)

    def __call__(self, x: float) -> float:
        """Fraction of samples ``<= x``."""
        return bisect.bisect_right(self._sorted, x) / len(self._sorted)

    def quantile(self, q: float) -> float:
        """Inverse CDF with linear interpolation (numpy's default scheme)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must lie in [0, 1]")
        n = len(self._sorted)
        if n == 1:
            return self._sorted[0]
        pos = q * (n - 1)
        lo = int(math.floor(pos))
        hi = min(lo + 1, n - 1)
        frac = pos - lo
        lo_val = self._sorted[lo]
        hi_val = self._sorted[hi]
        # lo + frac * (hi - lo) rather than the two-product form: the
        # latter underflows subnormal samples to 0.0, which breaks the
        # quantile-ordering invariant.  Clamp the remaining ULP drift.
        value = lo_val + frac * (hi_val - lo_val)
        return min(max(value, lo_val), hi_val)

    @property
    def min(self) -> float:
        return self._sorted[0]

    @property
    def max(self) -> float:
        return self._sorted[-1]

    def mean(self) -> float:
        return sum(self._sorted) / len(self._sorted)

    def points(self) -> List[Tuple[float, float]]:
        """(value, cumulative fraction) pairs suitable for plotting."""
        n = len(self._sorted)
        return [(v, (i + 1) / n) for i, v in enumerate(self._sorted)]

    def series(self, xs: Sequence[float]) -> List[Tuple[float, float]]:
        """Evaluate the ECDF on a fixed grid (for tabular figure output)."""
        return [(x, self(x)) for x in xs]


def ecdf(samples: Iterable[float]) -> Ecdf:
    """Convenience constructor for :class:`Ecdf`."""
    return Ecdf(samples)


@dataclass(frozen=True)
class FiveNumberSummary:
    """The boxplot statistics: Tukey whiskers plus quartiles and median."""

    low_whisker: float
    q1: float
    median: float
    q3: float
    high_whisker: float
    n_outliers: int
    n: int

    @property
    def iqr(self) -> float:
        return self.q3 - self.q1

    def row(self) -> Tuple[float, float, float, float, float]:
        """The five numbers as a tuple (for table rendering)."""
        return (self.low_whisker, self.q1, self.median, self.q3, self.high_whisker)


def five_number_summary(samples: Iterable[float]) -> FiveNumberSummary:
    """Compute Tukey boxplot statistics (1.5*IQR whisker rule)."""
    data = sorted(float(s) for s in samples)
    if not data:
        raise ValueError("five_number_summary requires at least one sample")
    e = Ecdf(data)
    q1, med, q3 = e.quantile(0.25), e.quantile(0.5), e.quantile(0.75)
    iqr = q3 - q1
    lo_fence = q1 - 1.5 * iqr
    hi_fence = q3 + 1.5 * iqr
    inside = [x for x in data if lo_fence <= x <= hi_fence]
    n_outliers = len(data) - len(inside)
    # Whiskers reach to the extreme data points inside the fences, but never
    # cross the (interpolated) quartiles — matplotlib clamps the same way.
    low_whisker = min(inside[0] if inside else data[0], q1)
    high_whisker = max(inside[-1] if inside else data[-1], q3)
    return FiveNumberSummary(
        low_whisker=low_whisker,
        q1=q1,
        median=med,
        q3=q3,
        high_whisker=high_whisker,
        n_outliers=n_outliers,
        n=len(data),
    )
