"""Seed plumbing for deterministic experiments.

A single experiment seed is fanned out into independent child streams, one
per subsystem, so that adding random draws to one subsystem never perturbs
another (the classic "seed hygiene" problem in simulation studies).
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

Seedable = Union[int, str, bytes]


def _digest(*parts: Seedable) -> int:
    """Hash arbitrary seed material into a 128-bit integer."""
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, bytes):
            data = part
        else:
            data = str(part).encode("utf-8")
        h.update(len(data).to_bytes(4, "big"))
        h.update(data)
    return int.from_bytes(h.digest()[:16], "big")


def make_rng(seed: Seedable) -> random.Random:
    """Create a :class:`random.Random` from any seed material."""
    return random.Random(_digest(seed))


def child_rng(parent_seed: Seedable, *path: Seedable) -> random.Random:
    """Derive an independent child stream identified by ``path``.

    ``child_rng(42, "crawler", 3)`` always yields the same stream and is
    statistically independent from ``child_rng(42, "encoder")``.
    """
    return random.Random(_digest(parent_seed, *path))


class SeedSequence:
    """A named tree of independent random streams rooted at one seed.

    >>> seeds = SeedSequence(42)
    >>> r1 = seeds.rng("service")
    >>> r2 = seeds.rng("service")   # same stream state, fresh object
    >>> r1.random() == r2.random()
    True
    """

    def __init__(self, seed: Seedable) -> None:
        self.seed = seed

    def rng(self, *path: Seedable) -> random.Random:
        """Return a fresh RNG for the named child stream."""
        return child_rng(self.seed, *path)

    def spawn(self, *path: Seedable) -> "SeedSequence":
        """Return a child :class:`SeedSequence` rooted under ``path``."""
        return SeedSequence(_digest(self.seed, *path))

    def integer(self, *path: Seedable) -> int:
        """Return a deterministic 64-bit integer for the named child."""
        return _digest(self.seed, *path) & 0xFFFFFFFFFFFFFFFF

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SeedSequence(seed={self.seed!r})"
