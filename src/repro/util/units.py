"""Unit constants and human-readable formatting helpers.

Conventions used throughout the library:

* time is in **seconds** (float),
* data sizes are in **bytes** (int),
* rates are in **bits per second** (float).
"""

from __future__ import annotations

#: One bit per second expressed in bits per second (identity; for clarity).
BPS = 1.0
#: Kilobits per second in bits per second.
KBPS = 1_000.0
#: Megabits per second in bits per second.
MBPS = 1_000_000.0
#: Gigabits per second in bits per second.
GBPS = 1_000_000_000.0

#: One byte in bytes (identity; for clarity).
BYTE = 1
#: One kilobyte (decimal) in bytes.
KB = 1_000
#: One megabyte (decimal) in bytes.
MB = 1_000_000

#: Milliseconds expressed in seconds.
MS = 1e-3
#: Microseconds expressed in seconds.
US = 1e-6
#: One minute in seconds.
MINUTE = 60.0
#: One hour in seconds.
HOUR = 3600.0
#: One day in seconds.
DAY = 86400.0


def bits_to_bytes(bits: float) -> float:
    """Convert a bit count to bytes."""
    return bits / 8.0


def bytes_to_bits(nbytes: float) -> float:
    """Convert a byte count to bits."""
    return nbytes * 8.0


def format_bitrate(bps: float) -> str:
    """Render a rate in the most natural unit, e.g. ``format_bitrate(2e6)
    == '2.00 Mbps'``."""
    if bps >= GBPS:
        return f"{bps / GBPS:.2f} Gbps"
    if bps >= MBPS:
        return f"{bps / MBPS:.2f} Mbps"
    if bps >= KBPS:
        return f"{bps / KBPS:.1f} kbps"
    return f"{bps:.0f} bps"


def format_bytes(nbytes: float) -> str:
    """Render a byte count in the most natural decimal unit."""
    if nbytes >= 1_000_000_000:
        return f"{nbytes / 1_000_000_000:.2f} GB"
    if nbytes >= MB:
        return f"{nbytes / MB:.2f} MB"
    if nbytes >= KB:
        return f"{nbytes / KB:.1f} kB"
    return f"{nbytes:.0f} B"


def format_duration(seconds: float) -> str:
    """Render a duration, switching units at natural boundaries."""
    if seconds < 0:
        return "-" + format_duration(-seconds)
    if seconds < 1.0:
        return f"{seconds * 1000:.0f} ms"
    if seconds < MINUTE:
        return f"{seconds:.1f} s"
    if seconds < HOUR:
        return f"{seconds / MINUTE:.1f} min"
    if seconds < DAY:
        return f"{seconds / HOUR:.1f} h"
    return f"{seconds / DAY:.1f} d"
