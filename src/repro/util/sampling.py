"""Parametric samplers used by the workload generators.

The Periscope paper reports heavy-tailed broadcast durations and viewer
counts, plus a diurnal activity pattern; these helpers implement the
corresponding samplers with explicit bounds so that single extreme draws
cannot dominate a small experiment.
"""

from __future__ import annotations

import math
import random
from typing import Sequence, Tuple, TypeVar

T = TypeVar("T")


def bounded_lognormal(
    rng: random.Random,
    median: float,
    sigma: float,
    low: float,
    high: float,
) -> float:
    """Sample a log-normal with the given *median* and log-space *sigma*,
    rejection-clipped to ``[low, high]``.

    Rejection (rather than clamping) keeps the interior shape intact; after
    64 failed attempts the value is clamped as a safety valve.
    """
    if low > high:
        raise ValueError(f"low ({low}) must not exceed high ({high})")
    mu = math.log(median)
    for _ in range(64):
        value = rng.lognormvariate(mu, sigma)
        if low <= value <= high:
            return value
    return min(max(low, median), high)


def bounded_pareto(
    rng: random.Random,
    alpha: float,
    scale: float,
    high: float,
) -> float:
    """Sample a Pareto(alpha) with minimum ``scale``, truncated at ``high``
    by inverse-CDF sampling (exact truncation, no rejection loop)."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    if scale <= 0 or high <= scale:
        raise ValueError("require 0 < scale < high")
    # CDF of truncated Pareto: F(x) = (1 - (scale/x)^alpha) / (1 - (scale/high)^alpha)
    u = rng.random()
    tail = 1.0 - (scale / high) ** alpha
    x = scale / (1.0 - u * tail) ** (1.0 / alpha)
    return min(x, high)


#: Relative Periscope activity per local hour of day. Encodes the paper's
#: Figure 2(b) observations: a notable slump in the early hours, a peak in
#: the morning, and an increasing trend towards midnight.
DIURNAL_PROFILE: Tuple[float, ...] = (
    0.75,  # 00
    0.60,  # 01
    0.45,  # 02
    0.32,  # 03
    0.25,  # 04  -- early-hours slump
    0.28,  # 05
    0.40,  # 06
    0.62,  # 07
    0.85,  # 08
    0.95,  # 09  -- morning peak
    0.88,  # 10
    0.80,  # 11
    0.78,  # 12
    0.76,  # 13
    0.74,  # 14
    0.73,  # 15
    0.75,  # 16
    0.78,  # 17
    0.82,  # 18
    0.86,  # 19
    0.90,  # 20
    0.95,  # 21
    1.00,  # 22  -- rise towards midnight
    0.90,  # 23
)


def diurnal_weight(local_hour: float) -> float:
    """Relative activity weight at a fractional local hour.

    Linear interpolation over :data:`DIURNAL_PROFILE`, wrapping at 24h.
    """
    hour = local_hour % 24.0
    lo = int(hour) % 24
    hi = (lo + 1) % 24
    frac = hour - int(hour)
    return DIURNAL_PROFILE[lo] * (1.0 - frac) + DIURNAL_PROFILE[hi] * frac


def weighted_choice(rng: random.Random, items: Sequence[T], weights: Sequence[float]) -> T:
    """Pick one item with probability proportional to its weight."""
    if len(items) != len(weights):
        raise ValueError("items and weights must have equal length")
    if not items:
        raise ValueError("cannot choose from an empty sequence")
    total = float(sum(weights))
    if total <= 0:
        raise ValueError("total weight must be positive")
    pick = rng.random() * total
    acc = 0.0
    for item, weight in zip(items, weights):
        acc += weight
        if pick < acc:
            return item
    return items[-1]
