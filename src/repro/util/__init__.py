"""Shared utilities: units, seeded randomness, empirical distributions.

Everything stochastic in the simulator draws from an explicitly passed
:class:`random.Random` so that experiments are reproducible bit-for-bit.
"""

from repro.util.units import (
    KBPS,
    MBPS,
    GBPS,
    BYTE,
    KB,
    MB,
    bits_to_bytes,
    bytes_to_bits,
    format_bitrate,
    format_bytes,
    format_duration,
)
from repro.util.rng import SeedSequence, child_rng, make_rng
from repro.util.sampling import (
    bounded_lognormal,
    bounded_pareto,
    diurnal_weight,
    weighted_choice,
)
from repro.util.empirical import Ecdf, FiveNumberSummary, ecdf, five_number_summary

__all__ = [
    "KBPS",
    "MBPS",
    "GBPS",
    "BYTE",
    "KB",
    "MB",
    "bits_to_bytes",
    "bytes_to_bits",
    "format_bitrate",
    "format_bytes",
    "format_duration",
    "SeedSequence",
    "child_rng",
    "make_rng",
    "bounded_lognormal",
    "bounded_pareto",
    "diurnal_weight",
    "weighted_choice",
    "Ecdf",
    "FiveNumberSummary",
    "ecdf",
    "five_number_summary",
]
