"""Plain text tables.

Lives in ``util`` (the bottom layer) because both the figure renderers
in :mod:`repro.analysis.charts` and the telemetry summary in
:mod:`repro.obs.export` need it, and ``obs`` may import nothing above
``util``.
"""

from __future__ import annotations

from typing import Iterable, Sequence


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]]) -> str:
    """A plain aligned text table."""
    materialized = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(widths[i]) for i, c in enumerate(cells))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)
