"""Population-scale Fig. 2: audience shape at the full-service scale.

The targeted crawl behind :mod:`repro.experiments.fig2_usage` tracks a
few hundred broadcasts — the paper's vantage point.  This driver asks
the same Section 4 questions of a *population-scale* world: hundreds of
thousands of concurrent viewers apportioned over a heavy-tailed
broadcaster population, advanced as viewer cohorts in closed form
(:mod:`repro.world`), with a stratified sample of cohort members
promoted to full-fidelity sessions to anchor the aggregates.

Three panels:

* **(a)** the broadcaster-audience CDF and concentration statistics,
  exact over the whole population (the apportionment is integral);
* **(b)** per-protocol cohort masses — sessions, watch time, stall
  ratio, join delay, buffer occupancy — from the fluid model;
* **(c)** the anchored sample: the same statistics measured by the
  unchanged per-packet simulator on the promoted members, next to the
  cohort approximation they anchor.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.charts import render_table
from repro.core.popstudy import PopulationResult, PopulationStudy
from repro.experiments.common import Workbench
from repro.world.popularity import PopulationParameters

#: Fig. 2(a)-style audience grid (concurrent viewers per broadcaster).
AUDIENCE_GRID = (0, 1, 2, 5, 10, 20, 50, 100, 1000, 10000)

#: Default full-fidelity anchor budget (expected sampled sessions).
DEFAULT_SAMPLE_BUDGET = 48


@dataclass
class Fig2PopResult:
    result: PopulationResult

    def render(self) -> str:
        population = self.result.population
        world = self.result.world
        sampled = self.result.sampled
        parts = [
            f"Fig 2pop(a): audience CDF over {population.n_broadcasters} "
            f"broadcasters / {population.total_viewers} viewers"
        ]
        parts.append(render_table(
            ["audience <=", "F(broadcasters)"],
            [[f"{x:g}", f"{population.audience_cdf(x):.3f}"]
             for x in AUDIENCE_GRID],
        ))
        parts.append("")
        parts.append(render_table(
            ["statistic", "value"],
            [
                ["zero-audience share",
                 f"{population.zero_audience_count() / population.n_broadcasters:.3f}"],
                ["top 1% viewer share", f"{population.top_share(0.01):.3f}"],
                ["top 10% viewer share", f"{population.top_share(0.10):.3f}"],
                ["cohorts", f"{world.cohorts}"],
                ["shards", f"{world.shard_count}"],
            ],
        ))
        parts.append("")
        parts.append("Fig 2pop(b): per-protocol cohort masses (fluid model)")
        rows = []
        for protocol_value, aggregate in sorted(world.totals.items()):
            mean_join_s = (aggregate.join_seconds / aggregate.sessions
                           if aggregate.sessions else 0.0)
            rows.append([
                protocol_value,
                f"{aggregate.sessions:.0f}",
                f"{aggregate.member_seconds:.0f}",
                f"{aggregate.stall_ratio():.4f}",
                f"{mean_join_s:.2f}",
                f"{aggregate.mean_buffer_s:.1f}",
            ])
        parts.append(render_table(
            ["protocol", "sessions", "member-s", "stall ratio",
             "join delay (s)", "buffer (media-s)"],
            rows,
        ))
        parts.append("")
        parts.append(
            f"Fig 2pop(c): anchored full-fidelity sample "
            f"({len(sampled.sessions)} sessions)"
        )
        anchor_rows = []
        for protocol_value in sorted(world.totals):
            sessions = sampled.by_protocol(protocol_value)
            if sessions:
                exact_stall = (
                    sum(s.total_stall_s for s in sessions)
                    / sum(s.total_stall_s + s.playback_s for s in sessions)
                )
                exact_join_s = sum(s.join_time_s for s in sessions) / len(sessions)
                anchor_rows.append([
                    protocol_value, f"{len(sessions)}",
                    f"{exact_stall:.4f}",
                    f"{self.result.stall_ratio(protocol_value):.4f}",
                    f"{exact_join_s:.2f}",
                    f"{self.result.mean_join_delay_s(protocol_value):.2f}",
                ])
            else:
                anchor_rows.append([
                    protocol_value, "0", "-",
                    f"{self.result.stall_ratio(protocol_value):.4f}",
                    "-",
                    f"{self.result.mean_join_delay_s(protocol_value):.2f}",
                ])
        parts.append(render_table(
            ["protocol", "sampled", "stall (exact)", "stall (cohort)",
             "join s (exact)", "join s (cohort)"],
            anchor_rows,
        ))
        return "\n".join(parts)


def run(
    workbench: Workbench,
    viewers: int = 100_000,
    sample_budget: int = DEFAULT_SAMPLE_BUDGET,
) -> Fig2PopResult:
    """Advance a ``viewers``-strong world on the workbench's settings."""
    params = PopulationParameters(viewers=viewers, sample_budget=sample_budget)
    study = PopulationStudy(workbench.config, params)
    return Fig2PopResult(result=study.run())
