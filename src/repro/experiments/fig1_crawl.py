"""Figure 1: cumulative broadcasts discovered vs. areas queried.

Four deep crawls at different times of day; panel (a) plots absolute
discovery curves, panel (b) relative curves after sorting areas by
yield — showing that half of the areas hold at least ~80% of the
broadcasts, which justifies the targeted crawl.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.charts import render_table
from repro.crawler.deep import DeepCrawlResult
from repro.experiments.common import Workbench


@dataclass
class Fig1Result:
    curves_absolute: List[List[Tuple[int, int]]]
    curves_relative: List[List[Tuple[float, float]]]
    totals: List[int]
    durations_s: List[float]

    def share_at_half_areas(self, crawl_index: int) -> float:
        """% of broadcasts held by the top 50% of areas."""
        curve = self.curves_relative[crawl_index]
        eligible = [pct for areas_pct, pct in curve if areas_pct <= 50.0]
        return max(eligible) if eligible else 0.0

    def render(self) -> str:
        rows = []
        for index, total in enumerate(self.totals):
            rows.append([
                f"crawl {index}",
                len(self.curves_absolute[index]),
                total,
                f"{self.durations_s[index] / 60.0:.1f} min",
                f"{self.share_at_half_areas(index):.0f}%",
            ])
        return render_table(
            ["deep crawl", "areas queried", "broadcasts found",
             "duration", "share in top-50% areas"],
            rows,
        )


def run(workbench: Workbench) -> Fig1Result:
    results: List[DeepCrawlResult] = workbench.deep_crawl_results()
    return Fig1Result(
        curves_absolute=[r.discovery_curve() for r in results],
        curves_relative=[r.relative_curve() for r in results],
        totals=[len(r.discovered) for r in results],
        durations_s=[r.duration_s for r in results],
    )
