"""Figure 2: broadcast durations, viewer counts and diurnal pattern.

Panel (a): CDFs of broadcast duration (minutes) and per-broadcast mean
viewers on a log-ish grid.  Panel (b): mean viewers per broadcast by the
broadcaster's *local* start hour — the early-morning slump, morning peak
and rise towards midnight.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.charts import render_cdf, render_table
from repro.crawler.analysis import UsagePatterns, analyze_tracked
from repro.experiments.common import Workbench

#: Fig. 2(a)'s shared x grid (minutes for durations, count for viewers).
GRID = (0.1, 0.5, 1.0, 2.0, 4.0, 10.0, 30.0, 100.0, 1000.0)


@dataclass
class Fig2Result:
    patterns: UsagePatterns

    def duration_series(self) -> List[Tuple[float, float]]:
        return [(x, self.patterns.duration_cdf(x * 60.0)) for x in GRID]

    def viewers_series(self) -> List[Tuple[float, float]]:
        return [(x, self.patterns.viewers_cdf(x)) for x in GRID]

    def hour_series(self) -> Dict[int, float]:
        return self.patterns.viewers_by_local_hour

    def render(self) -> str:
        parts = ["Fig 2(a): duration & viewers CDFs"]
        rows = [
            [f"{x:g}", f"{d:.3f}", f"{v:.3f}"]
            for (x, d), (_, v) in zip(self.duration_series(), self.viewers_series())
        ]
        parts.append(render_table(
            ["duration (min) / viewers", "F(duration)", "F(viewers)"], rows))
        parts.append("")
        parts.append("Fig 2(b): avg viewers per broadcast vs local start hour")
        hours = self.hour_series()
        parts.append(render_table(
            ["local hour", "avg viewers"],
            [[h, f"{v:.1f}"] for h, v in sorted(hours.items())],
        ))
        parts.append("")
        parts.append("Section 4 aggregates")
        parts.append(render_table(
            ["statistic", "value"],
            [[name, f"{value:.3f}"] for name, value in self.patterns.summary_rows()],
        ))
        return "\n".join(parts)


def run(workbench: Workbench) -> Fig2Result:
    _, targeted = workbench.targeted_crawl()
    completed = targeted.completed_broadcasts()
    offsets = workbench.broadcast_utc_offsets()
    return Fig2Result(patterns=analyze_tracked(completed, utc_offsets=offsets))
