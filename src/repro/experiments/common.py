"""Shared experiment infrastructure: dataset caching at a chosen scale."""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro import obs
from repro.core.config import StudyConfig
from repro.faults.plan import FaultPlan
from repro.core.study import AutomatedViewingStudy, StudyDataset
from repro.crawler.client import CrawlHarness
from repro.crawler.deep import DeepCrawler, DeepCrawlResult
from repro.crawler.targeted import TargetedCrawl


class Workbench:
    """Runs and caches the datasets the figure drivers consume.

    One workbench = one seed + one scale.  The default sizes keep the
    full benchmark suite in the minutes range; raise ``unlimited_sessions``
    / ``sweep_sessions_per_limit`` / crawl durations toward the paper's
    numbers for a full-scale reproduction run — and pass ``workers`` to
    fan session execution out over a process pool (datasets stay
    bit-identical to a serial run; see :mod:`repro.core.parallel`).
    """

    def __init__(
        self,
        seed: int = 2016,
        unlimited_sessions: int = 120,
        sweep_sessions_per_limit: int = 8,
        sweep_limits_mbps: Sequence[float] = (0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0, 100.0),
        crawl_world_concurrent: int = 900,
        deep_crawls: int = 4,
        targeted_duration_s: float = 2400.0,
        metrics: bool = False,
        tracing: bool = False,
        causes: bool = False,
        health: bool = False,
        workers: int = 1,
        faults: Optional[FaultPlan] = None,
        exact: bool = False,
    ) -> None:
        self.config = StudyConfig(seed=seed, metrics_enabled=metrics,
                                  tracing_enabled=tracing,
                                  causes_enabled=causes,
                                  health_enabled=health,
                                  workers=workers, faults=faults,
                                  exact_network=exact)
        #: Activate telemetry up front so loops built by crawls (which do
        #: not go through AutomatedViewingStudy) are profiled too.
        self.telemetry = obs.ensure_active(metrics=metrics, tracing=tracing,
                                           causes=causes, health=health)
        self.seed = seed
        self.unlimited_sessions = unlimited_sessions
        self.sweep_sessions_per_limit = sweep_sessions_per_limit
        self.sweep_limits_mbps = list(sweep_limits_mbps)
        self.crawl_world_concurrent = crawl_world_concurrent
        self.deep_crawls = deep_crawls
        self.targeted_duration_s = targeted_duration_s

        self._study: Optional[AutomatedViewingStudy] = None
        self._unlimited: Optional[StudyDataset] = None
        self._sweep: Optional[Dict[float, StudyDataset]] = None
        self._deep_results: Optional[List[DeepCrawlResult]] = None
        self._targeted: Optional[Tuple[CrawlHarness, TargetedCrawl]] = None

    # ---------------------------------------------------------------- study

    @property
    def study(self) -> AutomatedViewingStudy:
        if self._study is None:
            self._study = AutomatedViewingStudy(self.config)
        return self._study

    def unlimited(self) -> StudyDataset:
        """The unshaped viewing dataset (Figs. 3a, 5, 6, t-tests)."""
        if self._unlimited is None:
            self._unlimited = self.study.run_batch(self.unlimited_sessions)
        return self._unlimited

    def sweep(self) -> Dict[float, StudyDataset]:
        """The tc bandwidth sweep (Figs. 3b, 4)."""
        if self._sweep is None:
            self._sweep = self.study.run_bandwidth_sweep(
                sessions_per_limit=self.sweep_sessions_per_limit,
                limits_mbps=self.sweep_limits_mbps,
            )
        return self._sweep

    # --------------------------------------------------------------- crawls

    def deep_crawl_results(self) -> List[DeepCrawlResult]:
        """Deep crawls started at different times of day (Fig. 1)."""
        if self._deep_results is None:
            results = []
            for index in range(self.deep_crawls):
                harness = CrawlHarness(
                    seed=self.seed + 1000 + index,
                    mean_concurrent=self.crawl_world_concurrent,
                )
                # Different local times of day: offset each world's clock
                # by advancing before the crawl starts.
                start_at = index * 6.0 * 3600.0
                if start_at > 0:
                    harness.world.advance_to(start_at)
                    harness.loop.run_until(start_at)
                crawler = DeepCrawler(harness.clients[0])
                crawler.start()
                harness.run_until(start_at + 3600.0)
                results.append(crawler.result)
            self._deep_results = results
        return self._deep_results

    def targeted_crawl(self) -> Tuple[CrawlHarness, TargetedCrawl]:
        """A four-identity targeted crawl over the top deep-crawl areas
        (Fig. 2)."""
        if self._targeted is None:
            harness = CrawlHarness(
                seed=self.seed + 2000,
                mean_concurrent=self.crawl_world_concurrent,
                identities=4,
            )
            deep = DeepCrawler(harness.clients[0])
            deep.start()
            harness.run_until(1200.0)
            areas = deep.result.top_areas(64)
            targeted = TargetedCrawl(harness.clients, areas,
                                     duration_s=self.targeted_duration_s)
            targeted.start()
            harness.run_until(1200.0 + self.targeted_duration_s + 10.0)
            self._targeted = (harness, targeted)
        return self._targeted

    def broadcast_utc_offsets(self) -> Dict[str, int]:
        """Resolve tracked broadcast ids to broadcaster UTC offsets, the
        way the paper derives local time from the description's zone."""
        harness, targeted = self.targeted_crawl()
        registry = harness.world.utc_offset_by_id
        return {
            broadcast_id: registry[broadcast_id]
            for broadcast_id in targeted.tracked
            if broadcast_id in registry
        }
