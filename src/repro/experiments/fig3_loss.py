"""Fault-plan companion to Figure 3: stalls vs. injected packet loss.

The paper attributes RTMP stalls to broadcaster uplink glitches; the
fault subsystem lets us dose that mechanism directly.  Each loss rate
reruns the *same* sampled sessions (fault randomness lives on separate
child streams, so the world, broadcasts, and joins are identical) with a
Bernoulli loss process on the viewer links.  Lost packets cost a
head-of-line-blocking recovery delay, so mean stall counts rise
monotonically with the loss rate — the sweep's acceptance invariant.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.core.study import AutomatedViewingStudy
from repro.experiments.common import Workbench
from repro.faults.impair import LossSpec
from repro.faults.plan import FaultPlan
from repro.service.selection import DeliveryProtocol

#: The dosed loss rates: pristine, light, heavy.
LOSS_RATES = (0.0, 0.01, 0.05)

#: Modest shaping so recovery delays compete with real bandwidth (the
#: regime where Figure 3(b) shows stalling).
SWEEP_LIMIT_MBPS = 2.0


@dataclass
class Fig3LossResult:
    """Per-loss-rate stall counts for the forced-RTMP sweep."""

    stall_counts: Dict[float, List[int]]
    stall_ratios: Dict[float, List[float]]

    def mean_stalls(self, rate: float) -> float:
        counts = self.stall_counts[rate]
        if not counts:
            return 0.0
        return sum(counts) / len(counts)

    def monotone_nondecreasing(self) -> bool:
        """The sweep invariant: more loss never means fewer stalls on
        average."""
        rates = sorted(self.stall_counts)
        means = [self.mean_stalls(rate) for rate in rates]
        return all(a <= b + 1e-12 for a, b in zip(means, means[1:]))

    def render(self) -> str:
        parts = ["Fig 3 (faulted): mean RTMP stalls vs. injected loss rate"]
        for rate in sorted(self.stall_counts):
            counts = self.stall_counts[rate]
            ratios = self.stall_ratios[rate]
            mean_ratio = sum(ratios) / len(ratios) if ratios else 0.0
            parts.append(
                f"  loss={rate:>5.2%}  sessions={len(counts):2d}  "
                f"mean stalls={self.mean_stalls(rate):5.2f}  "
                f"mean stall ratio={mean_ratio:.3f}"
            )
        verdict = "holds" if self.monotone_nondecreasing() else "VIOLATED"
        parts.append(f"  monotonicity (stalls non-decreasing in loss): {verdict}")
        return "\n".join(parts)


def _plan_for_rate(template: FaultPlan, rate: float) -> FaultPlan:
    """Dose ``template``'s loss model at ``rate``, keeping everything else.

    A Bernoulli template (or one without a loss spec) sweeps the i.i.d.
    per-packet ``rate``; a Gilbert-Elliott template sweeps the
    good-to-bad transition probability, so the burstiness shape from the
    CLI ``--faults`` spec is preserved while the dose varies.
    """
    loss = template.loss or LossSpec()
    if loss.model == "gilbert":
        loss = dataclasses.replace(loss, p_good_to_bad=rate)
    else:
        loss = dataclasses.replace(loss, rate=rate)
    return dataclasses.replace(template, loss=loss)


def run(
    workbench: Workbench,
    loss_rates: Sequence[float] = LOSS_RATES,
    sessions_per_rate: int = 0,
) -> Fig3LossResult:
    """Run the forced-RTMP loss sweep off the workbench's seed/scale.

    A fresh study is built per rate so every rate replays the same world
    evolution and teleport choices; only the fault plan differs.  When
    the workbench carries a fault plan (CLI ``--faults``), it is the
    sweep's template: its loss model shape (e.g. Gilbert-Elliott
    burstiness) and non-loss faults apply at every rate, with only the
    loss dose swept.  Rate 0.0 always runs the pristine baseline.
    """
    n = sessions_per_rate or workbench.sweep_sessions_per_limit
    template = workbench.config.faults
    stall_counts: Dict[float, List[int]] = {}
    stall_ratios: Dict[float, List[float]] = {}
    for rate in loss_rates:
        if rate <= 0.0:
            faults = None
        elif template is not None:
            faults = _plan_for_rate(template, rate)
        else:
            faults = FaultPlan(loss=LossSpec(rate=rate))
        config = dataclasses.replace(workbench.config, faults=faults)
        study = AutomatedViewingStudy(config)
        dataset = study.run_batch(
            n,
            bandwidth_limit_mbps=SWEEP_LIMIT_MBPS,
            forced_protocol=DeliveryProtocol.RTMP,
        )
        stall_counts[rate] = [s.stall_count for s in dataset.sessions]
        stall_ratios[rate] = [s.stall_ratio for s in dataset.sessions]
    return Fig3LossResult(stall_counts=stall_counts, stall_ratios=stall_ratios)
