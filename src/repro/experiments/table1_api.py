"""Table 1: the relevant Periscope API commands.

Regenerates the table by *exercising* each command against the simulated
API and describing what went over the wire — not by hard-coding prose.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.charts import render_table
from repro.protocols.http import HttpRequest, HttpStatus
from repro.service.api import API_PATH, ApiServer, RateLimiter
from repro.service.ingest import IngestPool
from repro.service.world import ServiceWorld, WorldParameters
from repro.util.rng import child_rng


@dataclass
class Table1Result:
    rows: List[Tuple[str, str, str]]

    def render(self) -> str:
        return render_table(
            ["API request", "request contents", "response contents"], self.rows
        )


def run(seed: int = 2016) -> Table1Result:
    """Exercise each Table 1 command and describe it."""
    world = ServiceWorld(WorldParameters(mean_concurrent=300), seed=seed)
    api = ApiServer(
        world,
        IngestPool(child_rng(seed, "t1-ingest")),
        clock=lambda: 0.0,
        rng=child_rng(seed, "t1"),
        rate_limiter=RateLimiter(rate_per_s=1000, burst=1000),
    )

    def post(command, **payload):
        body = {"request": command}
        body.update(payload)
        return api.handle(HttpRequest("POST", API_PATH, json_body=body), "table1")

    rows: List[Tuple[str, str, str]] = []

    map_resp = post(
        "mapGeoBroadcastFeed",
        p1_lat=-90.0, p1_lng=-180.0, p2_lat=90.0, p2_lng=180.0,
        include_replay=False,
    )
    assert map_resp.status == HttpStatus.OK
    found = map_resp.json_body["broadcasts"]
    rows.append((
        "mapGeoBroadcastFeed",
        "coordinates of a rectangle-shaped geographical area",
        f"list of broadcasts located inside the area ({len(found)} returned)",
    ))

    ids = [b["id"] for b in found[:5]]
    get_resp = post("getBroadcasts", broadcast_ids=ids)
    assert get_resp.status == HttpStatus.OK
    descriptions = get_resp.json_body["broadcasts"]
    assert all(len(d["id"]) == 13 for d in descriptions)
    rows.append((
        "getBroadcasts",
        f"list of 13-character broadcast IDs ({len(ids)} sent)",
        "descriptions of broadcast IDs (incl. nb of viewers)",
    ))

    meta_resp = post("playbackMeta", stats={"n_stalls": 1, "avg_stall_s": 3.4})
    assert meta_resp.status == HttpStatus.OK
    assert meta_resp.json_body == {}
    rows.append((
        "playbackMeta",
        "playback statistics",
        "nothing",
    ))

    return Table1Result(rows=rows)
