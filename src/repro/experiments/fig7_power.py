"""Figure 7: average power consumption per app state, WiFi vs LTE.

Measured with the simulated Monsoon monitor over the component power
model; the renderer prints the grouped-bar figure with the paper's
values side by side.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.charts import render_bars, render_table
from repro.energy.components import Radio
from repro.energy.monsoon import MonsoonMonitor
from repro.energy.states import PAPER_FIGURE7_MW, AppState
from repro.util.rng import child_rng


@dataclass
class Fig7Result:
    #: state -> (wifi mW, lte mW) as measured by the Monsoon model.
    measured: Dict[AppState, Tuple[float, float]]

    def chat_overhead_mw(self, radio_index: int = 0) -> float:
        return (
            self.measured[AppState.VIDEO_HLS_CHAT_ON][radio_index]
            - self.measured[AppState.VIDEO_HLS_CHAT_OFF][radio_index]
        )

    def render(self) -> str:
        bars = {
            state.value: {"wifi": wifi, "lte": lte}
            for state, (wifi, lte) in self.measured.items()
        }
        parts = ["Fig 7: average power (mW) per app state"]
        parts.append(render_bars(bars, unit="mW"))
        parts.append("")
        rows = []
        for state, (wifi, lte) in self.measured.items():
            paper_wifi, paper_lte = PAPER_FIGURE7_MW[state]
            rows.append([
                state.value,
                f"{wifi:.0f}", f"{paper_wifi:.0f}",
                f"{lte:.0f}", f"{paper_lte:.0f}",
            ])
        parts.append(render_table(
            ["state", "wifi (model)", "wifi (paper)", "lte (model)", "lte (paper)"],
            rows,
        ))
        return "\n".join(parts)


def run(seed: int = 2016, duration_s: float = 30.0) -> Fig7Result:
    monitor = MonsoonMonitor(child_rng(seed, "monsoon"))
    measured = {}
    for state in AppState:
        wifi = monitor.measure_average(state, Radio.WIFI, duration_s)
        lte = monitor.measure_average(state, Radio.LTE, duration_s)
        measured[state] = (wifi, lte)
    return Fig7Result(measured=measured)
