"""Figure 5: video delivery latency, HLS vs RTMP.

The NTP-timestamp method: the broadcaster embeds wall-clock stamps into
the video; subtracting them from the capture timestamp gives the
network-pipeline delay excluding playout buffering.  RTMP delivers in
under 300 ms for 75% of broadcasts; HLS averages above 5 s; clock-sync
imperfection yields occasional small negative samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.analysis.charts import render_cdf
from repro.experiments.common import Workbench
from repro.util.empirical import Ecdf

CDF_GRID = (0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 5.0, 10.0, 20.0)


@dataclass
class Fig5Result:
    rtmp_latencies: List[float]
    hls_latencies: List[float]

    def rtmp_cdf(self) -> Ecdf:
        return Ecdf(self.rtmp_latencies)

    def hls_cdf(self) -> Ecdf:
        return Ecdf(self.hls_latencies)

    def rtmp_p75(self) -> float:
        return self.rtmp_cdf().quantile(0.75)

    def hls_mean(self) -> float:
        return sum(self.hls_latencies) / len(self.hls_latencies)

    def has_negative_samples(self) -> bool:
        """Clock-sync imperfection artifact the paper reports."""
        return any(v < 0 for v in self.rtmp_latencies)

    def render(self) -> str:
        parts = ["Fig 5: video delivery latency CDF (per-broadcast averages)"]
        parts.append(render_cdf(
            {"RTMP": self.rtmp_cdf(), "HLS": self.hls_cdf()},
            CDF_GRID, "delivery latency (s)",
        ))
        parts.append(
            f"RTMP p75 = {self.rtmp_p75() * 1000:.0f} ms; "
            f"HLS mean = {self.hls_mean():.1f} s; "
            f"negative samples observed: {self.has_negative_samples()}"
        )
        return "\n".join(parts)


def run(workbench: Workbench) -> Fig5Result:
    unlimited = workbench.unlimited()
    rtmp = [
        s.delivery_latency_s
        for s in unlimited.by_protocol("rtmp")
        if s.delivery_latency_s is not None
    ]
    hls = [
        s.delivery_latency_s
        for s in unlimited.by_protocol("hls")
        if s.delivery_latency_s is not None
    ]
    if not rtmp or not hls:
        raise RuntimeError("dataset too small: missing a protocol population")
    return Fig5Result(rtmp_latencies=rtmp, hls_latencies=hls)
