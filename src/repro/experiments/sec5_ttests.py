"""Section 5's device comparison: Welch's t-tests, Galaxy S3 vs S4.

"Only the frame rate differs statistically significantly between the two
datasets" — which justifies pooling the devices for the QoE analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.charts import render_table
from repro.analysis.stats import WelchResult, welch_t_test
from repro.core.qoe import SessionQoE
from repro.experiments.common import Workbench

#: Metric extractors compared across devices.
METRICS = {
    "join_time_s": lambda s: s.join_time_s,
    "stall_ratio": lambda s: s.stall_ratio,
    "playback_latency_s": lambda s: s.playback_latency_s,
    "video_bitrate_bps": lambda s: s.video_bitrate_bps,
    "avg_qp": lambda s: s.avg_qp,
    "avg_fps": lambda s: s.avg_fps,
}


@dataclass
class TtestResult:
    results: Dict[str, WelchResult]

    def significant_metrics(self, alpha: float = 0.05) -> List[str]:
        return [m for m, r in self.results.items() if r.significant(alpha)]

    def render(self) -> str:
        rows = []
        for metric, result in self.results.items():
            rows.append([
                metric,
                f"{result.mean_a:.3g}", f"{result.mean_b:.3g}",
                f"{result.t_statistic:.2f}", f"{result.p_value:.4f}",
                "yes" if result.significant() else "no",
            ])
        return render_table(
            ["metric", "mean S3", "mean S4", "t", "p", "significant?"], rows)


def run(workbench: Workbench) -> TtestResult:
    dataset = workbench.unlimited()
    s3 = dataset.by_device("galaxy-s3")
    s4 = dataset.by_device("galaxy-s4")
    results: Dict[str, WelchResult] = {}
    for metric, extract in METRICS.items():
        a = [v for v in (extract(s) for s in s3) if v is not None]
        b = [v for v in (extract(s) for s in s4) if v is not None]
        if len(a) >= 2 and len(b) >= 2:
            results[metric] = welch_t_test(a, b)
    return TtestResult(results=results)
