"""Figure 3: stall-ratio analysis for RTMP streams.

Panel (a): the stall-ratio CDF without bandwidth limiting — most streams
play clean; a visible cluster around 0.05-0.09 corresponds to a single
3-5 s stall (a broadcaster uplink glitch).  Panel (b): stall-ratio
boxplots per bandwidth limit — stalling vanishes above 2 Mbps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.charts import render_boxplot_rows, render_cdf
from repro.core.study import StudyDataset
from repro.experiments.common import Workbench
from repro.util.empirical import Ecdf, FiveNumberSummary, five_number_summary

CDF_GRID = (0.0, 0.01, 0.02, 0.05, 0.07, 0.09, 0.15, 0.25, 0.5, 0.75, 1.0)


@dataclass
class Fig3Result:
    unlimited_ratios: List[float]
    by_limit: Dict[float, List[float]]

    def cdf(self) -> Ecdf:
        return Ecdf(self.unlimited_ratios)

    def boxplots(self) -> Dict[str, FiveNumberSummary]:
        return {
            f"{limit:g}": five_number_summary(ratios)
            for limit, ratios in sorted(self.by_limit.items())
            if ratios
        }

    def clean_share(self) -> float:
        """Fraction of unlimited sessions with zero stalls."""
        return sum(1 for r in self.unlimited_ratios if r == 0.0) / len(
            self.unlimited_ratios
        )

    def single_stall_cluster_share(self) -> float:
        """Fraction in the 0.03-0.12 single-stall band."""
        return sum(1 for r in self.unlimited_ratios if 0.03 <= r <= 0.12) / len(
            self.unlimited_ratios
        )

    def median_ratio(self, limit: float) -> float:
        return five_number_summary(self.by_limit[limit]).median

    def render(self) -> str:
        parts = ["Fig 3(a): stall-ratio CDF, RTMP, no bandwidth limit"]
        parts.append(render_cdf({"rtmp": self.cdf()}, CDF_GRID, "stall ratio"))
        parts.append(f"zero-stall share: {self.clean_share():.2f}; "
                     f"single-stall cluster share: {self.single_stall_cluster_share():.2f}")
        parts.append("")
        parts.append("Fig 3(b): stall ratio vs bandwidth limit (Mbps)")
        parts.append(render_boxplot_rows(self.boxplots(), "stall ratio"))
        return "\n".join(parts)


def run(workbench: Workbench) -> Fig3Result:
    unlimited = workbench.unlimited()
    sweep = workbench.sweep()
    return Fig3Result(
        unlimited_ratios=[s.stall_ratio for s in unlimited.by_protocol("rtmp")],
        by_limit={
            limit: [s.stall_ratio for s in ds.by_protocol("rtmp")]
            for limit, ds in sweep.items()
        },
    )
