"""Section 5's protocol/infrastructure findings.

* the HLS/RTMP boundary sits around 100 viewers — estimated here the way
  the paper did, by comparing viewer counts across a session population;
* RTMP comes from 87 EC2 servers spread across continents (none in
  Africa), chosen nearest the broadcaster;
* HLS comes from two CDN IPs chosen nearest the viewer.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.charts import render_table
from repro.core.testbed import VIEWER_LOCATION
from repro.experiments.common import Workbench
from repro.service.geo import GeoPoint
from repro.service.ingest import CDN_EDGES, IngestPool, nearest_cdn_edge


@dataclass
class ProtocolFindingsResult:
    max_rtmp_viewers: float
    min_hls_viewers: float
    boundary_estimate: float
    rtmp_server_count: int
    rtmp_regions: List[str]
    hls_edge_count: int
    hls_edge_for_viewer: str

    def render(self) -> str:
        rows = [
            ["max viewers on an RTMP session", f"{self.max_rtmp_viewers:.0f}"],
            ["min viewers on an HLS session", f"{self.min_hls_viewers:.0f}"],
            ["estimated HLS boundary (viewers)", f"{self.boundary_estimate:.0f}"],
            ["distinct RTMP ingest servers", str(self.rtmp_server_count)],
            ["ingest regions", ", ".join(sorted(set(self.rtmp_regions)))],
            ["distinct HLS edges", str(self.hls_edge_count)],
            ["edge chosen for the Finland viewer", self.hls_edge_for_viewer],
        ]
        return render_table(["finding", "value"], rows)


def run(workbench: Workbench) -> ProtocolFindingsResult:
    dataset = workbench.unlimited()
    rtmp_viewers = [s.avg_viewers for s in dataset.by_protocol("rtmp")]
    hls_viewers = [s.avg_viewers for s in dataset.by_protocol("hls")]
    if not rtmp_viewers or not hls_viewers:
        raise RuntimeError("dataset too small: missing a protocol population")
    max_rtmp = max(rtmp_viewers)
    min_hls = min(hls_viewers)
    boundary = (max_rtmp + min_hls) / 2.0

    pool = workbench.study.ingest
    return ProtocolFindingsResult(
        max_rtmp_viewers=max_rtmp,
        min_hls_viewers=min_hls,
        boundary_estimate=boundary,
        rtmp_server_count=len(pool.servers),
        rtmp_regions=[s.region for s in pool.servers],
        hls_edge_count=len(CDN_EDGES),
        hls_edge_for_viewer=nearest_cdn_edge(VIEWER_LOCATION).name,
    )
