"""Figure 6: captured-video characteristics.

Panel (a): per-stream average video bitrate CDFs, by protocol — the bulk
between 200 and 400 kbps, nearly identical curves, with a higher maximum
on RTMP (intra-only encodings).  Panel (b): average QP vs bitrate — at a
fixed QP the bitrate spans a wide range because content complexity
differs wildly between broadcasts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.analysis.charts import render_cdf, render_scatter_summary
from repro.experiments.common import Workbench
from repro.util.empirical import Ecdf

CDF_GRID_BPS = (100e3, 200e3, 300e3, 400e3, 500e3, 750e3, 1000e3, 1250e3)
QP_BINS = ((0.0, 200e3), (200e3, 300e3), (300e3, 400e3), (400e3, 600e3),
           (600e3, 1300e3))


@dataclass
class Fig6Result:
    rtmp_bitrates: List[float]
    hls_bitrates: List[float]
    #: (bitrate, avg QP) per captured stream, both protocols.
    qp_points: List[Tuple[float, float]]

    def rtmp_cdf(self) -> Ecdf:
        return Ecdf(self.rtmp_bitrates)

    def hls_cdf(self) -> Ecdf:
        return Ecdf(self.hls_bitrates)

    def typical_band_share(self) -> float:
        """Share of all streams in the 200-400 kbps band... loosely
        (the paper: "typically ranging between 200 and 400 kbps")."""
        rates = self.rtmp_bitrates + self.hls_bitrates
        return sum(1 for r in rates if 150e3 <= r <= 450e3) / len(rates)

    def qp_spread_at_fixed_quality(self) -> float:
        """Max/min bitrate ratio among streams within +-2 QP of the
        median QP — Fig. 6(b)'s 'same QP, wide bitrate range'."""
        qps = sorted(q for _, q in self.qp_points)
        median_qp = qps[len(qps) // 2]
        band = [b for b, q in self.qp_points if abs(q - median_qp) <= 2.0]
        if len(band) < 2:
            return 1.0
        return max(band) / min(band)

    def render(self) -> str:
        parts = ["Fig 6(a): video bitrate CDF by protocol"]
        parts.append(render_cdf(
            {"HLS": self.hls_cdf(), "RTMP": self.rtmp_cdf()},
            CDF_GRID_BPS, "bitrate (bps)",
        ))
        parts.append(f"share in 150-450 kbps band: {self.typical_band_share():.2f}; "
                     f"RTMP max {max(self.rtmp_bitrates) / 1e3:.0f} kbps vs "
                     f"HLS max {max(self.hls_bitrates) / 1e3:.0f} kbps")
        parts.append("")
        parts.append("Fig 6(b): avg QP vs bitrate")
        parts.append(render_scatter_summary(
            self.qp_points, "bitrate (bps)", "avg QP", QP_BINS))
        parts.append(
            f"bitrate spread at fixed QP (max/min within ±2 QP of median): "
            f"{self.qp_spread_at_fixed_quality():.1f}x"
        )
        return "\n".join(parts)


def run(workbench: Workbench) -> Fig6Result:
    unlimited = workbench.unlimited()
    rtmp, hls, points = [], [], []
    for session in unlimited.sessions:
        if session.video_bitrate_bps is None or session.avg_qp is None:
            continue
        points.append((session.video_bitrate_bps, session.avg_qp))
        if session.protocol == "rtmp":
            rtmp.append(session.video_bitrate_bps)
        else:
            hls.append(session.video_bitrate_bps)
    if not rtmp or not hls:
        raise RuntimeError("dataset too small: missing a protocol population")
    return Fig6Result(rtmp_bitrates=rtmp, hls_bitrates=hls, qp_points=points)
