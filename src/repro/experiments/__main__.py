"""Command-line figure regeneration.

Run any paper table/figure from the shell::

    python -m repro.experiments list
    python -m repro.experiments fig3 --seed 7 --sessions 40
    python -m repro.experiments all

Workbench-backed figures share one dataset per invocation; sizes are
laptop-scale by default and adjustable with the flags below.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, Optional

from repro.experiments import (
    fig1_crawl,
    fig2_usage,
    fig3_stalls,
    fig4_latency,
    fig5_delivery,
    fig6_quality,
    fig7_power,
    sec5_protocol,
    sec5_ttests,
    sec51_chat,
    sec52_codecs,
    table1_api,
)
from repro.experiments.common import Workbench

#: name -> (needs_workbench, runner)
DRIVERS: Dict[str, tuple] = {
    "table1": (False, lambda wb, seed: table1_api.run(seed=seed)),
    "fig1": (True, lambda wb, seed: fig1_crawl.run(wb)),
    "fig2": (True, lambda wb, seed: fig2_usage.run(wb)),
    "fig3": (True, lambda wb, seed: fig3_stalls.run(wb)),
    "fig4": (True, lambda wb, seed: fig4_latency.run(wb)),
    "fig5": (True, lambda wb, seed: fig5_delivery.run(wb)),
    "fig6": (True, lambda wb, seed: fig6_quality.run(wb)),
    "fig7": (False, lambda wb, seed: fig7_power.run(seed=seed)),
    "ttests": (True, lambda wb, seed: sec5_ttests.run(wb)),
    "protocol": (True, lambda wb, seed: sec5_protocol.run(wb)),
    "chat": (False, lambda wb, seed: sec51_chat.run(seed=seed)),
    "codecs": (False, lambda wb, seed: sec52_codecs.run(seed=seed)),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument("figure", choices=sorted(DRIVERS) + ["all", "list"],
                        help="which experiment to run")
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--sessions", type=int, default=90,
                        help="unlimited-bandwidth session count")
    parser.add_argument("--per-limit", type=int, default=6,
                        help="sessions per bandwidth limit in the sweep")
    return parser


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.figure == "list":
        for name in sorted(DRIVERS):
            print(name)
        return 0
    workbench = Workbench(
        seed=args.seed,
        unlimited_sessions=args.sessions,
        sweep_sessions_per_limit=args.per_limit,
    )
    names = sorted(DRIVERS) if args.figure == "all" else [args.figure]
    for name in names:
        _, runner = DRIVERS[name]
        print(f"=== {name} ===")
        print(runner(workbench, args.seed).render())
        print()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI test
    sys.exit(main())
