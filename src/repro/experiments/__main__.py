"""Command-line figure regeneration.

Run any paper table/figure from the shell::

    python -m repro.experiments list
    python -m repro.experiments fig3 --seed 7 --sessions 40
    python -m repro.experiments all

Workbench-backed figures share one dataset per invocation; sizes are
laptop-scale by default and adjustable with the flags below.

Telemetry (see :mod:`repro.obs`) is opt-in::

    python -m repro.experiments fig3 --metrics -          # dump to stdout
    python -m repro.experiments fig3 --metrics run.prom \\
        --trace-out run-trace.jsonl

``--metrics`` enables the metrics registry and the event-loop profiler
and writes a Prometheus-style text dump plus an ASCII summary at exit;
``--trace-out`` enables sim-time tracing spans and writes them as JSONL.

Stall forensics (see :mod:`repro.obs.causes`) rides the same pattern::

    python -m repro.experiments fig3loss --faults loss=ge:0.02:0.3:0.5 \\
        --explain - --health -

``--explain`` enables causal delay attribution and writes the ASCII
attribution report (``--explain-jsonl`` writes the per-window records as
JSONL); ``--health`` enables the online invariant monitors and writes
their report.  Figures are also accepted under their module names
(``fig3_stalls``, ``sec5_ttests``, ...).
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, Optional

from repro import obs
from repro.experiments import (
    fig1_crawl,
    fig2_usage,
    fig2pop,
    fig3_loss,
    fig3_stalls,
    fig4_latency,
    fig5_delivery,
    fig6_quality,
    fig7_power,
    sec5_protocol,
    sec5_ttests,
    sec51_chat,
    sec52_codecs,
    table1_api,
)
from repro.experiments.common import Workbench
from repro.obs.export import (
    attribution_jsonl,
    render_attribution,
    render_health,
    render_prometheus,
    render_summary,
    write_trace_jsonl,
)

#: name -> (needs_workbench, runner).  Runners receive the shared
#: workbench plus the parsed CLI namespace, so population-scale drivers
#: can read their own flags (``--viewers``) without widening every
#: signature.
DRIVERS: Dict[str, tuple] = {
    "table1": (False, lambda wb, args: table1_api.run(seed=args.seed)),
    "fig1": (True, lambda wb, args: fig1_crawl.run(wb)),
    "fig2": (True, lambda wb, args: fig2_usage.run(wb)),
    "fig2pop": (True, lambda wb, args: fig2pop.run(wb, viewers=args.viewers)),
    "fig3": (True, lambda wb, args: fig3_stalls.run(wb)),
    "fig3loss": (True, lambda wb, args: fig3_loss.run(wb)),
    "fig4": (True, lambda wb, args: fig4_latency.run(wb)),
    "fig5": (True, lambda wb, args: fig5_delivery.run(wb)),
    "fig6": (True, lambda wb, args: fig6_quality.run(wb)),
    "fig7": (False, lambda wb, args: fig7_power.run(seed=args.seed)),
    "ttests": (True, lambda wb, args: sec5_ttests.run(wb)),
    "protocol": (True, lambda wb, args: sec5_protocol.run(wb)),
    "chat": (False, lambda wb, args: sec51_chat.run(seed=args.seed)),
    "codecs": (False, lambda wb, args: sec52_codecs.run(seed=args.seed)),
}

#: Module-style aliases, so ``fig3_stalls`` works where ``fig3`` does.
ALIASES: Dict[str, str] = {
    "table1_api": "table1",
    "fig1_crawl": "fig1",
    "fig2_usage": "fig2",
    "fig2_pop": "fig2pop",
    "fig3_stalls": "fig3",
    "fig3_loss": "fig3loss",
    "fig4_latency": "fig4",
    "fig5_delivery": "fig5",
    "fig6_quality": "fig6",
    "fig7_power": "fig7",
    "sec5_ttests": "ttests",
    "sec5_protocol": "protocol",
    "sec51_chat": "chat",
    "sec52_codecs": "codecs",
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "figure",
        choices=sorted(DRIVERS) + sorted(ALIASES) + ["all", "list"],
        metavar="figure",
        help="which experiment to run (module-style names are aliases; "
             "'list' prints the canonical names)",
    )
    parser.add_argument("--seed", type=int, default=2016)
    parser.add_argument("--sessions", type=int, default=90,
                        help="unlimited-bandwidth session count")
    parser.add_argument("--per-limit", type=int, default=6,
                        help="sessions per bandwidth limit in the sweep")
    parser.add_argument(
        "--viewers", type=int, default=100_000,
        help="concurrent viewers in the population-scale world "
             "(fig2pop only; cohort dynamics keep millions tractable)",
    )
    parser.add_argument(
        "--workers", type=int, default=1,
        help="worker processes for study session execution (datasets are "
             "bit-identical to --workers 1; session-level spans from "
             "--trace-out are only collected serially)",
    )
    parser.add_argument(
        "--exact-net", action="store_true",
        help="force the exact per-packet network path instead of the "
             "segment-granularity fast path (results are bit-identical; "
             "use when per-packet event traces are under study)",
    )
    parser.add_argument(
        "--faults", metavar="SPEC", default=None,
        help="fault plan for study sessions, e.g. "
             "'loss=0.02,jitter=0.01,flap=0.02:0.5:2,ingest=0.01:1:3,"
             "api5xx=0.05' or 'loss=ge:0.02:0.3:0.5' (Gilbert-Elliott); "
             "'none' disables faults (the default)",
    )
    parser.add_argument(
        "--metrics", metavar="PATH", default=None,
        help="enable metrics + event-loop profiling; write a "
             "Prometheus-style dump to PATH ('-' for stdout) at exit",
    )
    parser.add_argument(
        "--trace-out", metavar="PATH", default=None,
        help="enable sim-time tracing; write spans as JSONL to PATH "
             "('-' for stdout) at exit",
    )
    parser.add_argument(
        "--explain", metavar="PATH", nargs="?", const="-", default=None,
        help="enable stall forensics (causal delay attribution); write "
             "the ASCII attribution report to PATH (default '-', stdout) "
             "at exit",
    )
    parser.add_argument(
        "--explain-jsonl", metavar="PATH", default=None,
        help="also write per-window attribution records as JSONL to PATH "
             "('-' for stdout); implies --explain's instrumentation",
    )
    parser.add_argument(
        "--health", metavar="PATH", nargs="?", const="-", default=None,
        help="enable online invariant monitors; write the study-health "
             "report to PATH (default '-', stdout) at exit",
    )
    return parser


def _write_output(path: str, content: str) -> None:
    if path == "-":
        sys.stdout.write(content)
        if not content.endswith("\n"):
            sys.stdout.write("\n")
    else:
        with open(path, "w", encoding="utf-8") as sink:
            sink.write(content)
            if not content.endswith("\n"):
                sink.write("\n")


def main(argv: Optional[list] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.figure == "list":
        for name in sorted(DRIVERS):
            print(name)
        return 0
    causes_on = args.explain is not None or args.explain_jsonl is not None
    health_on = args.health is not None
    telemetry: Optional[obs.Telemetry] = None
    if (args.metrics is not None or args.trace_out is not None
            or causes_on or health_on):
        telemetry = obs.activate(obs.Telemetry(
            metrics=args.metrics is not None,
            tracing=args.trace_out is not None,
            profiling=args.metrics is not None,
            causes=causes_on,
            health=health_on,
        ))
    try:
        from repro.faults.plan import FaultPlan

        faults = FaultPlan.parse(args.faults) if args.faults else None
        if faults is not None and faults.empty:
            faults = None
        workbench = Workbench(
            seed=args.seed,
            unlimited_sessions=args.sessions,
            sweep_sessions_per_limit=args.per_limit,
            metrics=args.metrics is not None,
            tracing=args.trace_out is not None,
            causes=causes_on,
            health=health_on,
            workers=args.workers,
            faults=faults,
            exact=args.exact_net,
        )
        figure = ALIASES.get(args.figure, args.figure)
        names = sorted(DRIVERS) if figure == "all" else [figure]
        for name in names:
            _, runner = DRIVERS[name]
            print(f"=== {name} ===")
            print(runner(workbench, args).render())
            print()
        if telemetry is not None:
            if args.trace_out is not None:
                if args.trace_out == "-":
                    _write_output("-", telemetry.tracer.to_jsonl())
                else:
                    with open(args.trace_out, "w", encoding="utf-8") as sink:
                        write_trace_jsonl(telemetry, sink)
                    print(f"trace: {len(telemetry.tracer.spans)} spans -> "
                          f"{args.trace_out}")
            if args.metrics is not None:
                _write_output(args.metrics, render_prometheus(telemetry))
                print()
                print(render_summary(telemetry))
            if args.explain is not None:
                _write_output(args.explain, render_attribution(telemetry))
                if args.explain != "-":
                    print(f"attribution report -> {args.explain}")
            if args.explain_jsonl is not None:
                _write_output(args.explain_jsonl, attribution_jsonl(telemetry))
                if args.explain_jsonl != "-":
                    records = len(telemetry.causes.records)
                    print(f"attribution: {records} windows -> "
                          f"{args.explain_jsonl}")
            if args.health is not None:
                _write_output(args.health, render_health(telemetry))
                if args.health != "-":
                    print(f"health report -> {args.health}")
    finally:
        if telemetry is not None:
            obs.deactivate()
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via CLI test
    sys.exit(main())
