"""Section 5.2's codec census.

Over a population of captured streams: the frame-type pattern split
(most IBP; ~20% RTMP / ~18.4% HLS with I+P only; I-only rare), the
I-frame insertion period (~36 frames), HLS segment durations (3-6 s,
mode 3.6 s), and audio operating points (44.1 kHz VBR at ~32/64 kbps).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.charts import render_table
from repro.capture.inspector import inspect_frames
from repro.media.audio import AacEncoderModel, NOMINAL_BITRATES_BPS
from repro.media.content import ContentProcess, pick_profile
from repro.media.encoder import EncoderSettings, GopPattern, VideoEncoder
from repro.media.segmenter import HlsSegmenter
from repro.service.broadcast import sample_target_bitrate_bps
from repro.util.rng import child_rng


@dataclass
class CodecCensusResult:
    gop_shares: Dict[str, float]
    mean_i_period: float
    segment_durations: List[float]
    audio_rates: List[float]
    missing_frame_share: float

    def segment_mode_share(self, mode: float = 3.6, tolerance: float = 0.45) -> float:
        """Share of segments within ``tolerance`` of the modal duration."""
        if not self.segment_durations:
            return 0.0
        near = sum(1 for d in self.segment_durations if abs(d - mode) <= tolerance)
        return near / len(self.segment_durations)

    def render(self) -> str:
        parts = ["Section 5.2: codec census"]
        parts.append(render_table(
            ["GOP pattern", "share"],
            [[kind, f"{share:.3f}"] for kind, share in sorted(self.gop_shares.items())],
        ))
        durations = sorted(self.segment_durations)
        rows = [
            ["mean I-frame period (frames)", f"{self.mean_i_period:.1f}"],
            ["segments analyzed", str(len(durations))],
            ["segment duration min/median/max (s)",
             f"{durations[0]:.1f}/{durations[len(durations)//2]:.1f}/{durations[-1]:.1f}"
             if durations else "-"],
            ["share near 3.6 s mode", f"{self.segment_mode_share():.2f}"],
            ["audio operating points (kbps)",
             ",".join(f"{r/1000:.0f}" for r in sorted(set(self.audio_rates)))],
            ["streams with missing frames", f"{self.missing_frame_share:.2f}"],
        ]
        parts.append(render_table(["statistic", "value"], rows))
        return "\n".join(parts)


def run(seed: int = 2016, n_streams: int = 150, duration_s: float = 60.0) -> CodecCensusResult:
    """Encode a population of broadcasts and inspect each stream."""
    gop_counts: Dict[str, int] = {"IBP": 0, "IP": 0, "I": 0}
    i_periods: List[float] = []
    segment_durations: List[float] = []
    audio_rates: List[float] = []
    missing = 0

    for index in range(n_streams):
        rng = child_rng(seed, "codec-census", index)
        gop = GopPattern.sample(rng)
        settings = EncoderSettings(
            target_bps=sample_target_bitrate_bps(rng, gop), gop=gop
        )
        content = ContentProcess(pick_profile(rng), child_rng(seed, "census-content", index))
        encoder = VideoEncoder(settings, content, child_rng(seed, "census-enc", index))
        frames = encoder.encode_all(duration_s)
        audio = AacEncoderModel(child_rng(seed, "census-audio", index))
        audio_frames = audio.encode_all(duration_s)
        audio_rates.append(audio.nominal_bps)

        report = inspect_frames(frames, audio_frames)
        gop_counts[report.gop_kind] = gop_counts.get(report.gop_kind, 0) + 1
        if report.i_frame_period is not None:
            i_periods.append(report.i_frame_period)
        if report.has_missing_frames:
            missing += 1

        # Half the population doubles as HLS streams for the segment census.
        if index % 2 == 0:
            segments = list(HlsSegmenter().segment(frames, audio_frames))[:-1]
            segment_durations.extend(s.duration_s for s in segments)

    total = sum(gop_counts.values())
    return CodecCensusResult(
        gop_shares={k: v / total for k, v in gop_counts.items()},
        mean_i_period=sum(i_periods) / len(i_periods) if i_periods else 0.0,
        segment_durations=segment_durations,
        audio_rates=audio_rates,
        missing_frame_share=missing / n_streams,
    )
