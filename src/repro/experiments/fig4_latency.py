"""Figure 4: join time and playback latency vs bandwidth limit (RTMP).

Both grow when bandwidth is limited; join time grows dramatically at
2 Mbps and below.  Unlimited playback latency is "roughly a few
seconds".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.charts import render_boxplot_rows
from repro.experiments.common import Workbench
from repro.util.empirical import FiveNumberSummary, five_number_summary


@dataclass
class Fig4Result:
    join_by_limit: Dict[float, List[float]]
    latency_by_limit: Dict[float, List[float]]

    def join_boxplots(self) -> Dict[str, FiveNumberSummary]:
        return {
            f"{limit:g}": five_number_summary(values)
            for limit, values in sorted(self.join_by_limit.items())
            if values
        }

    def latency_boxplots(self) -> Dict[str, FiveNumberSummary]:
        return {
            f"{limit:g}": five_number_summary(values)
            for limit, values in sorted(self.latency_by_limit.items())
            if values
        }

    def median_join(self, limit: float) -> float:
        return five_number_summary(self.join_by_limit[limit]).median

    def median_latency(self, limit: float) -> float:
        return five_number_summary(self.latency_by_limit[limit]).median

    def render(self) -> str:
        parts = ["Fig 4(a): join time (s) vs bandwidth limit (Mbps)"]
        parts.append(render_boxplot_rows(self.join_boxplots(), "join time (s)"))
        parts.append("")
        parts.append("Fig 4(b): playback latency (s) vs bandwidth limit (Mbps)")
        parts.append(render_boxplot_rows(self.latency_boxplots(), "latency (s)"))
        return "\n".join(parts)


def run(workbench: Workbench) -> Fig4Result:
    sweep = workbench.sweep()
    unlimited = workbench.unlimited()
    join_by_limit: Dict[float, List[float]] = {}
    latency_by_limit: Dict[float, List[float]] = {}
    for limit, ds in sweep.items():
        rtmp = ds.by_protocol("rtmp")
        join_by_limit[limit] = [s.join_time_s for s in rtmp]
        latency_by_limit[limit] = [
            s.playback_latency_s for s in rtmp if s.playback_latency_s is not None
        ]
    # Merge the (large) unlimited dataset into the 100 Mbps bucket, as the
    # paper's "100" column is the unlimited case.
    rtmp_unlimited = unlimited.by_protocol("rtmp")
    join_by_limit.setdefault(100.0, []).extend(s.join_time_s for s in rtmp_unlimited)
    latency_by_limit.setdefault(100.0, []).extend(
        s.playback_latency_s for s in rtmp_unlimited if s.playback_latency_s is not None
    )
    return Fig4Result(join_by_limit=join_by_limit, latency_by_limit=latency_by_limit)
