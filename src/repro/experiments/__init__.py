"""Experiment drivers: one module per paper table/figure.

Every driver exposes a ``run(workbench)`` function returning a result
object with a ``render()`` method that prints the same rows/series the
paper's figure shows, plus the headline numbers for EXPERIMENTS.md.
Drivers share one :class:`~repro.experiments.common.Workbench`, which
caches the expensive dataset generations (crawls, session batches) at a
configured scale.
"""

from repro.experiments.common import Workbench

__all__ = ["Workbench"]
