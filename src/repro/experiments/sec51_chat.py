"""Section 5.1's chat traffic experiment.

The paper measured the same popular broadcast with chat off and on and
saw the aggregate data rate jump from ~500 kbps to ~3.5 Mbps, caused by
uncached profile-picture downloads from S3.  This driver runs matched
chat-on / chat-off / chat-on-with-cache sessions on a popular broadcast
and accounts the traffic.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.charts import render_table
from repro.automation.devices import GALAXY_S4
from repro.core.session import SessionSetup, ViewingSession
from repro.service.broadcast import sample_broadcast
from repro.service.geo import POPULATION_CENTERS, GeoPoint
from repro.service.selection import DeliveryProtocol
from repro.util.rng import child_rng


@dataclass
class ChatTrafficResult:
    chat_off_bps: float
    chat_on_bps: float
    chat_on_cached_bps: float
    avatar_requests: int
    duplicate_downloads: int
    avatar_bytes: int

    @property
    def amplification(self) -> float:
        return self.chat_on_bps / self.chat_off_bps if self.chat_off_bps else 0.0

    def render(self) -> str:
        rows = [
            ["chat off", f"{self.chat_off_bps / 1e3:.0f} kbps"],
            ["chat on", f"{self.chat_on_bps / 1e3:.0f} kbps"],
            ["chat on + avatar cache", f"{self.chat_on_cached_bps / 1e3:.0f} kbps"],
            ["amplification", f"{self.amplification:.1f}x"],
            ["avatar requests (chat on)", str(self.avatar_requests)],
            ["duplicate avatar downloads", str(self.duplicate_downloads)],
            ["avatar bytes", f"{self.avatar_bytes / 1e6:.2f} MB"],
        ]
        return render_table(["measurement", "value"], rows)


#: Matched-session watch window.  Shared by the session setup and the
#: bitrate denominator — they must stay the same number or the reported
#: kbps silently mis-scale.
WATCH_SECONDS = 60.0


def _session(seed: int, chat_ui_on: bool, cache: bool, viewers: float):
    broadcast = sample_broadcast(
        child_rng(seed, "sec51_chat"), 0.0, GeoPoint(41.0, 28.9), POPULATION_CENTERS[17]
    )
    broadcast.mean_viewers = viewers
    broadcast.duration_s = 7200.0
    setup = SessionSetup(
        broadcast=broadcast,
        age_at_join=900.0,
        protocol=DeliveryProtocol.HLS,
        device=GALAXY_S4,
        watch_seconds=WATCH_SECONDS,
        chat_ui_on=chat_ui_on,
        cache_avatars=cache,
        seed=seed,
    )
    return ViewingSession(setup).run()


def run(seed: int = 2016, viewers: float = 3000.0) -> ChatTrafficResult:
    off = _session(seed, chat_ui_on=False, cache=False, viewers=viewers)
    on = _session(seed, chat_ui_on=True, cache=False, viewers=viewers)
    cached = _session(seed, chat_ui_on=True, cache=True, viewers=viewers)
    watch_s = WATCH_SECONDS
    return ChatTrafficResult(
        chat_off_bps=off.total_down_bytes * 8.0 / watch_s,
        chat_on_bps=on.total_down_bytes * 8.0 / watch_s,
        chat_on_cached_bps=cached.total_down_bytes * 8.0 / watch_s,
        avatar_requests=on.avatar_requests,
        duplicate_downloads=on.duplicate_avatar_downloads,
        avatar_bytes=on.avatar_bytes,
    )
