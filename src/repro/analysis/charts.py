"""Terminal rendering of the paper's figure types.

Benchmarks print these so the regenerated figure can be compared to the
paper at a glance: CDF curves (Figs. 1-3a, 5, 6a), boxplot rows per
bandwidth limit (Figs. 3b, 4), scatter summaries (Fig. 6b) and grouped
bars (Fig. 7).
"""

from __future__ import annotations

from typing import List, Mapping, Sequence, Tuple

from repro.util.empirical import Ecdf, FiveNumberSummary
from repro.util.tables import render_table  # noqa: F401  (re-exported API)


def render_cdf(
    curves: Mapping[str, Ecdf],
    xs: Sequence[float],
    x_label: str,
    width: int = 40,
) -> str:
    """Tabulated CDF curves on a fixed grid, with a spark bar per row."""
    headers = [x_label] + [f"{name} F(x)" for name in curves] + [""]
    rows: List[List[str]] = []
    first = next(iter(curves.values()))
    for x in xs:
        row: List[str] = [f"{x:g}"]
        for ecdf in curves.values():
            row.append(f"{ecdf(x):.3f}")
        bar = "#" * int(round(first(x) * width))
        row.append(bar)
        rows.append(row)
    return render_table(headers, rows)


def render_boxplot_rows(
    groups: Mapping[str, FiveNumberSummary],
    value_label: str,
) -> str:
    """One five-number-summary row per group (a textual boxplot)."""
    headers = ["group", "n", "low", "q1", "median", "q3", "high", "outliers",
               value_label]
    rows = []
    values = [s for s in groups.values()]
    hi = max(s.high_whisker for s in values) or 1.0
    for name, summary in groups.items():
        scale = 30.0 / hi if hi > 0 else 0.0
        lo_pos = int(summary.q1 * scale)
        med_pos = max(lo_pos + 1, int(summary.median * scale))
        hi_pos = max(med_pos + 1, int(summary.q3 * scale))
        sketch = (" " * lo_pos + "[" + "=" * (med_pos - lo_pos) + "|"
                  + "=" * (hi_pos - med_pos) + "]")
        rows.append([
            name, summary.n,
            f"{summary.low_whisker:.2f}", f"{summary.q1:.2f}",
            f"{summary.median:.2f}", f"{summary.q3:.2f}",
            f"{summary.high_whisker:.2f}", summary.n_outliers, sketch,
        ])
    return render_table(headers, rows)


def render_bars(
    groups: Mapping[str, Mapping[str, float]],
    unit: str,
    width: int = 36,
) -> str:
    """Grouped bar chart (Fig. 7 style): {category: {series: value}}."""
    peak = max(v for series in groups.values() for v in series.values())
    if peak <= 0:
        peak = 1.0
    lines: List[str] = []
    name_width = max(len(n) for n in groups)
    for name, series in groups.items():
        for series_name, value in series.items():
            bar = "#" * int(round(value / peak * width))
            lines.append(
                f"{name.ljust(name_width)} {series_name:<5} "
                f"{value:8.0f} {unit} {bar}"
            )
    return "\n".join(lines)


def render_scatter_summary(
    points: Sequence[Tuple[float, float]],
    x_label: str,
    y_label: str,
    x_bins: Sequence[Tuple[float, float]],
) -> str:
    """Fig. 6(b)-style summary: per x-bin, the y range and mean."""
    headers = [x_label, "n", f"{y_label} min", f"{y_label} mean", f"{y_label} max"]
    rows = []
    for lo, hi in x_bins:
        ys = [y for x, y in points if lo <= x < hi]
        if not ys:
            rows.append([f"[{lo:g},{hi:g})", 0, "-", "-", "-"])
            continue
        rows.append([
            f"[{lo:g},{hi:g})", len(ys),
            f"{min(ys):.1f}", f"{sum(ys)/len(ys):.1f}", f"{max(ys):.1f}",
        ])
    return render_table(headers, rows)
