"""Statistics and figure rendering for the reproduction.

* :mod:`repro.analysis.stats` — Welch's t-test (used in Section 5 to
  justify pooling the two devices' data), plus helpers over the ECDF /
  boxplot primitives in :mod:`repro.util.empirical`.
* :mod:`repro.analysis.charts` — terminal rendering: CDF curves,
  boxplot rows and bar charts, so every benchmark prints the same
  figure the paper shows.
"""

from repro.analysis.stats import WelchResult, welch_t_test
from repro.analysis.charts import (
    render_bars,
    render_boxplot_rows,
    render_cdf,
    render_table,
)

__all__ = [
    "WelchResult",
    "welch_t_test",
    "render_bars",
    "render_boxplot_rows",
    "render_cdf",
    "render_table",
]
