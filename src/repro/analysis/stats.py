"""Statistical tests.

Welch's unequal-variances t-test, implemented from first principles (no
scipy dependency in the library proper) with a high-accuracy Student-t
CDF via the regularized incomplete beta function.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence


@dataclass(frozen=True)
class WelchResult:
    """Outcome of a Welch's t-test."""

    t_statistic: float
    degrees_of_freedom: float
    p_value: float
    mean_a: float
    mean_b: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def _mean_var(samples: Sequence[float]) -> tuple:
    n = len(samples)
    mean = sum(samples) / n
    var = sum((x - mean) ** 2 for x in samples) / (n - 1)
    return mean, var, n


def _log_beta(a: float, b: float) -> float:
    return math.lgamma(a) + math.lgamma(b) - math.lgamma(a + b)


def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Numerical Recipes)."""
    max_iter = 300
    eps = 3e-14
    tiny = 1e-300
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, max_iter + 1):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < eps:
            return h
    raise RuntimeError("incomplete beta did not converge")


def regularized_incomplete_beta(a: float, b: float, x: float) -> float:
    """I_x(a, b) with the symmetry-accelerated continued fraction."""
    if not 0.0 <= x <= 1.0:
        raise ValueError("x must be in [0, 1]")
    if x == 0.0 or x == 1.0:
        return x
    ln_front = a * math.log(x) + b * math.log(1.0 - x) - _log_beta(a, b)
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def student_t_sf(t: float, df: float) -> float:
    """Survival function P(T > t) of Student's t."""
    if df <= 0:
        raise ValueError("degrees of freedom must be positive")
    x = df / (df + t * t)
    p = 0.5 * regularized_incomplete_beta(df / 2.0, 0.5, x)
    return p if t >= 0 else 1.0 - p


def welch_t_test(a: Sequence[float], b: Sequence[float]) -> WelchResult:
    """Two-sided Welch's t-test (unequal variances, unequal sizes)."""
    if len(a) < 2 or len(b) < 2:
        raise ValueError("each sample needs at least two observations")
    mean_a, var_a, n_a = _mean_var(a)
    mean_b, var_b, n_b = _mean_var(b)
    se2 = var_a / n_a + var_b / n_b
    if se2 == 0.0:
        # Identical constant samples: no evidence of difference.
        return WelchResult(0.0, float(n_a + n_b - 2), 1.0, mean_a, mean_b)
    t = (mean_a - mean_b) / math.sqrt(se2)
    df = se2**2 / (
        (var_a / n_a) ** 2 / (n_a - 1) + (var_b / n_b) ** 2 / (n_b - 1)
    )
    p = 2.0 * student_t_sf(abs(t), df)
    return WelchResult(t_statistic=t, degrees_of_freedom=df, p_value=min(p, 1.0),
                       mean_a=mean_a, mean_b=mean_b)
