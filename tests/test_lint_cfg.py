"""The dataflow engine never takes the linter down.

The CFG builder and the three flow analyses run over every construct
Python can throw at them — the whole shipped tree plus a torture
fixture — and must finish without raising.  Also pins the single-parse
/ single-CFG-build contract: one ``ast.parse`` and one CFG build per
file per lint run, shared across all rule families.
"""

import ast
import sys
import textwrap

import pytest

from repro.lint import discover_files, find_repo_root, lint_sources
from repro.lint.cfg import build_module_cfgs
from repro.lint.dataflow import ForwardAnalysis
from repro.lint.modinfo import parse_module
from repro.lint import rules_pool, rules_rng, rules_units

TORTURE = textwrap.dedent('''
    """Every awkward construct in one file."""

    import contextlib

    CONSTANT = [x * 2 for x in range(4)]


    def walrus(values):
        total = 0
        while (chunk := values.pop()) is not None:
            total += chunk
            if (n := len(values)) == 0:
                break
        else:
            total = -1
        return total, locals().get("n")


    def try_everything(path):
        handle = None
        try:
            handle = open(path)
            for line in handle:
                if not line:
                    continue
                yield line
        except OSError as error:
            raise RuntimeError("boom") from error
        except (ValueError, KeyError):
            pass
        else:
            yield "clean"
        finally:
            if handle is not None:
                handle.close()


    async def gather(sources):
        async with contextlib.AsyncExitStack() as stack:
            results = [item async for source in sources
                       for item in source if item]
            await stack.aclose()
        return results


    def nested_comprehensions(grid):
        return {
            row: [cell ** 2 for cell in cells if cell]
            for row, cells in enumerate(grid)
            if any(c > 0 for c in cells)
        }


    def closures(seed):
        def inner(offset, *, scale=2):
            nonlocal seed
            seed += offset
            return seed * scale
        return [inner, lambda q: inner(q) + seed]


    class Widget:
        kind = "widget"

        def __init__(self, delay_s=0.0):
            self.delay_s = delay_s

        @property
        def doubled(self):
            return self.delay_s * 2


    def unreachable(flag):
        if flag:
            return 1
        return 2
        print("never")  # noqa: intentional dead code


    def star_targets(pairs):
        (first, *rest), last = pairs, None
        del last
        return first, rest
''')

TORTURE_MATCH = textwrap.dedent('''
    def dispatch(event):
        match event:
            case {"kind": "join", "delay_s": d} if d > 0:
                return d
            case [first, *rest]:
                return len(rest)
            case str() as name:
                return name
            case _:
                return None
''')


def _run_all_analyses(module):
    rules_units._analyse_module(module)
    rules_rng._analyse_module(module)
    rules_pool._analyse_module(module)


class TestTorture:
    def test_cfg_and_analyses_survive_torture(self):
        module = parse_module("src/repro/netsim/torture.py", TORTURE)
        cfgs = module.function_cfgs()
        assert any(cfg.name == "<module>" for cfg in cfgs)
        assert any(cfg.name == "walrus" for cfg in cfgs)
        assert any(cfg.name == "inner" for cfg in cfgs)
        for cfg in cfgs:
            assert cfg.blocks
            assert cfg.entry in cfg.blocks and cfg.exit in cfg.blocks
            reachable = cfg.reachable_blocks()
            assert cfg.entry in reachable
        _run_all_analyses(module)

    @pytest.mark.skipif(sys.version_info < (3, 10),
                        reason="match statements need Python 3.10")
    def test_match_statement_survives(self):
        module = parse_module("src/repro/netsim/torture_match.py", TORTURE_MATCH)
        assert module.function_cfgs()
        _run_all_analyses(module)

    def test_lint_sources_on_torture_raises_nothing(self):
        # Full pipeline, every rule family enabled.
        lint_sources({"src/repro/netsim/torture.py": TORTURE})

    def test_fixpoint_terminates_on_pathological_loop(self):
        source = textwrap.dedent("""
            def churn(n, delay_s, size_bytes):
                x = delay_s
                for _ in range(n):
                    for _ in range(n):
                        while n:
                            x = size_bytes if n else x
                return x
        """)
        lint_sources({"src/repro/netsim/loops.py": source})


class TestWholeRepo:
    def test_engine_survives_every_shipped_file(self):
        root = find_repo_root()
        for rel_path in discover_files(root):
            with open(f"{root}/{rel_path}", "r", encoding="utf-8") as handle:
                source = handle.read()
            module = parse_module(rel_path, source)
            cfgs = module.function_cfgs()
            for cfg in cfgs:
                assert cfg.entry in cfg.blocks and cfg.exit in cfg.blocks
            _run_all_analyses(module)


class TestSingleParse:
    def test_each_file_parsed_once_across_all_rule_families(self, monkeypatch):
        parsed = []
        real_parse = ast.parse

        def counting_parse(source, *args, **kwargs):
            parsed.append(kwargs.get("filename") or "<anon>")
            return real_parse(source, *args, **kwargs)

        monkeypatch.setattr(ast, "parse", counting_parse)
        sources = {
            f"src/repro/netsim/mod{i}.py": (
                "def f(delay_s, frame_bytes):\n"
                "    return delay_s + frame_bytes\n"
            )
            for i in range(3)
        }
        findings = lint_sources(sources)  # every registered rule
        assert len(parsed) == len(sources)
        assert sorted(parsed) == sorted(sources)
        assert [f.rule for f in findings] == ["U501"] * 3

    def test_cfgs_built_once_and_shared(self, monkeypatch):
        import repro.lint.cfg as cfg_mod
        builds = []
        real_build = cfg_mod.build_module_cfgs

        def counting_build(tree):
            builds.append(tree)
            return real_build(tree)

        monkeypatch.setattr(cfg_mod, "build_module_cfgs", counting_build)
        sources = {
            "src/repro/netsim/one.py": "def f(rng):\n    return rng.random()\n",
            "src/repro/netsim/two.py": "def g(pool, xs):\n    return pool.map(len, xs)\n",
        }
        lint_sources(sources)  # U, R, and P families all need CFGs
        assert len(builds) == len(sources)

    def test_family_analyses_are_memoized_per_module(self):
        module = parse_module(
            "src/repro/netsim/memo.py",
            "def f(delay_s, frame_bytes):\n    return delay_s + frame_bytes\n",
        )
        first = rules_units._analyse_module(module)
        assert rules_units._analyse_module(module) is first
        assert rules_rng._analyse_module(module) is rules_rng._analyse_module(module)
        assert rules_pool._analyse_module(module) is rules_pool._analyse_module(module)


class TestDataflowContract:
    def test_solver_visits_every_reachable_block(self):
        source = textwrap.dedent("""
            def f(a, b):
                if a:
                    x = 1
                else:
                    x = 2
                return x
        """)
        tree = ast.parse(source)
        cfgs = build_module_cfgs(tree)
        func = next(cfg for cfg in cfgs if cfg.name == "f")

        class Noop(ForwardAnalysis):
            def transfer(self, stmt, env):
                pass

        entry_envs = Noop().solve(func)
        for block in func.reachable_blocks():
            assert block.bid in entry_envs
