"""Unit tests for the metrics registry and its exporters."""

import math

import pytest

from repro import obs
from repro.obs.export import render_prometheus, render_summary
from repro.obs.metrics import Histogram, MetricsRegistry


def test_counter_basics():
    registry = MetricsRegistry()
    counter = registry.counter("events_total", "help text")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5
    # Same name + labels returns the same child.
    assert registry.counter("events_total") is counter


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        MetricsRegistry().counter("x").inc(-1)


def test_labels_create_distinct_children():
    registry = MetricsRegistry()
    a = registry.counter("http_total", status="200")
    b = registry.counter("http_total", status="429")
    a.inc()
    assert a is not b
    assert b.value == 0
    assert registry.get("http_total", status="200") is a
    assert registry.get("http_total", status="404") is None


def test_kind_conflict_rejected():
    registry = MetricsRegistry()
    registry.counter("x_total")
    with pytest.raises(ValueError):
        registry.gauge("x_total")


def test_gauge_high_water():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(3)
    gauge.set(10)
    gauge.set(2)
    assert gauge.value == 2
    assert gauge.high_water == 10


def test_histogram_exact_quantiles_on_known_inputs():
    histogram = Histogram(buckets=(1, 10, 100, 1000))
    for value in range(1, 101):  # 1..100, inserted in order
        histogram.observe(float(value))
    assert histogram.exact
    assert histogram.quantile(0.5) == 50.0
    assert histogram.quantile(0.95) == 95.0
    assert histogram.quantile(0.99) == 99.0
    assert histogram.quantile(1.0) == 100.0
    assert histogram.quantile(0.0) == 1.0
    assert histogram.count == 100
    assert histogram.sum == sum(range(1, 101))
    assert histogram.min == 1.0 and histogram.max == 100.0


def test_histogram_exact_regardless_of_insertion_order():
    histogram = Histogram()
    for value in (9.0, 1.0, 5.0, 3.0, 7.0):
        histogram.observe(value)
    assert histogram.quantile(0.5) == 5.0
    assert histogram.quantile(0.2) == 1.0


def test_histogram_falls_back_to_buckets_past_cap():
    histogram = Histogram(buckets=(10, 20, 30), value_cap=5)
    for value in (1.0, 12.0, 14.0, 25.0, 28.0, 29.0):
        histogram.observe(value)
    assert not histogram.exact
    estimate = histogram.quantile(0.5)
    assert 10.0 <= estimate <= 30.0
    assert histogram.count == 6


def test_histogram_empty_quantile_is_none():
    assert Histogram().quantile(0.5) is None


def test_prometheus_render():
    with obs.session() as telemetry:
        telemetry.metrics.counter("http_429_total", "throttles", kind="api").inc(3)
        telemetry.metrics.gauge("queue_depth").set(7)
        histogram = telemetry.metrics.histogram(
            "join_seconds", "join time", buckets=(1.0, 5.0), protocol="rtmp"
        )
        histogram.observe(0.5)
        histogram.observe(2.0)
        text = render_prometheus(telemetry)
    assert '# TYPE http_429_total counter' in text
    assert 'http_429_total{kind="api"} 3' in text
    assert "queue_depth 7" in text
    assert 'join_seconds_bucket{protocol="rtmp",le="1"} 1' in text
    assert 'join_seconds_bucket{protocol="rtmp",le="5"} 2' in text
    assert 'join_seconds_bucket{protocol="rtmp",le="+Inf"} 2' in text
    assert 'join_seconds_sum{protocol="rtmp"} 2.5' in text
    assert 'join_seconds_count{protocol="rtmp"} 2' in text


def test_summary_render_contains_quantiles():
    with obs.session() as telemetry:
        histogram = telemetry.metrics.histogram("latency_seconds")
        for value in range(1, 21):
            histogram.observe(float(value))
        telemetry.metrics.counter("requests_total").inc(20)
        text = render_summary(telemetry)
    assert "latency_seconds" in text
    assert "p95" in text
    assert "requests_total" in text


class TestSnapshotMerge:
    def test_counters_add(self):
        a = MetricsRegistry()
        a.counter("events_total", status="ok").inc(3)
        b = MetricsRegistry()
        b.counter("events_total", status="ok").inc(4)
        b.counter("events_total", status="err").inc(1)
        a.merge_from(b.snapshot())
        assert a.get("events_total", status="ok").value == 7.0
        assert a.get("events_total", status="err").value == 1.0

    def test_gauges_take_max(self):
        a = MetricsRegistry()
        a.gauge("progress").set(9)
        a.gauge("progress").set(2)  # value 2, high_water 9
        b = MetricsRegistry()
        b.gauge("progress").set(5)
        a.merge_from(b.snapshot())
        gauge = a.get("progress")
        assert gauge.value == 5.0
        assert gauge.high_water == 9.0

    def test_histograms_merge_exactly(self):
        a = MetricsRegistry()
        for value in (0.1, 0.4):
            a.histogram("join_seconds").observe(value)
        b = MetricsRegistry()
        for value in (0.2, 0.3, 2.0):
            b.histogram("join_seconds").observe(value)
        a.merge_from(b.snapshot())
        merged = a.get("join_seconds")
        assert merged.count == 5
        assert merged.sum == pytest.approx(3.0)
        assert merged.min == 0.1 and merged.max == 2.0
        assert merged.exact
        assert merged.quantile(0.5) == 0.3  # needs the merged raw values

    def test_histogram_merge_respects_value_cap(self):
        a = MetricsRegistry()
        big = a.histogram("x_seconds", buckets=(1.0, 10.0))
        big._value_cap = 3
        big.observe(0.5)
        big.observe(0.7)
        b = MetricsRegistry()
        other = b.histogram("x_seconds", buckets=(1.0, 10.0))
        for value in (0.1, 0.2):
            other.observe(value)
        a.merge_from(b.snapshot())
        merged = a.get("x_seconds")
        assert merged.count == 4
        assert not merged.exact  # 2 + 2 > cap of 3: buckets only, like observe()
        assert merged.quantile(0.5) is not None

    def test_kind_mismatch_rejected(self):
        a = MetricsRegistry()
        a.counter("x_total").inc()
        b = MetricsRegistry()
        b.gauge("x_total").set(1)
        with pytest.raises(ValueError):
            a.merge_from(b.snapshot())

    def test_bucket_mismatch_rejected(self):
        a = MetricsRegistry()
        a.histogram("x_seconds", buckets=(1.0, 2.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("x_seconds", buckets=(1.0, 5.0)).observe(0.5)
        with pytest.raises(ValueError):
            a.merge_from(b.snapshot())

    def test_snapshot_is_plain_data(self):
        registry = MetricsRegistry()
        registry.counter("c_total", status="ok").inc()
        registry.histogram("h_seconds").observe(1.0)
        snap = registry.snapshot()

        def only_builtins(node):
            if isinstance(node, dict):
                return all(isinstance(k, str) and only_builtins(v)
                           for k, v in node.items())
            if isinstance(node, list):
                return all(only_builtins(item) for item in node)
            return node is None or isinstance(node, (str, int, float))

        assert only_builtins(snap)

    def test_merge_into_empty_equals_original(self):
        source = MetricsRegistry()
        source.counter("c_total").inc(2)
        source.gauge("g").set(4)
        source.histogram("h_seconds").observe(0.25)
        target = MetricsRegistry()
        target.merge_from(source.snapshot())
        assert target.snapshot() == source.snapshot()


def test_default_buckets_are_sorted():
    assert list(obs.DEFAULT_BUCKETS) == sorted(obs.DEFAULT_BUCKETS)
    assert not math.isinf(obs.DEFAULT_BUCKETS[-1])
