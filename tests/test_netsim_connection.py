"""Integration tests: connections over hosts, links and paths."""

import pytest

from repro.netsim.connection import Connection, Message
from repro.netsim.events import EventLoop
from repro.netsim.packet import MSS
from repro.netsim.topology import Network
from repro.util.units import MBPS


def two_host_net(rate_bps=10 * MBPS, delay_s=0.01):
    loop = EventLoop()
    net = Network(loop)
    a, b = net.host("a"), net.host("b")
    net.duplex(a, b, rate_bps=rate_bps, delay_s=delay_s)
    return loop, net


def make_conn(loop, net, chain=("a", "b"), **kwargs):
    fwd, rev = net.duplex_paths(*chain)
    inbox = []
    conn = Connection(
        loop, fwd, rev, on_message=lambda m, t: inbox.append((m, t)), **kwargs
    )
    return conn, inbox


def test_message_delivery_end_to_end():
    loop, net = two_host_net()
    conn, inbox = make_conn(loop, net)
    msg = conn.send(Message(payload="hello", nbytes=5000))
    loop.run()
    assert len(inbox) == 1
    delivered, at = inbox[0]
    assert delivered.payload == "hello"
    assert delivered.delivered_at == at > 0
    assert conn.bytes_delivered == 5000


def test_delivery_time_matches_path_physics():
    loop, net = two_host_net(rate_bps=8 * MBPS, delay_s=0.05)
    conn, inbox = make_conn(loop, net)
    conn.send(Message(payload=None, nbytes=MSS))
    loop.run()
    _, at = inbox[0]
    # serialize ~1.5ms + 50ms propagation.
    assert 0.05 < at < 0.06


def test_messages_arrive_in_order():
    loop, net = two_host_net()
    conn, inbox = make_conn(loop, net)
    for i in range(20):
        conn.send(Message(payload=i, nbytes=3000))
    loop.run()
    assert [m.payload for m, _ in inbox] == list(range(20))


def test_window_limits_in_flight_bytes():
    loop, net = two_host_net(rate_bps=0.1 * MBPS)
    conn, _ = make_conn(loop, net, window_bytes=4 * MSS)
    conn.send(Message(payload=None, nbytes=100 * MSS))
    assert conn.in_flight_bytes <= 4 * MSS
    assert conn.backlog_bytes >= 90 * MSS
    loop.run()
    assert conn.in_flight_bytes == 0


def test_window_validation():
    loop, net = two_host_net()
    fwd, rev = net.duplex_paths("a", "b")
    with pytest.raises(ValueError):
        Connection(loop, fwd, rev, window_bytes=10)


def test_two_flows_share_bottleneck_roughly_fairly():
    loop, net = two_host_net(rate_bps=1 * MBPS, delay_s=0.005)
    conn1, inbox1 = make_conn(loop, net)
    conn2, inbox2 = make_conn(loop, net)
    nbytes = 250_000  # 2 Mbit each, 4 Mbit total over 1 Mbps ~ 4s
    conn1.send(Message(payload=1, nbytes=nbytes))
    conn2.send(Message(payload=2, nbytes=nbytes))
    loop.run()
    t1 = inbox1[0][1]
    t2 = inbox2[0][1]
    # Both finish near the 4s mark — neither starved.
    assert t1 == pytest.approx(t2, rel=0.2)
    assert 3.0 < max(t1, t2) < 5.5


def test_close_stops_delivery_and_unbinds():
    loop, net = two_host_net(rate_bps=0.5 * MBPS)
    conn, inbox = make_conn(loop, net)
    conn.send(Message(payload="x", nbytes=500_000))
    conn.close()
    loop.run()
    assert inbox == []
    with pytest.raises(RuntimeError):
        conn.send(Message(payload="y", nbytes=10))


def test_multihop_path_through_relay():
    loop = EventLoop()
    net = Network(loop)
    phone, desktop, server = net.host("phone"), net.host("desktop"), net.host("server")
    net.duplex(server, desktop, rate_bps=100 * MBPS, delay_s=0.02)
    net.duplex(desktop, phone, rate_bps=100 * MBPS, delay_s=0.001)
    fwd, rev = net.duplex_paths("server", "desktop", "phone")
    inbox = []
    conn = Connection(loop, fwd, rev, on_message=lambda m, t: inbox.append(t))
    conn.send(Message(payload=None, nbytes=1000))
    loop.run()
    assert len(inbox) == 1
    assert inbox[0] > 0.021  # both propagation delays


def test_message_with_real_bytes_chunks_correctly():
    loop, net = two_host_net()
    data = bytes(range(256)) * 20  # 5120 bytes
    fwd, rev = net.duplex_paths("a", "b")
    chunks = []
    conn = Connection(loop, fwd, rev, on_message=lambda m, t: None)
    fwd.links[-1].tap(lambda p, t: chunks.append(p.chunk) if not p.is_ack else None)
    conn.send(Message(payload=None, nbytes=len(data), data=data))
    loop.run()
    assert b"".join(c for c in chunks if c) == data


def test_message_validation():
    with pytest.raises(ValueError):
        Message(payload=None, nbytes=0)
    with pytest.raises(ValueError):
        Message(payload=None, nbytes=5, data=b"abc")


def test_mismatched_reverse_path_rejected():
    loop = EventLoop()
    net = Network(loop)
    a, b, c = net.host("a"), net.host("b"), net.host("c")
    net.duplex(a, b, rate_bps=1e6, delay_s=0.0)
    net.duplex(b, c, rate_bps=1e6, delay_s=0.0)
    fwd = net.path("a", "b")
    bad_rev = net.path("c", "b")
    with pytest.raises(ValueError):
        Connection(loop, fwd, bad_rev)
