"""Tests for device profiles, clocks, shaping and the adb loop."""

import random

import pytest

from repro.automation.adb import AdbViewingScript, TAP_OVERHEAD_S
from repro.automation.devices import DEVICES, GALAXY_S3, GALAXY_S4, DeviceProfile
from repro.automation.ntp import (
    BROADCASTER_PHONE_CLOCK,
    CAPTURE_DESKTOP_CLOCK,
    ClockModel,
    NtpSyncedClock,
)
from repro.automation.shaping import shaper_for_limit
from repro.core.config import StudyConfig
from repro.core.study import AutomatedViewingStudy


class TestDevices:
    def test_registry(self):
        assert DEVICES["galaxy-s3"] is GALAXY_S3
        assert DEVICES["galaxy-s4"] is GALAXY_S4

    def test_s3_slower_display(self):
        assert GALAXY_S3.display_fps_factor < GALAXY_S4.display_fps_factor

    def test_validation(self):
        with pytest.raises(ValueError):
            DeviceProfile("bad", display_fps_factor=1.5, display_fps_jitter=0.0)


class TestClocks:
    def test_offsets_bounded(self):
        rng = random.Random(1)
        for model in (CAPTURE_DESKTOP_CLOCK, BROADCASTER_PHONE_CLOCK):
            for _ in range(500):
                offset = model.sample_offset(rng)
                assert abs(offset) <= model.max_abs_s

    def test_phone_clock_noisier_than_desktop(self):
        assert BROADCASTER_PHONE_CLOCK.sigma_s > CAPTURE_DESKTOP_CLOCK.sigma_s

    def test_offsets_sometimes_negative(self):
        rng = random.Random(2)
        offsets = [BROADCASTER_PHONE_CLOCK.sample_offset(rng) for _ in range(200)]
        assert any(o < 0 for o in offsets) and any(o > 0 for o in offsets)

    def test_synced_clock_reads(self):
        clock = NtpSyncedClock(offset_s=0.05)
        assert clock.read(10.0) == pytest.approx(10.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            ClockModel(sigma_s=-1.0, max_abs_s=1.0).sample_offset(random.Random(1))


class TestShaping:
    def test_unlimited_returns_none(self):
        assert shaper_for_limit(100.0) is None
        assert shaper_for_limit(500.0) is None

    def test_limited_returns_shaper_at_rate(self):
        shaper = shaper_for_limit(2.0)
        assert shaper is not None
        assert shaper.rate_bps == pytest.approx(2e6)

    def test_validation(self):
        with pytest.raises(ValueError):
            shaper_for_limit(0.0)


class TestAdbScript:
    @pytest.fixture(scope="class")
    def log(self):
        study = AutomatedViewingStudy(StudyConfig(seed=321))
        script = AdbViewingScript(study)
        return script.run(3, watch_seconds=60.0)

    def test_sessions_collected(self, log):
        assert len(log.dataset.sessions) == 3

    def test_tap_sequence_per_session(self, log):
        # teleport -> wait -> close -> home, repeated.
        assert len(log.taps("tap_teleport")) >= 3
        assert len(log.taps("wait")) == 3
        assert len(log.taps("tap_home")) == 3

    def test_events_in_time_order(self, log):
        times = [e.at for e in log.events]
        assert times == sorted(times)

    def test_cadence_roughly_70s(self, log):
        waits = log.taps("wait")
        if len(waits) >= 2:
            gap = waits[1].at - waits[0].at
            assert 60.0 < gap < 90.0

    def test_validation(self):
        study = AutomatedViewingStudy(StudyConfig(seed=3))
        with pytest.raises(ValueError):
            AdbViewingScript(study).run(0)
