"""Tests for the figure drivers at a reduced scale.

The benchmarks run the drivers at figure scale; these tests verify the
drivers' structure and invariants quickly.
"""

import pytest

from repro.experiments import (
    fig1_crawl,
    fig2_usage,
    fig3_stalls,
    fig4_latency,
    fig5_delivery,
    fig6_quality,
    fig7_power,
    sec5_protocol,
    sec5_ttests,
    sec51_chat,
    sec52_codecs,
    table1_api,
)
from repro.experiments.common import Workbench


@pytest.fixture(scope="module")
def tiny_workbench():
    return Workbench(
        seed=99,
        unlimited_sessions=26,
        sweep_sessions_per_limit=3,
        sweep_limits_mbps=(0.5, 100.0),
        crawl_world_concurrent=500,
        deep_crawls=2,
        targeted_duration_s=900.0,
    )


def test_table1_rows_render():
    result = table1_api.run(seed=1)
    out = result.render()
    assert "mapGeoBroadcastFeed" in out
    assert len(result.rows) == 3


def test_fig1_structure(tiny_workbench):
    result = fig1_crawl.run(tiny_workbench)
    assert len(result.totals) == 2
    assert all(t > 50 for t in result.totals)
    assert "crawl 0" in result.render()


def test_fig2_patterns(tiny_workbench):
    result = fig2_usage.run(tiny_workbench)
    assert result.patterns.n_broadcasts > 50
    assert 0.0 < result.patterns.duration_cdf.quantile(0.5) < 3600
    out = result.render()
    assert "Fig 2(b)" in out


def test_fig3_ranges(tiny_workbench):
    result = fig3_stalls.run(tiny_workbench)
    assert all(0.0 <= r <= 1.0 for r in result.unlimited_ratios)
    assert set(result.by_limit) == {0.5, 100.0}
    assert "stall" in result.render()


def test_fig4_medians(tiny_workbench):
    result = fig4_latency.run(tiny_workbench)
    assert result.median_join(0.5) > result.median_join(100.0) * 0.8
    assert result.median_latency(100.0) > 0
    assert "join time" in result.render()


def test_fig5_separation(tiny_workbench):
    result = fig5_delivery.run(tiny_workbench)
    assert result.hls_mean() > 1.0
    assert result.rtmp_p75() < 1.0
    assert "RTMP p75" in result.render()


def test_fig6_points(tiny_workbench):
    result = fig6_quality.run(tiny_workbench)
    assert result.qp_points
    assert result.typical_band_share() > 0.3
    assert "Fig 6(b)" in result.render()


def test_fig7_standalone():
    result = fig7_power.run(seed=3, duration_s=5.0)
    assert len(result.measured) == 7
    assert result.chat_overhead_mw() > 500
    assert "wifi (paper)" in result.render()


def test_sec5_ttests(tiny_workbench):
    result = sec5_ttests.run(tiny_workbench)
    assert "avg_fps" in result.results
    # fps difference shows even in small samples; others must not all be
    # significant (pooled-device justification).
    insignificant = [m for m in result.results if m not in
                     result.significant_metrics()]
    assert len(insignificant) >= 3
    assert "significant?" in result.render()


def test_sec5_protocol(tiny_workbench):
    result = sec5_protocol.run(tiny_workbench)
    assert result.rtmp_server_count == 87
    assert result.hls_edge_count == 2
    assert result.boundary_estimate > 0
    assert "Finland" in result.render()


def test_sec51_chat_small():
    result = sec51_chat.run(seed=5, viewers=500.0)
    assert result.chat_on_bps > result.chat_off_bps
    assert result.chat_on_cached_bps < result.chat_on_bps
    assert "amplification" in result.render()


def test_sec52_codecs_small():
    result = sec52_codecs.run(seed=5, n_streams=40, duration_s=30.0)
    assert abs(sum(result.gop_shares.values()) - 1.0) < 1e-9
    assert result.gop_shares["IBP"] > 0.5
    assert result.segment_durations
    assert "GOP pattern" in result.render()


def test_workbench_caches(tiny_workbench):
    assert tiny_workbench.unlimited() is tiny_workbench.unlimited()
    assert tiny_workbench.sweep() is tiny_workbench.sweep()
    assert tiny_workbench.targeted_crawl() is tiny_workbench.targeted_crawl()
