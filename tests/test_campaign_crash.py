"""Kill/resume torture tests (the campaign's headline guarantee).

A campaign subprocess is SIGKILLed — a real, unhandled kill via the
``--kill-after-appends`` hook, which fires immediately after an fsync'd
journal append — at randomized journal offsets across ten seeds.  After
resuming, the final ``dataset.pkl`` and merged metric snapshots must be
byte-identical to an uninterrupted cold run.  Torn-final-journal-record
and truncated-at-arbitrary-byte-offset variants ride along: whatever
prefix of the journal survives, resuming reproduces the same bytes.
"""

import os
import random
import signal
import subprocess
import sys

import pytest

from repro.campaign.runner import CampaignRunner
from repro.campaign.spec import CampaignSpec
from repro.campaign.store import CampaignStore

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Three cells (one seed, three limits): the journal gets 2 appends per
#: cell (record + checkpoint) plus a final checkpoint = 7 appends, so
#: kill offsets 1..6 land everywhere from "nothing done" to "all cells
#: done, final artifacts unwritten".
GRID = ["--seeds", "2016", "--limits", "0.5,2,100",
        "--sessions", "1", "--watch", "4", "--scale", "0.02"]
MAX_KILL_OFFSET = 6

SPEC = CampaignSpec(
    seeds=(2016,), limits_mbps=(0.5, 2.0, 100.0), sessions_per_cell=1,
    watch_seconds=4.0, scale=0.02,
)

ARTIFACTS = ("dataset.pkl", "metrics.prom", "metrics.json")


def _cli(args, check=False):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    return subprocess.run(
        [sys.executable, "-m", "repro.campaign"] + args,
        capture_output=True, text=True, env=env, check=check,
    )


def _run(campaign_dir, extra=()):
    return _cli(["run", "--campaign", str(campaign_dir)] + GRID + list(extra))


def _artifact_bytes(campaign_dir):
    store = CampaignStore(str(campaign_dir))
    return {name: store.read_artifact(name) for name in ARTIFACTS}


@pytest.fixture(scope="module")
def cold(tmp_path_factory):
    """The uninterrupted reference run, in the same subprocess harness
    the killed runs use."""
    path = tmp_path_factory.mktemp("crash-cold")
    result = _run(path)
    assert result.returncode == 0, result.stderr
    reference = _artifact_bytes(path)
    assert all(reference.values())
    return reference


@pytest.mark.parametrize("torture_seed", range(10))
def test_sigkill_then_resume_reproduces_cold_bytes(cold, tmp_path,
                                                   torture_seed):
    rng = random.Random(0xC0FFEE + torture_seed)
    kill_after = rng.randint(1, MAX_KILL_OFFSET)
    campaign_dir = tmp_path / f"kill-{torture_seed}"

    killed = _run(campaign_dir, ["--kill-after-appends", str(kill_after)])
    assert killed.returncode == -signal.SIGKILL, (
        f"expected a SIGKILL death after {kill_after} appends, got "
        f"rc={killed.returncode}: {killed.stderr}"
    )
    # The kill landed mid-campaign: no final artifacts yet.
    assert _artifact_bytes(campaign_dir)["dataset.pkl"] is None

    resumed = _run(campaign_dir)
    assert resumed.returncode == 0, resumed.stderr
    assert _artifact_bytes(campaign_dir) == cold, (
        f"resume after SIGKILL@append{kill_after} diverged from cold run"
    )
    # And the resume actually skipped journaled work.
    assert "memoized" in resumed.stdout


def test_sigkill_with_torn_final_record_then_resume(cold, tmp_path):
    campaign_dir = tmp_path / "torn"
    killed = _run(campaign_dir, ["--kill-after-appends", "3"])
    assert killed.returncode == -signal.SIGKILL

    # A power cut that also tore the last record: partial line, no
    # newline, bad frame.
    journal = campaign_dir / "journal.jsonl"
    with open(journal, "ab") as sink:
        sink.write(b'00bad000 {"kind":"cell","key":"half-writ')

    resumed = _run(campaign_dir)
    assert resumed.returncode == 0, resumed.stderr
    assert "torn journal tail was truncated" in resumed.stdout
    assert _artifact_bytes(campaign_dir) == cold


def test_repeated_kills_then_resume(cold, tmp_path):
    """Crashing the resume itself must also be survivable."""
    campaign_dir = tmp_path / "double"
    first = _run(campaign_dir, ["--kill-after-appends", "2"])
    assert first.returncode == -signal.SIGKILL
    second = _run(campaign_dir, ["--kill-after-appends", "2"])
    assert second.returncode == -signal.SIGKILL
    final = _run(campaign_dir)
    assert final.returncode == 0, final.stderr
    assert _artifact_bytes(campaign_dir) == cold


def test_status_between_kill_and_resume_reports_progress(tmp_path):
    campaign_dir = tmp_path / "inspect"
    killed = _run(campaign_dir, ["--kill-after-appends", "2"])
    assert killed.returncode == -signal.SIGKILL
    status = _cli(["status", "--campaign", str(campaign_dir)], check=True)
    assert "planned cells:   3" in status.stdout
    assert "completed:       1" in status.stdout
    assert "complete:        no" in status.stdout


def test_journal_truncated_at_any_byte_offset_resumes_identically(
        cold, tmp_path):
    """Stronger than record-boundary kills: chop the journal at
    arbitrary byte offsets (mid-record, mid-CRC, anywhere) and resume.
    Every prefix must recover to the cold bytes."""
    reference_dir = tmp_path / "bytes-ref"
    result = _run(reference_dir)
    assert result.returncode == 0, result.stderr
    journal_bytes = (reference_dir / "journal.jsonl").read_bytes()

    rng = random.Random(0xBADC0DE)
    offsets = sorted(rng.sample(range(1, len(journal_bytes)), 5))
    for offset in offsets:
        campaign_dir = tmp_path / f"chop-{offset}"
        store = CampaignStore(str(campaign_dir))
        # Rehost the blobs journaled before the chop so the truncated
        # journal's references resolve (a real crash leaves both).
        source = CampaignStore(str(reference_dir))
        for address in source.blob_addresses():
            store.put_blob(source.read_blob(address))
        with open(store.journal_path, "wb") as sink:
            sink.write(journal_bytes[:offset])
        summary = CampaignRunner(store, SPEC).run()
        assert summary.memoized + summary.executed == 3
        assert _artifact_bytes(campaign_dir) == cold, f"offset {offset}"
