"""Event-loop profiling hooks, the O(1) pending counter, the run_until
budget fix, and the determinism regression for the telemetry tentpole:
instrumentation must never change simulation results."""

import pytest

from repro import obs
from repro.experiments.common import Workbench
from repro.netsim.events import EventLoop
from repro.obs.profiler import callback_site


# ----------------------------------------------------------- pending counter


def test_pending_tracks_schedule_cancel_and_pop():
    loop = EventLoop()
    assert loop.pending() == 0
    e1 = loop.schedule(1.0, lambda: None)
    e2 = loop.schedule(2.0, lambda: None)
    loop.schedule(3.0, lambda: None)
    assert loop.pending() == 3
    e1.cancel()
    assert loop.pending() == 2
    e1.cancel()  # idempotent: no double decrement
    assert loop.pending() == 2
    loop.step()  # fires e2
    assert loop.pending() == 1
    e2.cancel()  # cancelling an already-fired event must not decrement
    assert loop.pending() == 1
    loop.run()
    assert loop.pending() == 0


def test_queue_depth_high_water():
    loop = EventLoop()
    for delay in range(5):
        loop.schedule(float(delay + 1), lambda: None)
    loop.run()
    assert loop.queue_depth_high_water == 5
    assert loop.pending() == 0


# -------------------------------------------------------- run_until budget


def test_run_until_budget_ignores_cancelled_purges():
    """Cancelled-entry purges must not consume the max_events budget:
    with 50 cancelled entries ahead of 3 live events, a budget of 3
    suffices (it did not before the fix)."""
    loop = EventLoop()
    cancelled = [loop.schedule(0.5, lambda: None) for _ in range(50)]
    for event in cancelled:
        event.cancel()
    fired = []
    for delay in (1.0, 2.0, 3.0):
        loop.schedule(delay, lambda d=delay: fired.append(d))
    loop.run_until(5.0, max_events=3)
    assert fired == [1.0, 2.0, 3.0]
    assert loop.now == 5.0


def test_run_until_budget_still_guards_runaways():
    loop = EventLoop()

    def forever():
        loop.schedule(0.001, forever)

    loop.schedule(0.0, forever)
    with pytest.raises(RuntimeError):
        loop.run_until(10.0, max_events=100)


def test_run_budget_counts_only_fired():
    loop = EventLoop()
    fired = []
    for delay in (1.0, 2.0):
        loop.schedule(delay, lambda d=delay: fired.append(d))
    loop.run(max_events=2)  # exactly enough: drains without raising
    assert fired == [1.0, 2.0]


# ------------------------------------------------------------- profiler


def test_callback_site_names():
    class Widget:
        def tick(self):
            pass

    widget = Widget()
    assert callback_site(widget.tick) == "Widget.tick"
    site = callback_site(lambda: None)
    assert "<lambda>" in site and ":" in site


def test_profiler_attributes_all_fired_events():
    with obs.session() as telemetry:
        loop = EventLoop()

        class Ticker:
            def __init__(self):
                self.count = 0

            def tick(self):
                self.count += 1
                if self.count < 5:
                    loop.schedule(1.0, self.tick)

        ticker = Ticker()
        loop.schedule(0.0, ticker.tick)
        loop.schedule(2.5, lambda: None)
        loop.run()

        profiler = telemetry.profiler
        assert profiler.events_profiled == loop.events_processed == 6
        assert profiler.attributed_fraction(loop.events_processed) == 1.0
        sites = dict((site, count) for site, count, _ in profiler.table())
        assert sites["Ticker.tick"] == 5
        assert profiler.queue_depth_high_water >= 2
        assert all(wall >= 0.0 for _, _, wall in profiler.table())


def test_profiler_on_event_tap_sees_sim_time_and_site():
    with obs.session() as telemetry:
        seen = []
        telemetry.profiler.on_event = lambda now, site: seen.append((now, site))
        loop = EventLoop()
        loop.schedule(1.5, lambda: None)
        loop.run()
    assert len(seen) == 1
    assert seen[0][0] == 1.5
    assert "<lambda>" in seen[0][1]


def test_loop_without_telemetry_has_no_profiler():
    assert EventLoop().profiler is None


# ---------------------------------------------------------- determinism


def _tiny_workbench(**kwargs) -> Workbench:
    return Workbench(seed=77, unlimited_sessions=4,
                     sweep_sessions_per_limit=1,
                     sweep_limits_mbps=(2.0, 100.0), **kwargs)


def test_qoe_identical_with_and_without_telemetry():
    """The tentpole's hard guarantee: metrics + tracing + profiling on
    must yield bit-identical QoE to the default (telemetry off)."""
    obs.deactivate()
    baseline = _tiny_workbench().unlimited()

    with obs.session(metrics=True, tracing=True, profiling=True) as telemetry:
        instrumented = _tiny_workbench(metrics=True, tracing=True).unlimited()
        # The instrumented run actually recorded things...
        assert telemetry.metrics.get("study_sessions_total", limit="100") is not None
        assert telemetry.tracer.find("session")
        assert telemetry.profiler.events_profiled > 0

    # ...and still matches the baseline exactly.
    assert baseline.sessions == instrumented.sessions
    assert baseline.avatar_bytes == instrumented.avatar_bytes
    assert baseline.down_bytes == instrumented.down_bytes


def test_session_spans_reconstruct_lifecycle():
    with obs.session(metrics=True, tracing=True) as telemetry:
        _tiny_workbench(metrics=True, tracing=True).unlimited()
        tracer = telemetry.tracer
        sessions = tracer.find("session")
        assert sessions
        span = sessions[0]
        children = tracer.children_of(span)
        names = [child.name for child in children]
        assert "session.join" in names
        assert "session.teardown" in names
        # Children tile [0, end] in sim time without gaps or overlaps.
        ordered = sorted(children, key=lambda s: s.sim_start)
        assert ordered[0].sim_start == 0.0
        for before, after in zip(ordered, ordered[1:]):
            assert after.sim_start == pytest.approx(before.sim_end)
        assert ordered[-1].sim_end == pytest.approx(span.sim_end)


def test_metrics_cover_required_series():
    """Acceptance: link-queue, HTTP, stall, and study series appear with
    labels after an instrumented run."""
    with obs.session(metrics=True, tracing=False) as telemetry:
        _tiny_workbench(metrics=True).unlimited()
        names = {family.name for family in telemetry.metrics.families()}
    assert "netsim_link_queue_delay_seconds" in names
    assert "http_requests_total" in names
    assert "http_responses_total" in names
    assert "session_join_seconds" in names
    assert "study_sessions_total" in names
    assert "chat_messages_total" in names


def test_crawl_discovery_metrics():
    from repro.crawler.client import CrawlHarness
    from repro.crawler.deep import DeepCrawler

    with obs.session(metrics=True, tracing=False) as telemetry:
        harness = CrawlHarness(seed=5, mean_concurrent=300)
        crawler = DeepCrawler(harness.clients[0])
        crawler.start()
        harness.run_until(300.0)
        discovered = telemetry.metrics.get(
            "crawl_broadcasts_discovered_total", identity="crawler-0"
        )
        queried = telemetry.metrics.get(
            "crawl_areas_queried_total", identity="crawler-0"
        )
    assert queried is not None and queried.value == len(crawler.result.areas)
    assert discovered is not None
    assert discovered.value == len(crawler.result.discovered)
