"""Tests for broadcast sampling, calibrated to Section 4 statistics."""

import random

import pytest

from repro.service.broadcast import (
    BROADCAST_ID_LENGTH,
    CHAT_FULL_VIEWERS,
    Broadcast,
    BroadcastState,
    make_broadcast_id,
    sample_broadcast,
    sample_duration_s,
    sample_mean_viewers,
)
from repro.service.geo import POPULATION_CENTERS, GeoPoint


def make(rng=None, start=1000.0, **overrides):
    rng = rng or random.Random(1)
    broadcast = sample_broadcast(
        rng, start_time=start, location=GeoPoint(40.7, -74.0),
        center=POPULATION_CENTERS[0],
    )
    for key, value in overrides.items():
        setattr(broadcast, key, value)
    return broadcast


def test_broadcast_id_shape():
    rng = random.Random(3)
    ids = {make_broadcast_id(rng) for _ in range(100)}
    assert len(ids) == 100
    assert all(len(i) == BROADCAST_ID_LENGTH for i in ids)
    assert all(c.isalnum() for i in ids for c in i)


def test_state_transitions():
    b = make(start=100.0, duration_s=60.0)
    assert b.state_at(50.0) == BroadcastState.SCHEDULED
    assert b.state_at(100.0) == BroadcastState.LIVE
    assert b.state_at(159.9) == BroadcastState.LIVE
    assert b.state_at(160.0) == BroadcastState.ENDED
    assert b.end_time == 160.0


class TestPopulationStatistics:
    """The paper's aggregate numbers, reproduced by the samplers."""

    def test_zero_viewer_fraction_above_10_percent(self):
        rng = random.Random(4)
        samples = [sample_mean_viewers(rng) for _ in range(20_000)]
        zero_share = sum(1 for s in samples if s == 0) / len(samples)
        assert 0.10 < zero_share < 0.14

    def test_over_90_percent_below_20_viewers(self):
        rng = random.Random(5)
        samples = [sample_mean_viewers(rng) for _ in range(20_000)]
        below20 = sum(1 for s in samples if s < 20) / len(samples)
        assert below20 > 0.90

    def test_some_broadcasts_attract_thousands(self):
        rng = random.Random(6)
        samples = [sample_mean_viewers(rng) for _ in range(20_000)]
        assert max(samples) > 1000

    def test_durations_mostly_1_to_10_minutes(self):
        rng = random.Random(7)
        samples = [sample_duration_s(rng, True) for _ in range(10_000)]
        in_band = sum(1 for s in samples if 60 <= s <= 600) / len(samples)
        assert in_band > 0.5

    def test_roughly_half_under_4_minutes(self):
        rng = random.Random(8)
        viewers = [sample_duration_s(rng, True) for _ in range(9_000)]
        no_viewers = [sample_duration_s(rng, False) for _ in range(1_100)]
        combined = viewers + no_viewers
        under4 = sum(1 for s in combined if s < 240) / len(combined)
        assert 0.4 < under4 < 0.62

    def test_duration_tail_beyond_a_day(self):
        rng = random.Random(9)
        samples = [sample_duration_s(rng, True) for _ in range(50_000)]
        assert max(samples) > 86_400

    def test_unviewed_broadcasts_much_shorter(self):
        rng = random.Random(10)
        viewed = [sample_duration_s(rng, True) for _ in range(5_000)]
        unviewed = [sample_duration_s(rng, False) for _ in range(5_000)]
        assert sum(unviewed) / len(unviewed) < 0.4 * (sum(viewed) / len(viewed))

    def test_unviewed_mostly_not_replayable(self):
        rng = random.Random(11)
        unviewed = []
        while len(unviewed) < 1000:
            b = sample_broadcast(rng, 0.0, GeoPoint(0, 0), POPULATION_CENTERS[0])
            if not b.has_viewers:
                unviewed.append(b)
        replayable = sum(1 for b in unviewed if b.available_for_replay)
        assert replayable / len(unviewed) < 0.2


class TestViewerCurve:
    def test_zero_outside_lifetime(self):
        b = make(start=100.0, duration_s=600.0, mean_viewers=50.0)
        assert b.viewers_at(99.0) == 0.0
        assert b.viewers_at(701.0) == 0.0

    def test_integrates_to_mean(self):
        b = make(start=0.0, duration_s=600.0, mean_viewers=40.0)
        samples = [b.viewers_at(t) for t in range(0, 600, 2)]
        assert sum(samples) / len(samples) == pytest.approx(40.0, rel=0.05)

    def test_peak_early_then_decay(self):
        b = make(start=0.0, duration_s=1000.0, mean_viewers=100.0)
        early = b.viewers_at(150.0)   # at the peak
        late = b.viewers_at(900.0)
        assert early > late

    def test_zero_viewer_broadcast_flat_zero(self):
        b = make(start=0.0, duration_s=600.0, mean_viewers=0.0)
        assert b.viewers_at(300.0) == 0.0

    def test_chat_full(self):
        popular = make(start=0.0, duration_s=1000.0, mean_viewers=5 * CHAT_FULL_VIEWERS)
        quiet = make(start=0.0, duration_s=1000.0, mean_viewers=2.0)
        assert popular.chat_is_full_at(150.0)
        assert not quiet.chat_is_full_at(150.0)


def test_description_fields():
    b = make(start=0.0, duration_s=600.0, mean_viewers=10.0)
    desc = b.description(100.0)
    assert desc["id"] == b.broadcast_id
    assert desc["state"] == "RUNNING"
    assert isinstance(desc["n_watching"], int)
    assert desc["available_for_replay"] == b.available_for_replay
    assert b.description(700.0)["state"] == "ENDED"


def test_local_start_hour_uses_timezone():
    b = make(start=0.0)
    assert b.local_start_hour() == pytest.approx(
        (0.0 / 3600.0 + b.center.utc_offset_hours) % 24
    )


def test_i_only_broadcasts_get_hot_bitrates():
    rng = random.Random(12)
    hot, normal = [], []
    for _ in range(2000):
        b = sample_broadcast(rng, 0.0, GeoPoint(0, 0), POPULATION_CENTERS[0])
        (hot if b.gop.kind == "I" else normal).append(b.target_bitrate_bps)
    assert hot, "expected some I-only broadcasts in 2000 draws"
    assert min(hot) > 400_000
    assert sum(normal) / len(normal) < 450_000
