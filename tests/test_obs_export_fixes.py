"""Regression tests for the exposition-format and silent-data-loss fixes:
label-value escaping, the missing HELP line, surfaced tracer/histogram
truncation, and the attributed_fraction denominator bug."""

from repro import obs
from repro.obs.export import (
    _escape_label_value,
    render_prometheus,
    render_summary,
)
from repro.obs.metrics import Histogram
from repro.obs.profiler import EventLoopProfiler, SiteStats


# ------------------------------------------------------------- escaping


def test_escape_label_value():
    assert _escape_label_value('plain') == 'plain'
    assert _escape_label_value('a"b') == 'a\\"b'
    assert _escape_label_value('a\\b') == 'a\\\\b'
    assert _escape_label_value('a\nb') == 'a\\nb'
    # Backslash first, so escaped quotes do not get double-escaped.
    assert _escape_label_value('\\"') == '\\\\\\"'


def test_metric_label_values_escaped_in_exposition():
    with obs.session(metrics=True, tracing=False, profiling=False) as telemetry:
        telemetry.metrics.counter(
            "paths_total", "help", path='seg"0\\1.ts',
        ).inc()
        dump = render_prometheus(telemetry)
    assert 'paths_total{path="seg\\"0\\\\1.ts"} 1' in dump


def test_profiler_site_labels_escaped():
    with obs.session(metrics=False, tracing=False, profiling=True) as telemetry:
        stats = SiteStats()
        stats.count = 3
        telemetry.profiler.sites['mod:<lambda>"x\\y'] = stats
        dump = render_prometheus(telemetry)
    assert ('eventloop_callbacks_total'
            '{site="mod:<lambda>\\"x\\\\y"} 3') in dump


def test_queue_depth_high_water_has_help_line():
    with obs.session(metrics=False, tracing=False, profiling=True) as telemetry:
        telemetry.profiler.sites["mod:tick"] = SiteStats()
        telemetry.profiler.note_queue_depth(7)
        dump = render_prometheus(telemetry)
    assert "# HELP eventloop_queue_depth_high_water " in dump
    assert "# TYPE eventloop_queue_depth_high_water gauge" in dump
    assert "eventloop_queue_depth_high_water 7" in dump


# ------------------------------------------------------ silent data loss


def test_tracer_dropped_spans_surfaced():
    with obs.session(metrics=False, tracing=True, profiling=False) as telemetry:
        tracer = telemetry.tracer
        tracer._max_spans = 2
        for index in range(5):
            span = tracer.begin("busy", float(index))
            tracer.end(span, float(index) + 0.5)
        assert tracer.dropped == 3
        dump = render_prometheus(telemetry)
        summary = render_summary(telemetry)
    assert "tracer_dropped_spans_total 3" in dump
    assert "spans dropped past max_spans: 3" in summary


def test_histogram_value_cap_overflow_surfaced():
    with obs.session(metrics=True, tracing=False, profiling=False) as telemetry:
        hist = telemetry.metrics.histogram("lat_seconds", "help", kind="x")
        hist._value_cap = 4
        for index in range(6):
            hist.observe(float(index))
        assert not hist.exact
        assert hist.values_dropped == 6
        dump = render_prometheus(telemetry)
        summary = render_summary(telemetry)
    assert ('telemetry_histogram_values_dropped_total'
            '{metric="lat_seconds",kind="x"} 6') in dump
    assert "(6 dropped)" in summary


def test_exact_histogram_reports_no_drops():
    hist = Histogram()
    for index in range(10):
        hist.observe(float(index))
    assert hist.exact
    assert hist.values_dropped == 0


# ------------------------------------------------- attributed_fraction


def test_attributed_fraction_zero_denominator_with_profiled_events():
    profiler = EventLoopProfiler()
    profiler.events_profiled = 4
    assert profiler.attributed_fraction(0) == 0.0
    assert profiler.attributed_fraction(-1) == 0.0


def test_attributed_fraction_vacuous_and_normal_cases():
    profiler = EventLoopProfiler()
    assert profiler.attributed_fraction(0) == 1.0  # 0/0: vacuously complete
    profiler.events_profiled = 3
    assert profiler.attributed_fraction(6) == 0.5
