"""Unit tests for the discrete-event loop."""

import pytest

from repro.netsim.events import EventLoop


def test_time_starts_at_zero():
    assert EventLoop().now == 0.0


def test_schedule_and_run_orders_by_time():
    loop = EventLoop()
    fired = []
    loop.schedule(2.0, lambda: fired.append("b"))
    loop.schedule(1.0, lambda: fired.append("a"))
    loop.schedule(3.0, lambda: fired.append("c"))
    loop.run()
    assert fired == ["a", "b", "c"]
    assert loop.now == 3.0


def test_same_time_fires_in_scheduling_order():
    loop = EventLoop()
    fired = []
    for tag in range(5):
        loop.schedule(1.0, lambda t=tag: fired.append(t))
    loop.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        EventLoop().schedule(-0.1, lambda: None)


def test_cancel_prevents_firing():
    loop = EventLoop()
    fired = []
    event = loop.schedule(1.0, lambda: fired.append(1))
    event.cancel()
    loop.run()
    assert fired == []


def test_run_until_stops_and_sets_time():
    loop = EventLoop()
    fired = []
    loop.schedule(1.0, lambda: fired.append(1))
    loop.schedule(5.0, lambda: fired.append(5))
    loop.run_until(2.0)
    assert fired == [1]
    assert loop.now == 2.0
    loop.run()
    assert fired == [1, 5]


def test_run_until_rejects_past():
    loop = EventLoop()
    loop.schedule(1.0, lambda: None)
    loop.run()
    with pytest.raises(ValueError):
        loop.run_until(0.5)


def test_events_can_schedule_events():
    loop = EventLoop()
    fired = []

    def chain(n):
        fired.append(n)
        if n < 3:
            loop.schedule(1.0, lambda: chain(n + 1))

    loop.schedule(0.0, lambda: chain(0))
    loop.run()
    assert fired == [0, 1, 2, 3]
    assert loop.now == 3.0


def test_runaway_guard():
    loop = EventLoop()

    def forever():
        loop.schedule(0.001, forever)

    loop.schedule(0.0, forever)
    with pytest.raises(RuntimeError):
        loop.run(max_events=100)


def test_pending_counts_noncancelled():
    loop = EventLoop()
    e1 = loop.schedule(1.0, lambda: None)
    loop.schedule(2.0, lambda: None)
    e1.cancel()
    assert loop.pending() == 1


def test_schedule_at_absolute_time():
    loop = EventLoop()
    fired = []
    loop.schedule_at(2.5, lambda: fired.append(loop.now))
    loop.run()
    assert fired == [2.5]
