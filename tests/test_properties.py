"""Property-based tests on core invariants (hypothesis).

These cover the data structures everything else leans on: the event
loop, conservation through the network stack, playout-buffer accounting,
and the binary containers.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.media.frames import AudioFrame, EncodedFrame
from repro.netsim.connection import Connection, Message
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.player.buffer import PlayoutBuffer
from repro.protocols import mpegts, rtmp
from repro.protocols.hls import MediaPlaylist, PlaylistEntry
from repro.protocols.websocket import decode_frames, encode_frame
from repro.util.units import MBPS


# ------------------------------------------------------------- event loop

@given(st.lists(st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
                min_size=1, max_size=40))
def test_event_loop_fires_in_time_order(delays):
    loop = EventLoop()
    fired = []
    for delay in delays:
        loop.schedule(delay, lambda d=delay: fired.append(loop.now))
    loop.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(st.lists(st.floats(min_value=0.01, max_value=50.0, allow_nan=False),
                min_size=2, max_size=30),
       st.data())
def test_event_loop_cancellation_preserves_others(delays, data):
    loop = EventLoop()
    fired = []
    events = [loop.schedule(d, lambda d=d: fired.append(d)) for d in delays]
    to_cancel = data.draw(st.sets(st.integers(0, len(events) - 1),
                                  max_size=len(events) - 1))
    for index in to_cancel:
        events[index].cancel()
    loop.run()
    expected = sorted(d for i, d in enumerate(delays) if i not in to_cancel)
    assert sorted(fired) == expected


# ----------------------------------------------------------- conservation

@given(st.lists(st.integers(min_value=1, max_value=50_000), min_size=1,
                max_size=15))
@settings(max_examples=30, deadline=None)
def test_connection_conserves_bytes(sizes):
    loop = EventLoop()
    net = Network(loop)
    a, b = net.host("a"), net.host("b")
    net.duplex(a, b, rate_bps=20 * MBPS, delay_s=0.005)
    fwd, rev = net.duplex_paths("a", "b")
    received = []
    conn = Connection(loop, fwd, rev,
                      on_message=lambda m, t: received.append(m.nbytes))
    for size in sizes:
        conn.send(Message(payload=None, nbytes=size))
    loop.run()
    assert received == sizes
    assert conn.bytes_delivered == sum(sizes)
    assert conn.in_flight_bytes == 0
    assert conn.backlog_bytes == 0


# --------------------------------------------------------- playout buffer

@given(st.lists(st.tuples(st.floats(0.0, 50.0), st.floats(0.01, 10.0)),
                min_size=1, max_size=25),
       st.floats(0.5, 5.0), st.floats(0.2, 3.0))
@settings(max_examples=60, deadline=None)
def test_buffer_accounting_always_sums_to_watch_time(arrivals, start_thr, rebuf_thr):
    """join + playback + stalls == watch duration, whatever arrives."""
    loop = EventLoop()
    buf = PlayoutBuffer(loop, start_threshold_s=start_thr,
                        rebuffer_threshold_s=rebuf_thr, broadcast_start=0.0)
    buf.set_play_origin(0.0)
    frontier = 0.0
    for at, growth in sorted(arrivals):
        frontier += growth
        loop.schedule_at(max(at, loop.now if False else at),
                         lambda f=frontier: buf.on_media(f))
    watch = 60.0
    loop.run_until(watch)
    report = buf.finalize(watch)
    total = report.join_time_s + report.playback_s + report.total_stall_s
    assert total == pytest.approx(watch, abs=1e-6)
    assert all(s.duration >= 0 for s in report.stalls)
    assert report.playback_s >= 0
    assert 0 <= report.join_time_s <= watch


# ------------------------------------------------------------- containers

_frame_strategy = st.builds(
    EncodedFrame,
    index=st.integers(0, 1000),
    pts=st.floats(0.0, 500.0, allow_nan=False),
    dts=st.floats(0.0, 500.0, allow_nan=False),
    frame_type=st.sampled_from(["I", "P", "B"]),
    nbytes=st.integers(1, 20_000),
    qp=st.floats(10.0, 51.0, allow_nan=False),
    complexity=st.just(1.0),
    ntp_timestamp=st.one_of(st.none(), st.floats(0.0, 1e6, allow_nan=False)),
)


@given(st.lists(_frame_strategy, min_size=1, max_size=8))
@settings(max_examples=40, deadline=None)
def test_mpegts_roundtrip_property(frames):
    result = mpegts.demux_segment(mpegts.mux_segment(frames))
    assert len(result.video_frames) == len(frames)
    assert result.continuity_errors == 0
    got = sorted((f.nbytes, f.frame_type) for f in result.video_frames)
    want = sorted((f.nbytes, f.frame_type) for f in frames)
    assert got == want


@given(st.binary(min_size=1, max_size=30_000),
       st.integers(128, 8192))
@settings(max_examples=40, deadline=None)
def test_rtmp_chunking_roundtrip_property(payload, chunk_size):
    message = rtmp.RtmpMessage(rtmp.RtmpMessageType.VIDEO, 42, payload)
    parser = rtmp.ChunkParser(chunk_size=chunk_size)
    out = parser.feed(rtmp.chunk_message(message, chunk_size=chunk_size))
    assert len(out) == 1
    assert out[0].payload == payload
    assert parser.pending_bytes == 0


@given(st.binary(max_size=100_000),
       st.one_of(st.none(), st.binary(min_size=4, max_size=4)))
@settings(max_examples=40, deadline=None)
def test_websocket_roundtrip_property(payload, mask):
    frames, rest = decode_frames(encode_frame(payload, mask_key=mask))
    assert rest == b""
    assert len(frames) == 1
    assert frames[0].payload == payload


@given(st.lists(st.tuples(st.floats(0.5, 10.0), st.integers(0, 10_000)),
                min_size=0, max_size=10),
       st.integers(0, 5000))
@settings(max_examples=40, deadline=None)
def test_m3u8_roundtrip_property(entries, media_sequence):
    playlist = MediaPlaylist(
        target_duration_s=6.0,
        media_sequence=media_sequence,
        entries=[
            PlaylistEntry(uri=f"seg{i}.ts", duration_s=round(d, 3),
                          sequence=media_sequence + i)
            for i, (d, _) in enumerate(entries)
        ],
    )
    parsed = MediaPlaylist.parse(playlist.render())
    assert len(parsed.entries) == len(playlist.entries)
    assert parsed.media_sequence == media_sequence
    for got, want in zip(parsed.entries, playlist.entries):
        assert got.uri == want.uri
        assert got.duration_s == pytest.approx(want.duration_s, abs=1e-3)


# ----------------------------------------------------------- rate control

# -------------------------------------------------- seed-sweep invariants

_SWEEP_SEEDS = tuple(range(100, 110))  # 10 seeds
_SWEEP_WATCH_S = 20.0


def _session_invariants(seed, faults):
    """Run one short session and assert the cross-cutting invariants the
    fault subsystem must never break, pristine or faulted."""
    from repro.automation.devices import GALAXY_S4
    from repro.core.session import API_LOCATION, SessionSetup, ViewingSession
    from repro.core.testbed import VIEWER_LOCATION, path_delay_s
    from repro.service.selection import DeliveryProtocol

    from test_core_session import make_broadcast

    protocol = DeliveryProtocol.RTMP if seed % 2 == 0 else DeliveryProtocol.HLS
    setup = SessionSetup(
        broadcast=make_broadcast(seed=seed),
        age_at_join=600.0,
        protocol=protocol,
        device=GALAXY_S4,
        watch_seconds=_SWEEP_WATCH_S,
        seed=seed,
        faults=faults,
    )
    session = ViewingSession(setup)
    # Probe the playout buffer's raw frontier-vs-playhead gap during the
    # run; the clamped public accessor would hide a negative level.
    raw_levels = []

    def probe():
        player = session._player
        if player is not None and player.buffer.buffered_until is not None:
            buf = player.buffer
            raw_levels.append(
                buf.buffered_until - buf._playhead(session.loop.now)
            )
        session.loop.schedule(0.25, probe)

    session.loop.schedule(0.25, probe)
    qoe = session.run().qoe

    # 1. Total stall time never exceeds the session duration.
    assert 0.0 <= qoe.total_stall_s <= _SWEEP_WATCH_S + 1e-9
    assert qoe.consistent()
    # 2. Join time respects the propagation floor: two API round trips
    #    must complete before any media flows (unless the API gave up,
    #    in which case the session never starts and join == watch).
    floor = 4.0 * path_delay_s(API_LOCATION, VIEWER_LOCATION)
    assert qoe.join_time_s >= floor - 1e-9
    # 3. The playout buffer level never goes negative.
    assert all(level >= -1e-9 for level in raw_levels)
    # 4. Retry counts are bounded by the governing policy.
    if faults is None:
        assert qoe.api_retries == 0
        assert qoe.fault_events == []
        assert qoe.disconnects == qoe.reconnects == 0
    else:
        per_call = faults.retry.max_attempts
        assert qoe.api_retries <= 3 * per_call  # three API calls/session
        player = session._player
        assert player.buffer is not None
        reconnect_attempts = getattr(player, "reconnect_attempts", 0)
        assert reconnect_attempts <= (qoe.disconnects + 1) * (per_call + 1)
    return qoe


@pytest.mark.parametrize("seed", _SWEEP_SEEDS)
def test_session_invariants_across_seeds_pristine(seed):
    _session_invariants(seed, faults=None)


@pytest.mark.parametrize("seed", _SWEEP_SEEDS)
def test_session_invariants_across_seeds_faulted(seed):
    from repro.faults import FaultPlan

    plan = FaultPlan.parse(
        "loss=0.02,jitter=0.005,flap=0.01:0.5:2,ingest=0.03:1:2,api5xx=0.1"
    )
    qoe = _session_invariants(seed, faults=plan)
    # The plan must actually be live: across the sweep, *some* seed shows
    # injected fault activity (checked per-seed via the counters' types).
    assert qoe.api_retries >= 0 and qoe.transport_retries >= 0


def test_faulted_sweep_injects_faults_somewhere():
    """At least one seed in the sweep must exhibit each client-visible
    fault effect, or the plan (and the invariants above) test nothing."""
    from repro.faults import FaultPlan

    plan = FaultPlan.parse("loss=0.02,ingest=0.05:1:2,api5xx=0.2")
    saw_retry = saw_disconnect = saw_event = False
    for seed in _SWEEP_SEEDS:
        qoe = _session_invariants(seed, faults=plan)
        saw_retry = saw_retry or qoe.api_retries > 0
        saw_disconnect = saw_disconnect or qoe.disconnects > 0
        saw_event = saw_event or bool(qoe.fault_events)
    assert saw_retry
    assert saw_disconnect
    assert saw_event


# ----------------------------------------------------------- rate control

@given(st.floats(100e3, 2e6), st.floats(0.1, 3.0))
@settings(max_examples=40, deadline=None)
def test_rate_controller_tracks_any_target(target_bps, complexity):
    from repro.media.rate_control import RateController

    rc = RateController(target_bps=target_bps, fps=30.0)
    total_bits = 0.0
    frames = 2400
    for i in range(frames):
        ftype = "I" if i % 36 == 0 else ("B" if i % 2 == 1 else "P")
        total_bits += rc.encode_frame(ftype, complexity)
    achieved = total_bits / (frames / 30.0)
    # Unless QP saturates at a bound, the controller hits the target.
    from repro.media.rate_control import QP_MAX, QP_MIN

    if QP_MIN + 0.5 < rc.qp < QP_MAX - 0.5:
        assert achieved == pytest.approx(target_bps, rel=0.25)
