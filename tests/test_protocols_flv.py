"""Tests for the FLV muxer/demuxer."""

import random

import pytest

from repro.media.audio import AacEncoderModel
from repro.media.content import CONTENT_PROFILES, ContentProcess
from repro.media.encoder import EncoderSettings, VideoEncoder
from repro.media.frames import AudioFrame, EncodedFrame
from repro.protocols import flv


def vframe(**overrides):
    defaults = dict(index=0, pts=0.5, dts=0.5, frame_type="I", nbytes=400,
                    qp=30.0, complexity=1.0)
    defaults.update(overrides)
    return EncodedFrame(**defaults)


def test_file_header_shape():
    header = flv.file_header()
    assert header[:3] == b"FLV"
    assert header[3] == 1
    assert header[4] == 0x05
    assert len(header) == 13  # 9 header + 4 PreviousTagSize0


def test_video_tag_roundtrip():
    frame = vframe()
    tags = flv.demux(flv.file_header() + flv.video_tag(frame))
    assert len(tags) == 1
    tag = tags[0]
    assert tag.tag_type == flv.TAG_VIDEO
    assert tag.timestamp_ms == 500
    assert tag.frame.frame_type == "I"
    assert tag.frame.nbytes == 400


def test_audio_tag_roundtrip():
    frame = AudioFrame(index=0, pts=1.25, nbytes=90)
    tags = flv.demux(flv.file_header() + flv.audio_tag(frame))
    assert tags[0].tag_type == flv.TAG_AUDIO
    assert tags[0].timestamp_ms == 1250
    assert tags[0].frame.nbytes == 90


def test_mux_interleaves_by_time():
    video = [vframe(pts=0.0, dts=0.0), vframe(pts=1.0, dts=1.0, frame_type="P")]
    audio = [AudioFrame(0, 0.5, 60)]
    tags = flv.demux(flv.mux(video, audio))
    assert [t.tag_type for t in tags] == [flv.TAG_VIDEO, flv.TAG_AUDIO, flv.TAG_VIDEO]


def test_mux_without_header():
    data = flv.mux([vframe()], include_header=False)
    tags = flv.demux(data, has_header=False)
    assert len(tags) == 1


def test_bad_signature_rejected():
    with pytest.raises(ValueError):
        flv.demux(b"XXX" + bytes(20))


def test_truncated_tag_rejected():
    data = flv.file_header() + flv.video_tag(vframe())
    with pytest.raises(ValueError):
        flv.demux(data[:-3])


def test_long_timestamp_uses_extension_byte():
    frame = vframe(pts=20000.0, dts=20000.0)  # 20,000,000 ms > 24 bits
    tag = flv.demux(flv.file_header() + flv.video_tag(frame))[0]
    assert tag.timestamp_ms == 20_000_000


def test_full_broadcast_roundtrip():
    settings = EncoderSettings(target_bps=300_000.0)
    content = ContentProcess(CONTENT_PROFILES["static_talker"], random.Random(1))
    video = VideoEncoder(settings, content, random.Random(2)).encode_all(15.0)
    audio = AacEncoderModel(random.Random(3), nominal_bps=32_000.0).encode_all(15.0)
    tags = flv.demux(flv.mux(video, audio))
    assert len(tags) == len(video) + len(audio)
    video_out = [t.frame for t in tags if t.tag_type == flv.TAG_VIDEO]
    assert sorted(f.nbytes for f in video_out) == sorted(f.nbytes for f in video)
    # NTP timestamps survive the container round trip.
    assert any(f.ntp_timestamp is not None for f in video_out)
