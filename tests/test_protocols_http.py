"""Tests for HTTP over the simulated network."""

import pytest

from repro.netsim.duplex import DuplexStream
from repro.netsim.events import EventLoop
from repro.netsim.topology import Network
from repro.protocols.http import (
    REQUEST_HEADER_BYTES,
    RESPONSE_HEADER_BYTES,
    HttpClient,
    HttpRequest,
    HttpResponse,
    HttpServer,
    HttpStatus,
)
from repro.util.units import MBPS


def http_pair(handler, rate_bps=10 * MBPS, delay_s=0.01):
    loop = EventLoop()
    net = Network(loop)
    client_host, server_host = net.host("client"), net.host("server")
    net.duplex(client_host, server_host, rate_bps=rate_bps, delay_s=delay_s)
    stream = DuplexStream(loop, net, "client", "server")
    server = HttpServer(loop, stream, handler, client_label="client")
    client = HttpClient(loop, stream)
    return loop, client, server


def test_request_sizes():
    req = HttpRequest("POST", "/api/v2/apiRequest", json_body={"cookie": "abc"})
    assert req.body_bytes == len('{"cookie":"abc"}')
    assert req.nbytes == REQUEST_HEADER_BYTES + req.body_bytes


def test_response_sizes():
    resp = HttpResponse(HttpStatus.OK, json_body={"ok": True})
    assert resp.nbytes == RESPONSE_HEADER_BYTES + len('{"ok":true}')
    raw = HttpResponse(HttpStatus.OK, data=b"x" * 500)
    assert raw.body_bytes == 500


def test_method_validation():
    with pytest.raises(ValueError):
        HttpRequest("PUT", "/x")


def test_round_trip_request_response():
    def handler(request, label):
        assert label == "client"
        return HttpResponse(HttpStatus.OK, json_body={"echo": request.path})

    loop, client, server = http_pair(handler)
    results = []
    client.request(
        HttpRequest("GET", "/hello"), lambda resp, t: results.append((resp, t))
    )
    loop.run()
    assert len(results) == 1
    resp, t = results[0]
    assert resp.status == HttpStatus.OK
    assert resp.json_body == {"echo": "/hello"}
    assert t > 0.02  # two propagation delays + processing
    assert server.requests_served == 1
    assert client.outstanding == 0


def test_multiple_outstanding_requests_matched_by_id():
    def handler(request, label):
        return HttpResponse(HttpStatus.OK, json_body={"path": request.path})

    loop, client, _ = http_pair(handler)
    got = {}
    for path in ("/a", "/b", "/c"):
        client.request(
            HttpRequest("GET", path),
            lambda resp, t, p=path: got.update({p: resp.json_body["path"]}),
        )
    loop.run()
    assert got == {"/a": "/a", "/b": "/b", "/c": "/c"}


def test_429_status_delivered():
    def handler(request, label):
        return HttpResponse(HttpStatus.TOO_MANY_REQUESTS, json_body={})

    loop, client, _ = http_pair(handler)
    statuses = []
    client.request(HttpRequest("POST", "/x", json_body={}), lambda r, t: statuses.append(r.status))
    loop.run()
    assert statuses == [HttpStatus.TOO_MANY_REQUESTS]


def test_large_response_takes_longer_on_slow_link():
    def handler(request, label):
        return HttpResponse(HttpStatus.OK, body_bytes=500_000)

    loop, client, _ = http_pair(handler, rate_bps=1 * MBPS)
    times = []
    client.request(HttpRequest("GET", "/big"), lambda r, t: times.append(t))
    loop.run()
    # 500 kB at 1 Mbps ≈ 4 s.
    assert times[0] > 3.0


def test_byte_fidelity_payload_rides_in_packets():
    segment = bytes(range(256)) * 10

    def handler(request, label):
        return HttpResponse(HttpStatus.OK, data=segment)

    loop, client, _ = http_pair(handler)
    payloads = []
    client.request(HttpRequest("GET", "/seg"), lambda r, t: payloads.append(r.data))
    loop.run()
    assert payloads == [segment]
