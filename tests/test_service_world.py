"""Tests for the living service world."""

import random

import pytest

from repro.service.geo import GeoRect
from repro.service.world import ServiceWorld, WorldParameters


def small_world(mean_concurrent=300, seed=1, **overrides):
    params = WorldParameters(mean_concurrent=mean_concurrent, **overrides)
    return ServiceWorld(params, seed=seed)


def test_params_validation():
    with pytest.raises(ValueError):
        WorldParameters(mean_concurrent=0)
    with pytest.raises(ValueError):
        WorldParameters(undisclosed_fraction=1.2)
    with pytest.raises(ValueError):
        WorldParameters(private_fraction=-0.1)


def test_warm_start_population():
    world = small_world()
    live = world.live_count()
    assert 0.4 * 300 < live < 2.5 * 300


def test_concurrency_roughly_stable_over_time():
    world = small_world(seed=2)
    counts = []
    for hour in range(1, 7):
        world.advance_to(hour * 3600.0)
        counts.append(world.live_count())
    assert all(50 < c < 900 for c in counts)


def test_cannot_move_backwards():
    world = small_world()
    world.advance_to(100.0)
    with pytest.raises(ValueError):
        world.advance_to(50.0)


def test_broadcasts_end_and_are_garbage_collected():
    world = small_world(seed=3, ended_grace_s=60.0)
    world.advance_to(600.0)
    some_live = world.live_broadcasts()[:20]
    victim = min(some_live, key=lambda b: b.end_time)
    world.advance_to(victim.end_time + 1.0)
    assert world.get_broadcast(victim.broadcast_id) is victim  # in grace
    world.advance_to(victim.end_time + 120.0)
    assert world.get_broadcast(victim.broadcast_id) is None  # forgotten


def test_query_map_filters_region():
    world = small_world(seed=4)
    europe = GeoRect(35.0, -10.0, 70.0, 40.0)
    result = world.query_map(europe)
    assert all(europe.contains(b.location) for b in result)


def test_query_map_cap_and_zoom_reveals_more():
    world = small_world(mean_concurrent=800, seed=5)
    whole = GeoRect.world()
    top_level = world.query_map(whole)
    assert len(top_level) <= world.params.map_response_cap
    # Zooming: union over quadrants finds at least as many as top level.
    seen = {b.broadcast_id for b in top_level}
    for quad in whole.quadrants():
        seen.update(b.broadcast_id for b in world.query_map(quad))
    assert len(seen) >= len(top_level)


def test_query_map_excludes_private_and_undisclosed():
    world = small_world(seed=6)
    result = world.query_map(GeoRect.world())
    assert all(not b.is_private for b in result)
    assert all(b.description_has_location for b in result)


def test_ranked_list_sorted_by_viewers():
    world = small_world(seed=7)
    ranked = world.ranked_broadcasts(count=80)
    assert len(ranked) <= 80
    viewers = [b.viewers_at(world.now) for b in ranked]
    assert viewers == sorted(viewers, reverse=True)


def test_teleport_returns_live_public_broadcast():
    world = small_world(seed=8)
    rng = random.Random(99)
    for _ in range(50):
        b = world.teleport(rng)
        assert b is not None
        assert b.is_live_at(world.now)
        assert not b.is_private


def test_teleport_popularity_bias():
    world = small_world(mean_concurrent=500, seed=9)
    rng = random.Random(100)
    picks = [world.teleport(rng) for _ in range(300)]
    picked_mean = sum(b.mean_viewers for b in picks) / len(picks)
    population = world.live_broadcasts()
    population_mean = sum(b.mean_viewers for b in population) / len(population)
    assert picked_mean > 2 * population_mean


def test_deterministic_given_seed():
    a = small_world(seed=11)
    b = small_world(seed=11)
    assert {x.broadcast_id for x in a.live_broadcasts()} == {
        x.broadcast_id for x in b.live_broadcasts()
    }


def test_different_seeds_differ():
    a = small_world(seed=12)
    b = small_world(seed=13)
    assert {x.broadcast_id for x in a.live_broadcasts()} != {
        x.broadcast_id for x in b.live_broadcasts()
    }
