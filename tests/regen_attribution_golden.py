"""Regenerate the golden attribution fixture.

Run after a *deliberate* change to cause emission, clamp math, or the
report format::

    PYTHONPATH=src python tests/regen_attribution_golden.py

then review the fixture diff like any other code change.
"""

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).parent))

from test_obs_causes import GOLDEN, _forensics_run  # noqa: E402


def main() -> None:
    GOLDEN.parent.mkdir(exist_ok=True)
    GOLDEN.write_text(_forensics_run(workers=1)["report"], encoding="utf-8")
    print(f"wrote {GOLDEN}")


if __name__ == "__main__":
    main()
