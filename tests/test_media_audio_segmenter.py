"""Tests for the AAC model and the HLS segmenter."""

import random

import pytest

from repro.media.audio import (
    FRAME_DURATION_S,
    NOMINAL_BITRATES_BPS,
    AacEncoderModel,
)
from repro.media.content import CONTENT_PROFILES, ContentProcess
from repro.media.encoder import EncoderSettings, GopPattern, VideoEncoder
from repro.media.segmenter import HlsSegmenter


class TestAacModel:
    def test_defaults_pick_nominal_rate(self):
        enc = AacEncoderModel(random.Random(1))
        assert enc.nominal_bps in NOMINAL_BITRATES_BPS

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError):
            AacEncoderModel(random.Random(1), nominal_bps=48_000.0)
        with pytest.raises(ValueError):
            AacEncoderModel(random.Random(1), vbr_spread=1.5)

    def test_frame_cadence(self):
        enc = AacEncoderModel(random.Random(2), nominal_bps=64_000.0)
        frames = enc.encode_all(10.0)
        assert len(frames) == pytest.approx(10.0 / FRAME_DURATION_S, abs=2)
        assert frames[1].pts - frames[0].pts == pytest.approx(FRAME_DURATION_S)

    def test_vbr_rate_near_nominal(self):
        enc = AacEncoderModel(random.Random(3), nominal_bps=32_000.0)
        frames = enc.encode_all(60.0)
        bps = sum(f.nbytes for f in frames) * 8 / 60.0
        assert bps == pytest.approx(32_000.0, rel=0.10)

    def test_vbr_sizes_vary(self):
        enc = AacEncoderModel(random.Random(4), nominal_bps=64_000.0)
        sizes = {f.nbytes for f in enc.encode_all(5.0)}
        assert len(sizes) > 10

    def test_duration_validation(self):
        with pytest.raises(ValueError):
            AacEncoderModel(random.Random(1)).encode_all(-1.0)


def encoded_broadcast(seed=1, duration=60.0, **enc_overrides):
    settings = EncoderSettings(target_bps=300_000.0, **enc_overrides)
    content = ContentProcess(CONTENT_PROFILES["indoor_event"], random.Random(seed))
    video = VideoEncoder(settings, content, random.Random(seed + 1)).encode_all(duration)
    audio = AacEncoderModel(random.Random(seed + 2), nominal_bps=32_000.0).encode_all(duration)
    return video, audio


class TestHlsSegmenter:
    def test_segments_start_with_i_frame(self):
        video, audio = encoded_broadcast()
        segments = list(HlsSegmenter().segment(video, audio))
        assert len(segments) > 5
        for seg in segments:
            first = min(seg.video_frames, key=lambda f: f.pts)
            assert first.frame_type == "I"

    def test_segment_durations_in_paper_range(self):
        video, audio = encoded_broadcast(duration=120.0)
        segments = list(HlsSegmenter(target_duration_s=3.6).segment(video, audio))
        closed = segments[:-1]  # final partial segment excluded
        for seg in closed:
            assert 2.5 <= seg.duration_s <= 6.5

    def test_audio_frames_distributed_to_segments(self):
        video, audio = encoded_broadcast()
        segments = list(HlsSegmenter().segment(video, audio))
        distributed = sum(len(s.audio_frames) for s in segments)
        assert distributed == len(audio)

    def test_no_frames_lost(self):
        video, audio = encoded_broadcast()
        segments = list(HlsSegmenter().segment(video, audio))
        assert sum(s.frame_count for s in segments) == len(video)

    def test_sequence_numbers_monotone(self):
        video, audio = encoded_broadcast()
        segments = list(HlsSegmenter().segment(video, audio))
        assert [s.sequence for s in segments] == list(range(len(segments)))

    def test_segment_bitrate_and_qp(self):
        video, audio = encoded_broadcast(duration=120.0)
        segments = list(HlsSegmenter().segment(video, audio))[:-1]
        for seg in segments:
            assert 50_000 < seg.bitrate_bps() < 2_000_000
            assert 10 <= seg.average_qp() <= 51

    def test_validation(self):
        with pytest.raises(ValueError):
            HlsSegmenter(target_duration_s=0)

    def test_ip_only_stream_segments(self):
        video, audio = encoded_broadcast(gop=GopPattern("IP"))
        segments = list(HlsSegmenter().segment(video, audio))
        assert segments
        for seg in segments:
            assert min(seg.video_frames, key=lambda f: f.pts).frame_type == "I"
