"""Positive + negative fixtures for the flow-sensitive rule families:
U (units/dimensions), R (RNG taint), P (process-pool safety).

Every rule id gets at least one source that must fire it and one
adjacent-but-legitimate source that must stay silent — the silence
tests are what keep the analyses conservative.
"""

import textwrap

from repro.lint import lint_sources

SNIPPET = "src/repro/netsim/snippet.py"


def rules_fired(source, only, path=SNIPPET):
    findings = lint_sources({path: textwrap.dedent(source)}, only_rules=only)
    return [f.rule for f in findings]


# ------------------------------------------------------------------ U501

class TestIncompatibleDimensions:
    def test_seconds_plus_bytes_fires(self):
        assert rules_fired("""
            def total(delay_s, frame_bytes):
                return delay_s + frame_bytes
        """, ["U501"]) == ["U501"]

    def test_flows_through_assignment(self):
        # No single line mixes suffixes; the mix only exists flow-wise.
        assert rules_fired("""
            def total(t1_at, t0_at, wire_bytes):
                d = t1_at - t0_at
                return d + wire_bytes
        """, ["U501"]) == ["U501"]

    def test_comparison_mixing_fires(self):
        assert rules_fired("""
            def late(delay_s, n_bytes):
                return delay_s < n_bytes
        """, ["U501"]) == ["U501"]

    def test_scalar_literal_is_compatible(self):
        assert rules_fired("""
            def pad(delay_s):
                return delay_s + 3.0
        """, ["U501"]) == []

    def test_unknown_dimension_stays_silent(self):
        assert rules_fired("""
            def mix(delay_s, thing):
                return delay_s + thing
        """, ["U501"]) == []


# ------------------------------------------------------------------ U502

class TestTimestampArithmetic:
    def test_adding_two_timestamps_fires(self):
        assert rules_fired("""
            def midpoint(start_at, end_at):
                return start_at + end_at
        """, ["U502"]) == ["U502"]

    def test_multiplying_two_timestamps_fires(self):
        assert rules_fired("""
            def nonsense(start_at, end_at):
                return start_at * end_at
        """, ["U502"]) == ["U502"]

    def test_subtracting_timestamps_is_fine(self):
        assert rules_fired("""
            def span_s(start_at, end_at):
                return end_at - start_at
        """, ["U502"]) == []

    def test_timestamp_plus_duration_is_fine(self):
        assert rules_fired("""
            def deadline(now, timeout_s):
                return now + timeout_s
        """, ["U502"]) == []


# ------------------------------------------------------------------ U503

class TestReturnDimension:
    def test_bps_function_returning_bytes_fires(self):
        assert rules_fired("""
            def rate_bps(record):
                return record.wire_bytes
        """, ["U503"]) == ["U503"]

    def test_correct_rate_computation_is_fine(self):
        assert rules_fired("""
            def rate_bps(wire_bytes, span_s):
                return wire_bytes * 8.0 / span_s
        """, ["U503"]) == []

    def test_duration_function_returning_difference_is_fine(self):
        assert rules_fired("""
            def elapsed_s(start_at, end_at):
                return end_at - start_at
        """, ["U503"]) == []


# ------------------------------------------------------------------ U504

class TestByteBitConversion:
    def test_bytes_divided_by_bps_fires(self):
        assert rules_fired("""
            def tx_time(wire_bytes, rate_bps):
                return wire_bytes / rate_bps
        """, ["U504"]) == ["U504"]

    def test_bytes_per_second_stored_in_bps_name_fires(self):
        assert rules_fired("""
            def throughput(total_bytes, span_s):
                goodput_bps = total_bytes / span_s
                return goodput_bps
        """, ["U504"]) == ["U504"]

    def test_with_conversion_is_fine(self):
        assert rules_fired("""
            def tx_time_s(wire_bytes, rate_bps):
                return wire_bytes * 8.0 / rate_bps
        """, ["U503", "U504"]) == []

    def test_helper_conversion_is_fine(self):
        assert rules_fired("""
            from repro.util.units import bytes_to_bits

            def tx_time_s(wire_bytes, rate_bps):
                return bytes_to_bits(wire_bytes) / rate_bps
        """, ["U503", "U504"]) == []


# ------------------------------------------------------------------ U505

class TestDeclaredDimensionAssignment:
    def test_bytes_into_seconds_name_fires(self):
        assert rules_fired("""
            def stash(frame_bytes):
                timeout_s = frame_bytes
                return timeout_s
        """, ["U505"]) == ["U505"]

    def test_keyword_argument_mismatch_fires(self):
        assert rules_fired("""
            def call(setup, frame_bytes):
                setup(watch_seconds=frame_bytes)
        """, ["U505"]) == ["U505"]

    def test_literal_assignment_is_fine(self):
        assert rules_fired("""
            def config():
                timeout_s = 5.0
                return timeout_s
        """, ["U505"]) == []

    def test_timestamp_into_seconds_name_is_fine(self):
        # start_s = loop.now is idiomatic: timestamps are seconds-valued.
        assert rules_fired("""
            def mark(now):
                start_s = now
                return start_s
        """, ["U505"]) == []


# ------------------------------------------------------------------ R601

class TestRngReseed:
    def test_reseeding_derived_stream_fires(self):
        assert rules_fired("""
            def jitter(rng):
                rng.seed(42)
                return rng.random()
        """, ["R601"]) == ["R601"]

    def test_setstate_fires(self):
        assert rules_fired("""
            def rewind(rng, snapshot):
                rng.setstate(snapshot)
        """, ["R601"]) == ["R601"]

    def test_flows_through_assignment(self):
        assert rules_fired("""
            from repro.util.rng import child_rng

            def jitter(seed):
                stream = child_rng(seed, "jitter")
                stream.seed(0)
        """, ["R601"]) == ["R601"]

    def test_plain_draw_is_fine(self):
        assert rules_fired("""
            def jitter(rng):
                return rng.random()
        """, ["R601"]) == []

    def test_rng_module_itself_is_exempt(self):
        assert rules_fired("""
            def make(seed):
                import random
                rng = random.Random()
                rng.seed(seed)
                return rng
        """, ["R601"], path="src/repro/util/rng.py") == []


# ------------------------------------------------------------------ R602

class TestTelemetryGatedDraw:
    def test_draw_under_metrics_flag_fires(self):
        assert rules_fired("""
            def sample(rng, metrics_enabled):
                if metrics_enabled:
                    return rng.random()
                return 0.0
        """, ["R602"]) == ["R602"]

    def test_draw_in_else_branch_fires(self):
        assert rules_fired("""
            def sample(rng, telemetry):
                if telemetry.enabled:
                    x = 0.0
                else:
                    x = rng.gauss(0.0, 1.0)
                return x
        """, ["R602"]) == ["R602"]

    def test_unconditional_draw_is_fine(self):
        assert rules_fired("""
            def sample(rng, metrics_enabled):
                x = rng.random()
                if metrics_enabled:
                    record(x)
                return x
        """, ["R602"]) == []

    def test_non_telemetry_guard_is_fine(self):
        assert rules_fired("""
            def sample(rng, loss_enabled):
                if loss_enabled:
                    return rng.random()
                return 0.0
        """, ["R602"]) == []


# ------------------------------------------------------------------ R603

class TestRngGlobalEscape:
    def test_module_level_rng_fires(self):
        assert rules_fired("""
            from repro.util.rng import make_rng

            SHARED = make_rng(7)
        """, ["R603"]) == ["R603"]

    def test_global_statement_escape_fires(self):
        assert rules_fired("""
            from repro.util.rng import child_rng

            _stream = None

            def setup(seed):
                global _stream
                _stream = child_rng(seed, "hidden")
        """, ["R603"]) == ["R603"]

    def test_local_stream_is_fine(self):
        assert rules_fired("""
            from repro.util.rng import child_rng

            def setup(seed):
                stream = child_rng(seed, "local")
                return stream
        """, ["R603"]) == []


# ------------------------------------------------------------------ P701

class TestUnpicklableDispatch:
    def test_lambda_task_fires(self):
        assert rules_fired("""
            def run(pool, items):
                job = lambda x: x + 1
                return list(pool.map(job, items))
        """, ["P701"]) == ["P701"]

    def test_nested_function_task_fires(self):
        assert rules_fired("""
            def run(pool, items):
                def job(x):
                    return x + 1
                return list(pool.map(job, items))
        """, ["P701"]) == ["P701"]

    def test_event_loop_argument_fires(self):
        assert rules_fired("""
            from repro.netsim.events import EventLoop

            def run(pool, task):
                loop = EventLoop()
                return pool.submit(task, loop)
        """, ["P701"]) == ["P701"]

    def test_open_handle_initarg_fires(self):
        assert rules_fired("""
            from concurrent.futures import ProcessPoolExecutor

            def run(boot, path):
                handle = open(path)
                with ProcessPoolExecutor(initializer=boot, initargs=(handle,)) as pool:
                    return pool
        """, ["P701"]) == ["P701"]

    def test_module_level_function_is_fine(self):
        assert rules_fired("""
            def job(x):
                return x + 1

            def run(pool, items):
                return list(pool.map(job, items))
        """, ["P701"]) == []


# ------------------------------------------------------------------ P702

class TestDispatchedGlobalMutation:
    def test_dispatched_task_writing_global_fires(self):
        assert rules_fired("""
            _TOTAL = 0

            def job(x):
                global _TOTAL
                _TOTAL += x
                return x

            def run(pool, items):
                return list(pool.map(job, items))
        """, ["P702"]) == ["P702"]

    def test_initializer_global_write_is_exempt(self):
        # The sanctioned _worker_init idiom: globals written in the pool
        # initializer, read-only in the dispatched task.
        assert rules_fired("""
            from concurrent.futures import ProcessPoolExecutor

            _CFG = None

            def _init(cfg):
                global _CFG
                _CFG = cfg

            def job(x):
                return (_CFG, x)

            def run(items, cfg):
                with ProcessPoolExecutor(initializer=_init, initargs=(cfg,)) as pool:
                    return list(pool.map(job, items))
        """, ["P702"]) == []

    def test_undispatched_global_writer_is_fine(self):
        assert rules_fired("""
            _MODE = None

            def set_mode(mode):
                global _MODE
                _MODE = mode
        """, ["P702"]) == []


# ------------------------------------------------------------------ P703

class TestCompletionOrderMerge:
    def test_as_completed_fires(self):
        assert rules_fired("""
            from concurrent.futures import as_completed

            def merge(futures):
                return [f.result() for f in as_completed(futures)]
        """, ["P703"]) == ["P703"]

    def test_imap_unordered_fires(self):
        assert rules_fired("""
            def merge(pool, job, items):
                return list(pool.imap_unordered(job, items))
        """, ["P703"]) == ["P703"]

    def test_submission_order_merge_is_fine(self):
        assert rules_fired("""
            def merge(futures):
                return [f.result() for f in futures]
        """, ["P703"]) == []


# ------------------------------------------- genuine-violation regression

class TestSec51ChatRegression:
    def test_unsuffixed_duration_denominator_fires(self):
        """The exact pattern experiments/sec51_chat.py shipped before the
        fix: a unit-opaque ``watch = 60.0`` denominator made the kbps
        keyword arguments infer as bits, and let the session's watch
        window drift apart from the bitrate denominator unnoticed."""
        assert rules_fired("""
            def run(make_result, total_down_bytes):
                watch = 60.0
                return make_result(chat_off_bps=total_down_bytes * 8.0 / watch)
        """, ["U505"]) == ["U505"]

    def test_fixed_pattern_is_clean(self):
        assert rules_fired("""
            WATCH_SECONDS = 60.0

            def run(make_result, total_down_bytes):
                watch_s = WATCH_SECONDS
                return make_result(chat_off_bps=total_down_bytes * 8.0 / watch_s)
        """, ["U501", "U504", "U505"]) == []

    def test_shipped_module_is_clean(self):
        import os
        from repro.lint import find_repo_root
        root = find_repo_root()
        path = os.path.join(root, "src", "repro", "experiments", "sec51_chat.py")
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        findings = lint_sources(
            {"src/repro/experiments/sec51_chat.py": source},
            only_rules=["U501", "U502", "U503", "U504", "U505"],
        )
        assert findings == []
