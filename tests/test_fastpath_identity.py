"""Seed-sweep identity properties of the network fast path.

The segment-granularity fast path (:mod:`repro.netsim.fastpath`)
advertises one guarantee: simulation *results* are bit-identical to the
exact per-packet path.  These tests sweep seeds, fault plans, protocols,
bandwidth limits, and worker counts, and compare fast vs. exact runs by
pickled bytes — any float, ordering, or RNG divergence fails loudly.
"""

import pickle
import random

import pytest

from repro.automation.devices import GALAXY_S3, GALAXY_S4
from repro.core.config import StudyConfig
from repro.core.session import SessionSetup, ViewingSession
from repro.core.study import AutomatedViewingStudy
from repro.faults import FaultPlan
from repro.netsim import fastpath
from repro.service.broadcast import sample_broadcast
from repro.service.geo import POPULATION_CENTERS, GeoPoint
from repro.service.selection import DeliveryProtocol

from test_replay import _canonical_trace

SEEDS = list(range(41, 53))  # 12 seeds

FAULT_SPEC = "loss=0.02,jitter=0.005,ingest=0.03:1:2,api5xx=0.1"


def _setup_for(seed: int, faulted: bool) -> SessionSetup:
    """One deterministic session setup: protocol, device, limit, and
    broadcast all derive from the seed so the sweep covers the matrix."""
    b = sample_broadcast(random.Random(seed), 0.0, GeoPoint(41.0, 28.9),
                         POPULATION_CENTERS[seed % len(POPULATION_CENTERS)])
    b.mean_viewers = 8.0 + (seed % 5) * 40.0
    b.duration_s = 7200.0
    return SessionSetup(
        broadcast=b,
        age_at_join=30.0 + (seed % 7) * 25.0,
        protocol=DeliveryProtocol.RTMP if seed % 2 else DeliveryProtocol.HLS,
        device=GALAXY_S4 if seed % 2 else GALAXY_S3,
        bandwidth_limit_mbps=(0.5, 2.0, 100.0)[seed % 3],
        watch_seconds=6.0,
        seed=seed,
        faults=FaultPlan.parse(FAULT_SPEC) if faulted else None,
    )


def _run(setup: SessionSetup, exact: bool):
    if exact:
        with fastpath.exact_network():
            return ViewingSession(setup).run()
    return ViewingSession(setup).run()


class TestSessionIdentitySweep:
    """fast == exact for single sessions across seeds and fault plans."""

    @pytest.mark.parametrize("faulted", [False, True], ids=["pristine", "faulted"])
    @pytest.mark.parametrize("seed", SEEDS)
    def test_fast_equals_exact(self, seed, faulted):
        fast = _run(_setup_for(seed, faulted), exact=False)
        exact = _run(_setup_for(seed, faulted), exact=True)
        assert pickle.dumps(fast.qoe) == pickle.dumps(exact.qoe)
        assert fast.total_down_bytes == exact.total_down_bytes
        assert fast.avatar_bytes == exact.avatar_bytes
        assert fast.chat_messages == exact.chat_messages
        # Stronger than results: the packet traces themselves agree
        # line-for-line (timestamps, order, sizes, annotations).
        assert (_canonical_trace(fast.capture)
                == _canonical_trace(exact.capture))


def _dataset_bytes(dataset) -> tuple:
    """Byte-level fingerprint of a dataset.

    Sessions are pickled one by one: a whole-list pickle also encodes
    which objects happen to be *shared* between sessions, and the
    process-pool path legitimately loses that sharing when results cross
    the process boundary.  Values — every float, string, and count —
    stay bit-compared."""
    return (
        [pickle.dumps(q) for q in dataset.sessions],
        dataset.avatar_bytes,
        dataset.down_bytes,
        dataset.shortfall,
    )


def _study_dataset(seed: int, faulted: bool, workers: int, exact: bool) -> bytes:
    config = StudyConfig(
        seed=seed,
        watch_seconds=6.0,
        workers=workers,
        exact_network=exact,
        faults=FaultPlan.parse(FAULT_SPEC) if faulted else None,
    )
    study = AutomatedViewingStudy(config)
    return _dataset_bytes(study.run_batch(3, bandwidth_limit_mbps=2.0))


class TestStudyIdentityAcrossWorkers:
    """fast == exact for whole study batches, serial and fanned out."""

    @pytest.mark.parametrize("faulted", [False, True], ids=["pristine", "faulted"])
    def test_workers_and_modes_agree(self, faulted):
        seed = 2016
        reference = _study_dataset(seed, faulted, workers=1, exact=False)
        assert _study_dataset(seed, faulted, workers=1, exact=True) == reference
        for workers in (2, 4):
            assert _study_dataset(seed, faulted, workers=workers,
                                  exact=False) == reference
        # Exact mode through the process pool exercises the worker-init
        # plumbing (spawned/forked workers must mirror the parent's mode).
        assert _study_dataset(seed, faulted, workers=2, exact=True) == reference

    def test_mode_switch_is_scoped_to_the_batch(self):
        previous = fastpath.enabled()
        _study_dataset(7, faulted=False, workers=1, exact=True)
        assert fastpath.enabled() == previous
