"""Tests for the power model and the Monsoon simulator (Fig. 7)."""

import random

import pytest

from repro.energy.components import (
    GALAXY_S4_MODEL,
    ComponentPowerModel,
    LTE_PARAMS,
    Radio,
    WIFI_PARAMS,
)
from repro.energy.monsoon import MonsoonMonitor
from repro.energy.states import (
    APP_STATES,
    PAPER_FIGURE7_MW,
    AppState,
    figure7_table,
    state_power_mw,
)


class TestComponents:
    def test_dvfs_cubic_scaling(self):
        model = GALAXY_S4_MODEL
        assert model.cpu_mw(1.0) == pytest.approx(model.cpu_max_mw)
        assert model.cpu_mw(0.5) == pytest.approx(model.cpu_max_mw / 8.0)

    def test_clock_validation(self):
        with pytest.raises(ValueError):
            GALAXY_S4_MODEL.cpu_mw(1.5)
        with pytest.raises(ValueError):
            GALAXY_S4_MODEL.gpu_mw(-0.1)

    def test_lte_active_costlier_than_wifi(self):
        model = GALAXY_S4_MODEL
        assert model.radio_mw(Radio.LTE, 1.0, 1.0) > model.radio_mw(Radio.WIFI, 1.0, 1.0)

    def test_lte_idle_cheaper_than_wifi(self):
        # DRX makes LTE idle very cheap; WiFi keeps listening.
        assert LTE_PARAMS.idle_mw < WIFI_PARAMS.idle_mw

    def test_radio_validation(self):
        with pytest.raises(ValueError):
            GALAXY_S4_MODEL.radio_mw(Radio.WIFI, -1.0, 0.5)
        with pytest.raises(ValueError):
            GALAXY_S4_MODEL.radio_mw(Radio.WIFI, 1.0, 1.5)


class TestFigure7:
    def test_all_states_within_10_percent_of_paper(self):
        table = figure7_table()
        for state, (wifi, lte) in table.items():
            paper_wifi, paper_lte = PAPER_FIGURE7_MW[state]
            assert wifi == pytest.approx(paper_wifi, rel=0.10), state
            assert lte == pytest.approx(paper_lte, rel=0.10), state

    def test_ordering_home_lowest(self):
        table = figure7_table()
        home = table[AppState.HOME_SCREEN]
        for state, values in table.items():
            if state != AppState.HOME_SCREEN:
                assert values[0] > home[0]
                assert values[1] > home[1]

    def test_chat_on_dwarfs_chat_off(self):
        table = figure7_table()
        on = table[AppState.VIDEO_HLS_CHAT_ON]
        off = table[AppState.VIDEO_HLS_CHAT_OFF]
        assert on[0] > off[0] + 1000
        assert on[1] > off[1] + 1000

    def test_chat_on_comparable_to_broadcasting(self):
        table = figure7_table()
        chat = table[AppState.VIDEO_HLS_CHAT_ON]
        broadcast = table[AppState.BROADCAST]
        assert chat[0] == pytest.approx(broadcast[0], rel=0.2)

    def test_lte_above_wifi_in_active_states(self):
        table = figure7_table()
        for state in (AppState.APP_ON, AppState.VIDEO_RTMP_CHAT_OFF,
                      AppState.VIDEO_HLS_CHAT_ON, AppState.BROADCAST):
            wifi, lte = table[state]
            assert lte > wifi

    def test_rtmp_vs_hls_difference_small(self):
        # "The power consumption difference of RTMP vs HLS is very small."
        table = figure7_table()
        rtmp = table[AppState.VIDEO_RTMP_CHAT_OFF]
        hls = table[AppState.VIDEO_HLS_CHAT_OFF]
        assert abs(rtmp[0] - hls[0]) < 200
        assert abs(rtmp[1] - hls[1]) < 200

    def test_replay_similar_to_live(self):
        # "Playing back old recorded videos consume an equal amount of
        # power as playing back live videos."
        table = figure7_table()
        replay = table[AppState.VIDEO_NOT_LIVE]
        live = table[AppState.VIDEO_RTMP_CHAT_OFF]
        assert replay[0] == pytest.approx(live[0], rel=0.08)

    def test_chat_boost_mechanism(self):
        on = APP_STATES[AppState.VIDEO_HLS_CHAT_ON]
        off = APP_STATES[AppState.VIDEO_HLS_CHAT_OFF]
        assert on.cpu_clock == pytest.approx(off.cpu_clock * 4 / 3, rel=0.01)
        assert on.throughput_mbps > 5 * off.throughput_mbps


class TestMonsoon:
    def test_average_tracks_model(self):
        monitor = MonsoonMonitor(random.Random(1))
        for state in (AppState.HOME_SCREEN, AppState.VIDEO_HLS_CHAT_ON):
            for radio in Radio:
                measured = monitor.measure_average(state, radio, duration_s=30.0)
                model = state_power_mw(state, radio)
                assert measured == pytest.approx(model, rel=0.08)

    def test_trace_has_noise(self):
        monitor = MonsoonMonitor(random.Random(2))
        trace = monitor.record(AppState.APP_ON, Radio.WIFI, duration_s=5.0)
        values = {round(p) for _, p in trace.samples}
        assert len(values) > 20

    def test_energy_integration(self):
        monitor = MonsoonMonitor(random.Random(3), noise_mw=0.0,
                                 workload_wander_mw=0.0)
        trace = monitor.record(AppState.HOME_SCREEN, Radio.WIFI, duration_s=10.0)
        expected = state_power_mw(AppState.HOME_SCREEN, Radio.WIFI) / 1000.0 * trace.samples[-1][0]
        assert trace.energy_j() == pytest.approx(expected, rel=0.01)

    def test_csv_export(self):
        monitor = MonsoonMonitor(random.Random(4))
        trace = monitor.record(AppState.APP_ON, Radio.LTE, duration_s=1.0)
        csv = trace.export_csv()
        assert csv.startswith("time_s,power_mw")
        assert len(csv.splitlines()) == len(trace.samples) + 1

    def test_duration_validation(self):
        monitor = MonsoonMonitor(random.Random(5))
        with pytest.raises(ValueError):
            monitor.record(AppState.APP_ON, Radio.WIFI, duration_s=0.0)
