"""Unit tests for seed plumbing (repro.util.rng)."""

from repro.util.rng import SeedSequence, child_rng, make_rng


def test_make_rng_deterministic():
    assert make_rng(42).random() == make_rng(42).random()


def test_make_rng_different_seeds_differ():
    assert make_rng(1).random() != make_rng(2).random()


def test_child_streams_independent_of_sibling_count():
    # Drawing from one child must not perturb another.
    a1 = child_rng(7, "alpha").random()
    _ = child_rng(7, "beta").random()
    a2 = child_rng(7, "alpha").random()
    assert a1 == a2


def test_child_path_matters():
    assert child_rng(7, "x", 1).random() != child_rng(7, "x", 2).random()


def test_string_and_int_seeds_accepted():
    assert make_rng("experiment-1").random() == make_rng("experiment-1").random()
    assert make_rng("1").random() != make_rng(1).random() or True  # both valid


def test_seed_sequence_rng_reproducible():
    seeds = SeedSequence(42)
    assert seeds.rng("service").random() == seeds.rng("service").random()


def test_seed_sequence_spawn_nesting():
    root = SeedSequence(42)
    child = root.spawn("crawler")
    # spawn + rng must be stable and distinct from the root's own stream
    assert child.rng("a").random() == root.spawn("crawler").rng("a").random()
    assert child.rng("a").random() != root.rng("a").random()


def test_seed_sequence_integer_stable():
    s = SeedSequence("exp")
    assert s.integer("x") == s.integer("x")
    assert 0 <= s.integer("x") < 2**64
